//! In-process daemon smoke tests: the full service loop — bus RPCs,
//! coalescing acks, typed rejections, `/metrics`, clean shutdown —
//! against a real engine over real sockets. The heavier concurrent
//! oracle test lives at the workspace level (`tests/bus_concurrent.rs`).

use std::io::{Read, Write};

use camus_bus::{BusClient, BusReply, BusRequest, RejectKind};
use camus_pipeline::AsicModel;
use camusd::{Daemon, DaemonConfig};

fn start_daemon(mut cfg: DaemonConfig) -> Daemon {
    cfg.metrics = Some("127.0.0.1:0".into());
    Daemon::start(cfg).expect("daemon starts")
}

#[test]
fn rpc_surface_end_to_end() {
    let cfg = DaemonConfig::itch(8, 32).unwrap();
    let daemon = start_daemon(cfg);
    let addr = daemon.bus_addrs()[0].clone();
    let mut client = BusClient::connect(&addr).expect("connect");

    client.ping().expect("ping");

    // Snapshot shows the initial install.
    let (gen0, rules0) = client.snapshot().expect("snapshot");
    assert_eq!(gen0, 0, "no epochs before the first mutation");
    assert_eq!(rules0.len(), 8);

    // Subscribe a brand-new rule (out of pool → full-rebuild path).
    let rule = "stock == GOOGL and price > 500 : fwd(7)";
    let reply = client
        .request(&BusRequest::Subscribe {
            rules: vec![rule.into()],
        })
        .expect("subscribe rpc");
    let BusReply::Ack {
        generation,
        coalesced_with,
    } = reply
    else {
        panic!("expected ack, got {reply:?}");
    };
    assert_eq!(generation, 1);
    assert_eq!(coalesced_with, 1);

    // It shows up in the snapshot, printed form.
    let (gen1, rules1) = client.snapshot().expect("snapshot 2");
    assert_eq!(gen1, 1);
    assert_eq!(rules1.len(), 9);
    assert!(
        rules1
            .iter()
            .any(|r| r.contains("GOOGL") && r.contains("fwd(7)")),
        "new rule missing from snapshot: {rules1:?}"
    );

    // Double-subscribe is a typed rejection; pipeline untouched.
    let reply = client
        .request(&BusRequest::Subscribe {
            rules: vec![rule.into()],
        })
        .expect("dup subscribe rpc");
    assert!(
        matches!(
            &reply,
            BusReply::Rejected {
                kind: RejectKind::Compile,
                ..
            }
        ),
        "expected compile rejection, got {reply:?}"
    );

    // Parse failures are typed too.
    let reply = client
        .request(&BusRequest::Subscribe {
            rules: vec!["this is not a rule".into()],
        })
        .expect("bad subscribe rpc");
    assert!(matches!(
        reply,
        BusReply::Rejected {
            kind: RejectKind::Parse,
            ..
        }
    ));

    // Unsubscribe brings it back down.
    let reply = client
        .request(&BusRequest::Unsubscribe {
            rules: vec![rule.into()],
        })
        .expect("unsubscribe rpc");
    assert!(matches!(reply, BusReply::Ack { generation: 2, .. }));
    let (_, rules2) = client.snapshot().expect("snapshot 3");
    assert_eq!(rules2.len(), 8);

    // Unsubscribing a rule that is not installed is a typed rejection.
    let reply = client
        .request(&BusRequest::Unsubscribe {
            rules: vec![rule.into()],
        })
        .expect("missing unsubscribe rpc");
    assert!(matches!(
        reply,
        BusReply::Rejected {
            kind: RejectKind::Compile,
            ..
        }
    ));

    // Stats reconcile with what we did: 2 epochs, 2 mutations applied,
    // 2 rejected mutations (dup + parse) + 1 (missing unsub).
    let stats = client.stats().expect("stats");
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.active_rules, 8);
    assert_eq!(stats.epochs, 2);
    assert_eq!(stats.mutations_applied, 2);
    assert_eq!(stats.mutations_rejected, 3);
    assert!(stats.apply_count >= 2, "apply spans recorded");

    // /metrics serves the shared families plus the camusd_* ones.
    let metrics = scrape(daemon.metrics_addr().expect("metrics addr"));
    for family in [
        "camus_packets_total",
        "camus_span_count_total{span=\"apply_update\"} 2",
        "camusd_bus_rpcs_total",
        "camusd_mutations_applied_total",
        "camusd_active_subscriptions 8",
        "camusd_generation 2",
    ] {
        assert!(metrics.contains(family), "missing {family} in:\n{metrics}");
    }

    // Shutdown RPC → clean quiesced exit, zero-loss ledger.
    let reply = client.request(&BusRequest::Shutdown).expect("shutdown rpc");
    assert_eq!(reply, BusReply::ShuttingDown);
    let report = daemon.join();
    assert!(report.clean_quiesce);
    assert!(report.zero_loss());
    assert_eq!(report.active_rules.len(), 8);
    assert_eq!(report.bus.epochs, 2);
}

#[test]
fn admission_rejection_is_typed_and_leaves_the_pipeline_running() {
    let mut cfg = DaemonConfig::itch(4, 16).unwrap();
    // A model with almost no TCAM: the initial 4 rules fit, a bigger
    // batch does not.
    cfg.engine.admission = Some(AsicModel {
        sram_entries_per_stage: 4096,
        tcam_entries_per_stage: 48,
        ..AsicModel::tofino32()
    });
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let mut client = BusClient::connect(&daemon.bus_addrs()[0]).expect("connect");

    // A pile of range rules blows the TCAM budget.
    let bomb: Vec<String> = (0..200)
        .map(|i| format!("stock == SYM{i:03} and price > {} : fwd(1)", 10 + i))
        .collect();
    let reply = client
        .request(&BusRequest::Subscribe { rules: bomb })
        .expect("bomb rpc");
    let BusReply::Rejected { kind, message } = reply else {
        panic!("expected admission rejection, got {reply:?}");
    };
    assert_eq!(kind, RejectKind::Admission, "message: {message}");

    // The daemon still serves: generation unchanged, small adds work.
    let (generation, rules) = client.snapshot().expect("snapshot");
    assert_eq!(generation, 0);
    assert_eq!(rules.len(), 4);
    let reply = client
        .request(&BusRequest::Subscribe {
            rules: vec!["stock == ZZZZ : fwd(2)".into()],
        })
        .expect("small subscribe");
    assert!(
        matches!(reply, BusReply::Ack { generation: 1, .. }),
        "small add after rejection should still work, got {reply:?}"
    );

    let report = daemon.join();
    assert!(report.zero_loss());
    assert_eq!(report.engine.faults.updates_rejected, 1);
}

/// Minimal HTTP GET, std-only.
fn scrape(addr: &str) -> String {
    let mut conn = std::net::TcpStream::connect(addr).expect("connect metrics");
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: camusd\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut out = String::new();
    conn.read_to_string(&mut out).expect("read response");
    assert!(out.starts_with("HTTP/1.1 200"), "bad response: {out}");
    out
}
