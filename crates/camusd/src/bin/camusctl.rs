//! `camusctl` — the operator CLI for a running `camusd`.
//!
//! One subcommand per bus RPC, plus `stats --watch`: a top-style live
//! view computing rates from successive [`StatsFrame`] diffs.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::process::ExitCode;
use std::time::Duration;

use camus_bus::{BusAddr, BusClient, BusReply, BusRequest, StatsFrame};

const USAGE: &str = "\
camusctl — control a running camusd

USAGE:
    camusctl [--bus ADDR] <COMMAND> [ARGS]

COMMANDS:
    ping                        liveness round trip
    subscribe RULE...           install rules (one epoch, all-or-nothing)
    unsubscribe RULE...         remove rules
    snapshot                    print the installed rule set
    stats                       print one stats sample
    stats --watch [N]           live view, N samples (default: forever)
          [--interval-ms MS]    sample period [1000]
    shutdown                    ask the daemon to quiesce and exit

The bus address defaults to unix:/tmp/camusd.sock; rules are quoted
subscription-language text, e.g. 'stock == GOOGL and price > 500 : fwd(7)'.
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("camusctl: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut bus = BusAddr::Unix("/tmp/camusd.sock".into());
    if args.first().map(String::as_str) == Some("--bus") {
        if args.len() < 2 {
            return fail("--bus needs a value");
        }
        match BusAddr::parse(&args[1]) {
            Ok(addr) => bus = addr,
            Err(e) => return fail(&e),
        }
        args.drain(..2);
    }
    let Some(command) = args.first().cloned() else {
        print!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];

    let mut client = match BusClient::connect(&bus) {
        Ok(c) => c,
        Err(e) => return fail(&format!("connect {bus}: {e}")),
    };

    match command.as_str() {
        "ping" => match client.ping() {
            Ok(()) => {
                println!("pong");
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e.to_string()),
        },
        "subscribe" | "unsubscribe" => {
            if rest.is_empty() {
                return fail(&format!("{command} needs at least one rule"));
            }
            let rules: Vec<String> = rest.to_vec();
            let req = if command == "subscribe" {
                BusRequest::Subscribe { rules }
            } else {
                BusRequest::Unsubscribe { rules }
            };
            match client.request(&req) {
                Ok(BusReply::Ack {
                    generation,
                    coalesced_with,
                }) => {
                    println!(
                        "ok: {} rule(s) at generation {generation} (epoch shared by \
                         {coalesced_with} request(s))",
                        rest.len()
                    );
                    ExitCode::SUCCESS
                }
                Ok(BusReply::Rejected { kind, message }) => {
                    eprintln!("rejected ({kind}): {message}");
                    ExitCode::from(3)
                }
                Ok(BusReply::ShuttingDown) => fail("daemon is shutting down"),
                Ok(other) => fail(&format!("unexpected reply: {other:?}")),
                Err(e) => fail(&e.to_string()),
            }
        }
        "snapshot" => match client.snapshot() {
            Ok((generation, rules)) => {
                println!("# generation {generation}, {} rule(s)", rules.len());
                for rule in rules {
                    println!("{rule}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e.to_string()),
        },
        "stats" => run_stats(&mut client, rest),
        "shutdown" => match client.request(&BusRequest::Shutdown) {
            Ok(BusReply::ShuttingDown) => {
                println!("shutting down");
                ExitCode::SUCCESS
            }
            Ok(other) => fail(&format!("unexpected reply: {other:?}")),
            Err(e) => fail(&e.to_string()),
        },
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown command {other}\n\n{USAGE}")),
    }
}

/// `stats`: one sample, or `--watch` for a rate view from frame diffs.
fn run_stats(client: &mut BusClient, rest: &[String]) -> ExitCode {
    let mut watch: Option<u64> = None;
    let mut interval_ms: u64 = 1000;
    let mut it = rest.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--watch" => {
                watch = Some(u64::MAX);
                if let Some(n) = it.peek().and_then(|s| s.parse::<u64>().ok()) {
                    watch = Some(n);
                    it.next();
                }
            }
            "--interval-ms" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(ms) => interval_ms = ms.max(10),
                None => return fail("--interval-ms needs a number"),
            },
            other => return fail(&format!("unknown stats flag {other}")),
        }
    }

    let Some(samples) = watch else {
        return match client.stats() {
            Ok(frame) => {
                print_frame(&frame);
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e.to_string()),
        };
    };

    let mut prev: Option<StatsFrame> = None;
    let mut taken = 0u64;
    while taken < samples {
        let frame = match client.stats() {
            Ok(f) => f,
            Err(e) => return fail(&e.to_string()),
        };
        if let Some(p) = prev {
            print_rates(&p, &frame, interval_ms);
        } else {
            print_frame(&frame);
        }
        prev = Some(frame);
        taken += 1;
        if taken < samples {
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
    }
    ExitCode::SUCCESS
}

fn print_frame(f: &StatsFrame) {
    let apply_mean_us = if f.apply_count > 0 {
        f.apply_ns_total as f64 / f.apply_count as f64 / 1e3
    } else {
        0.0
    };
    let coalesce = if f.epochs > 0 {
        f.mutations_applied as f64 / f.epochs as f64
    } else {
        0.0
    };
    println!(
        "gen={} rules={} workers={} packets={} epochs={} mutations={} rejected={} \
         coalesce={:.2} rpcs={} clients={} apply_mean_us={:.1} uptime_s={:.1}",
        f.generation,
        f.active_rules,
        f.workers,
        f.packets,
        f.epochs,
        f.mutations_applied,
        f.mutations_rejected,
        coalesce,
        f.rpcs,
        f.clients,
        apply_mean_us,
        f.uptime_ms as f64 / 1e3,
    );
}

/// Rates between two frames — the lqtop-style live view.
fn print_rates(prev: &StatsFrame, cur: &StatsFrame, interval_ms: u64) {
    let dt = ((cur.uptime_ms.saturating_sub(prev.uptime_ms)).max(1) as f64 / 1e3)
        .max(interval_ms as f64 / 2e3);
    let rate = |a: u64, b: u64| (b.saturating_sub(a)) as f64 / dt;
    let d_apply_ns = cur.apply_ns_total.saturating_sub(prev.apply_ns_total);
    let d_apply_n = cur.apply_count.saturating_sub(prev.apply_count);
    let apply_mean_us = if d_apply_n > 0 {
        d_apply_ns as f64 / d_apply_n as f64 / 1e3
    } else {
        0.0
    };
    let d_epochs = cur.epochs.saturating_sub(prev.epochs);
    let d_mutations = cur.mutations_applied.saturating_sub(prev.mutations_applied);
    let coalesce = if d_epochs > 0 {
        d_mutations as f64 / d_epochs as f64
    } else {
        0.0
    };
    println!(
        "gen={} rules={} pkts/s={:.0} mut/s={:.1} epochs/s={:.1} coalesce={:.2} \
         rpcs/s={:.1} clients={} apply_mean_us={:.1} uptime_s={:.1}",
        cur.generation,
        cur.active_rules,
        rate(prev.packets, cur.packets),
        rate(prev.mutations_applied, cur.mutations_applied),
        rate(prev.epochs, cur.epochs),
        coalesce,
        rate(prev.rpcs, cur.rpcs),
        cur.clients,
        apply_mean_us,
        cur.uptime_ms as f64 / 1e3,
    );
}
