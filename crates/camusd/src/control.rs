//! The control thread: owns the engine and the compiler session,
//! pumps the internal feed, and drains bus RPCs — coalescing pending
//! mutations into batched `apply_update` epochs.
//!
//! Ordering contract: each connection sends one request at a time and
//! blocks on its reply, so per-client FIFO holds trivially; across
//! clients the only guarantee is that an `Ack { generation }` means
//! the mutation is visible to every packet submitted after the ack
//! was sent (the engine publishes before the ack, and publish
//! ordering is the RCU generation order).

use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Duration;

use camus_bus::{
    read_frame, write_frame, BusListener, BusReply, BusRequest, RejectKind, WireError,
};
use camus_core::{CompilerOptions, IncrementalCompiler};
use camus_engine::{Engine, EngineFault};
use camus_lang::{ast::Rule, parse_rule, Spec};
use camus_telemetry::SpanKind;

use crate::{BusCounters, DaemonReport, Shared};

/// Messages into the control thread.
pub enum Ctl {
    /// One decoded RPC plus its reply channel.
    Rpc {
        /// The request.
        req: BusRequest,
        /// Where the handler thread waits for the reply.
        reply: mpsc::Sender<BusReply>,
    },
    /// Raw packets to submit (test hook; races RPCs like the feed).
    Inject {
        /// `(frame bytes, now_us)` pairs.
        packets: Vec<(Vec<u8>, u64)>,
    },
    /// Quiesce and exit.
    Shutdown,
}

/// A parsed, validated mutation waiting for its epoch.
struct PendingMutation {
    add: Vec<Rule>,
    remove: Vec<Rule>,
    reply: mpsc::Sender<BusReply>,
}

/// Packets submitted per control-loop tick while feeding. Small
/// enough that a pending RPC waits at most one burst (~10 µs of
/// submit work), large enough to amortize the channel poll.
const FEED_BURST: usize = 256;

pub(crate) struct ControlState {
    engine: Engine,
    /// `None` after an unrecoverable resync failure — mutations are
    /// then rejected `Internal` but the data path keeps forwarding.
    session: Option<IncrementalCompiler>,
    /// The rule set the engine is actually running (the session can
    /// run ahead of it transiently inside a failed update; `resync`
    /// restores it from here).
    committed: Vec<Rule>,
    base_pool: Vec<Rule>,
    spec: Spec,
    options: CompilerOptions,
    coalesce_max: usize,
    feed: Vec<Vec<u8>>,
    feed_loop: bool,
    feed_pos: usize,
    feed_clock_us: u64,
    feed_submitted: u64,
    shared: Arc<Shared>,
    bus: BusCounters,
}

#[allow(clippy::too_many_arguments)] // one-shot constructor, called once
impl ControlState {
    pub(crate) fn new(
        engine: Engine,
        session: IncrementalCompiler,
        committed: Vec<Rule>,
        base_pool: Vec<Rule>,
        spec: Spec,
        options: CompilerOptions,
        coalesce_max: usize,
        feed: Vec<Vec<u8>>,
        feed_loop: bool,
        shared: Arc<Shared>,
    ) -> Self {
        ControlState {
            engine,
            session: Some(session),
            committed,
            base_pool,
            spec,
            options,
            coalesce_max,
            feed,
            feed_loop,
            feed_pos: 0,
            feed_clock_us: 0,
            feed_submitted: 0,
            shared,
            bus: BusCounters::default(),
        }
    }

    /// The control loop. Returns the final report after shutdown.
    pub(crate) fn run(mut self, rx: mpsc::Receiver<Ctl>) -> DaemonReport {
        loop {
            let feeding = self.pump_feed();
            let msg = if feeding {
                match rx.try_recv() {
                    Ok(m) => Some(m),
                    Err(mpsc::TryRecvError::Empty) => None,
                    Err(mpsc::TryRecvError::Disconnected) => break,
                }
            } else {
                match rx.recv_timeout(Duration::from_millis(5)) {
                    Ok(m) => Some(m),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            };
            match msg {
                None => continue,
                Some(Ctl::Shutdown) => break,
                Some(Ctl::Inject { packets }) => {
                    for (bytes, now_us) in &packets {
                        self.engine.submit(bytes, *now_us);
                    }
                    self.publish_ops();
                }
                Some(Ctl::Rpc { req, reply }) => {
                    if self.handle_rpc(req, reply, &rx) {
                        break; // a Shutdown arrived mid-drain
                    }
                    self.publish_ops();
                }
            }
        }
        self.shutdown(&rx)
    }

    /// Submits one feed burst; `true` while the feed has more to give
    /// (so the RPC poll stays non-blocking).
    fn pump_feed(&mut self) -> bool {
        if self.feed.is_empty() {
            return false;
        }
        if self.feed_pos >= self.feed.len() {
            if !self.feed_loop {
                return false;
            }
            self.feed_pos = 0;
        }
        let end = (self.feed_pos + FEED_BURST).min(self.feed.len());
        for i in self.feed_pos..end {
            self.feed_clock_us += 25;
            self.engine.submit(&self.feed[i], self.feed_clock_us);
            self.feed_submitted += 1;
        }
        self.feed_pos = end;
        self.publish_ops();
        self.feed_loop || self.feed_pos < self.feed.len()
    }

    /// Handles one RPC; mutations open a coalescing window over the
    /// queue. Returns `true` if a `Shutdown` was drained mid-batch.
    fn handle_rpc(
        &mut self,
        req: BusRequest,
        reply: mpsc::Sender<BusReply>,
        rx: &mpsc::Receiver<Ctl>,
    ) -> bool {
        match req {
            BusRequest::Ping => {
                let _ = reply.send(BusReply::Pong);
                false
            }
            BusRequest::Snapshot => {
                let _ = reply.send(self.snapshot_reply());
                false
            }
            BusRequest::Stats => {
                let _ = reply.send(BusReply::Stats(self.stats_frame()));
                false
            }
            BusRequest::Shutdown => {
                let _ = reply.send(BusReply::ShuttingDown);
                true
            }
            BusRequest::Subscribe { .. } | BusRequest::Unsubscribe { .. } => {
                self.coalesce_and_apply(req, reply, rx)
            }
        }
    }

    /// Opens the coalescing window: the triggering mutation plus up to
    /// `coalesce_max - 1` more already-queued mutations become one
    /// epoch. Non-mutation RPCs drained along the way are answered
    /// inline (their connections have nothing else in flight, so no
    /// ordering is violated). Returns `true` on a drained `Shutdown`.
    fn coalesce_and_apply(
        &mut self,
        first: BusRequest,
        first_reply: mpsc::Sender<BusReply>,
        rx: &mpsc::Receiver<Ctl>,
    ) -> bool {
        // Validation view: committed ∪ pending batch, so intra-batch
        // conflicts (double-subscribe of one rule) reject up front
        // instead of poisoning the whole epoch.
        let mut view = self.committed.clone();
        let mut batch: Vec<PendingMutation> = Vec::new();
        let mut shutdown = false;

        if let Some(pm) = self.admit_to_batch(first, first_reply, &mut view) {
            batch.push(pm);
        }
        while !shutdown && !batch.is_empty() && batch.len() < self.coalesce_max {
            match rx.try_recv() {
                Ok(Ctl::Rpc {
                    req: req @ (BusRequest::Subscribe { .. } | BusRequest::Unsubscribe { .. }),
                    reply,
                }) => {
                    if let Some(pm) = self.admit_to_batch(req, reply, &mut view) {
                        batch.push(pm);
                    }
                }
                Ok(Ctl::Rpc { req, reply }) => {
                    // Inline: Ping/Snapshot/Stats answered against the
                    // pre-epoch state; Shutdown ends the drain.
                    if self.handle_simple(req, reply) {
                        shutdown = true;
                    }
                }
                Ok(Ctl::Inject { packets }) => {
                    for (bytes, now_us) in &packets {
                        self.engine.submit(bytes, *now_us);
                    }
                }
                Ok(Ctl::Shutdown) => shutdown = true,
                Err(_) => break,
            }
        }

        if !batch.is_empty() {
            self.apply_epoch(batch, view);
        }
        shutdown
    }

    /// Non-mutation subset of `handle_rpc`, usable mid-drain. Returns
    /// `true` for `Shutdown`.
    fn handle_simple(&mut self, req: BusRequest, reply: mpsc::Sender<BusReply>) -> bool {
        match req {
            BusRequest::Ping => {
                let _ = reply.send(BusReply::Pong);
                false
            }
            BusRequest::Snapshot => {
                let _ = reply.send(self.snapshot_reply());
                false
            }
            BusRequest::Stats => {
                let _ = reply.send(BusReply::Stats(self.stats_frame()));
                false
            }
            BusRequest::Shutdown => {
                let _ = reply.send(BusReply::ShuttingDown);
                true
            }
            // Unreachable: callers route mutations to the batch path.
            BusRequest::Subscribe { .. } | BusRequest::Unsubscribe { .. } => {
                let _ = reply.send(BusReply::Rejected {
                    kind: RejectKind::Internal,
                    message: "mutation routed past the batch path".into(),
                });
                false
            }
        }
    }

    /// Parses and validates one mutation against the batch view. On
    /// failure the request is rejected immediately and `None` is
    /// returned; on success the view advances and the caller gets the
    /// pending entry.
    fn admit_to_batch(
        &mut self,
        req: BusRequest,
        reply: mpsc::Sender<BusReply>,
        view: &mut Vec<Rule>,
    ) -> Option<PendingMutation> {
        let (texts, is_add) = match req {
            BusRequest::Subscribe { rules } => (rules, true),
            BusRequest::Unsubscribe { rules } => (rules, false),
            _ => return None,
        };
        if texts.is_empty() {
            self.reject(&reply, RejectKind::Parse, "no rules in request");
            return None;
        }
        let mut parsed = Vec::with_capacity(texts.len());
        for text in &texts {
            match parse_rule(text) {
                Ok(rule) => parsed.push(rule),
                Err(e) => {
                    self.reject(&reply, RejectKind::Parse, &format!("{text:?}: {e}"));
                    return None;
                }
            }
        }
        if is_add {
            for rule in &parsed {
                if view.contains(rule) {
                    self.reject(
                        &reply,
                        RejectKind::Compile,
                        &format!("already subscribed: {rule}"),
                    );
                    return None;
                }
            }
            view.extend(parsed.iter().cloned());
            Some(PendingMutation {
                add: parsed,
                remove: Vec::new(),
                reply,
            })
        } else {
            for rule in &parsed {
                if !view.contains(rule) {
                    self.reject(
                        &reply,
                        RejectKind::Compile,
                        &format!("not subscribed: {rule}"),
                    );
                    return None;
                }
            }
            view.retain(|r| !parsed.contains(r));
            Some(PendingMutation {
                add: Vec::new(),
                remove: parsed,
                reply,
            })
        }
    }

    /// Compiles and publishes one epoch for the whole batch. On a
    /// batched failure, falls back to applying each request serially
    /// so one poisonous request cannot reject its epoch-mates.
    fn apply_epoch(&mut self, batch: Vec<PendingMutation>, view: Vec<Rule>) {
        let adds: Vec<Rule> = batch.iter().flat_map(|m| m.add.iter().cloned()).collect();
        let removes: Vec<Rule> = batch
            .iter()
            .flat_map(|m| m.remove.iter().cloned())
            .collect();
        match self.try_update(&adds, &removes) {
            Ok(generation) => {
                self.committed = view;
                self.bus.epochs += 1;
                self.bus.mutations_applied += (adds.len() + removes.len()) as u64;
                if batch.len() > 1 {
                    self.bus.requests_coalesced += batch.len() as u64;
                }
                let coalesced_with = batch.len() as u32;
                for m in batch {
                    let _ = m.reply.send(BusReply::Ack {
                        generation,
                        coalesced_with,
                    });
                }
            }
            Err((kind, message)) if batch.len() == 1 => {
                if let Some(m) = batch.into_iter().next() {
                    self.reject(&m.reply, kind, &message);
                }
            }
            Err(_) => {
                // Serial fallback: per-request epochs against the
                // restored committed state.
                for m in batch {
                    match self.try_update(&m.add, &m.remove) {
                        Ok(generation) => {
                            self.committed.retain(|r| !m.remove.contains(r));
                            self.committed.extend(m.add.iter().cloned());
                            self.bus.epochs += 1;
                            self.bus.mutations_applied += (m.add.len() + m.remove.len()) as u64;
                            let _ = m.reply.send(BusReply::Ack {
                                generation,
                                coalesced_with: 1,
                            });
                        }
                        Err((kind, message)) => self.reject(&m.reply, kind, &message),
                    }
                }
            }
        }
    }

    /// One compile + `apply_update` round trip. Any failure restores
    /// the session to the committed rule set before returning, because
    /// `IncrementalCompiler::update` advances the session *before* the
    /// engine's admission verdict.
    fn try_update(&mut self, adds: &[Rule], removes: &[Rule]) -> Result<u64, (RejectKind, String)> {
        let Some(session) = self.session.as_mut() else {
            return Err((
                RejectKind::Internal,
                "compiler session unavailable (resync failed)".into(),
            ));
        };
        let report = match session.update(adds, removes) {
            Ok(report) => report,
            Err(e) => {
                self.resync();
                return Err((RejectKind::Compile, e.to_string()));
            }
        };
        match self.engine.apply_update(&report) {
            Ok(()) => Ok(self.engine.generation()),
            Err(fault) => {
                let kind = match &fault {
                    EngineFault::Admission(_) => RejectKind::Admission,
                    _ => RejectKind::Update,
                };
                let message = fault.to_string();
                self.resync();
                Err((kind, message))
            }
        }
    }

    /// Rebuilds the compiler session from the committed rule set. The
    /// repo's churn differential proves a fresh session's emission is
    /// bit-identical to the incremental path, so the rebuilt session's
    /// view matches the engine's installed template and future deltas
    /// splice cleanly.
    fn resync(&mut self) {
        self.session = None;
        let mut alphabet = self.base_pool.clone();
        for rule in &self.committed {
            if !alphabet.contains(rule) {
                alphabet.push(rule.clone());
            }
        }
        if let Ok(mut session) =
            IncrementalCompiler::new(self.spec.clone(), &self.options, &alphabet)
        {
            if session.install(&self.committed).is_ok() {
                self.session = Some(session);
            }
        }
    }

    fn reject(&mut self, reply: &mpsc::Sender<BusReply>, kind: RejectKind, message: &str) {
        self.bus.mutations_rejected += 1;
        let _ = reply.send(BusReply::Rejected {
            kind,
            message: message.to_string(),
        });
    }

    fn snapshot_reply(&self) -> BusReply {
        let mut rules: Vec<String> = self.committed.iter().map(|r| r.to_string()).collect();
        rules.sort();
        BusReply::Snapshot {
            generation: self.engine.generation(),
            rules,
        }
    }

    fn stats_frame(&self) -> camus_bus::StatsFrame {
        let spans = self.engine.control_spans();
        let apply = spans.get(SpanKind::ApplyUpdate);
        camus_bus::StatsFrame {
            generation: self.engine.generation(),
            active_rules: self.committed.len() as u64,
            workers: self.shared.ops.lock().map(|o| o.workers).unwrap_or(0),
            packets: self.engine.submitted(),
            epochs: self.bus.epochs,
            mutations_applied: self.bus.mutations_applied,
            mutations_rejected: self.bus.mutations_rejected,
            requests_coalesced: self.bus.requests_coalesced,
            rpcs: self.shared.rpcs.load(Ordering::Relaxed),
            clients: self.shared.clients.load(Ordering::Relaxed),
            uptime_ms: self.shared.started.elapsed().as_millis() as u64,
            apply_ns_total: apply.total_ns,
            apply_count: apply.count,
        }
    }

    /// Publishes the metrics view (cheap: one mutex write, off the
    /// packet path).
    fn publish_ops(&self) {
        if let Ok(mut ops) = self.shared.ops.lock() {
            ops.generation = self.engine.generation();
            ops.packets = self.engine.submitted();
            ops.active_rules = self.committed.len() as u64;
            ops.epochs = self.bus.epochs;
            ops.mutations_applied = self.bus.mutations_applied;
            ops.mutations_rejected = self.bus.mutations_rejected;
            ops.requests_coalesced = self.bus.requests_coalesced;
            ops.feed_packets = self.feed_submitted;
            ops.spans = self.engine.control_spans();
        }
    }

    /// Drain-and-exit: refuse queued RPCs, quiesce, report.
    fn shutdown(mut self, rx: &mpsc::Receiver<Ctl>) -> DaemonReport {
        self.publish_ops();
        // Stop the accept loops and the metrics server first so no new
        // work arrives while draining.
        self.shared.running.store(false, Ordering::Release);
        while let Ok(msg) = rx.try_recv() {
            if let Ctl::Rpc { reply, .. } = msg {
                let _ = reply.send(BusReply::ShuttingDown);
            }
        }
        self.bus.rpcs = self.shared.rpcs.load(Ordering::Relaxed);
        let submitted = self.engine.submitted();
        let (engine, drained) = self.engine.shutdown();
        let mut active_rules: Vec<String> = self.committed.iter().map(|r| r.to_string()).collect();
        active_rules.sort();
        DaemonReport {
            engine,
            clean_quiesce: drained.is_ok(),
            submitted,
            active_rules,
            bus: self.bus,
        }
    }
}

/// Accepts bus connections until the daemon stops; one handler thread
/// per connection.
pub(crate) fn accept_loop(listener: BusListener, tx: mpsc::Sender<Ctl>, shared: Arc<Shared>) {
    while shared.running.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(conn) => {
                let tx = tx.clone();
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    shared.clients.fetch_add(1, Ordering::Relaxed);
                    handle_connection(conn, tx, &shared);
                    shared.clients.fetch_sub(1, Ordering::Relaxed);
                });
            }
            Err(WireError::Io(e)) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

/// One connection: frame-decode requests, forward to the control
/// thread, write the reply back. Strictly one request in flight.
fn handle_connection(mut conn: camus_bus::BusStream, tx: mpsc::Sender<Ctl>, shared: &Shared) {
    loop {
        let payload = match read_frame(&mut conn) {
            Ok(p) => p,
            Err(_) => return, // closed or broken — nothing to answer
        };
        shared.rpcs.fetch_add(1, Ordering::Relaxed);
        let req = match BusRequest::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // Typed decode failure, then hang up: the stream
                // offset can no longer be trusted.
                let _ = write_frame(
                    &mut conn,
                    &BusReply::Rejected {
                        kind: RejectKind::Internal,
                        message: format!("bad frame: {e}"),
                    }
                    .encode(),
                );
                return;
            }
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        let reply = if tx
            .send(Ctl::Rpc {
                req,
                reply: reply_tx,
            })
            .is_ok()
        {
            reply_rx.recv().unwrap_or(BusReply::ShuttingDown)
        } else {
            BusReply::ShuttingDown
        };
        if write_frame(&mut conn, &reply.encode()).is_err() {
            return;
        }
    }
}
