//! Minimal HTTP/1.1 server for the Prometheus `/metrics` endpoint.
//!
//! One thread, nonblocking accepts, one request per connection
//! (`Connection: close`). The exposition body is the existing
//! [`camus_telemetry::render_prometheus`] renderer over the control
//! thread's live [`OpsView`](crate::OpsView) — control-plane spans and
//! submitted-packet counts are available continuously; worker-side
//! histograms only merge in at engine `finish`, so they render as
//! empty families until then (Prometheus treats that as zero, which is
//! honest for a live scrape). Daemon-specific `camusd_*` families are
//! appended after the shared ones.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use camus_telemetry::{render_prometheus, TelemetrySnapshot};

use crate::Shared;

pub(crate) fn serve(listener: TcpListener, shared: Arc<Shared>) {
    while shared.running.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((conn, _)) => handle(conn, &shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

fn handle(mut conn: std::net::TcpStream, shared: &Shared) {
    let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
    // Read the request head (we only need the request line; scrapers
    // send no body).
    let mut buf = [0u8; 2048];
    let mut head = Vec::new();
    loop {
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request_line = head.split(|&b| b == b'\r').next().unwrap_or(b"");
    let path = request_line
        .split(|&b| b == b' ')
        .nth(1)
        .unwrap_or(b"")
        .to_vec();

    let (status, body) = match path.as_slice() {
        b"/metrics" => ("200 OK", render(shared)),
        b"/healthz" => ("200 OK", "ok\n".to_string()),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = conn.write_all(response.as_bytes());
}

/// Builds the full exposition text from the live ops view.
fn render(shared: &Shared) -> String {
    let ops = match shared.ops.lock() {
        Ok(guard) => guard.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    };
    let mut snap = TelemetrySnapshot::new(ops.workers as usize);
    snap.packets = ops.packets;
    snap.spans = ops.spans.clone();
    let mut body = render_prometheus(&snap);

    let uptime = shared.started.elapsed().as_secs_f64();
    let gauge = |out: &mut String, name: &str, help: &str, value: f64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
        ));
    };
    let counter = |out: &mut String, name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    };
    counter(
        &mut body,
        "camusd_bus_rpcs_total",
        "RPCs served on the control bus.",
        shared.rpcs.load(Ordering::Relaxed),
    );
    gauge(
        &mut body,
        "camusd_bus_clients",
        "Bus clients currently connected.",
        shared.clients.load(Ordering::Relaxed) as f64,
    );
    counter(
        &mut body,
        "camusd_epochs_total",
        "apply_update epochs published for bus mutations.",
        ops.epochs,
    );
    counter(
        &mut body,
        "camusd_mutations_applied_total",
        "Rules applied by accepted subscribe/unsubscribe RPCs.",
        ops.mutations_applied,
    );
    counter(
        &mut body,
        "camusd_mutations_rejected_total",
        "Subscribe/unsubscribe RPCs rejected (parse, compile, admission, update).",
        ops.mutations_rejected,
    );
    counter(
        &mut body,
        "camusd_mutations_coalesced_total",
        "Mutation RPCs that shared their epoch with at least one other request.",
        ops.requests_coalesced,
    );
    counter(
        &mut body,
        "camusd_feed_packets_total",
        "Packets submitted by the internal replay feed.",
        ops.feed_packets,
    );
    gauge(
        &mut body,
        "camusd_active_subscriptions",
        "Currently installed subscription rules.",
        ops.active_rules as f64,
    );
    gauge(
        &mut body,
        "camusd_generation",
        "Published RCU pipeline generation.",
        ops.generation as f64,
    );
    gauge(
        &mut body,
        "camusd_uptime_seconds",
        "Seconds since the daemon started.",
        uptime,
    );
    body
}
