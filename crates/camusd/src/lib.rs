//! `camusd` — the Camus service shell.
//!
//! Everything the rest of the workspace ships as a library — the
//! incremental compiler, the RCU update plane, admission control,
//! telemetry — becomes an operable daemon here: a long-running engine
//! host serving typed RPCs on a Unix/TCP control bus
//! ([`camus_bus`]), live Prometheus metrics over HTTP, and a
//! SIGTERM-clean shutdown that drains every in-flight batch through
//! `Engine::quiesce` before reporting an exact packet ledger.
//!
//! The daemon is **library-first**: [`Daemon::start`] runs the whole
//! service in-process so integration tests and benches drive real
//! sockets against a real engine without fork/exec; the `camusd`
//! binary is a thin flag-parsing shell over it.
//!
//! Concurrency model (DESIGN.md §17): one *control thread* owns the
//! engine and the compiler session. Per-connection handler threads
//! decode frames and forward requests over an mpsc channel; the
//! control thread alternates between pumping the (optional) internal
//! ITCH feed into the engine and draining RPCs. Pending `Subscribe`/
//! `Unsubscribe` requests are **coalesced**: up to
//! [`DaemonConfig::coalesce_max`] of them compile into a single
//! `apply_update` epoch, and every request in the batch is acked with
//! the shared generation plus how many requests rode it. Rejections
//! (parse, compile, ASIC admission, update plane) are per-request and
//! leave the running pipeline untouched.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod control;
mod metrics;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use camus_bus::{BusAddr, BusListener, WireError};
use camus_core::{CompilerOptions, IncrementalCompiler};
use camus_engine::{shard, Engine, EngineConfig, EngineReport};
use camus_lang::{ast::Rule, parse_spec, Spec};
use camus_telemetry::SpanSet;
use camus_workload::{bench_feed, generate_itch_subscriptions, ItchSubsConfig};

pub use control::Ctl;

/// Everything needed to start a daemon. The compiler spec/options and
/// the subscription pool are explicit so tests can run non-ITCH specs;
/// [`DaemonConfig::itch`] builds the standard ITCH setup.
pub struct DaemonConfig {
    /// Protocol spec the compiler session is built over.
    pub spec: Spec,
    /// Compiler options (encap, heuristic, ASIC model).
    pub options: CompilerOptions,
    /// Alphabet pool: the session's value alphabet is resolved from
    /// these rules, so later `Subscribe`s of pool rules take the fast
    /// delta path. Out-of-pool rules still work via full rebuild.
    pub pool: Vec<Rule>,
    /// How many pool rules to install at startup.
    pub initial: usize,
    /// Engine configuration (workers, admission model, telemetry…).
    pub engine: EngineConfig,
    /// Bus listener addresses (at least one).
    pub bus: Vec<BusAddr>,
    /// `host:port` for the HTTP `/metrics` endpoint; `None` disables.
    pub metrics: Option<String>,
    /// Max mutation RPCs coalesced into one `apply_update` epoch.
    pub coalesce_max: usize,
    /// Synthesized ITCH feed packets replayed into the engine so RPCs
    /// race a live packet path; `0` = no internal feed.
    pub feed_packets: usize,
    /// Replay the feed in a loop (sustained load) instead of once.
    pub feed_loop: bool,
}

impl DaemonConfig {
    /// The standard setup: ITCH spec, a generated `stock == S ∧
    /// price > P : fwd(H)` pool of `pool_size` rules with the first
    /// `initial` installed, two workers, one ephemeral TCP bus
    /// listener, no feed.
    pub fn itch(initial: usize, pool_size: usize) -> Result<Self, DaemonError> {
        let spec = parse_spec(camus_lang::spec::ITCH_SPEC)
            .map_err(|e| DaemonError::Spec(e.to_string()))?;
        let pool = generate_itch_subscriptions(&ItchSubsConfig {
            subscriptions: pool_size.max(initial),
            ..Default::default()
        });
        Ok(DaemonConfig {
            spec,
            options: CompilerOptions::default(),
            pool,
            initial,
            engine: EngineConfig {
                workers: 2,
                ..Default::default()
            },
            bus: vec![BusAddr::Tcp("127.0.0.1:0".into())],
            metrics: None,
            coalesce_max: 32,
            feed_packets: 0,
            feed_loop: false,
        })
    }
}

/// Why the daemon failed to start.
#[derive(Debug)]
pub enum DaemonError {
    /// The spec failed to parse.
    Spec(String),
    /// The initial pool/install failed to compile.
    Compile(String),
    /// A bus or metrics listener failed to bind.
    Bind(String),
    /// No bus listener address was configured.
    NoBusAddr,
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Spec(e) => write!(f, "spec error: {e}"),
            DaemonError::Compile(e) => write!(f, "initial compile failed: {e}"),
            DaemonError::Bind(e) => write!(f, "listener bind failed: {e}"),
            DaemonError::NoBusAddr => write!(f, "no bus listener address configured"),
        }
    }
}

impl std::error::Error for DaemonError {}

/// Live counters shared between the control thread (writer), the
/// connection handlers (rpcs/clients) and the metrics renderer
/// (reader). One coherent copy behind a mutex — the packet hot path
/// never touches this.
pub(crate) struct Shared {
    pub running: AtomicBool,
    pub clients: AtomicU64,
    pub rpcs: AtomicU64,
    pub started: Instant,
    pub ops: Mutex<OpsView>,
}

/// The control thread's published view of the engine, refreshed after
/// every epoch and feed burst.
#[derive(Clone, Default)]
pub(crate) struct OpsView {
    pub generation: u64,
    pub packets: u64,
    pub active_rules: u64,
    pub epochs: u64,
    pub mutations_applied: u64,
    pub mutations_rejected: u64,
    pub requests_coalesced: u64,
    pub workers: u64,
    pub feed_packets: u64,
    pub spans: SpanSet,
}

/// Bus-side counters carried into the final report.
#[derive(Debug, Clone, Copy, Default)]
pub struct BusCounters {
    /// Total RPCs served.
    pub rpcs: u64,
    /// `apply_update` epochs published on behalf of bus mutations.
    pub epochs: u64,
    /// Rules applied by accepted mutations.
    pub mutations_applied: u64,
    /// Mutation RPCs rejected.
    pub mutations_rejected: u64,
    /// Mutation RPCs that shared an epoch with at least one other.
    pub requests_coalesced: u64,
}

/// What `join` returns after shutdown.
#[derive(Debug)]
pub struct DaemonReport {
    /// The engine's final report (exact ledger, decisions, telemetry).
    pub engine: EngineReport,
    /// Whether the final quiesce drained cleanly.
    pub clean_quiesce: bool,
    /// Packets submitted over the daemon's lifetime.
    pub submitted: u64,
    /// The installed rule set at shutdown, printed form, sorted.
    pub active_rules: Vec<String>,
    /// Bus-side counters.
    pub bus: BusCounters,
}

impl DaemonReport {
    /// The zero-loss ledger: every submitted packet either got a
    /// decision or is accounted quarantined, and the drain was clean.
    pub fn zero_loss(&self) -> bool {
        self.clean_quiesce
            && self.engine.error.is_none()
            && self.submitted == self.engine.stats.packets + self.engine.quarantined.len() as u64
    }
}

/// A running daemon. Dropping the handle does **not** stop the daemon;
/// call [`Daemon::begin_shutdown`] + [`Daemon::join`].
pub struct Daemon {
    ctl_tx: mpsc::Sender<Ctl>,
    bus_addrs: Vec<BusAddr>,
    metrics_addr: Option<String>,
    shared: Arc<Shared>,
    control: Option<std::thread::JoinHandle<DaemonReport>>,
}

impl Daemon {
    /// Compiles the initial rule set, binds every listener, starts the
    /// engine and all service threads.
    pub fn start(cfg: DaemonConfig) -> Result<Daemon, DaemonError> {
        if cfg.bus.is_empty() {
            return Err(DaemonError::NoBusAddr);
        }

        // Compile the initial program.
        let mut session = IncrementalCompiler::new(cfg.spec.clone(), &cfg.options, &cfg.pool)
            .map_err(|e| DaemonError::Compile(e.to_string()))?;
        let initial: Vec<Rule> = cfg.pool.iter().take(cfg.initial).cloned().collect();
        let install = session
            .install(&initial)
            .map_err(|e| DaemonError::Compile(e.to_string()))?;

        // Bind all listeners before starting the engine, so a bad
        // address fails fast with nothing to unwind.
        let mut listeners = Vec::new();
        let mut bus_addrs = Vec::new();
        for addr in &cfg.bus {
            let l = BusListener::bind(addr).map_err(|e| DaemonError::Bind(e.to_string()))?;
            let local = l
                .local_addr()
                .map_err(|e| DaemonError::Bind(e.to_string()))?;
            l.set_nonblocking(true)
                .map_err(|e| DaemonError::Bind(e.to_string()))?;
            bus_addrs.push(local);
            listeners.push(l);
        }
        let metrics_listener = match &cfg.metrics {
            Some(hostport) => {
                let l = std::net::TcpListener::bind(hostport.as_str())
                    .map_err(|e| DaemonError::Bind(e.to_string()))?;
                l.set_nonblocking(true)
                    .map_err(|e| DaemonError::Bind(e.to_string()))?;
                Some(l)
            }
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(
                l.local_addr()
                    .map_err(|e| DaemonError::Bind(e.to_string()))?
                    .to_string(),
            ),
            None => None,
        };

        let shared = Arc::new(Shared {
            running: AtomicBool::new(true),
            clients: AtomicU64::new(0),
            rpcs: AtomicU64::new(0),
            started: Instant::now(),
            ops: Mutex::new(OpsView {
                active_rules: initial.len() as u64,
                workers: cfg.engine.workers as u64,
                ..Default::default()
            }),
        });

        let engine = Engine::start(&install.pipeline, &cfg.engine, shard::itch_symbol_shard());

        let feed = if cfg.feed_packets > 0 {
            bench_feed(cfg.feed_packets)
                .into_iter()
                .map(|p| p.bytes)
                .collect()
        } else {
            Vec::new()
        };

        let (ctl_tx, ctl_rx) = mpsc::channel();

        // Accept loops: one thread per bus listener, plus metrics.
        for listener in listeners {
            let tx = ctl_tx.clone();
            let sh = Arc::clone(&shared);
            std::thread::spawn(move || control::accept_loop(listener, tx, sh));
        }
        if let Some(l) = metrics_listener {
            let sh = Arc::clone(&shared);
            std::thread::spawn(move || metrics::serve(l, sh));
        }

        let ctl = control::ControlState::new(
            engine,
            session,
            initial,
            cfg.pool,
            cfg.spec,
            cfg.options,
            cfg.coalesce_max.max(1),
            feed,
            cfg.feed_loop,
            Arc::clone(&shared),
        );
        let control = std::thread::Builder::new()
            .name("camusd-control".into())
            .spawn(move || ctl.run(ctl_rx))
            .map_err(|e| DaemonError::Bind(e.to_string()))?;

        Ok(Daemon {
            ctl_tx,
            bus_addrs,
            metrics_addr,
            shared,
            control: Some(control),
        })
    }

    /// The effective bus addresses (ephemeral ports resolved).
    pub fn bus_addrs(&self) -> &[BusAddr] {
        &self.bus_addrs
    }

    /// The effective `/metrics` address, if enabled.
    pub fn metrics_addr(&self) -> Option<&str> {
        self.metrics_addr.as_deref()
    }

    /// `false` once the control loop has exited.
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::Acquire)
    }

    /// Asks the control loop to quiesce and exit (idempotent). Returns
    /// immediately; use [`Daemon::join`] to wait for the report.
    pub fn begin_shutdown(&self) {
        let _ = self.ctl_tx.send(Ctl::Shutdown);
    }

    /// Test/bench hook: submit raw packets through the control thread,
    /// racing any concurrent RPCs exactly like the internal feed does.
    /// `(bytes, now_us)` pairs; timestamps should be monotonic.
    pub fn inject(&self, packets: Vec<(Vec<u8>, u64)>) -> Result<(), WireError> {
        self.ctl_tx
            .send(Ctl::Inject { packets })
            .map_err(|_| WireError::Closed)
    }

    /// Waits for shutdown and returns the final report. Implies
    /// [`Daemon::begin_shutdown`]. Panics only if the control thread
    /// itself panicked — engine faults are *reported*, not thrown, so
    /// that indicates a daemon bug, not an operational failure.
    pub fn join(mut self) -> DaemonReport {
        self.begin_shutdown();
        match self.control.take().map(|h| h.join()) {
            Some(Ok(report)) => report,
            _ => panic!("camusd control thread panicked"),
        }
    }
}
