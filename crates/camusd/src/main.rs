//! `camusd` binary: flag parsing, signal handling, and the exit
//! ledger, wrapped around [`camusd::Daemon`]. See README "Running
//! camusd" for the ops walkthrough.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

use camus_bus::BusAddr;
use camus_engine::EngineConfig;
use camusd::{Daemon, DaemonConfig};

/// SIGTERM/SIGINT → a flag the main loop polls. Raw `signal(2)` via
/// the same extern-"C" idiom the engine uses for `sched_setaffinity`:
/// the store is async-signal-safe, and the handler does nothing else.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::AtomicBool;
    pub static STOP: AtomicBool = AtomicBool::new(false);
    pub fn install() {}
}

struct Flags {
    bus: Vec<BusAddr>,
    metrics: Option<String>,
    subs: usize,
    pool: usize,
    workers: usize,
    coalesce: usize,
    feed_packets: usize,
    feed_loop: bool,
    admission: bool,
}

const USAGE: &str = "\
camusd — Camus packet-subscription daemon

USAGE:
    camusd [--bus ADDR]... [--metrics HOST:PORT] [--subs N] [--pool N]
           [--workers N] [--coalesce N] [--feed-packets N] [--feed-loop]
           [--no-admission]

OPTIONS:
    --bus ADDR          bus listener, unix:PATH or tcp:HOST:PORT
                        (repeatable; default unix:/tmp/camusd.sock)
    --metrics H:P       serve Prometheus /metrics here (port 0 = ephemeral)
    --subs N            initial ITCH subscriptions to install [64]
    --pool N            alphabet pool size (>= subs) [2*subs]
    --workers N         engine worker threads [2]
    --coalesce N        max mutation RPCs per apply_update epoch [32]
    --feed-packets N    synthesize and replay N ITCH feed packets [0]
    --feed-loop         replay the feed forever (sustained load)
    --no-admission      disable ASIC admission control
";

fn parse_flags() -> Result<Flags, String> {
    let mut flags = Flags {
        bus: Vec::new(),
        metrics: None,
        subs: 64,
        pool: 0,
        workers: 2,
        coalesce: 32,
        feed_packets: 0,
        feed_loop: false,
        admission: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "--bus" => flags.bus.push(BusAddr::parse(&value("--bus")?)?),
            "--metrics" => flags.metrics = Some(value("--metrics")?),
            "--subs" => flags.subs = parse_num(&value("--subs")?)?,
            "--pool" => flags.pool = parse_num(&value("--pool")?)?,
            "--workers" => flags.workers = parse_num(&value("--workers")?)?,
            "--coalesce" => flags.coalesce = parse_num(&value("--coalesce")?)?,
            "--feed-packets" => flags.feed_packets = parse_num(&value("--feed-packets")?)?,
            "--feed-loop" => flags.feed_loop = true,
            "--no-admission" => flags.admission = false,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if flags.bus.is_empty() {
        flags.bus.push(BusAddr::Unix("/tmp/camusd.sock".into()));
    }
    if flags.pool == 0 {
        flags.pool = flags.subs * 2;
    }
    Ok(flags)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse::<usize>().map_err(|_| format!("not a number: {s}"))
}

fn main() -> ExitCode {
    let flags = match parse_flags() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("camusd: {e}");
            return ExitCode::from(2);
        }
    };

    let mut cfg = match DaemonConfig::itch(flags.subs, flags.pool) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("camusd: {e}");
            return ExitCode::from(2);
        }
    };
    cfg.bus = flags.bus;
    cfg.metrics = flags.metrics;
    cfg.coalesce_max = flags.coalesce;
    cfg.feed_packets = flags.feed_packets;
    cfg.feed_loop = flags.feed_loop;
    cfg.engine = EngineConfig {
        workers: flags.workers,
        admission: if flags.admission {
            cfg.engine.admission.clone()
        } else {
            None
        },
        ..cfg.engine
    };

    sig::install();

    let daemon = match Daemon::start(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("camusd: {e}");
            return ExitCode::from(2);
        }
    };
    for addr in daemon.bus_addrs() {
        println!("camusd: bus on {addr}");
    }
    if let Some(addr) = daemon.metrics_addr() {
        println!("camusd: metrics on http://{addr}/metrics");
    }
    println!(
        "camusd: serving {} initial subscriptions, pid {}",
        flags.subs,
        std::process::id()
    );

    while !sig::STOP.load(Ordering::SeqCst) && daemon.is_running() {
        std::thread::sleep(Duration::from_millis(50));
    }
    if sig::STOP.load(Ordering::SeqCst) {
        println!("camusd: signal received, quiescing");
    }

    let report = daemon.join();
    let zero_loss = report.zero_loss();
    println!(
        "camusd: quiesced clean={} submitted={} decided={} quarantined={} epochs={} \
         mutations={} rejected={} coalesced={} rpcs={} rules={} zero_loss={}",
        report.clean_quiesce,
        report.submitted,
        report.engine.stats.packets,
        report.engine.quarantined.len(),
        report.bus.epochs,
        report.bus.mutations_applied,
        report.bus.mutations_rejected,
        report.bus.requests_coalesced,
        report.bus.rpcs,
        report.active_rules.len(),
        zero_loss,
    );
    if zero_loss {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
