//! Deterministic fault-injection soak: the engine is driven through a
//! seeded [`FaultPlan`] — truncated frames, single-bit flips, scripted
//! worker panics and deaths, and a capacity-exceeding update — and must
//! come out with:
//!
//! * **zero loss, zero duplication** — every submitted packet is either
//!   decided exactly once or listed (exactly once) in the quarantine;
//! * **oracle identity** — every non-quarantined decision is
//!   bit-identical to a sequential executor run over the *same mutated
//!   trace* (rules are stateless, so per-packet decisions are
//!   independent and quarantine holes don't shift the oracle);
//! * **typed corruption** — wire corruption surfaces as per-reason drop
//!   counters, never as an error or a dead worker;
//! * **transactional rejection** — the capacity bomb is refused by
//!   admission control with zero observable state change: no
//!   generation bump, and forwarding continues under the old rules.
//!
//! Everything is a pure function of the seeds, so a failure reproduces.

use std::collections::HashSet;
use std::sync::Arc;

use camus_core::{Compiler, CompilerOptions};
use camus_engine::{shard, Engine, EngineConfig, EngineFault, FaultInjection, ShardFn};
use camus_lang::parse_spec;
use camus_pipeline::resources::place_chain;
use camus_pipeline::{AsicModel, Pipeline};
use camus_workload::itch_subs::stock_symbol;
use camus_workload::{capacity_bomb, FaultPlan, FaultPlanConfig, ItchSubsConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A raw ITCH add-order message (the `Raw` encapsulation): msg_type,
/// locate/tracking/timestamp, order_ref, side, shares, stock, price.
fn packet(symbol: &str, shares: u32, price: u32) -> Vec<u8> {
    let mut m = vec![b'A'];
    m.extend_from_slice(&[0; 10]);
    m.extend_from_slice(&[0; 8]);
    m.push(b'B');
    m.extend_from_slice(&shares.to_be_bytes());
    let mut stock = [b' '; 8];
    for (i, c) in symbol.bytes().take(8).enumerate() {
        stock[i] = c;
    }
    m.extend_from_slice(&stock);
    m.extend_from_slice(&price.to_be_bytes());
    m
}

/// Shards by the stock field — *totally*: a frame truncated before the
/// stock field still gets a (constant) shard instead of a panic, since
/// the fault plan feeds the engine corrupted bytes on purpose.
fn total_stock_shard() -> ShardFn {
    Arc::new(|p: &[u8]| shard::mix64(shard::fnv1a(p.get(24..32).unwrap_or(&[]))))
}

fn itch_cfg() -> ItchSubsConfig {
    ItchSubsConfig {
        subscriptions: 12,
        symbols: 8,
        price_range: 500,
        hosts: 16,
        ..Default::default()
    }
}

fn compiled_pipeline(cfg: &ItchSubsConfig) -> Pipeline {
    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::raw()).unwrap();
    let rules = camus_workload::generate_itch_subscriptions(cfg);
    compiler.compile(&rules).unwrap().pipeline
}

/// Random packets over the workload's symbol/price universe.
fn random_packets(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let sym = stock_symbol(rng.gen_range(0..8));
            packet(&sym, 1, rng.gen_range(0..600) as u32)
        })
        .collect()
}

/// The soak proper: corrupted wire + scripted panics + a scripted
/// worker death, at 1, 2 and 8 workers. Non-quarantined decisions must
/// be bit-identical to the sequential oracle; counters must reconcile
/// exactly. PR CI runs the single historical seed; the nightly
/// workflow widens it via `CAMUS_SOAK_SEEDS` (each seed derives a
/// fresh trace + fault plan).
#[test]
fn fault_soak_recovers_and_matches_oracle() {
    for seed in camus_workload::soak_seeds(&[0x50AC]) {
        run_fault_soak(seed);
    }
}

fn run_fault_soak(seed: u64) {
    let pipeline = compiled_pipeline(&itch_cfg());
    // The trace seed is derived so the default plan seed (0x50AC)
    // reproduces the historical 0xFA11 trace exactly.
    let clean = random_packets(600, 0xFA11 ^ seed ^ 0x50AC);
    let plan = FaultPlan::generate(
        &clean,
        &FaultPlanConfig {
            seed,
            truncate_fraction: 0.05,
            bitflip_fraction: 0.05,
            panics: 2,
            deaths: 1,
            stalls: 0,
        },
    );
    assert!(!plan.mutations.is_empty(), "plan must corrupt something");

    // Oracle: the sequential executor over the same mutated trace.
    // Stateless rules make each packet's decision independent, so the
    // oracle stays exact for non-quarantined packets.
    let mut oracle_pipe = pipeline.clone();
    let oracle: Vec<_> = plan
        .packets
        .iter()
        .map(|p| {
            oracle_pipe
                .process(p, 0)
                .expect("corruption is a typed drop, not an error")
        })
        .collect();

    for workers in [1usize, 2, 8] {
        let cfg = EngineConfig {
            workers,
            batch_packets: 8,
            record_decisions: true,
            faults: FaultInjection {
                panic_seqs: Arc::new(plan.panic_seqs.clone()),
                die_seqs: Arc::new(plan.die_seqs.clone()),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, total_stock_shard());
        for p in &plan.packets {
            engine.submit(p, 0);
        }
        let submitted = engine.submitted();
        let report = engine.finish();
        assert!(
            report.error.is_none(),
            "workers={workers}: {:?}",
            report.error
        );

        // Zero loss, zero duplication.
        let quarantined: HashSet<u64> = report.quarantined.iter().copied().collect();
        assert_eq!(
            quarantined.len(),
            report.quarantined.len(),
            "workers={workers}: duplicate quarantine entries"
        );
        assert_eq!(
            report.decisions.len() as u64 + quarantined.len() as u64,
            submitted,
            "workers={workers}: packets lost or duplicated"
        );

        // Every scripted fault landed, and only whole batches went.
        for s in plan.panic_seqs.iter().chain(&plan.die_seqs) {
            assert!(
                quarantined.contains(s),
                "workers={workers}: scripted fault seq {s} not quarantined"
            );
        }
        // Several scripted seqs can share one batch, so the counts are
        // bounded, not exact.
        assert!(
            (1..=plan.panic_seqs.len() as u64).contains(&report.faults.panics_caught),
            "workers={workers}: {:?}",
            report.faults
        );
        assert!(
            (1..=plan.die_seqs.len() as u64).contains(&report.faults.worker_deaths),
            "workers={workers}: {:?}",
            report.faults
        );
        // A death near the trace tail may only be discovered during
        // `finish`, which harvests (exact quarantine) without
        // respawning — so respawns is bounded by deaths, not equal.
        assert!(report.faults.respawns <= report.faults.worker_deaths);
        assert_eq!(report.faults.packets_quarantined, quarantined.len() as u64);

        // Oracle identity for every surviving packet. Decisions are in
        // submission order with quarantined seqs absent — a merge walk
        // re-aligns them.
        let mut di = 0usize;
        let mut malformed_expected = 0u64;
        for (seq, want) in oracle.iter().enumerate() {
            if quarantined.contains(&(seq as u64)) {
                continue;
            }
            assert_eq!(
                &report.decisions[di], want,
                "workers={workers}: packet {seq} diverged from the oracle"
            );
            if want.drop_reason.is_some() {
                malformed_expected += 1;
            }
            di += 1;
        }
        assert_eq!(di, report.decisions.len());

        // Counters reconcile exactly.
        let s = &report.stats;
        assert_eq!(s.packets, submitted - quarantined.len() as u64);
        assert_eq!(s.packets, s.forwarded_packets + s.dropped_packets);
        assert_eq!(s.malformed_packets(), malformed_expected);
        assert!(
            s.malformed_packets() > 0,
            "workers={workers}: corruption never reached the parser"
        );
    }
}

/// Admission control under fire: a capacity bomb (a subscription set
/// compiled to blow past the configured ASIC budget) is pushed at a
/// live engine mid-trace. The update must be rejected as
/// [`EngineFault::Admission`] with zero observable state change —
/// forwarding before and after the rejected update is bit-identical to
/// the *original* rules, and no generation is ever published.
#[test]
fn capacity_bomb_is_rejected_with_zero_observable_state_change() {
    let cfg = itch_cfg();
    let pipeline = compiled_pipeline(&cfg);

    // Size the admission model around the seed program: the smallest
    // power-of-two per-stage budget that fits it. The bomb then has to
    // out-grow the budget, not our guess.
    let mut per_stage = 1usize;
    let model = loop {
        let candidate = AsicModel {
            stages: 4,
            sram_entries_per_stage: per_stage,
            tcam_entries_per_stage: per_stage,
            ..AsicModel::tofino32()
        };
        if place_chain(&pipeline.tables, &candidate).failure.is_none() {
            break candidate;
        }
        per_stage *= 2;
        assert!(per_stage < 1 << 20, "seed program never fit");
    };
    let budget = model.stages * model.sram_entries_per_stage;

    // The bomb: enough subscriptions to exceed the whole budget.
    let bomb = capacity_bomb(&cfg, budget, 0xB0B);
    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::raw()).unwrap();
    let bomb_pipeline = compiler.compile(&bomb).unwrap().pipeline;
    assert!(
        place_chain(&bomb_pipeline.tables, &model).failure.is_some(),
        "bomb unexpectedly fits the admission model"
    );

    let trace = random_packets(200, 0xB0B2);
    let engine_cfg = EngineConfig {
        workers: 2,
        batch_packets: 8,
        record_decisions: true,
        admission: Some(model),
        ..Default::default()
    };
    let mut engine = Engine::start(&pipeline, &engine_cfg, total_stock_shard());
    for p in &trace[..100] {
        engine.submit(p, 0);
    }
    engine.quiesce().unwrap();

    let err = engine.install_pipeline(&bomb_pipeline).unwrap_err();
    let EngineFault::Admission(adm) = &err else {
        panic!("expected Admission rejection, got {err}");
    };
    assert!(adm.needed > adm.available, "{adm:?}");

    for p in &trace[100..] {
        engine.submit(p, 0);
    }
    let report = engine.finish();
    assert!(report.error.is_none(), "{:?}", report.error);
    assert_eq!(report.updates.published, 0, "rejected update was published");
    assert_eq!(report.faults.updates_rejected, 1);
    assert!(report.quarantined.is_empty());

    // Forwarding throughout — including after the rejection — is
    // bit-identical to the original rules.
    let mut oracle_pipe = pipeline.clone();
    assert_eq!(report.decisions.len(), trace.len());
    for (i, p) in trace.iter().enumerate() {
        let want = oracle_pipe.process(p, 0).unwrap();
        assert_eq!(report.decisions[i], want, "packet {i}");
    }
}

/// The supervisor and the parser's total path compose: a trace that is
/// *mostly* garbage (every flavour of truncation) plus scripted panics
/// still yields a fully reconciled report at every worker count.
#[test]
fn garbage_heavy_trace_reconciles_at_every_worker_count() {
    let pipeline = compiled_pipeline(&itch_cfg());
    let clean = random_packets(300, 0x6A12);
    let plan = FaultPlan::generate(
        &clean,
        &FaultPlanConfig {
            seed: 0x6A12,
            truncate_fraction: 0.5,
            bitflip_fraction: 0.3,
            panics: 1,
            deaths: 0,
            stalls: 0,
        },
    );
    for workers in [1usize, 2, 8] {
        let cfg = EngineConfig {
            workers,
            batch_packets: 4,
            faults: FaultInjection {
                panic_seqs: Arc::new(plan.panic_seqs.clone()),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, total_stock_shard());
        for p in &plan.packets {
            engine.submit(p, 0);
        }
        let submitted = engine.submitted();
        let report = engine.finish();
        assert!(
            report.error.is_none(),
            "workers={workers}: {:?}",
            report.error
        );
        let s = &report.stats;
        assert_eq!(
            s.packets + report.quarantined.len() as u64,
            submitted,
            "workers={workers}"
        );
        assert_eq!(s.packets, s.forwarded_packets + s.dropped_packets);
        assert!(s.malformed_packets() > 50, "workers={workers}: {s:?}");
    }
}
