//! Live churn through the engine's update plane: rule updates from the
//! incremental compiler are applied to a running multi-core engine
//! mid-trace. Invariants checked here, per worker count:
//!
//! * **zero loss** — every submitted packet produces exactly one
//!   decision, in submission order, across every generation swap;
//! * **post-quiescence identity** — once an update has been published
//!   and the engine has quiesced, decisions are bit-identical to a
//!   sequential executor running the same cumulative rule set;
//! * **no half-applied rule sets** — even without quiescing, every
//!   mid-churn decision matches *some* published generation, never a
//!   mixture;
//! * **state carry-over** — `@query_counter` registers survive both
//!   delta updates and full-rebuild swaps.

use std::sync::Arc;

use camus_core::{Compiler, CompilerOptions, IncrementalCompiler, UpdateReport};
use camus_engine::{shard, Engine, EngineConfig, ShardFn};
use camus_lang::ast::Rule;
use camus_lang::{parse_program, parse_spec};
use camus_pipeline::Pipeline;
use camus_workload::itch_subs::stock_symbol;
use camus_workload::{itch_churn, ChurnConfig, ItchSubsConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A raw ITCH add-order message (the `Raw` encapsulation the
/// incremental-compiler tests use): msg_type, locate/tracking/
/// timestamp, order_ref, side, shares, stock, price.
fn packet(symbol: &str, shares: u32, price: u32) -> Vec<u8> {
    let mut m = vec![b'A'];
    m.extend_from_slice(&[0; 10]);
    m.extend_from_slice(&[0; 8]);
    m.push(b'B');
    m.extend_from_slice(&shares.to_be_bytes());
    let mut stock = [b' '; 8];
    for (i, c) in symbol.bytes().take(8).enumerate() {
        stock[i] = c;
    }
    m.extend_from_slice(&stock);
    m.extend_from_slice(&price.to_be_bytes());
    m
}

/// Shards raw add-order packets by the stock field (bytes 24..32), the
/// same per-symbol affinity `itch_symbol_shard` gives framed feeds.
fn raw_stock_shard() -> ShardFn {
    Arc::new(|p: &[u8]| shard::mix64(shard::fnv1a(&p[24..32])))
}

fn itch_spec() -> camus_lang::spec::Spec {
    parse_spec(camus_lang::spec::ITCH_SPEC).unwrap()
}

fn ports_of(pipe: &mut Pipeline, pkt: &[u8]) -> Vec<u16> {
    pipe.process(pkt, 0)
        .expect("packet parses")
        .ports
        .iter()
        .map(|p| p.0)
        .collect()
}

/// Random packets over the churn workload's symbol/price universe.
fn random_packets(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let sym = stock_symbol(rng.gen_range(0..8));
            packet(&sym, 1, rng.gen_range(0..600) as u32)
        })
        .collect()
}

/// The shared churn workload: an ITCH pool (doubling as the session
/// alphabet) and a 4-step schedule with adds and removals.
fn workload() -> (Vec<Rule>, camus_workload::ChurnSchedule) {
    let itch = ItchSubsConfig {
        symbols: 8,
        price_range: 500,
        hosts: 16,
        ..Default::default()
    };
    let churn = ChurnConfig {
        initial_rules: 12,
        steps: 4,
        adds_per_step: 3,
        removes_per_step: 2,
        seed: 0xE1,
        ..Default::default()
    };
    itch_churn(&itch, &churn)
}

/// Phased churn with quiescence between generations: after each
/// `quiesce` + `apply_update`, the engine's decisions must be
/// bit-identical (as port sets) to a fresh full compile of the
/// cumulative rule set — for 1, 2 and 8 workers.
#[test]
fn churn_decisions_match_sequential_per_phase_for_any_worker_count() {
    let (pool, schedule) = workload();
    let spec = itch_spec();
    let opts = CompilerOptions::raw();
    let full_compiler = Compiler::new(spec.clone(), opts.clone()).unwrap();

    // One packet phase per generation (initial + one per step).
    let phases: Vec<Vec<Vec<u8>>> = (0..=schedule.steps.len())
        .map(|k| random_packets(48, 0xFACE + k as u64))
        .collect();

    // Oracle: a fresh full compile per generation (rules are
    // stateless, so each phase is independent).
    let oracle: Vec<Vec<Vec<u16>>> = phases
        .iter()
        .enumerate()
        .map(|(k, pkts)| {
            let mut pipe = full_compiler
                .compile(&schedule.rules_after(k))
                .unwrap()
                .pipeline;
            pkts.iter().map(|p| ports_of(&mut pipe, p)).collect()
        })
        .collect();

    for workers in [1usize, 2, 8] {
        let mut session = IncrementalCompiler::new(spec.clone(), &opts, &pool).unwrap();
        let initial = session.install(&schedule.initial).unwrap();
        let cfg = EngineConfig {
            workers,
            batch_packets: 8,
            record_decisions: true,
            ..Default::default()
        };
        let mut engine = Engine::start(&initial.pipeline, &cfg, raw_stock_shard());

        let mut now = 0u64;
        for (k, pkts) in phases.iter().enumerate() {
            if k > 0 {
                let step = &schedule.steps[k - 1];
                engine.quiesce().unwrap();
                let report = session.update(&step.add, &step.remove).unwrap();
                engine.apply_update(&report).unwrap();
            }
            for p in pkts {
                now += 1;
                engine.submit(p, now);
            }
        }
        let submitted = engine.submitted();
        let report = engine.finish();
        assert!(
            report.error.is_none(),
            "workers={workers}: {:?}",
            report.error
        );

        // Zero loss: one decision per packet, in submission order.
        assert_eq!(
            report.decisions.len() as u64,
            submitted,
            "workers={workers}"
        );
        assert_eq!(report.updates.published, schedule.steps.len() as u64);

        let mut i = 0;
        for (k, pkts) in phases.iter().enumerate() {
            for (j, _) in pkts.iter().enumerate() {
                let got: Vec<u16> = report.decisions[i].ports.iter().map(|p| p.0).collect();
                assert_eq!(
                    got, oracle[k][j],
                    "workers={workers}, phase {k}, packet {j}"
                );
                i += 1;
            }
        }
    }
}

/// Updates injected mid-trace with **no** quiescing: nothing is
/// dropped, and every decision matches one of the published
/// generations — no packet is ever routed by a half-applied rule set.
/// After the final quiesce, decisions match the final rule set
/// exactly.
#[test]
fn unquiesced_churn_never_shows_a_half_applied_rule_set() {
    let (pool, schedule) = workload();
    let spec = itch_spec();
    let opts = CompilerOptions::raw();
    let full_compiler = Compiler::new(spec.clone(), opts.clone()).unwrap();

    let mut session = IncrementalCompiler::new(spec.clone(), &opts, &pool).unwrap();
    let initial = session.install(&schedule.initial).unwrap();
    let cfg = EngineConfig {
        workers: 4,
        batch_packets: 4,
        record_decisions: true,
        ..Default::default()
    };
    let mut engine = Engine::start(&initial.pipeline, &cfg, raw_stock_shard());

    let churn_pkts = random_packets(160, 0xBEEF);
    let tail_pkts = random_packets(64, 0xCAFE);

    // Interleave: a burst of packets, then an update, with no
    // quiescence anywhere in between.
    let burst = churn_pkts.len() / (schedule.steps.len() + 1);
    let mut now = 0u64;
    let mut fed = 0;
    for step in &schedule.steps {
        for p in &churn_pkts[fed..fed + burst] {
            now += 1;
            engine.submit(p, now);
        }
        fed += burst;
        let report = session.update(&step.add, &step.remove).unwrap();
        engine.apply_update(&report).unwrap();
    }
    for p in &churn_pkts[fed..] {
        now += 1;
        engine.submit(p, now);
    }

    // Quiesce: every packet above is decided, and all workers have
    // seen the final generation by their next batch. The tail must
    // then follow the final rules exactly.
    engine.quiesce().unwrap();
    for p in &tail_pkts {
        now += 1;
        engine.submit(p, now);
    }
    let submitted = engine.submitted();
    let report = engine.finish();
    assert!(report.error.is_none(), "{:?}", report.error);
    assert_eq!(report.decisions.len() as u64, submitted);

    // Per-generation oracles for the churn segment.
    let mut generations: Vec<Pipeline> = (0..=schedule.steps.len())
        .map(|k| {
            full_compiler
                .compile(&schedule.rules_after(k))
                .unwrap()
                .pipeline
        })
        .collect();
    for (i, p) in churn_pkts.iter().enumerate() {
        let got: Vec<u16> = report.decisions[i].ports.iter().map(|p| p.0).collect();
        let candidates: Vec<Vec<u16>> = generations
            .iter_mut()
            .map(|pipe| ports_of(pipe, p))
            .collect();
        assert!(
            candidates.contains(&got),
            "packet {i}: decision {got:?} matches no published generation {candidates:?}"
        );
    }
    let final_oracle = generations.last_mut().unwrap();
    for (j, p) in tail_pkts.iter().enumerate() {
        let got: Vec<u16> = report.decisions[churn_pkts.len() + j]
            .ports
            .iter()
            .map(|p| p.0)
            .collect();
        assert_eq!(ports_of(final_oracle, p), got, "tail packet {j}");
    }
}

/// `@query_counter` state survives updates: a delta update and then a
/// full-rebuild update are applied mid-stream, and the engine's
/// decisions stay bit-identical to a sequential executor whose
/// pipeline is updated through the same `UpdateReport`s at the same
/// packet boundaries. A reset counter would visibly diverge (the
/// threshold rule would stop firing).
#[test]
fn query_counter_state_survives_delta_and_full_rebuild_updates() {
    let spec = itch_spec();
    let opts = CompilerOptions::raw();
    let alphabet = parse_program(
        "stock == GOOGL : fwd(1); my_counter <- incr()\n\
         stock == GOOGL and my_counter > 3 : fwd(100)\n\
         stock == MSFT : fwd(2)\n\
         stock == AAPL : fwd(4)",
    )
    .unwrap();
    let mut session = IncrementalCompiler::new(spec, &opts, &alphabet).unwrap();
    let initial = session.install(&alphabet[..2]).unwrap();

    let cfg = EngineConfig {
        workers: 1,
        batch_packets: 2,
        record_decisions: true,
        ..Default::default()
    };
    let mut engine = Engine::start(&initial.pipeline, &cfg, raw_stock_shard());
    let mut sequential = initial.pipeline.clone();
    let mut seq_decisions = Vec::new();

    // Timestamps stay at 0 so the 100 µs counter window never rolls.
    let feed = |engine: &mut Engine, seq: &mut Pipeline, out: &mut Vec<_>, pkts: &[Vec<u8>]| {
        for p in pkts {
            engine.submit(p, 0);
            out.push(seq.process(p, 0).unwrap());
        }
    };
    let googl: Vec<Vec<u8>> = (0..3).map(|_| packet("GOOGL", 1, 10)).collect();
    feed(&mut engine, &mut sequential, &mut seq_decisions, &googl);

    // Delta update (in-alphabet add): counter must keep its value 3.
    engine.quiesce().unwrap();
    let delta: UpdateReport = session
        .update(&parse_program("stock == MSFT : fwd(2)").unwrap(), &[])
        .unwrap();
    assert!(!delta.full_rebuild, "in-alphabet add should splice");
    delta.apply_to(&mut sequential).unwrap();
    engine.apply_update(&delta).unwrap();
    let phase2: Vec<Vec<u8>> = (0..4)
        .map(|i| {
            if i % 2 == 0 {
                packet("GOOGL", 1, 10)
            } else {
                packet("MSFT", 1, 10)
            }
        })
        .collect();
    feed(&mut engine, &mut sequential, &mut seq_decisions, &phase2);

    // Full rebuild (removal): counter must survive the wholesale swap.
    engine.quiesce().unwrap();
    let rebuild = session
        .update(
            &parse_program("stock == AAPL : fwd(4)").unwrap(),
            &parse_program("stock == MSFT : fwd(2)").unwrap(),
        )
        .unwrap();
    assert!(rebuild.full_rebuild, "removal forces a rebuild");
    rebuild.apply_to(&mut sequential).unwrap();
    engine.apply_update(&rebuild).unwrap();
    let phase3: Vec<Vec<u8>> = (0..3).map(|_| packet("GOOGL", 1, 10)).collect();
    feed(&mut engine, &mut sequential, &mut seq_decisions, &phase3);

    let report = engine.finish();
    assert!(report.error.is_none(), "{:?}", report.error);
    assert_eq!(report.decisions.len(), seq_decisions.len());
    for (i, (got, want)) in report.decisions.iter().zip(&seq_decisions).enumerate() {
        assert_eq!(got, want, "packet {i}");
    }
    assert_eq!(report.updates.delta_updates, 1);
    assert_eq!(report.updates.full_swaps, 1);

    // The threshold rule did fire after the updates — i.e. the counter
    // genuinely carried over instead of restarting from zero.
    let threshold_hits = report
        .decisions
        .iter()
        .filter(|d| d.ports.iter().any(|p| p.0 == 100))
        .count();
    assert!(
        threshold_hits > 0,
        "counter state was lost across the swaps"
    );
}

/// An update whose predicates are outside the session alphabet (a new
/// field constant *and* a never-allocated state slot) takes the
/// `NeedsFullRecompile` route end to end: the report comes back as a
/// full rebuild and the engine applies it as a wholesale swap.
#[test]
fn out_of_alphabet_update_full_swaps_through_the_engine() {
    let spec = itch_spec();
    let opts = CompilerOptions::raw();
    let alphabet = parse_program("stock == GOOGL : fwd(1)").unwrap();
    let mut session = IncrementalCompiler::new(spec.clone(), &opts, &alphabet).unwrap();
    let initial = session.install(&alphabet).unwrap();

    let cfg = EngineConfig {
        workers: 2,
        batch_packets: 4,
        record_decisions: true,
        ..Default::default()
    };
    let mut engine = Engine::start(&initial.pipeline, &cfg, raw_stock_shard());
    engine.submit(&packet("GOOGL", 1, 10), 0);
    engine.submit(&packet("MSFT", 1, 10), 0);
    engine.quiesce().unwrap();

    // `stock == MSFT` is a new predicate and `my_counter` a new state
    // slot — both unknown to the alphabet, so the delta path must
    // refuse and the session must fall back to a full recompile.
    let update = parse_program(
        "stock == MSFT : fwd(2); my_counter <- incr()\n\
         stock == MSFT and my_counter > 1 : fwd(200)",
    )
    .unwrap();
    let report = session.update(&update, &[]).unwrap();
    assert!(report.full_rebuild, "new predicates require a rebuild");
    assert_eq!(report.rules_added, 2);
    engine.apply_update(&report).unwrap();

    for _ in 0..3 {
        engine.submit(&packet("MSFT", 1, 10), 0);
    }
    engine.submit(&packet("GOOGL", 1, 10), 0);
    let out = engine.finish();
    assert!(out.error.is_none(), "{:?}", out.error);
    assert_eq!(out.updates.full_swaps, 1);
    assert_eq!(out.updates.delta_updates, 0);

    let ports: Vec<Vec<u16>> = out
        .decisions
        .iter()
        .map(|d| d.ports.iter().map(|p| p.0).collect())
        .collect();
    // Before: only the GOOGL rule exists. After: MSFT forwards, the
    // second MSFT packet onward trips the new counter threshold, and
    // GOOGL still works.
    assert_eq!(ports[0], vec![1]);
    assert_eq!(ports[1], Vec::<u16>::new());
    assert_eq!(ports[2], vec![2]);
    assert!(ports[3].contains(&2) && ports[4].contains(&2));
    assert!(
        ports[3].contains(&200) || ports[4].contains(&200),
        "new counter threshold never fired: {ports:?}"
    );
    assert_eq!(ports[5], vec![1]);
}
