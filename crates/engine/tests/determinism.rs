//! Multi-core determinism: the sharded engine must produce forwarding
//! decisions **bit-identical** to the sequential executor, for any
//! worker count — including stateful `@query_counter` rules whose
//! register reads feed match keys.
//!
//! The trace is ≥10k single-symbol ITCH packets (symbol sharding keeps
//! each counter's updates on one worker only when every message in a
//! packet shares the packet's shard key — which real ITCH conflation
//! also guarantees per stock). Timestamps increase monotonically so the
//! counters' tumbling windows roll many times mid-trace.

use camus_core::{Compiler, CompilerOptions};
use camus_engine::{run_trace, shard, EngineConfig};
use camus_itch::{build_feed_packet, AddOrder, FeedConfig, ItchMessage, PacketArena, Side};
use camus_lang::{parse_rule, parse_spec};
use camus_pipeline::ForwardDecision;
use camus_workload::itch_subs::stock_symbol;

const SYMBOLS: usize = 8;

/// ITCH add-order spec with one tumbling-window counter per symbol.
fn spec_src() -> String {
    let mut s = String::from(
        r#"
header_type itch_add_order_t {
    fields {
        msg_type: 8;
        stock_locate: 16;
        tracking_number: 16;
        timestamp: 48;
        order_ref: 64;
        buy_sell: 8;
        shares: 32;
        stock: 64;
        price: 32;
    }
}
header itch_add_order_t add_order;

@query_field(add_order.price)
@query_field_exact(add_order.stock)
"#,
    );
    for i in 0..SYMBOLS {
        s.push_str(&format!("@query_counter(c{i}, 700)\n"));
    }
    s
}

/// Per-symbol rules: plain forward, counter increment, and a
/// counter-threshold forward — the paper's Figure 2 shape.
fn rules() -> Vec<camus_lang::ast::Rule> {
    let mut out = Vec::new();
    for i in 0..SYMBOLS {
        let sym = stock_symbol(i);
        out.push(parse_rule(&format!("stock == {sym} : fwd({}); c{i} <- incr()", i + 1)).unwrap());
        out.push(parse_rule(&format!("stock == {sym} and c{i} > 3 : fwd({})", 100 + i)).unwrap());
        out.push(
            parse_rule(&format!(
                "stock == {sym} and price > 5000 : fwd({})",
                200 + i
            ))
            .unwrap(),
        );
    }
    out
}

/// ≥10k single-symbol feed packets, 1–3 add-orders each, strictly
/// increasing timestamps. Inline LCG so the trace is reproducible
/// byte-for-byte across runs.
fn build_trace(packets: usize) -> PacketArena {
    let cfg = FeedConfig::default();
    let mut rng: u64 = 0x243f6a8885a308d3;
    let mut step = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng >> 33
    };
    let mut arena = PacketArena::with_capacity(packets, 160);
    let mut now_us = 0u64;
    for seq in 0..packets {
        let sym = stock_symbol((step() % SYMBOLS as u64) as usize);
        let n_msgs = 1 + (step() % 3) as usize;
        let msgs: Vec<ItchMessage> = (0..n_msgs)
            .map(|_| {
                let side = if step() % 2 == 0 {
                    Side::Buy
                } else {
                    Side::Sell
                };
                let shares = 1 + (step() % 900) as u32;
                let price = 100 + (step() % 9_900) as u32;
                ItchMessage::AddOrder(AddOrder::new(&sym, side, shares, price))
            })
            .collect();
        now_us += 23 + step() % 40; // windows (700 µs) roll every ~16 pkts
        arena.push(&build_feed_packet(&cfg, seq as u64 + 1, &msgs), now_us);
    }
    arena
}

#[test]
fn engine_decisions_identical_to_sequential_for_any_worker_count() {
    let spec = parse_spec(&spec_src()).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();
    let prog = compiler.compile(&rules()).unwrap();

    let trace = build_trace(10_000);

    let mut sequential = prog.pipeline.clone();
    let expected: Vec<ForwardDecision> = trace
        .iter()
        .map(|(p, t)| sequential.process(p, t).unwrap())
        .collect();

    // The trace must actually exercise the stateful threshold rules,
    // otherwise this test proves nothing about register sharding.
    let threshold_hits = expected
        .iter()
        .filter(|d| d.ports.iter().any(|p| (100..200).contains(&p.0)))
        .count();
    assert!(
        threshold_hits > 100,
        "only {threshold_hits} counter-threshold hits"
    );

    for workers in [1usize, 2, 8] {
        let cfg = EngineConfig {
            workers,
            batch_packets: 32,
            record_decisions: true,
            ..Default::default()
        };
        let report = run_trace(
            &prog.pipeline,
            &cfg,
            shard::itch_symbol_shard(),
            trace.iter(),
        );
        assert!(
            report.error.is_none(),
            "workers={workers}: {:?}",
            report.error
        );
        assert_eq!(report.decisions.len(), expected.len(), "workers={workers}");
        for (i, (got, want)) in report.decisions.iter().zip(&expected).enumerate() {
            assert_eq!(got, want, "workers={workers}, packet {i}");
        }
        // Aggregated counters match the sequential run too.
        assert_eq!(report.stats.packets, sequential.exec.stats.packets);
        assert_eq!(report.stats.messages, sequential.exec.stats.messages);
        assert_eq!(
            report.stats.matched_messages, sequential.exec.stats.matched_messages,
            "workers={workers}"
        );
    }
}

#[test]
fn sharding_spreads_symbols_across_workers() {
    // Sanity: with 8 symbols and 8 workers the trace should not land on
    // a single worker (the mixer must spread structured ASCII keys).
    let spec = parse_spec(&spec_src()).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();
    let prog = compiler.compile(&rules()).unwrap();
    let trace = build_trace(1_000);
    let cfg = EngineConfig {
        workers: 8,
        batch_packets: 32,
        ..Default::default()
    };
    let report = run_trace(
        &prog.pipeline,
        &cfg,
        shard::itch_symbol_shard(),
        trace.iter(),
    );
    let busy = report.per_worker.iter().filter(|s| s.packets > 0).count();
    assert!(busy >= 4, "only {busy}/8 workers saw traffic");
}
