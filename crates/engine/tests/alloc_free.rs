//! Proof that the engine's ring data path — submit → SPSC ring →
//! worker batch → recycle ring — is allocation-free in steady state,
//! with telemetry *and* the decision cache switched on.
//!
//! A counting `#[global_allocator]` wraps the system allocator (it
//! counts allocations from every thread, workers included). Warm-up
//! passes grow each pool to its high-water mark: the batch/seq pools,
//! the workers' decision buffers and PHV scratch, the cache slots'
//! port vectors, and the telemetry histograms (fixed-size arrays).
//! After that, replaying the same trace must perform **zero**
//! allocations end to end.
//!
//! The trace is driven in lockstep — one full batch, then a quiesce —
//! so the number of batches in existence is deterministic and the
//! steady state does not depend on scheduler interleaving.
//!
//! This file holds exactly one `#[test]`: the libtest harness runs
//! tests on separate threads but the allocation counter is global, so
//! a sibling test allocating concurrently would corrupt the
//! measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use camus_engine::{Engine, EngineConfig, ShardFn};
use camus_pipeline::parser::{Extract, ParseState, ParserSpec, StateId, Transition};
use camus_pipeline::register::RegisterFile;
use camus_pipeline::{
    ActionOp, Entry, ExecState, Key, MatchKind, MatchValue, MulticastTable, PhvLayout, Pipeline,
    PortId, Table,
};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Multi-message pipeline with a two-table chain, stateless so the
/// decision cache is provably sound and actually arms: count byte +
/// one-byte messages; symbols 1..=4 forward, symbol 1 additionally
/// mirrors to port 99.
fn cacheable_pipeline() -> Pipeline {
    let mut layout = PhvLayout::new();
    let count = layout.add("count", 8);
    let sym = layout.add("sym", 8);
    let _ = count;

    let parser = ParserSpec::new(
        vec![
            ParseState {
                name: "hdr".into(),
                extracts: vec![Extract {
                    dst: count,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: false,
                next: Transition::SelectRemaining { more: StateId(1) },
            },
            ParseState {
                name: "msg".into(),
                extracts: vec![Extract {
                    dst: sym,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: true,
                next: Transition::SelectRemaining { more: StateId(1) },
            },
        ],
        StateId(0),
    );

    let mut filter = Table::new(
        "filter",
        vec![Key {
            field: sym,
            kind: MatchKind::Exact,
            bits: 8,
        }],
        vec![],
    );
    for b in 1u64..=4 {
        filter
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(b)],
                ops: vec![ActionOp::Forward(PortId(b as u16))],
            })
            .unwrap();
    }
    let mut mirror = Table::new(
        "mirror",
        vec![Key {
            field: sym,
            kind: MatchKind::Exact,
            bits: 8,
        }],
        vec![],
    );
    mirror
        .add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(1)],
            ops: vec![ActionOp::Forward(PortId(99))],
        })
        .unwrap();

    Pipeline {
        layout,
        parser,
        tables: vec![filter, mirror],
        mcast: MulticastTable::new(),
        registers: RegisterFile::new(),
        state_bindings: vec![],
        init_fields: vec![],
        exec: ExecState::default(),
    }
}

fn trace(packets: usize) -> Vec<(Vec<u8>, u64)> {
    let mut rng: u64 = 0x9e3779b97f4a7c15;
    let mut step = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng >> 33
    };
    let mut out = Vec::with_capacity(packets);
    let mut now_us = 0u64;
    for _ in 0..packets {
        let msgs = 1 + (step() % 3) as usize;
        let mut pkt = vec![msgs as u8];
        for _ in 0..msgs {
            pkt.push((step() % 6) as u8);
        }
        now_us += 57;
        out.push((pkt, now_us));
    }
    out
}

fn first_byte_shard() -> ShardFn {
    Arc::new(|p: &[u8]| u64::from(p.get(1).copied().unwrap_or(0)))
}

/// One lockstep pass: submit a batch worth of packets, then quiesce so
/// every batch is back in a pool before the next flush.
fn pass(engine: &mut Engine, trace: &[(Vec<u8>, u64)], batch: usize) {
    for chunk in trace.chunks(batch) {
        for (p, t) in chunk {
            engine.submit(p, *t);
        }
        engine.quiesce().unwrap();
    }
}

#[test]
fn ring_and_cache_path_makes_zero_steady_state_allocations() {
    let pipeline = cacheable_pipeline();
    let batch = 64usize;
    let cfg = EngineConfig {
        workers: 2,
        batch_packets: batch,
        queue_batches: 4,
        telemetry: true,
        decision_cache: Some("sym".into()),
        ..Default::default()
    };
    let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
    let packets = trace(512);

    // Warm-up: grow batch pools, seq pools, worker scratch, cache slot
    // port vectors and telemetry buffers to their high-water marks.
    for _ in 0..3 {
        pass(&mut engine, &packets, batch);
    }

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    pass(&mut engine, &packets, batch);
    let after = ALLOC_CALLS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "ring+cache hot path allocated {} time(s) for a {}-packet pass",
        after - before,
        packets.len()
    );

    let report = engine.finish();
    assert!(report.error.is_none(), "{:?}", report.error);
    // The cache was genuinely live during the measurement.
    assert!(report.hotpath.cache_hits > 0, "{:?}", report.hotpath);
    assert_eq!(
        report.hotpath.cache_hits + report.hotpath.cache_misses,
        report.stats.messages
    );
}
