//! Engine-level telemetry integration:
//!
//! * **deterministic counters** — packet and per-table hit/miss totals
//!   in the merged snapshot are identical at 1, 2 and 8 workers
//!   (histograms and batch counts are timing- and sharding-dependent,
//!   so only the trace-deterministic counters are compared);
//! * **snapshot contents** — stage histograms, table counters and
//!   control-plane spans all populated after a run with an update and
//!   a quiescence in the middle;
//! * **opt-in** — telemetry off (the default) reports no snapshot and
//!   compile spans still ride on the compiled program.

use camus_core::{Compiler, CompilerOptions};
use camus_engine::{shard, Engine, EngineConfig, TELEMETRY_SAMPLE_SHIFT};
use camus_lang::{parse_program, parse_spec};
use camus_telemetry::{SpanKind, SNAPSHOT_VERSION};
use camus_workload::bench_feed;
use camus_workload::itch_subs::stock_symbol;

/// 16 symbols over 8 ports, same shape as the line-rate bench.
fn compiled() -> camus_core::CompiledProgram {
    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();
    let src: String = (0..16)
        .map(|i| format!("stock == {} : fwd({})\n", stock_symbol(i), i % 8 + 1))
        .collect();
    compiler.compile(&parse_program(&src).unwrap()).unwrap()
}

fn run(workers: usize, packets: &[Vec<u8>]) -> camus_engine::EngineReport {
    let prog = compiled();
    let cfg = EngineConfig {
        workers,
        telemetry: true,
        ..Default::default()
    };
    let mut engine = Engine::start(&prog.pipeline, &cfg, shard::itch_symbol_shard());
    for p in packets {
        engine.submit(p, 0);
    }
    engine.finish()
}

#[test]
fn deterministic_counters_identical_across_worker_counts() {
    let packets: Vec<Vec<u8>> = bench_feed(2_000).into_iter().map(|p| p.bytes).collect();
    let reports: Vec<_> = [1usize, 2, 8].iter().map(|&w| run(w, &packets)).collect();

    let baseline = reports[0].telemetry.as_ref().unwrap();
    assert!(baseline.packets > 0);
    assert!(!baseline.tables.is_empty());
    assert!(baseline.tables.iter().any(|t| t.hits > 0));

    for report in &reports[1..] {
        let snap = report.telemetry.as_ref().unwrap();
        assert_eq!(snap.packets, baseline.packets, "packet totals");
        assert_eq!(snap.tables, baseline.tables, "per-table hit/miss totals");
        assert_eq!(
            report.stats.dropped_packets, reports[0].stats.dropped_packets,
            "drop totals"
        );
    }
}

#[test]
fn snapshot_reports_stages_tables_and_control_spans() {
    let prog = compiled();
    let packets: Vec<Vec<u8>> = bench_feed(2_000).into_iter().map(|p| p.bytes).collect();
    let cfg = EngineConfig {
        workers: 2,
        telemetry: true,
        ..Default::default()
    };
    let mut engine = Engine::start(&prog.pipeline, &cfg, shard::itch_symbol_shard());
    let (front, back) = packets.split_at(packets.len() / 2);
    for p in front {
        engine.submit(p, 0);
    }
    // A full-swap install plus a drain in mid-trace, so both control
    // spans have something to record.
    engine.install_pipeline(&prog.pipeline).unwrap();
    engine.quiesce().unwrap();
    for p in back {
        engine.submit(p, 0);
    }
    let report = engine.finish();
    let snap = report.telemetry.expect("telemetry enabled");

    assert_eq!(snap.version, SNAPSHOT_VERSION);
    assert_eq!(snap.workers, 2);
    assert_eq!(snap.packets, packets.len() as u64);
    assert_eq!(snap.data.sample_interval(), 1 << TELEMETRY_SAMPLE_SHIFT);

    // Stage histograms: batches always timed, stages sampled.
    assert!(snap.data.batches > 0);
    assert_eq!(snap.data.batch_ns.count(), snap.data.batches);
    assert!(snap.data.sampled_packets > 0);
    assert_eq!(snap.data.parse_ns.count(), snap.data.sampled_packets);
    for h in [
        &snap.data.batch_ns,
        &snap.data.parse_ns,
        &snap.data.match_ns,
    ] {
        let (p50, p99, p999) = (h.percentile(50.0), h.percentile(99.0), h.percentile(99.9));
        assert!(p50 <= p99 && p99 <= p999, "percentiles monotone");
        assert!(p999 <= h.max());
    }

    // Table counters carry pipeline names and every message hit a table.
    assert_eq!(snap.tables.len(), prog.pipeline.tables.len());
    let hits: u64 = snap.tables.iter().map(|t| t.hits).sum();
    let misses: u64 = snap.tables.iter().map(|t| t.misses).sum();
    assert!(hits + misses > 0);

    // Control-plane spans recorded by the mid-trace operations.
    assert_eq!(snap.spans.get(SpanKind::InstallPipeline).count, 1);
    assert_eq!(snap.spans.get(SpanKind::Quiesce).count, 1);
    assert!(snap.spans.get(SpanKind::InstallPipeline).max_ns > 0);
}

#[test]
fn telemetry_is_opt_in_and_compile_spans_ride_the_program() {
    let prog = compiled();
    // Compiler spans live on the program (never in CompileStats, which
    // must stay bit-identical across shard counts).
    for kind in [
        SpanKind::Compile,
        SpanKind::ShardBuild,
        SpanKind::ShardMerge,
        SpanKind::EmitTables,
    ] {
        assert!(
            prog.spans.get(kind).count >= 1,
            "{kind} span missing from compiled program"
        );
    }

    let packets: Vec<Vec<u8>> = bench_feed(200).into_iter().map(|p| p.bytes).collect();
    let cfg = EngineConfig {
        workers: 2,
        ..Default::default()
    };
    let mut engine = Engine::start(&prog.pipeline, &cfg, shard::itch_symbol_shard());
    for p in &packets {
        engine.submit(p, 0);
    }
    let report = engine.finish();
    assert!(report.telemetry.is_none(), "telemetry defaults to off");
    assert_eq!(report.stats.packets, packets.len() as u64);
}
