//! Property tests for the engine's robustness contract: arbitrary
//! bytes pushed through parser → pipeline → engine never panic, and
//! the engine's counters always reconcile
//! (`submitted == decided + quarantined`,
//! `packets == forwarded + dropped_by_reason`).

// Gated off by default: the vendored `proptest` subset is heavier than
// the tier-1 tests. Enable with `cargo test --features proptest`.
#![cfg(feature = "proptest")]

use std::sync::{Arc, OnceLock};

use camus_core::{Compiler, CompilerOptions};
use camus_engine::{shard, Engine, EngineConfig, ShardFn};
use camus_lang::parse_spec;
use camus_pipeline::Pipeline;
use camus_workload::{generate_itch_subscriptions, ItchSubsConfig};
use proptest::prelude::*;

/// One compiled ITCH pipeline shared across cases (compilation is the
/// expensive part; each case clones it).
fn pipeline() -> &'static Pipeline {
    static PIPE: OnceLock<Pipeline> = OnceLock::new();
    PIPE.get_or_init(|| {
        let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
        let compiler = Compiler::new(spec, CompilerOptions::raw()).unwrap();
        let rules = generate_itch_subscriptions(&ItchSubsConfig {
            subscriptions: 10,
            symbols: 8,
            price_range: 500,
            hosts: 16,
            ..Default::default()
        });
        compiler.compile(&rules).unwrap().pipeline
    })
}

/// Total shard function: any byte soup gets a shard, never a panic.
fn total_shard() -> ShardFn {
    Arc::new(|p: &[u8]| shard::mix64(shard::fnv1a(p.get(24..32).unwrap_or(&[]))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup through the full engine: no panic, no
    /// config-class error, and the counters reconcile exactly.
    #[test]
    fn arbitrary_bytes_never_panic_and_counters_reconcile(
        packets in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..40),
        workers in 1usize..4,
        batch in 1usize..8,
    ) {
        let cfg = EngineConfig {
            workers,
            batch_packets: batch,
            record_decisions: true,
            ..Default::default()
        };
        let mut engine = Engine::start(pipeline(), &cfg, total_shard());
        for p in &packets {
            engine.submit(p, 0);
        }
        let submitted = engine.submitted();
        let report = engine.finish();
        // Malformed input is a typed drop, never an error.
        prop_assert!(report.error.is_none(), "{:?}", report.error);
        prop_assert!(report.quarantined.is_empty());
        prop_assert_eq!(report.decisions.len() as u64, submitted);
        let s = &report.stats;
        prop_assert_eq!(s.packets, submitted);
        prop_assert_eq!(s.packets, s.forwarded_packets + s.dropped_packets);
        // Per-reason drop counters agree with the recorded decisions.
        let typed_drops = report
            .decisions
            .iter()
            .filter(|d| d.drop_reason.is_some())
            .count() as u64;
        prop_assert_eq!(s.malformed_packets(), typed_drops);
    }

    /// The same soup through the bare sequential pipeline: total, and
    /// bit-identical to what the engine produced (determinism holds on
    /// garbage too).
    #[test]
    fn engine_matches_sequential_on_garbage(
        packets in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..24),
    ) {
        let mut seq = pipeline().clone();
        let expected: Vec<_> = packets
            .iter()
            .map(|p| seq.process(p, 0).unwrap())
            .collect();
        let cfg = EngineConfig {
            workers: 2,
            batch_packets: 4,
            record_decisions: true,
            ..Default::default()
        };
        let mut engine = Engine::start(pipeline(), &cfg, total_shard());
        for p in &packets {
            engine.submit(p, 0);
        }
        let report = engine.finish();
        prop_assert!(report.error.is_none(), "{:?}", report.error);
        prop_assert_eq!(&report.decisions, &expected);
    }
}
