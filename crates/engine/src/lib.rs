//! # camus-engine — a multi-core sharded forwarding engine
//!
//! Wraps the sequential [`Pipeline`](camus_pipeline::Pipeline) executor
//! with N worker threads (std-only: `std::thread` plus lock-free
//! bounded [SPSC rings](ring)), and shards packets RSS-style on a flow
//! key — by default the ITCH stock symbol
//! ([`shard::itch_symbol_shard`]).
//!
//! Camus's stateful rules (`@query_counter`) are keyed on the stock
//! symbol, so symbol sharding keeps every register slot's updates on
//! exactly one worker and the engine's forwarding decisions are
//! **bit-identical** to running the sequential executor over the same
//! trace (verified by the determinism test). Workers share one
//! immutable compiled program behind an `Arc` and keep their mutable
//! state (registers, counters, decision cache) in a per-worker
//! [`ShardCtx`](camus_pipeline::ShardCtx); each processes its packets
//! in submission order through
//! [`Pipeline::process_batch_shared`](camus_pipeline::Pipeline::process_batch_shared),
//! the allocation-free batch hot path. Batches and their byte arenas
//! are recycled through a return ring, so the steady state allocates
//! nothing per packet on either side of the queue, and hand-off in
//! both directions is two padded atomic words — no locks, no syscalls
//! (see [`ring`] for the memory layout and hangup protocol).
//!
//! Two optional hot-path accelerators ride on top: per-worker [decision
//! caching](camus_pipeline::DecisionCache) keyed on the sharding field
//! ([`EngineConfig::decision_cache`] — hits skip the match chain
//! entirely, RCU generation bumps invalidate for free), and
//! best-effort core pinning ([`EngineConfig::pin_workers`]). Cache and
//! ring counters surface in [`EngineReport::hotpath`] and, when
//! telemetry is on, in the merged [`TelemetrySnapshot`].
//!
//! ## Update plane
//!
//! The engine doubles as the consumer of the incremental compiler's
//! delta channel (§3's "highly dynamic queries"): feed an
//! [`UpdateReport`](camus_core::UpdateReport) to
//! [`Engine::apply_update`] and the next-generation tables are built
//! *off* the packet hot path — spliced into a master template via
//! [`camus_core::apply_delta`] (or swapped wholesale on a
//! `full_rebuild`), then published RCU-style behind an atomic
//! generation counter. Workers poll the counter once per batch and
//! adopt the published pipeline at the batch boundary, carrying their
//! `@query_counter` register state and execution counters over — so
//! every packet is processed by exactly one complete rule-set
//! generation, none is dropped during an update, and stateful windows
//! never reset. [`Engine::quiesce`] drains every in-flight batch,
//! after which forwarding is bit-identical to a fresh full compile of
//! the cumulative rule set (the differential churn tests enforce
//! this).
//!
//! ## Fault tolerance
//!
//! The paper's feasibility argument (§4) is that compiled subscription
//! tables *fit in switch memory*; this engine makes that a runtime
//! invariant rather than an offline observation. Every
//! [`Engine::apply_update`] / [`Engine::install_pipeline`] is charged
//! against the configured [`AsicModel`] (the same
//! [`place_chain`](camus_pipeline::place_chain) arithmetic the offline
//! compiler reports) *before* publication: an over-committing update
//! is rejected with a typed [`EngineFault::Admission`] and **zero
//! observable state change** — no generation bump, no half-spliced
//! tables, entry-for-entry identical state before and after.
//!
//! On the data plane, workers are supervised: each batch runs under
//! `catch_unwind`, a panicking batch is quarantined (its packets get
//! no decisions; counters roll back to the batch boundary) and the
//! worker keeps serving its shard. A worker thread that dies outright
//! is detected at the next send, its unprocessed batches are counted
//! as quarantined, and a replacement is respawned from the published
//! pipeline with [`RegisterFile::carry_from`]-seeded register state.
//! [`Engine::quiesce`] waits on a bounded watchdog and returns a typed
//! [`EngineFault::QuiesceTimeout`] instead of spinning forever on a
//! wedged worker. All of it surfaces in the report as [`FaultStats`]
//! plus the exact quarantined sequence numbers, so zero-loss
//! accounting (`submitted == decided + quarantined`) is checkable.
//!
//! [`RegisterFile::carry_from`]: camus_pipeline::register::RegisterFile::carry_from
//!
//! ```no_run
//! use camus_engine::{shard, Engine, EngineConfig};
//! # fn demo(pipeline: &camus_pipeline::Pipeline, trace: &[(Vec<u8>, u64)]) {
//! let mut engine = Engine::start(pipeline, &EngineConfig::default(),
//!                                shard::itch_symbol_shard());
//! for (bytes, now_us) in trace {
//!     engine.submit(bytes, *now_us);
//! }
//! let report = engine.finish();
//! println!("{} packets, {} matched messages",
//!          report.stats.packets, report.stats.matched_messages);
//! # }
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ring;
pub mod shard;

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use camus_core::{CompileError, UpdateReport};
use camus_pipeline::resources::place_chain;
use camus_pipeline::{
    AdmissionError, AsicModel, DecisionBuf, ExecStats, ForwardDecision, Pipeline, PipelineError,
    ShardCtx, DEFAULT_CACHE_SHIFT,
};
use camus_telemetry::{DataPlaneTelemetry, SpanKind, SpanSet, SpanTimer, TableCounters};

pub use camus_telemetry::TelemetrySnapshot;
pub use shard::ShardFn;

/// Stage-timing sample cadence when [`EngineConfig::telemetry`] is on:
/// every 64th packet gets per-stage clock reads. Chosen so the
/// measured instrumentation overhead stays under the 5 % throughput
/// budget even on single-core hosts, where clock reads are the
/// dominant cost (the linerate bench's A/B row proves it).
pub const TELEMETRY_SAMPLE_SHIFT: u32 = 6;

/// The RCU-style publication slot shared between the control plane
/// and the workers: a monotonically increasing generation counter and
/// the pipeline it corresponds to. The `Release` bump in
/// [`Engine::publish`] paired with the `Acquire` load at each batch
/// boundary guarantees a worker that observes generation `g` also
/// observes the pipeline published with it; batches submitted after
/// `apply_update` returns are always processed at generation ≥ `g`.
struct Published {
    generation: AtomicU64,
    slot: Mutex<Arc<Pipeline>>,
}

impl Published {
    /// Clones the current slot, recovering from a poisoned lock (the
    /// slot is only ever *replaced* under the lock, never left
    /// half-written, so the value is valid even after a panic).
    fn snapshot(&self) -> Arc<Pipeline> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// Update-plane counters, aggregated into the [`EngineReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Pipeline generations published (delta updates + full swaps).
    pub published: u64,
    /// Updates applied by splicing table deltas into the template.
    pub delta_updates: u64,
    /// Updates applied as full pipeline swaps (the
    /// `NeedsFullRecompile` fallback, or [`Engine::install_pipeline`]).
    pub full_swaps: u64,
    /// Generation adoptions performed by workers at batch boundaries
    /// (summed across workers).
    pub adoptions: u64,
    /// Generations a worker skipped over because several were
    /// published between two of its batches — updates deferred to a
    /// batch boundary and coalesced there (summed across workers).
    pub coalesced: u64,
}

/// Fault-plane counters, aggregated into the [`EngineReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Worker panics caught by the per-batch supervisor, plus worker
    /// threads that unwound entirely (unsupervised panics).
    pub panics_caught: u64,
    /// Batches quarantined (panicked under supervision, scripted to
    /// die, or lost inside a dead worker).
    pub batches_quarantined: u64,
    /// Packets inside quarantined batches — these get no forwarding
    /// decision and are listed in [`EngineReport::quarantined`].
    pub packets_quarantined: u64,
    /// Worker threads that stopped serving their shard (scripted
    /// deaths + unsupervised panics).
    pub worker_deaths: u64,
    /// Replacement workers spawned after a death was detected.
    pub respawns: u64,
    /// Control-plane updates rejected by admission control.
    pub updates_rejected: u64,
}

impl FaultStats {
    fn merge(&mut self, other: &FaultStats) {
        self.panics_caught += other.panics_caught;
        self.batches_quarantined += other.batches_quarantined;
        self.packets_quarantined += other.packets_quarantined;
        self.worker_deaths += other.worker_deaths;
        self.respawns += other.respawns;
        self.updates_rejected += other.updates_rejected;
    }
}

/// Deterministic fault-injection hooks, consulted by workers on the
/// batch path. Empty sets (the default) cost one branch per batch.
/// Sequence numbers refer to [`Engine::submit`] order, matching the
/// seqs a [`FaultPlan`](camus_workload) produces.
#[derive(Debug, Clone, Default)]
pub struct FaultInjection {
    /// A batch containing any of these seqs panics before processing.
    /// Under supervision ([`EngineConfig::supervise`]) the batch is
    /// quarantined and the worker survives; unsupervised, the worker
    /// thread unwinds and dies.
    pub panic_seqs: Arc<HashSet<u64>>,
    /// A batch containing any of these seqs makes the worker exit
    /// cleanly without processing it (a scripted crash): the batch is
    /// quarantined and the engine respawns the worker on detection.
    pub die_seqs: Arc<HashSet<u64>>,
    /// A batch containing any of these seqs stalls for
    /// [`FaultInjection::stall_ms`] before processing — the hook the
    /// quiesce watchdog is tested against.
    pub stall_seqs: Arc<HashSet<u64>>,
    /// Stall duration for `stall_seqs`, milliseconds.
    pub stall_ms: u64,
}

impl FaultInjection {
    /// Whether any hook is armed.
    pub fn is_armed(&self) -> bool {
        !self.panic_seqs.is_empty() || !self.die_seqs.is_empty() || !self.stall_seqs.is_empty()
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. Defaults to the machine's available parallelism.
    pub workers: usize,
    /// Packets accumulated per batch before hand-off to a worker.
    pub batch_packets: usize,
    /// Bounded depth (in batches) of each worker's input queue;
    /// [`Engine::submit`] applies backpressure when a worker lags.
    pub queue_batches: usize,
    /// Record every per-packet [`ForwardDecision`] in the report
    /// (needed by the determinism test; costs an allocation per packet,
    /// so leave off when benchmarking throughput).
    pub record_decisions: bool,
    /// Run each batch under `catch_unwind`: a panicking batch is
    /// quarantined and the worker survives. On (the default) this
    /// costs a counter snapshot per batch; off, a panic kills the
    /// worker thread and the engine falls back to respawning it.
    pub supervise: bool,
    /// Bounded wait (milliseconds) for one in-flight batch during
    /// [`Engine::quiesce`] before it gives up with
    /// [`EngineFault::QuiesceTimeout`].
    pub watchdog_ms: u64,
    /// Resource model every update is charged against before
    /// publication ([`EngineFault::Admission`] on over-commit);
    /// `None` disables admission control.
    pub admission: Option<AsicModel>,
    /// Deterministic fault-injection hooks (empty by default).
    pub faults: FaultInjection,
    /// Collect data-plane telemetry (per-shard counters + latency
    /// histograms, sampled at [`TELEMETRY_SAMPLE_SHIFT`]) and attach a
    /// merged [`TelemetrySnapshot`] to the report. Off by default: the
    /// uninstrumented hot path has zero clock reads.
    pub telemetry: bool,
    /// Pin worker `i` to CPU core `i % cores` (Linux
    /// `sched_setaffinity`, best effort — a failed or unsupported pin
    /// leaves the thread floating, and on a single-core host every
    /// worker lands on core 0, which is a no-op). Off by default.
    pub pin_workers: bool,
    /// Arm a per-worker [decision cache](camus_pipeline::DecisionCache)
    /// keyed on the named PHV field — use the same field the shard
    /// function keys on (e.g. `"add_order.stock"`). A cache hit skips
    /// the whole match chain; every published generation invalidates
    /// all caches at the adoption boundary, so cached decisions are
    /// always from the live rule set. Silently disabled when the field
    /// is unknown or the installed program is not provably cacheable
    /// (stateful bindings, register ops, non-parser-sourced keys — see
    /// [`Pipeline::cacheable_on`]). `None` (default) = off.
    pub decision_cache: Option<String>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_packets: 64,
            queue_batches: 8,
            record_decisions: false,
            supervise: true,
            watchdog_ms: 2_000,
            admission: Some(AsicModel::tofino32()),
            faults: FaultInjection::default(),
            telemetry: false,
            pin_workers: false,
            decision_cache: None,
        }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..Default::default()
        }
    }
}

/// A flattened batch of packets: one contiguous byte arena plus
/// per-packet end offsets, so recycling a batch recycles every
/// allocation in it at once.
#[derive(Debug, Default)]
struct Batch {
    seqs: Vec<u64>,
    times: Vec<u64>,
    ends: Vec<usize>,
    bytes: Vec<u8>,
}

impl Batch {
    fn clear(&mut self) {
        self.seqs.clear();
        self.times.clear();
        self.ends.clear();
        self.bytes.clear();
    }

    fn len(&self) -> usize {
        self.seqs.len()
    }

    fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    fn push(&mut self, seq: u64, now_us: u64, packet: &[u8]) {
        self.seqs.push(seq);
        self.times.push(now_us);
        self.bytes.extend_from_slice(packet);
        self.ends.push(self.bytes.len());
    }

    fn packet(&self, i: usize) -> (&[u8], u64) {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        (&self.bytes[start..self.ends[i]], self.times[i])
    }

    fn iter(&self) -> impl Iterator<Item = (&[u8], u64)> {
        (0..self.len()).map(|i| self.packet(i))
    }
}

/// A pipeline error annotated with where it happened. Only
/// *config-class* errors surface this way (unknown multicast group,
/// register out of range — the program is broken); malformed packets
/// are typed drop decisions, not errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// Worker that hit the error.
    pub worker: usize,
    /// Submission sequence number of the failing packet.
    pub packet_seq: u64,
    /// The underlying pipeline error.
    pub error: PipelineError,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {} failed on packet {}: {}",
            self.worker, self.packet_seq, self.error
        )
    }
}

impl std::error::Error for EngineError {}

/// A typed control-plane fault from the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineFault {
    /// The candidate rule set does not fit the configured ASIC model;
    /// nothing was published and the installed state is unchanged.
    Admission(AdmissionError),
    /// Building the candidate pipeline failed (delta splice mismatch,
    /// recompile error); nothing was published.
    Update(CompileError),
    /// A worker failed to return an in-flight batch within the
    /// watchdog window; the engine state is unchanged and the call
    /// can be retried.
    QuiesceTimeout {
        /// Worker that failed to drain.
        worker: usize,
        /// Batches still outstanding on that worker.
        outstanding: usize,
        /// How long the watchdog waited, milliseconds.
        waited_ms: u64,
    },
    /// The whole node crashed ([`Engine::simulate_crash`]): every
    /// control-plane operation fails permanently. Unlike
    /// [`EngineFault::QuiesceTimeout`] this is *not* retryable — the
    /// caller (e.g. a fabric) must fail the node's shards over.
    Killed,
}

impl std::fmt::Display for EngineFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineFault::Admission(e) => write!(f, "update rejected by admission control: {e}"),
            EngineFault::Update(e) => write!(f, "update could not be built: {e}"),
            EngineFault::QuiesceTimeout {
                worker,
                outstanding,
                waited_ms,
            } => write!(
                f,
                "quiesce timed out after {waited_ms} ms: worker {worker} holds {outstanding} batch(es)"
            ),
            EngineFault::Killed => write!(f, "node is dead (crashed); not retryable"),
        }
    }
}

impl std::error::Error for EngineFault {}

/// Hot-path counters, aggregated into the [`EngineReport`] regardless
/// of whether full telemetry is on (they are plain adds, not clock
/// reads, so they ride the uninstrumented path for free).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotPathStats {
    /// Decision-cache hits — packets whose match chain was skipped.
    pub cache_hits: u64,
    /// Decision-cache misses (full chain ran, result memoized).
    pub cache_misses: u64,
    /// Decision-cache slots overwritten by a conflicting key.
    pub cache_evictions: u64,
    /// Producer wait iterations on full rings (engine blocked on a
    /// lagging worker, plus workers blocked returning batches).
    pub ring_full_spins: u64,
    /// Consumer wait iterations on empty rings (workers starved for
    /// input, plus the engine draining recycle rings).
    pub ring_empty_spins: u64,
}

impl HotPathStats {
    fn merge(&mut self, other: &HotPathStats) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.ring_full_spins += other.ring_full_spins;
        self.ring_empty_spins += other.ring_empty_spins;
    }
}

struct WorkerOutput {
    index: usize,
    stats: ExecStats,
    decisions: Vec<(u64, ForwardDecision)>,
    error: Option<EngineError>,
    adoptions: u64,
    coalesced: u64,
    faults: FaultStats,
    quarantined: Vec<u64>,
    died: bool,
    telemetry: Option<Box<DataPlaneTelemetry>>,
    hotpath: HotPathStats,
    /// Final `@query_counter` register contents — the state-extraction
    /// hook a fabric uses to tell salvageable per-shard state from
    /// state that died with its node.
    registers: camus_pipeline::register::RegisterFile,
}

struct WorkerHandle {
    tx: ring::Producer<Batch>,
    recycle_rx: ring::Consumer<Batch>,
    pending: Batch,
    /// Batches sent but not yet returned through the recycle channel —
    /// i.e. not yet fully processed by the worker.
    outstanding: usize,
    /// Sequence numbers of each outstanding batch, FIFO (batches come
    /// back in send order). This is what lets the engine account for
    /// every packet inside a worker that died mid-stream.
    in_flight: VecDeque<Vec<u64>>,
    /// Recycled seq vectors for `in_flight` (allocation-free steady
    /// state, like the batch pool).
    seq_pool: Vec<Vec<u64>>,
    /// Drained batches ready for reuse.
    pool: Vec<Batch>,
    handle: JoinHandle<WorkerOutput>,
}

/// The engine-level report: aggregated and per-worker counters, plus
/// (optionally) every forwarding decision in submission order.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Worker threads that ran.
    pub workers: usize,
    /// Aggregated execution counters across all workers.
    pub stats: ExecStats,
    /// Per-worker execution counters (index = worker slot; a respawned
    /// worker's counters merge into its slot).
    pub per_worker: Vec<ExecStats>,
    /// Per-packet decisions in submission order; empty unless
    /// [`EngineConfig::record_decisions`] was set. Quarantined packets
    /// have no decision — their seqs are in
    /// [`EngineReport::quarantined`] instead.
    pub decisions: Vec<ForwardDecision>,
    /// First config-class error any worker hit, if any. The failing
    /// worker stops processing further batches; other shards run to
    /// completion.
    pub error: Option<EngineError>,
    /// Update-plane counters: generations published, how they were
    /// applied, and how workers picked them up.
    pub updates: UpdateStats,
    /// Fault-plane counters: panics, quarantines, deaths, respawns,
    /// admission rejections.
    pub faults: FaultStats,
    /// Submission seqs of every quarantined packet, sorted. Zero-loss
    /// invariant: `submitted == stats.packets + quarantined.len()`
    /// (exact whenever no *unsupervised* panic destroyed a worker's
    /// counters).
    pub quarantined: Vec<u64>,
    /// Merged cross-shard telemetry (histograms, spans, per-table
    /// counters); `Some` iff [`EngineConfig::telemetry`] was set.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Decision-cache and ring back-pressure counters, summed across
    /// workers and the engine thread. Always collected.
    pub hotpath: HotPathStats,
    /// Final per-worker `@query_counter` register contents (index =
    /// worker slot; a respawned worker's final state replaces its
    /// predecessor's). The state-extraction hook a fabric reads to
    /// account salvageable vs. lost per-shard state at failover.
    pub final_registers: Vec<camus_pipeline::register::RegisterFile>,
}

/// A running multi-core engine. Create with [`Engine::start`], feed it
/// with [`Engine::submit`], then call [`Engine::finish`] to join the
/// workers and collect the [`EngineReport`].
pub struct Engine {
    workers: Vec<WorkerHandle>,
    shard: ShardFn,
    cfg: EngineConfig,
    next_seq: u64,
    /// Master copy the control plane mutates off the hot path; every
    /// publish clones it into the shared slot.
    template: Pipeline,
    /// A candidate prepared (admission-checked) but not yet published:
    /// the fabric's two-phase epoch holds the new program here across
    /// every leaf before committing any of them.
    staged: Option<Pipeline>,
    published: Arc<Published>,
    delta_updates: u64,
    full_swaps: u64,
    updates_rejected: u64,
    respawns: u64,
    /// Panics that unwound a whole worker thread (no output survived).
    unwound_workers: u64,
    /// Seqs of packets that went down with a dead worker.
    lost: Vec<u64>,
    /// Batches those seqs arrived in (for quarantine accounting).
    lost_batches: u64,
    /// Outputs harvested from workers that died and were replaced.
    retired: Vec<WorkerOutput>,
    /// Control-plane span timings (updates, quiesce, respawns).
    spans: SpanSet,
    /// Engine-side ring waits harvested from retired handles (the live
    /// handles' counters are read at [`Engine::finish`]).
    ring_full_spins: u64,
    ring_empty_spins: u64,
    /// Node-crash flag ([`Engine::simulate_crash`]): workers check it
    /// once per batch and abandon ship; the control plane refuses
    /// every operation with [`EngineFault::Killed`].
    killed: Arc<AtomicBool>,
    /// One-shot runtime stall, milliseconds ([`Engine::inject_stall`]):
    /// the next worker to start a batch consumes it and sleeps,
    /// modelling a transient whole-node hiccup (GC pause, link flap)
    /// that a quiesce barrier then times out on. Unlike
    /// [`FaultInjection::stall_seqs`] it needs no seq planned at
    /// startup, so a chaos harness can script it mid-run.
    stall_signal: Arc<AtomicU64>,
}

/// Pins the calling thread to one CPU core, best effort. Raw
/// `sched_setaffinity` so the crate stays std-only; a failure (cgroup
/// cpuset restrictions, exotic kernels) just leaves the thread
/// floating, which is always correct.
#[cfg(target_os = "linux")]
fn pin_to_core(core: usize) {
    // 16 × 64 bits = room for CPU ids 0..1023, glibc's cpu_set_t size.
    const MASK_WORDS: usize = 16;
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let mut mask = [0u64; MASK_WORDS];
    let cpu = core % (MASK_WORDS * 64);
    mask[cpu / 64] |= 1 << (cpu % 64);
    // SAFETY: the mask outlives the call and the length matches; pid 0
    // targets the calling thread.
    unsafe {
        let _ = sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr());
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_to_core(_core: usize) {}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    index: usize,
    mut program: Arc<Pipeline>,
    mut ctx: ShardCtx,
    mut rx: ring::Consumer<Batch>,
    mut recycle_tx: ring::Producer<Batch>,
    record: bool,
    published: Arc<Published>,
    start_gen: u64,
    supervise: bool,
    injection: FaultInjection,
    killed: Arc<AtomicBool>,
    stall_signal: Arc<AtomicU64>,
) -> WorkerOutput {
    let mut out = DecisionBuf::default();
    let mut decisions: Vec<(u64, ForwardDecision)> = Vec::new();
    let mut error: Option<EngineError> = None;
    let mut seen_gen = start_gen;
    let mut adoptions = 0u64;
    let mut coalesced = 0u64;
    let mut faults = FaultStats::default();
    let mut quarantined: Vec<u64> = Vec::new();
    let mut died = false;
    // Counter snapshot for panic rollback; reused every batch.
    let mut stats_backup = ExecStats::default();
    let has_panics = !injection.panic_seqs.is_empty();
    let has_deaths = !injection.die_seqs.is_empty();
    let has_stalls = !injection.stall_seqs.is_empty();
    while let Some(batch) = rx.pop_blocking() {
        // Node-crash check first: a killed node abandons the popped
        // batch *un-recycled* and stops cold, exactly like a scripted
        // worker death — so the engine's in-flight ledger accounts
        // every packet the crash took down, and detection rides the
        // same recycle-ring hangup path.
        if killed.load(Ordering::Acquire) {
            died = true;
            break;
        }
        // Scripted runtime stall: one worker consumes the pending
        // signal and sleeps before touching the batch, so an armed
        // quiesce barrier observes the hiccup deterministically.
        let stall_ms = stall_signal.swap(0, Ordering::AcqRel);
        if stall_ms > 0 {
            std::thread::sleep(Duration::from_millis(stall_ms));
        }
        // Batch boundary: adopt the latest published generation, so
        // every packet in this batch runs under one complete rule set.
        // Adoption re-points the shared `Arc` — no pipeline clone on
        // the worker; `ShardCtx::adopt` carries `@query_counter`
        // windows and execution counters over (never reset) and
        // invalidates the decision cache, which is what makes cached
        // decisions always come from the live generation.
        let generation = published.generation.load(Ordering::Acquire);
        if generation != seen_gen {
            let next = published.snapshot();
            ctx.adopt(&next);
            adoptions += 1;
            coalesced += generation - seen_gen - 1;
            seen_gen = generation;
            program = next;
        }
        if has_deaths && batch.seqs.iter().any(|s| injection.die_seqs.contains(s)) {
            // Scripted worker death: abandon the batch *without*
            // recycling it and stop serving the shard, with everything
            // accumulated so far intact. Leaving the batch outstanding
            // is what makes detection deterministic — the engine's
            // next wait on the recycle ring sees the hangup, and its
            // in-flight ledger quarantines the batch.
            died = true;
            break;
        }
        if error.is_none() {
            if supervise {
                stats_backup.copy_from(&ctx.exec.stats);
            }
            out.clear();
            let run = |ctx: &mut ShardCtx, out: &mut DecisionBuf| {
                if has_panics && batch.seqs.iter().any(|s| injection.panic_seqs.contains(s)) {
                    panic!("injected worker panic (fault harness)");
                }
                if has_stalls && batch.seqs.iter().any(|s| injection.stall_seqs.contains(s)) {
                    std::thread::sleep(Duration::from_millis(injection.stall_ms));
                }
                program.process_batch_shared(ctx, batch.iter(), out)
            };
            let result = if supervise {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&mut ctx, &mut out)))
            } else {
                Ok(run(&mut ctx, &mut out))
            };
            match result {
                Ok(Ok(())) => {
                    if record {
                        for (i, d) in out.iter().enumerate() {
                            decisions.push((batch.seqs[i], d.clone()));
                        }
                    }
                }
                Ok(Err(e)) => {
                    // The failing packet's slot is the last one claimed.
                    let seq = batch.seqs[out.len().saturating_sub(1)];
                    error = Some(EngineError {
                        worker: index,
                        packet_seq: seq,
                        error: e,
                    });
                }
                Err(_) => {
                    // Caught panic: quarantine the whole batch and roll
                    // the counters back to the batch boundary, so no
                    // quarantined packet is half-counted. Register
                    // side effects of the partial batch may persist
                    // (counters carry forward like on a real switch
                    // whose stage was reset mid-burst); the soak
                    // harness uses stateless rules to keep the oracle
                    // exact.
                    faults.panics_caught += 1;
                    faults.batches_quarantined += 1;
                    faults.packets_quarantined += batch.len() as u64;
                    quarantined.extend_from_slice(&batch.seqs);
                    ctx.exec.stats.copy_from(&stats_backup);
                }
            }
        }
        // Hand the batch back for reuse; the engine may already be
        // finishing, in which case the recycle side is simply gone.
        let _ = recycle_tx.push_blocking(batch);
    }
    let cache = ctx.exec.cache_stats();
    let hotpath = HotPathStats {
        cache_hits: cache.as_ref().map_or(0, |c| c.hits),
        cache_misses: cache.as_ref().map_or(0, |c| c.misses),
        cache_evictions: cache.as_ref().map_or(0, |c| c.evictions),
        ring_full_spins: recycle_tx.full_spins(),
        ring_empty_spins: rx.empty_spins(),
    };
    let mut telemetry = ctx.exec.take_telemetry();
    if let Some(t) = telemetry.as_deref_mut() {
        t.add_hotpath(
            hotpath.cache_hits,
            hotpath.cache_misses,
            hotpath.cache_evictions,
            hotpath.ring_full_spins,
            hotpath.ring_empty_spins,
        );
    }
    WorkerOutput {
        index,
        stats: ctx.exec.stats.clone(),
        decisions,
        error,
        adoptions,
        coalesced,
        faults,
        quarantined,
        died,
        telemetry,
        hotpath,
        registers: ctx.registers,
    }
}

impl Engine {
    /// Spawns the worker threads, each owning a clone of `pipeline`
    /// (tables prepared once up front, counters zeroed). Register
    /// *contents* are cloned as-is, so start from a freshly compiled
    /// pipeline for reproducible runs. The seed pipeline is trusted —
    /// admission control applies to *updates* ([`Engine::apply_update`],
    /// [`Engine::install_pipeline`]), where rejecting late would leave
    /// a live engine half-updated.
    pub fn start(pipeline: &Pipeline, cfg: &EngineConfig, shard: ShardFn) -> Engine {
        let n = cfg.workers.max(1);
        let mut template = pipeline.clone();
        template.prepare();
        template.exec.stats.reset();
        // Telemetry is per-worker (attached in `spawn_worker`); the
        // template and the published slot never carry a record, so a
        // seed pipeline's own telemetry doesn't leak into workers.
        template.set_telemetry(None);
        // Arm the decision cache on the template when configured and
        // provably sound for this program; workers clone the (empty)
        // armed cache into their ShardCtx. Unknown field or an
        // uncacheable program quietly runs without one.
        if let Some(name) = &cfg.decision_cache {
            if let Some(field) = template.layout.get(name) {
                let _ = template.enable_decision_cache(field, DEFAULT_CACHE_SHIFT);
            }
        }
        let published = Arc::new(Published {
            generation: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(template.clone())),
        });
        let mut engine = Engine {
            workers: Vec::with_capacity(n),
            shard,
            cfg: EngineConfig {
                workers: n,
                batch_packets: cfg.batch_packets.max(1),
                queue_batches: cfg.queue_batches.max(1),
                ..cfg.clone()
            },
            next_seq: 0,
            template,
            staged: None,
            published,
            delta_updates: 0,
            full_swaps: 0,
            updates_rejected: 0,
            respawns: 0,
            unwound_workers: 0,
            lost: Vec::new(),
            lost_batches: 0,
            retired: Vec::new(),
            spans: SpanSet::new(),
            ring_full_spins: 0,
            ring_empty_spins: 0,
            killed: Arc::new(AtomicBool::new(false)),
            stall_signal: Arc::new(AtomicU64::new(0)),
        };
        for wi in 0..n {
            let handle = engine.spawn_worker(wi);
            engine.workers.push(handle);
        }
        engine
    }

    /// Spawns one worker thread seeded from the currently published
    /// pipeline, with register state carried over positionally from
    /// the template ([`RegisterFile::carry_from`] — a respawned
    /// worker restarts its stateful windows from the installed
    /// program's initial state, since the dead worker's live counters
    /// are unrecoverable).
    ///
    /// [`RegisterFile::carry_from`]: camus_pipeline::register::RegisterFile::carry_from
    fn spawn_worker(&self, wi: usize) -> WorkerHandle {
        let start_gen = self.published.generation.load(Ordering::Acquire);
        let program = self.published.snapshot();
        // The compiled program is shared read-only behind the Arc; the
        // worker's mutable state (registers, counters, hoist scratch,
        // decision cache) lives in its own ShardCtx, cloned from the
        // prepared template — no pipeline clone per worker.
        let mut ctx = ShardCtx {
            registers: program.registers.clone(),
            exec: program.exec.clone(),
        };
        ctx.registers.carry_from(&self.template.registers);
        ctx.exec.stats.reset();
        if self.cfg.telemetry {
            ctx.exec.enable_telemetry(TELEMETRY_SAMPLE_SHIFT);
        }
        // Input ring depth ≈ queue_batches (rounded to a power of
        // two). The recycle ring gets headroom: at most queue+2
        // batches ever exist per worker (pool growth stops once the
        // input ring fills), so a (queue+4)-deep recycle ring means a
        // worker's return push never blocks in steady state.
        let (tx, rx) = ring::ring::<Batch>(self.cfg.queue_batches);
        let (recycle_tx, recycle_rx) = ring::ring::<Batch>(self.cfg.queue_batches + 4);
        let record = self.cfg.record_decisions;
        let supervise = self.cfg.supervise;
        let injection = self.cfg.faults.clone();
        let worker_published = Arc::clone(&self.published);
        let worker_killed = Arc::clone(&self.killed);
        let worker_stall = Arc::clone(&self.stall_signal);
        let pin = self.cfg.pin_workers.then(|| {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            wi % cores
        });
        let handle = std::thread::Builder::new()
            .name(format!("camus-engine-{wi}"))
            .spawn(move || {
                if let Some(core) = pin {
                    pin_to_core(core);
                }
                worker_loop(
                    wi,
                    program,
                    ctx,
                    rx,
                    recycle_tx,
                    record,
                    worker_published,
                    start_gen,
                    supervise,
                    injection,
                    worker_killed,
                    worker_stall,
                )
            })
            .unwrap_or_else(|e| panic!("spawn engine worker: {e}"));
        WorkerHandle {
            tx,
            recycle_rx,
            pending: Batch::default(),
            outstanding: 0,
            in_flight: VecDeque::new(),
            seq_pool: Vec::new(),
            pool: Vec::new(),
            handle,
        }
    }

    /// Routes one packet to its shard's worker. Packets with equal
    /// shard keys are processed in submission order on one worker.
    /// Blocks (backpressure) when that worker's queue is full.
    pub fn submit(&mut self, packet: &[u8], now_us: u64) {
        let key = (self.shard)(packet);
        let wi = (shard::mix64(key) % self.workers.len() as u64) as usize;
        let seq = self.next_seq;
        self.next_seq += 1;
        let w = &mut self.workers[wi];
        w.pending.push(seq, now_us, packet);
        if w.pending.len() >= self.cfg.batch_packets {
            self.flush_worker(wi);
        }
    }

    /// Packets submitted so far.
    pub fn submitted(&self) -> u64 {
        self.next_seq
    }

    /// Pops an in-flight record, returning its seq vector to the pool.
    fn note_returned(w: &mut WorkerHandle) {
        w.outstanding -= 1;
        if let Some(mut seqs) = w.in_flight.pop_front() {
            seqs.clear();
            w.seq_pool.push(seqs);
        }
    }

    fn flush_worker(&mut self, wi: usize) {
        if self.workers[wi].pending.is_empty() {
            return;
        }
        let w = &mut self.workers[wi];
        // Drain everything the worker has returned into the pool
        // before dispatching. Draining *fully* (not just one) is what
        // bounds the number of batches ever in existence to roughly
        // the input-ring depth plus two — which in turn guarantees the
        // worker's recycle push never finds its ring full.
        while let Some(b) = w.recycle_rx.try_pop() {
            Self::note_returned(w);
            w.pool.push(b);
        }
        // Reuse a drained batch if one is waiting; otherwise grow the
        // pool by one (start-up only — the steady state recycles).
        let mut next = w.pool.pop().unwrap_or_default();
        next.clear();
        let full = std::mem::replace(&mut w.pending, next);
        self.dispatch(wi, full, true);
    }

    /// Sends a batch with in-flight bookkeeping. A send error means
    /// the worker thread is gone: with `respawn` the engine replaces
    /// it and re-sends the batch (zero loss — the batch never reached
    /// the dead worker); without, the batch is counted as lost.
    fn dispatch(&mut self, wi: usize, batch: Batch, respawn: bool) {
        // A crashed node never heals itself: batches that can't reach
        // a worker go straight to loss accounting (→ quarantined).
        let respawn = respawn && !self.killed.load(Ordering::Acquire);
        let w = &mut self.workers[wi];
        let mut seqs = w.seq_pool.pop().unwrap_or_default();
        seqs.clear();
        seqs.extend_from_slice(&batch.seqs);
        w.in_flight.push_back(seqs);
        w.outstanding += 1;
        // Blocks (backpressure) while the ring is full; hands the
        // batch back only when the worker is gone.
        match w.tx.push_blocking(batch) {
            Ok(()) => {}
            Err(batch) => {
                if let Some(mut seqs) = w.in_flight.pop_back() {
                    seqs.clear();
                    w.seq_pool.push(seqs);
                }
                w.outstanding -= 1;
                if respawn {
                    self.respawn_worker(wi);
                    // The replacement gets the batch; a second failure
                    // (replacement died instantly) drops to loss
                    // accounting instead of recursing.
                    self.dispatch(wi, batch, false);
                } else {
                    self.lost.extend_from_slice(&batch.seqs);
                    self.lost_batches += 1;
                }
            }
        }
    }

    /// Replaces a dead worker: joins the old thread, harvests its
    /// output (stats, decisions, quarantined seqs), accounts any
    /// batches that went down with it, and spawns a replacement from
    /// the published pipeline.
    fn respawn_worker(&mut self, wi: usize) {
        let timer = SpanTimer::start();
        let fresh = self.spawn_worker(wi);
        let old = std::mem::replace(&mut self.workers[wi], fresh);
        let WorkerHandle {
            tx,
            mut recycle_rx,
            pending: _,
            outstanding: _,
            mut in_flight,
            mut seq_pool,
            mut pool,
            handle,
        } = old;
        // Engine-side wait counters ride on the handles; harvest them
        // before the halves drop.
        self.ring_full_spins += tx.full_spins();
        self.ring_empty_spins += recycle_rx.empty_spins();
        drop(tx);
        match handle.join() {
            Ok(out) => self.retired.push(out),
            Err(_) => {
                // The thread unwound: its counters and recorded
                // decisions are unrecoverable. Counted so reports can
                // flag the accounting gap.
                self.unwound_workers += 1;
            }
        }
        // Batches the dead worker finished before dying are recycled
        // and reusable; anything still in flight went down with it.
        while let Some(b) = recycle_rx.try_pop() {
            if let Some(mut seqs) = in_flight.pop_front() {
                seqs.clear();
                seq_pool.push(seqs);
            }
            self.workers[wi].pool.push(b);
        }
        for seqs in in_flight.drain(..) {
            self.lost.extend_from_slice(&seqs);
            self.lost_batches += 1;
        }
        let new_w = &mut self.workers[wi];
        new_w.pool.append(&mut pool);
        new_w.seq_pool.append(&mut seq_pool);
        self.respawns += 1;
        timer.stop_into(&mut self.spans, SpanKind::WorkerRespawn);
    }

    /// Flushes every pending batch and blocks until all workers have
    /// fully processed everything submitted so far. On `Ok` the data
    /// plane is quiescent: no packet is in flight, and the guarantee
    /// that post-quiescence forwarding matches a fresh full compile of
    /// the cumulative rule set is testable.
    ///
    /// Each in-flight batch is waited on for at most
    /// [`EngineConfig::watchdog_ms`]; a worker that fails to produce
    /// one in that window yields [`EngineFault::QuiesceTimeout`]
    /// (state unchanged — the call is re-entrant and can be retried).
    /// A worker found dead is respawned and its lost batches are
    /// quarantined, so quiesce also heals the engine.
    pub fn quiesce(&mut self) -> Result<(), EngineFault> {
        if self.is_killed() {
            return Err(EngineFault::Killed);
        }
        let timer = SpanTimer::start();
        for wi in 0..self.workers.len() {
            self.flush_worker(wi);
            loop {
                let watchdog = Duration::from_millis(self.cfg.watchdog_ms.max(1));
                let w = &mut self.workers[wi];
                if w.outstanding == 0 {
                    break;
                }
                match w.recycle_rx.pop_deadline(watchdog) {
                    ring::PopDeadline::Item(b) => {
                        Self::note_returned(w);
                        w.pool.push(b);
                    }
                    ring::PopDeadline::Timeout => {
                        return Err(EngineFault::QuiesceTimeout {
                            worker: wi,
                            outstanding: w.outstanding,
                            waited_ms: self.cfg.watchdog_ms,
                        });
                    }
                    ring::PopDeadline::Closed => {
                        // Dead worker: harvest and replace, then keep
                        // draining (the replacement starts idle).
                        self.respawn_worker(wi);
                    }
                }
            }
        }
        // Only completed drains are recorded; a timed-out quiesce is
        // retried and would double-count.
        timer.stop_into(&mut self.spans, SpanKind::Quiesce);
        Ok(())
    }

    /// Applies an incremental-compiler update to the running engine,
    /// transactionally.
    ///
    /// The next-generation pipeline is built off the packet hot path
    /// on a *candidate* clone: delta reports splice their per-table
    /// entry diffs into it, `full_rebuild` reports replace it
    /// wholesale. The candidate is then charged against the admission
    /// model. Only if both steps succeed does the engine commit the
    /// candidate as its template and publish it with an atomic
    /// generation bump — on any error ([`EngineFault::Update`] or
    /// [`EngineFault::Admission`]) the installed state is untouched:
    /// no generation bump, no half-spliced tables, entry-for-entry
    /// identical before and after.
    ///
    /// Workers adopt a published generation at their next batch
    /// boundary, carrying register state and counters over. Packets
    /// submitted after this returns are guaranteed to be processed by
    /// the new generation (or a later one); packets already in flight
    /// finish under the generation their batch started with — never a
    /// half-applied rule set.
    pub fn apply_update(&mut self, report: &UpdateReport) -> Result<(), EngineFault> {
        if self.is_killed() {
            return Err(EngineFault::Killed);
        }
        let timer = SpanTimer::start();
        let mut candidate = self.template.clone();
        report
            .apply_to(&mut candidate)
            .map_err(EngineFault::Update)?;
        candidate.prepare();
        self.admit(&candidate)?;
        self.template = candidate;
        if report.full_rebuild {
            self.full_swaps += 1;
        } else {
            self.delta_updates += 1;
        }
        self.publish();
        timer.stop_into(&mut self.spans, SpanKind::ApplyUpdate);
        Ok(())
    }

    /// Full-swap fallback with an arbitrary pipeline (e.g. from a
    /// from-scratch [`Compiler::compile`](camus_core::Compiler) when no
    /// incremental session exists): admission-checks the candidate,
    /// then replaces the template wholesale and publishes it. Workers
    /// still carry their register state over positionally on adoption.
    /// On rejection the installed state is untouched.
    pub fn install_pipeline(&mut self, pipeline: &Pipeline) -> Result<(), EngineFault> {
        if self.is_killed() {
            return Err(EngineFault::Killed);
        }
        let timer = SpanTimer::start();
        let mut candidate = pipeline.clone();
        candidate.exec.stats.reset();
        candidate.set_telemetry(None);
        candidate.prepare();
        self.admit(&candidate)?;
        self.template = candidate;
        self.full_swaps += 1;
        self.publish();
        timer.stop_into(&mut self.spans, SpanKind::InstallPipeline);
        Ok(())
    }

    /// Phase one of a two-phase (fabric) epoch: admission-check a
    /// candidate pipeline and stage it without publishing. Nothing a
    /// worker can observe changes — no generation bump, no template
    /// swap. A subsequent [`Engine::commit_staged`] makes the staged
    /// program live; [`Engine::abort_staged`] discards it with zero
    /// observable state change (rejections still count in
    /// [`FaultStats::updates_rejected`]). Staging again replaces any
    /// previously staged candidate.
    pub fn prepare_pipeline(&mut self, pipeline: &Pipeline) -> Result<(), EngineFault> {
        if self.is_killed() {
            return Err(EngineFault::Killed);
        }
        let mut candidate = pipeline.clone();
        candidate.exec.stats.reset();
        candidate.set_telemetry(None);
        candidate.prepare();
        self.admit(&candidate)?;
        self.staged = Some(candidate);
        Ok(())
    }

    /// Phase two of a two-phase epoch: publish the staged candidate.
    /// Counts as a full swap (the fabric re-slices the whole program
    /// per epoch). Returns `false` — and changes nothing — when no
    /// candidate is staged. Infallible by construction: admission
    /// already passed in [`Engine::prepare_pipeline`], so once every
    /// node in a fabric has staged, every commit succeeds.
    pub fn commit_staged(&mut self) -> bool {
        let timer = SpanTimer::start();
        let Some(candidate) = self.staged.take() else {
            return false;
        };
        self.template = candidate;
        self.full_swaps += 1;
        self.publish();
        timer.stop_into(&mut self.spans, SpanKind::InstallPipeline);
        true
    }

    /// Discards a staged candidate (epoch abort). Returns whether one
    /// was staged. Never touches the published program.
    pub fn abort_staged(&mut self) -> bool {
        self.staged.take().is_some()
    }

    /// Simulates an abrupt node crash (the chaos harness's leaf-kill
    /// event). Every worker abandons its current batch *un-recycled*
    /// at its next batch boundary and exits — the packets it took down
    /// surface as quarantined seqs through the in-flight ledger, just
    /// like a single worker death — and from here on every
    /// control-plane call fails with [`EngineFault::Killed`], every
    /// undeliverable batch is counted as lost, and
    /// [`Engine::is_alive`] answers `false`. Idempotent; there is no
    /// resurrection — a fabric replaces the node's shards, not the
    /// node.
    pub fn simulate_crash(&mut self) {
        if self.killed.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake workers blocked on empty input rings with a sentinel
        // empty batch (no in-flight record — it carries no packets).
        // A worker mid-batch sees the flag at its next pop instead; a
        // full ring means the worker has plenty to wake up on already.
        for w in &mut self.workers {
            let _ = w.tx.try_push(Batch::default());
        }
    }

    /// Arms a one-shot runtime stall (the chaos harness's leaf-stall
    /// event): the next worker to start a batch sleeps `ms`
    /// milliseconds first. The node stays alive — the fault is
    /// transient, which is exactly what an epoch's quiesce-timeout
    /// retry path exists for. Calling again before a worker consumed
    /// the previous signal replaces it.
    pub fn inject_stall(&mut self, ms: u64) {
        self.stall_signal.store(ms, Ordering::Release);
    }

    /// Liveness probe — the heartbeat a fabric's failure detector
    /// polls. `false` once the node crashed; detection of *why* (and
    /// of the exact packets lost) still rides the quiesce/ledger
    /// machinery.
    pub fn is_alive(&self) -> bool {
        !self.is_killed()
    }

    /// Whether [`Engine::simulate_crash`] has fired.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Acquire)
    }

    /// Whether a candidate is currently staged (between epoch phases).
    pub fn has_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// The currently installed (control-plane master) tables —
    /// exactly what every publish clones into the worker-visible
    /// slot. Lets a fabric driver assert bit-identical pre-state
    /// after an aborted epoch.
    pub fn installed_tables(&self) -> &[camus_pipeline::Table] {
        &self.template.tables
    }

    /// The published RCU generation (bumps once per successful
    /// publish; never on a rejected or aborted update).
    pub fn generation(&self) -> u64 {
        self.published.generation.load(Ordering::Acquire)
    }

    /// Charges a candidate against the admission model using the same
    /// leveling/placement arithmetic as the offline compiler
    /// ([`place_chain`]) — the runtime enforcement of the paper's
    /// fits-in-switch-memory claim.
    fn admit(&mut self, candidate: &Pipeline) -> Result<(), EngineFault> {
        let Some(model) = &self.cfg.admission else {
            return Ok(());
        };
        let placement = place_chain(&candidate.tables, model);
        if let Some(err) = placement.failure {
            self.updates_rejected += 1;
            return Err(EngineFault::Admission(err));
        }
        Ok(())
    }

    /// Update-plane counters accumulated so far (worker adoption
    /// counts are only known at [`Engine::finish`]).
    pub fn update_stats(&self) -> UpdateStats {
        UpdateStats {
            published: self.delta_updates + self.full_swaps,
            delta_updates: self.delta_updates,
            full_swaps: self.full_swaps,
            adoptions: 0,
            coalesced: 0,
        }
    }

    /// Control-plane span timings recorded so far (updates, installs,
    /// quiesces, respawns). Worker-side spans only merge in at
    /// [`Engine::finish`]; this is the live view a daemon's `/metrics`
    /// endpoint serves between updates.
    pub fn control_spans(&self) -> SpanSet {
        self.spans.clone()
    }

    /// Updates refused by admission control so far (the live
    /// counterpart of [`FaultStats::updates_rejected`]).
    pub fn updates_rejected(&self) -> u64 {
        self.updates_rejected
    }

    /// SIGTERM-clean shutdown: quiesce — draining every in-flight
    /// batch — then join and report. The quiesce outcome is returned
    /// alongside the report so a service shell can distinguish a clean
    /// drain (exact ledger guaranteed) from a timed-out or killed one,
    /// without losing the report either way.
    pub fn shutdown(mut self) -> (EngineReport, Result<(), EngineFault>) {
        let drained = self.quiesce();
        (self.finish(), drained)
    }

    fn publish(&mut self) {
        self.template.prepare();
        let next = Arc::new(self.template.clone());
        *self
            .published
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = next;
        // Release pairs with the workers' Acquire load: a worker that
        // sees the new generation sees the new pipeline.
        self.published.generation.fetch_add(1, Ordering::Release);
    }

    /// Flushes remaining packets, joins every worker and aggregates
    /// the report. Dead workers are harvested, not propagated: an
    /// unsupervised panic shows up as [`FaultStats`] counts and
    /// quarantined seqs rather than a panic out of `finish`.
    pub fn finish(mut self) -> EngineReport {
        for wi in 0..self.workers.len() {
            self.flush_worker(wi);
        }
        let workers = self.workers.len();
        let mut outputs = std::mem::take(&mut self.retired);
        let mut lost = std::mem::take(&mut self.lost);
        let mut lost_batches = self.lost_batches;
        let mut unwound = self.unwound_workers;

        let mut engine_full_spins = self.ring_full_spins;
        let mut engine_empty_spins = self.ring_empty_spins;
        for w in std::mem::take(&mut self.workers) {
            let WorkerHandle {
                tx,
                mut recycle_rx,
                mut in_flight,
                handle,
                ..
            } = w;
            engine_full_spins += tx.full_spins();
            engine_empty_spins += recycle_rx.empty_spins();
            // Dropping the producer half ends the worker's pop loop
            // once it drains what remains.
            drop(tx);
            match handle.join() {
                Ok(out) => outputs.push(out),
                Err(_) => unwound += 1,
            }
            // Everything the worker processed came back through the
            // recycle ring; whatever didn't went down with it.
            while recycle_rx.try_pop().is_some() {
                in_flight.pop_front();
            }
            for seqs in in_flight.drain(..) {
                lost.extend_from_slice(&seqs);
                lost_batches += 1;
            }
        }

        let mut per_worker = vec![ExecStats::default(); workers];
        let mut all_decisions: Vec<(u64, ForwardDecision)> = Vec::new();
        let mut error: Option<EngineError> = None;
        let mut updates = self.update_stats();
        let mut faults = FaultStats {
            updates_rejected: self.updates_rejected,
            respawns: self.respawns,
            ..FaultStats::default()
        };
        let mut quarantined: Vec<u64> = Vec::new();
        let mut final_registers = vec![camus_pipeline::register::RegisterFile::new(); workers];
        let mut snapshot = self.cfg.telemetry.then(|| TelemetrySnapshot::new(workers));
        let mut hotpath = HotPathStats {
            ring_full_spins: engine_full_spins,
            ring_empty_spins: engine_empty_spins,
            ..HotPathStats::default()
        };
        for out in outputs {
            per_worker[out.index].merge(&out.stats);
            // Outputs are harvested oldest-first (retired, then live),
            // so the last write per slot is the final incarnation.
            final_registers[out.index] = out.registers;
            if let (Some(snap), Some(t)) = (snapshot.as_mut(), out.telemetry.as_deref()) {
                snap.absorb_worker(t);
            }
            hotpath.merge(&out.hotpath);
            all_decisions.extend(out.decisions);
            updates.adoptions += out.adoptions;
            updates.coalesced += out.coalesced;
            faults.merge(&out.faults);
            if out.died {
                faults.worker_deaths += 1;
            }
            quarantined.extend(out.quarantined);
            if error.is_none() {
                error = out.error;
            }
        }
        // Batches lost inside dead workers are quarantined too.
        faults.panics_caught += unwound;
        faults.worker_deaths += unwound;
        faults.batches_quarantined += lost_batches;
        faults.packets_quarantined += lost.len() as u64;
        quarantined.append(&mut lost);
        quarantined.sort_unstable();
        quarantined.dedup();

        let mut stats = ExecStats::default();
        for s in &per_worker {
            stats.merge(s);
        }
        if let Some(snap) = snapshot.as_mut() {
            snap.packets = stats.packets;
            snap.spans = self.spans.clone();
            // Worker-side hot-path counters were folded into each
            // worker's record before absorption; only the engine
            // thread's own ring waits remain to be added.
            snap.data
                .add_hotpath(0, 0, 0, engine_full_spins, engine_empty_spins);
            // Per-table counters resolve to the installed program's
            // table names (the aggregated ExecStats vectors are indexed
            // in pipeline table order).
            snap.tables = self
                .template
                .tables
                .iter()
                .enumerate()
                .map(|(i, t)| TableCounters {
                    name: t.name.clone(),
                    hits: stats.table_hits.get(i).copied().unwrap_or(0),
                    misses: stats.table_misses.get(i).copied().unwrap_or(0),
                })
                .collect();
        }
        all_decisions.sort_unstable_by_key(|(seq, _)| *seq);
        let decisions = all_decisions.into_iter().map(|(_, d)| d).collect();
        EngineReport {
            workers,
            stats,
            per_worker,
            decisions,
            error,
            updates,
            faults,
            quarantined,
            telemetry: snapshot,
            hotpath,
            final_registers,
        }
    }
}

/// Convenience one-shot: start, replay `packets`, finish.
pub fn run_trace<'a, I>(
    pipeline: &Pipeline,
    cfg: &EngineConfig,
    shard: ShardFn,
    packets: I,
) -> EngineReport
where
    I: IntoIterator<Item = (&'a [u8], u64)>,
{
    let mut engine = Engine::start(pipeline, cfg, shard);
    for (bytes, now_us) in packets {
        engine.submit(bytes, now_us);
    }
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_pipeline::parser::{Extract, ParseState, ParserSpec, StateId, Transition};
    use camus_pipeline::register::RegisterFile;
    use camus_pipeline::{
        ActionOp, Entry, ExecState, Key, MatchKind, MatchValue, MulticastTable, ParseDrop,
        PhvLayout, PortId, Table,
    };
    use std::sync::Arc;

    /// One-byte-symbol pipeline: byte b forwards to port b for b in
    /// 1..=4; other bytes miss and drop.
    fn byte_pipeline() -> Pipeline {
        let mut layout = PhvLayout::new();
        let sym = layout.add("sym", 8);
        let parser = ParserSpec::new(
            vec![ParseState {
                name: "start".into(),
                extracts: vec![Extract {
                    dst: sym,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: false,
                next: Transition::Accept,
            }],
            StateId(0),
        );
        let mut table = Table::new(
            "leaf",
            vec![Key {
                field: sym,
                kind: MatchKind::Exact,
                bits: 8,
            }],
            vec![],
        );
        for b in 1u64..=4 {
            table
                .add_entry(Entry {
                    priority: 0,
                    matches: vec![MatchValue::Exact(b)],
                    ops: vec![ActionOp::Forward(PortId(b as u16))],
                })
                .unwrap();
        }
        Pipeline {
            layout,
            parser,
            tables: vec![table],
            mcast: MulticastTable::new(),
            registers: RegisterFile::new(),
            state_bindings: vec![],
            init_fields: vec![],
            exec: ExecState::default(),
        }
    }

    fn first_byte_shard() -> ShardFn {
        Arc::new(|p: &[u8]| u64::from(p.first().copied().unwrap_or(0)))
    }

    #[test]
    fn engine_matches_sequential_on_toy_pipeline() {
        let pipeline = byte_pipeline();
        let packets: Vec<Vec<u8>> = (0..500u32).map(|i| vec![(i % 7) as u8]).collect();

        let mut sequential = pipeline.clone();
        let expected: Vec<ForwardDecision> = packets
            .iter()
            .map(|p| sequential.process(p, 0).unwrap())
            .collect();

        for workers in [1usize, 2, 8] {
            let cfg = EngineConfig {
                workers,
                batch_packets: 16,
                record_decisions: true,
                ..Default::default()
            };
            let report = run_trace(
                &pipeline,
                &cfg,
                first_byte_shard(),
                packets.iter().map(|p| (p.as_slice(), 0u64)),
            );
            assert!(report.error.is_none(), "{:?}", report.error);
            assert_eq!(report.decisions, expected, "workers={workers}");
            assert_eq!(report.stats.packets, packets.len() as u64);
            assert_eq!(report.per_worker.len(), workers);
            assert_eq!(report.faults, FaultStats::default());
            assert!(report.quarantined.is_empty());
        }
    }

    #[test]
    fn stats_aggregate_across_workers() {
        let pipeline = byte_pipeline();
        let packets: Vec<Vec<u8>> = (0..256u32).map(|i| vec![(i % 8) as u8]).collect();
        let cfg = EngineConfig {
            workers: 4,
            batch_packets: 8,
            ..Default::default()
        };
        let report = run_trace(
            &pipeline,
            &cfg,
            first_byte_shard(),
            packets.iter().map(|p| (p.as_slice(), 0u64)),
        );
        assert_eq!(report.stats.packets, 256);
        assert_eq!(report.stats.messages, 256);
        // Bytes 1..=4 forward (4 of every 8), the rest miss.
        assert_eq!(report.stats.forwarded_packets, 128);
        assert_eq!(report.stats.dropped_packets, 128);
        let worker_sum: u64 = report.per_worker.iter().map(|s| s.packets).sum();
        assert_eq!(worker_sum, 256);
        // Per-stage counters survive aggregation.
        assert_eq!(report.stats.table_hits.iter().sum::<u64>(), 128);
        assert_eq!(report.stats.table_misses.iter().sum::<u64>(), 128);
    }

    #[test]
    fn malformed_packets_are_typed_drops_with_reconciled_counters() {
        // The parser needs one byte; an empty packet underflows — a
        // typed drop decision, not an error, and never a dead worker.
        let pipeline = byte_pipeline();
        let packets: Vec<Vec<u8>> = vec![vec![1], vec![], vec![2]];
        let cfg = EngineConfig {
            workers: 1,
            batch_packets: 1,
            record_decisions: true,
            ..Default::default()
        };
        let report = run_trace(
            &pipeline,
            &cfg,
            first_byte_shard(),
            packets.iter().map(|p| (p.as_slice(), 0u64)),
        );
        assert!(report.error.is_none(), "{:?}", report.error);
        assert_eq!(report.decisions.len(), 3);
        assert_eq!(report.decisions[0].ports, vec![PortId(1)]);
        assert_eq!(report.decisions[1].drop_reason, Some(ParseDrop::Underflow));
        assert_eq!(report.decisions[2].ports, vec![PortId(2)]);
        let s = &report.stats;
        assert_eq!(s.packets, 3);
        assert_eq!(s.drop_underflow, 1);
        assert_eq!(s.packets, s.forwarded_packets + s.dropped_packets);
        assert_eq!(s.malformed_packets(), 1);
    }

    #[test]
    fn install_pipeline_swaps_rules_at_a_quiescence_point() {
        let pipeline = byte_pipeline();
        // Alternate generation: byte 1 forwards to port 9 instead of 1,
        // spliced in via the same table API the delta path uses.
        let mut alt = byte_pipeline();
        let entry = |port| Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(1)],
            ops: vec![ActionOp::Forward(PortId(port))],
        };
        alt.tables[0]
            .splice_entries(&[entry(1)], &[entry(9)])
            .unwrap();

        let cfg = EngineConfig {
            workers: 2,
            batch_packets: 4,
            record_decisions: true,
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
        for _ in 0..40 {
            engine.submit(&[1], 0);
        }
        engine.quiesce().unwrap();
        engine.install_pipeline(&alt).unwrap();
        for _ in 0..40 {
            engine.submit(&[1], 0);
        }
        let report = engine.finish();
        assert!(report.error.is_none(), "{:?}", report.error);
        // Zero loss: every submitted packet has a decision.
        assert_eq!(report.decisions.len(), 80);
        // Quiescence before the swap makes the cutover exact.
        for d in &report.decisions[..40] {
            assert_eq!(d.ports, vec![PortId(1)]);
        }
        for d in &report.decisions[40..] {
            assert_eq!(d.ports, vec![PortId(9)]);
        }
        assert_eq!(report.stats.packets, 80);
        assert_eq!(report.updates.published, 1);
        assert_eq!(report.updates.full_swaps, 1);
        assert_eq!(report.updates.delta_updates, 0);
        assert!(report.updates.adoptions >= 1, "{:?}", report.updates);
    }

    #[test]
    fn quiesce_is_reentrant_and_safe_when_idle() {
        let pipeline = byte_pipeline();
        let cfg = EngineConfig {
            workers: 3,
            batch_packets: 5,
            record_decisions: true,
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
        engine.quiesce().unwrap(); // nothing submitted yet
        for i in 0..57u32 {
            engine.submit(&[(i % 7) as u8], 0);
        }
        engine.quiesce().unwrap();
        engine.quiesce().unwrap(); // already drained: no-op
        for i in 0..13u32 {
            engine.submit(&[(i % 7) as u8], 0);
        }
        let report = engine.finish();
        assert!(report.error.is_none());
        assert_eq!(report.stats.packets, 70);
        assert_eq!(report.decisions.len(), 70);
    }

    #[test]
    fn coalesced_generations_are_counted() {
        let pipeline = byte_pipeline();
        let mut alt = byte_pipeline();
        let entry = |port| Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(1)],
            ops: vec![ActionOp::Forward(PortId(port))],
        };
        alt.tables[0]
            .splice_entries(&[entry(1)], &[entry(9)])
            .unwrap();
        let cfg = EngineConfig {
            workers: 1,
            batch_packets: 8,
            record_decisions: true,
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
        engine.submit(&[1], 0);
        engine.quiesce().unwrap();
        // Three generations published back-to-back while the worker has
        // no traffic: it adopts only the last one.
        engine.install_pipeline(&alt).unwrap();
        engine.install_pipeline(&pipeline).unwrap();
        engine.install_pipeline(&alt).unwrap();
        for _ in 0..8 {
            engine.submit(&[1], 0);
        }
        let report = engine.finish();
        assert!(report.error.is_none());
        assert_eq!(report.updates.published, 3);
        assert_eq!(report.updates.adoptions, 1);
        assert_eq!(report.updates.coalesced, 2);
        assert_eq!(report.decisions.len(), 9);
        assert_eq!(report.decisions[0].ports, vec![PortId(1)]);
        for d in &report.decisions[1..] {
            assert_eq!(d.ports, vec![PortId(9)]);
        }
    }

    #[test]
    fn empty_run_finishes_cleanly() {
        let pipeline = byte_pipeline();
        let report = run_trace(
            &pipeline,
            &EngineConfig::with_workers(3),
            first_byte_shard(),
            std::iter::empty(),
        );
        assert_eq!(report.stats.packets, 0);
        assert!(report.error.is_none());
        assert_eq!(report.workers, 3);
    }

    #[test]
    fn oversized_install_is_rejected_with_no_observable_change() {
        let pipeline = byte_pipeline();
        // Admission model that fits the 4-entry seed but not a 10-entry
        // candidate.
        let tiny = AsicModel {
            stages: 1,
            sram_entries_per_stage: 5,
            ..AsicModel::tofino32()
        };
        let mut big = byte_pipeline();
        for b in 5u64..=10 {
            big.tables[0]
                .add_entry(Entry {
                    priority: 0,
                    matches: vec![MatchValue::Exact(b)],
                    ops: vec![ActionOp::Forward(PortId(b as u16))],
                })
                .unwrap();
        }
        let cfg = EngineConfig {
            workers: 2,
            batch_packets: 4,
            record_decisions: true,
            admission: Some(tiny),
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
        for _ in 0..8 {
            engine.submit(&[1], 0);
        }
        let before_tables = engine.template.tables.clone();
        let err = engine.install_pipeline(&big).unwrap_err();
        let EngineFault::Admission(adm) = &err else {
            panic!("expected Admission, got {err}");
        };
        assert_eq!(adm.needed, 10);
        assert_eq!(adm.available, 5);
        // Zero observable state change: entry-for-entry identical
        // tables, no generation bump.
        let after_tables: Vec<_> = engine.template.tables.clone();
        for (a, b) in before_tables.iter().zip(after_tables.iter()) {
            let ea: Vec<_> = a.entries().collect();
            let eb: Vec<_> = b.entries().collect();
            assert_eq!(ea, eb);
        }
        assert_eq!(engine.published.generation.load(Ordering::Acquire), 0);
        for _ in 0..8 {
            engine.submit(&[1], 0);
        }
        let report = engine.finish();
        assert_eq!(report.updates.published, 0);
        assert_eq!(report.faults.updates_rejected, 1);
        // Forwarding continued under the original rules throughout.
        assert_eq!(report.decisions.len(), 16);
        for d in &report.decisions {
            assert_eq!(d.ports, vec![PortId(1)]);
        }
    }

    #[test]
    fn supervised_panic_quarantines_batch_and_worker_survives() {
        let pipeline = byte_pipeline();
        let cfg = EngineConfig {
            workers: 1,
            batch_packets: 2,
            record_decisions: true,
            faults: FaultInjection {
                // Seq 3 lands in the second batch {2, 3}.
                panic_seqs: Arc::new([3u64].into_iter().collect()),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
        for _ in 0..8 {
            engine.submit(&[1], 0);
        }
        let report = engine.finish();
        assert!(report.error.is_none(), "{:?}", report.error);
        assert_eq!(report.faults.panics_caught, 1);
        assert_eq!(report.faults.batches_quarantined, 1);
        assert_eq!(report.faults.packets_quarantined, 2);
        assert_eq!(report.faults.worker_deaths, 0);
        assert_eq!(report.quarantined, vec![2, 3]);
        // The other six packets were all decided; counters reconcile.
        assert_eq!(report.decisions.len(), 6);
        assert_eq!(report.stats.packets, 6);
        assert_eq!(report.stats.packets + report.quarantined.len() as u64, 8u64);
        for d in &report.decisions {
            assert_eq!(d.ports, vec![PortId(1)]);
        }
    }

    #[test]
    fn dead_worker_is_respawned_and_forwarding_resumes() {
        let pipeline = byte_pipeline();
        let cfg = EngineConfig {
            workers: 1,
            batch_packets: 2,
            record_decisions: true,
            faults: FaultInjection {
                die_seqs: Arc::new([3u64].into_iter().collect()),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
        for _ in 0..4 {
            engine.submit(&[1], 0);
        }
        // Drain: detects the death, respawns, and quarantines the
        // batch that killed the worker.
        engine.quiesce().unwrap();
        for _ in 0..4 {
            engine.submit(&[1], 0);
        }
        let report = engine.finish();
        assert!(report.error.is_none(), "{:?}", report.error);
        assert_eq!(report.faults.worker_deaths, 1);
        assert_eq!(report.faults.respawns, 1);
        assert_eq!(report.quarantined, vec![2, 3]);
        // Post-recovery forwarding is identical to the healthy run.
        assert_eq!(report.decisions.len(), 6);
        for d in &report.decisions {
            assert_eq!(d.ports, vec![PortId(1)]);
        }
        assert_eq!(report.stats.packets + report.quarantined.len() as u64, 8u64);
    }

    #[test]
    fn quiesce_times_out_on_a_stalled_worker_and_recovers() {
        let pipeline = byte_pipeline();
        let cfg = EngineConfig {
            workers: 1,
            batch_packets: 1,
            record_decisions: true,
            watchdog_ms: 40,
            faults: FaultInjection {
                stall_seqs: Arc::new([0u64].into_iter().collect()),
                stall_ms: 400,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
        engine.submit(&[1], 0);
        let err = engine.quiesce().unwrap_err();
        let EngineFault::QuiesceTimeout {
            worker,
            outstanding,
            waited_ms,
        } = err
        else {
            panic!("expected QuiesceTimeout, got {err}");
        };
        assert_eq!(worker, 0);
        assert_eq!(outstanding, 1);
        assert_eq!(waited_ms, 40);
        // Re-entrant: keep retrying until the stall clears.
        let mut tries = 0;
        while engine.quiesce().is_err() {
            tries += 1;
            assert!(tries < 100, "stall never cleared");
        }
        let report = engine.finish();
        assert!(report.error.is_none());
        assert_eq!(report.decisions.len(), 1);
        assert_eq!(report.decisions[0].ports, vec![PortId(1)]);
    }

    #[test]
    fn decision_cache_preserves_decisions_and_counts_hits() {
        let pipeline = byte_pipeline();
        let packets: Vec<Vec<u8>> = (0..400u32).map(|i| vec![(i % 7) as u8]).collect();
        let run = |cache: Option<String>| {
            let cfg = EngineConfig {
                workers: 2,
                batch_packets: 16,
                record_decisions: true,
                decision_cache: cache,
                ..Default::default()
            };
            run_trace(
                &pipeline,
                &cfg,
                first_byte_shard(),
                packets.iter().map(|p| (p.as_slice(), 0u64)),
            )
        };
        let off = run(None);
        let on = run(Some("sym".into()));
        assert!(on.error.is_none(), "{:?}", on.error);
        // Bit-identical forwarding and counters, cache on vs off.
        assert_eq!(on.decisions, off.decisions);
        assert_eq!(on.stats, off.stats);
        assert_eq!(off.hotpath.cache_hits + off.hotpath.cache_misses, 0);
        // 7 distinct keys; everything after the first sighting hits.
        assert!(on.hotpath.cache_hits >= 350, "{:?}", on.hotpath);
        assert_eq!(
            on.hotpath.cache_hits + on.hotpath.cache_misses,
            on.stats.messages
        );
    }

    #[test]
    fn unknown_cache_field_is_silently_disabled() {
        let pipeline = byte_pipeline();
        let cfg = EngineConfig {
            workers: 1,
            batch_packets: 4,
            record_decisions: true,
            decision_cache: Some("no.such.field".into()),
            ..Default::default()
        };
        let packets: Vec<Vec<u8>> = (0..16u32).map(|i| vec![(i % 5) as u8]).collect();
        let report = run_trace(
            &pipeline,
            &cfg,
            first_byte_shard(),
            packets.iter().map(|p| (p.as_slice(), 0u64)),
        );
        assert!(report.error.is_none());
        assert_eq!(report.hotpath.cache_hits + report.hotpath.cache_misses, 0);
        assert_eq!(report.decisions.len(), 16);
    }

    #[test]
    fn install_invalidates_worker_caches() {
        // A cached decision must never survive a generation bump: cache
        // port 1 for byte 1, swap in a program that forwards byte 1 to
        // port 9, and check no stale hit leaks through.
        let pipeline = byte_pipeline();
        let mut alt = byte_pipeline();
        let entry = |port| Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(1)],
            ops: vec![ActionOp::Forward(PortId(port))],
        };
        alt.tables[0]
            .splice_entries(&[entry(1)], &[entry(9)])
            .unwrap();
        let cfg = EngineConfig {
            workers: 1,
            batch_packets: 4,
            record_decisions: true,
            decision_cache: Some("sym".into()),
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
        for _ in 0..20 {
            engine.submit(&[1], 0);
        }
        engine.quiesce().unwrap();
        engine.install_pipeline(&alt).unwrap();
        for _ in 0..20 {
            engine.submit(&[1], 0);
        }
        let report = engine.finish();
        assert!(report.error.is_none(), "{:?}", report.error);
        for d in &report.decisions[..20] {
            assert_eq!(d.ports, vec![PortId(1)]);
        }
        for d in &report.decisions[20..] {
            assert_eq!(d.ports, vec![PortId(9)]);
        }
        // Both generations were cached: ≥2 misses, plenty of hits.
        assert!(report.hotpath.cache_misses >= 2, "{:?}", report.hotpath);
        assert!(report.hotpath.cache_hits >= 30, "{:?}", report.hotpath);
    }

    #[test]
    fn pinned_workers_degrade_gracefully() {
        // Pinning is best-effort: on any host (1 core, restricted
        // cpusets, non-Linux) the engine must still forward correctly.
        let pipeline = byte_pipeline();
        let cfg = EngineConfig {
            workers: 4,
            batch_packets: 8,
            record_decisions: true,
            pin_workers: true,
            ..Default::default()
        };
        let packets: Vec<Vec<u8>> = (0..200u32).map(|i| vec![(i % 7) as u8]).collect();
        let report = run_trace(
            &pipeline,
            &cfg,
            first_byte_shard(),
            packets.iter().map(|p| (p.as_slice(), 0u64)),
        );
        assert!(report.error.is_none());
        assert_eq!(report.stats.packets, 200);
        assert_eq!(report.decisions.len(), 200);
        assert_eq!(report.faults, FaultStats::default());
    }

    #[test]
    fn telemetry_snapshot_carries_hotpath_counters() {
        let pipeline = byte_pipeline();
        let cfg = EngineConfig {
            workers: 1,
            batch_packets: 8,
            telemetry: true,
            decision_cache: Some("sym".into()),
            ..Default::default()
        };
        let packets: Vec<Vec<u8>> = (0..64u32).map(|i| vec![(i % 3) as u8]).collect();
        let report = run_trace(
            &pipeline,
            &cfg,
            first_byte_shard(),
            packets.iter().map(|p| (p.as_slice(), 0u64)),
        );
        let snap = report.telemetry.expect("telemetry requested");
        assert_eq!(snap.data.decision_cache_hits, report.hotpath.cache_hits);
        assert_eq!(snap.data.decision_cache_misses, report.hotpath.cache_misses);
        assert_eq!(snap.data.ring_full_spins, report.hotpath.ring_full_spins);
        assert_eq!(snap.data.ring_empty_spins, report.hotpath.ring_empty_spins);
        assert!(report.hotpath.cache_hits > 0);
    }

    #[test]
    fn unsupervised_panic_kills_worker_but_finish_stays_total() {
        let pipeline = byte_pipeline();
        let cfg = EngineConfig {
            workers: 1,
            batch_packets: 2,
            record_decisions: true,
            supervise: false,
            faults: FaultInjection {
                panic_seqs: Arc::new([1u64].into_iter().collect()),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
        for _ in 0..4 {
            engine.submit(&[1], 0);
        }
        // finish() must neither hang nor propagate the worker panic.
        let report = engine.finish();
        assert!(report.faults.worker_deaths >= 1);
        assert!(report.faults.panics_caught >= 1);
        // Every packet is either decided or quarantined (the panicking
        // worker unwound, so its counters are gone — the quarantine
        // list still accounts for the batches it took down).
        assert_eq!(report.stats.packets + report.quarantined.len() as u64, 4u64);
    }

    #[test]
    fn simulated_crash_quarantines_everything_and_kills_the_control_plane() {
        let pipeline = byte_pipeline();
        let cfg = EngineConfig {
            workers: 2,
            batch_packets: 1,
            ..EngineConfig::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
        for i in 0..100u32 {
            engine.submit(&[(i % 4 + 1) as u8], 0);
        }
        engine.quiesce().unwrap();
        assert!(engine.is_alive());

        engine.simulate_crash();
        engine.simulate_crash(); // idempotent
        assert!(!engine.is_alive());
        assert!(matches!(engine.quiesce(), Err(EngineFault::Killed)));
        assert!(matches!(
            engine.install_pipeline(&pipeline),
            Err(EngineFault::Killed)
        ));
        assert!(matches!(
            engine.prepare_pipeline(&pipeline),
            Err(EngineFault::Killed)
        ));

        // Packets delivered to the dead node are never processed and
        // never silently dropped: all 50 land in quarantine, while the
        // 100 pre-crash (quiesced) packets keep their decisions.
        for i in 0..50u32 {
            engine.submit(&[(i % 4 + 1) as u8], 0);
        }
        let report = engine.finish();
        assert_eq!(report.stats.packets, 100);
        assert_eq!(report.quarantined.len(), 50);
        assert!(report.faults.worker_deaths >= 2);
        assert_eq!(report.final_registers.len(), 2);
    }
}
