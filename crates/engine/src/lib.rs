//! # camus-engine — a multi-core sharded forwarding engine
//!
//! Wraps the sequential [`Pipeline`](camus_pipeline::Pipeline) executor
//! with N worker threads (std-only: `std::thread` plus bounded
//! channels), each owning a cloned pipeline, and shards packets
//! RSS-style on a flow key — by default the ITCH stock symbol
//! ([`shard::itch_symbol_shard`]).
//!
//! Camus's stateful rules (`@query_counter`) are keyed on the stock
//! symbol, so symbol sharding keeps every register slot's updates on
//! exactly one worker and the engine's forwarding decisions are
//! **bit-identical** to running the sequential executor over the same
//! trace (verified by the determinism test). Each worker processes its
//! packets in submission order through
//! [`Pipeline::process_batch`](camus_pipeline::Pipeline::process_batch),
//! the allocation-free batch hot path; batches and their byte arenas
//! are recycled through a return channel, so the steady state allocates
//! nothing per packet on either side of the queue.
//!
//! ## Update plane
//!
//! The engine doubles as the consumer of the incremental compiler's
//! delta channel (§3's "highly dynamic queries"): feed an
//! [`UpdateReport`](camus_core::UpdateReport) to
//! [`Engine::apply_update`] and the next-generation tables are built
//! *off* the packet hot path — spliced into a master template via
//! [`camus_core::apply_delta`] (or swapped wholesale on a
//! `full_rebuild`), then published RCU-style behind an atomic
//! generation counter. Workers poll the counter once per batch and
//! adopt the published pipeline at the batch boundary, carrying their
//! `@query_counter` register state and execution counters over — so
//! every packet is processed by exactly one complete rule-set
//! generation, none is dropped during an update, and stateful windows
//! never reset. [`Engine::quiesce`] drains every in-flight batch,
//! after which forwarding is bit-identical to a fresh full compile of
//! the cumulative rule set (the differential churn tests enforce
//! this).
//!
//! ```no_run
//! use camus_engine::{shard, Engine, EngineConfig};
//! # fn demo(pipeline: &camus_pipeline::Pipeline, trace: &[(Vec<u8>, u64)]) {
//! let mut engine = Engine::start(pipeline, &EngineConfig::default(),
//!                                shard::itch_symbol_shard());
//! for (bytes, now_us) in trace {
//!     engine.submit(bytes, *now_us);
//! }
//! let report = engine.finish();
//! println!("{} packets, {} matched messages",
//!          report.stats.packets, report.stats.matched_messages);
//! # }
//! ```

pub mod shard;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use camus_core::{CompileError, UpdateReport};
use camus_pipeline::{DecisionBuf, ExecStats, ForwardDecision, Pipeline, PipelineError};

pub use shard::ShardFn;

/// The RCU-style publication slot shared between the control plane
/// and the workers: a monotonically increasing generation counter and
/// the pipeline it corresponds to. The `Release` bump in
/// [`Engine::publish`] paired with the `Acquire` load at each batch
/// boundary guarantees a worker that observes generation `g` also
/// observes the pipeline published with it; batches submitted after
/// `apply_update` returns are always processed at generation ≥ `g`.
struct Published {
    generation: AtomicU64,
    slot: Mutex<Arc<Pipeline>>,
}

/// Update-plane counters, aggregated into the [`EngineReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Pipeline generations published (delta updates + full swaps).
    pub published: u64,
    /// Updates applied by splicing table deltas into the template.
    pub delta_updates: u64,
    /// Updates applied as full pipeline swaps (the
    /// `NeedsFullRecompile` fallback, or [`Engine::install_pipeline`]).
    pub full_swaps: u64,
    /// Generation adoptions performed by workers at batch boundaries
    /// (summed across workers).
    pub adoptions: u64,
    /// Generations a worker skipped over because several were
    /// published between two of its batches — updates deferred to a
    /// batch boundary and coalesced there (summed across workers).
    pub coalesced: u64,
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. Defaults to the machine's available parallelism.
    pub workers: usize,
    /// Packets accumulated per batch before hand-off to a worker.
    pub batch_packets: usize,
    /// Bounded depth (in batches) of each worker's input queue;
    /// [`Engine::submit`] applies backpressure when a worker lags.
    pub queue_batches: usize,
    /// Record every per-packet [`ForwardDecision`] in the report
    /// (needed by the determinism test; costs an allocation per packet,
    /// so leave off when benchmarking throughput).
    pub record_decisions: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_packets: 64,
            queue_batches: 8,
            record_decisions: false,
        }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..Default::default()
        }
    }
}

/// A flattened batch of packets: one contiguous byte arena plus
/// per-packet end offsets, so recycling a batch recycles every
/// allocation in it at once.
#[derive(Debug, Default)]
struct Batch {
    seqs: Vec<u64>,
    times: Vec<u64>,
    ends: Vec<usize>,
    bytes: Vec<u8>,
}

impl Batch {
    fn clear(&mut self) {
        self.seqs.clear();
        self.times.clear();
        self.ends.clear();
        self.bytes.clear();
    }

    fn len(&self) -> usize {
        self.seqs.len()
    }

    fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    fn push(&mut self, seq: u64, now_us: u64, packet: &[u8]) {
        self.seqs.push(seq);
        self.times.push(now_us);
        self.bytes.extend_from_slice(packet);
        self.ends.push(self.bytes.len());
    }

    fn packet(&self, i: usize) -> (&[u8], u64) {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        (&self.bytes[start..self.ends[i]], self.times[i])
    }

    fn iter(&self) -> impl Iterator<Item = (&[u8], u64)> {
        (0..self.len()).map(|i| self.packet(i))
    }
}

/// A pipeline error annotated with where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// Worker that hit the error.
    pub worker: usize,
    /// Submission sequence number of the failing packet.
    pub packet_seq: u64,
    /// The underlying pipeline error.
    pub error: PipelineError,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {} failed on packet {}: {}",
            self.worker, self.packet_seq, self.error
        )
    }
}

impl std::error::Error for EngineError {}

struct WorkerOutput {
    stats: ExecStats,
    decisions: Vec<(u64, ForwardDecision)>,
    error: Option<EngineError>,
    adoptions: u64,
    coalesced: u64,
}

struct WorkerHandle {
    tx: SyncSender<Batch>,
    recycle_rx: Receiver<Batch>,
    pending: Batch,
    /// Batches sent but not yet returned through the recycle channel —
    /// i.e. not yet fully processed by the worker.
    outstanding: usize,
    /// Drained batches ready for reuse.
    pool: Vec<Batch>,
    handle: JoinHandle<WorkerOutput>,
}

/// The engine-level report: aggregated and per-worker counters, plus
/// (optionally) every forwarding decision in submission order.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Worker threads that ran.
    pub workers: usize,
    /// Aggregated execution counters across all workers.
    pub stats: ExecStats,
    /// Per-worker execution counters (index = worker).
    pub per_worker: Vec<ExecStats>,
    /// Per-packet decisions in submission order; empty unless
    /// [`EngineConfig::record_decisions`] was set. With an `error`,
    /// holds whatever completed, still in submission order.
    pub decisions: Vec<ForwardDecision>,
    /// First error any worker hit, if any. The failing worker stops
    /// processing further batches; other shards run to completion.
    pub error: Option<EngineError>,
    /// Update-plane counters: generations published, how they were
    /// applied, and how workers picked them up.
    pub updates: UpdateStats,
}

/// A running multi-core engine. Create with [`Engine::start`], feed it
/// with [`Engine::submit`], then call [`Engine::finish`] to join the
/// workers and collect the [`EngineReport`].
pub struct Engine {
    workers: Vec<WorkerHandle>,
    shard: ShardFn,
    batch_packets: usize,
    next_seq: u64,
    /// Master copy the control plane mutates off the hot path; every
    /// publish clones it into the shared slot.
    template: Pipeline,
    published: Arc<Published>,
    delta_updates: u64,
    full_swaps: u64,
}

fn worker_loop(
    index: usize,
    mut pipeline: Pipeline,
    rx: Receiver<Batch>,
    recycle_tx: Sender<Batch>,
    record: bool,
    published: Arc<Published>,
) -> WorkerOutput {
    let mut out = DecisionBuf::default();
    let mut decisions: Vec<(u64, ForwardDecision)> = Vec::new();
    let mut error: Option<EngineError> = None;
    // The engine publishes generation 0 implicitly at start; a bump
    // racing the spawn is simply adopted at the first batch.
    let mut seen_gen = 0u64;
    let mut adoptions = 0u64;
    let mut coalesced = 0u64;
    while let Ok(batch) = rx.recv() {
        // Batch boundary: adopt the latest published generation, so
        // every packet in this batch runs under one complete rule set.
        let generation = published.generation.load(Ordering::Acquire);
        if generation != seen_gen {
            let next_arc = published.slot.lock().expect("publish slot lock").clone();
            let mut next = (*next_arc).clone();
            // Stateful continuity across the swap: `@query_counter`
            // windows and execution counters carry over, never reset.
            next.registers.carry_from(&pipeline.registers);
            next.exec.stats = pipeline.exec.stats.clone();
            next.prepare();
            adoptions += 1;
            coalesced += generation - seen_gen - 1;
            seen_gen = generation;
            pipeline = next;
        }
        if error.is_none() {
            out.clear();
            match pipeline.process_batch(batch.iter(), &mut out) {
                Ok(()) => {
                    if record {
                        for (i, d) in out.iter().enumerate() {
                            decisions.push((batch.seqs[i], d.clone()));
                        }
                    }
                }
                Err(e) => {
                    // The failing packet's slot is the last one claimed.
                    let seq = batch.seqs[out.len().saturating_sub(1)];
                    error = Some(EngineError {
                        worker: index,
                        packet_seq: seq,
                        error: e,
                    });
                }
            }
        }
        // Hand the batch back for reuse; the engine may already be
        // finishing, in which case the recycle side is simply gone.
        let _ = recycle_tx.send(batch);
    }
    WorkerOutput {
        stats: pipeline.exec.stats.clone(),
        decisions,
        error,
        adoptions,
        coalesced,
    }
}

impl Engine {
    /// Spawns the worker threads, each owning a clone of `pipeline`
    /// (tables prepared once up front, counters zeroed). Register
    /// *contents* are cloned as-is, so start from a freshly compiled
    /// pipeline for reproducible runs.
    pub fn start(pipeline: &Pipeline, cfg: &EngineConfig, shard: ShardFn) -> Engine {
        let n = cfg.workers.max(1);
        let mut template = pipeline.clone();
        template.prepare();
        template.exec.stats.reset();
        let published = Arc::new(Published {
            generation: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(template.clone())),
        });
        let workers = (0..n)
            .map(|wi| {
                let (tx, rx) = sync_channel::<Batch>(cfg.queue_batches.max(1));
                let (recycle_tx, recycle_rx) = channel::<Batch>();
                let worker_pipeline = template.clone();
                let record = cfg.record_decisions;
                let worker_published = Arc::clone(&published);
                let handle = std::thread::Builder::new()
                    .name(format!("camus-engine-{wi}"))
                    .spawn(move || {
                        worker_loop(
                            wi,
                            worker_pipeline,
                            rx,
                            recycle_tx,
                            record,
                            worker_published,
                        )
                    })
                    .expect("spawn engine worker");
                WorkerHandle {
                    tx,
                    recycle_rx,
                    pending: Batch::default(),
                    outstanding: 0,
                    pool: Vec::new(),
                    handle,
                }
            })
            .collect();
        Engine {
            workers,
            shard,
            batch_packets: cfg.batch_packets.max(1),
            next_seq: 0,
            template,
            published,
            delta_updates: 0,
            full_swaps: 0,
        }
    }

    /// Routes one packet to its shard's worker. Packets with equal
    /// shard keys are processed in submission order on one worker.
    /// Blocks (backpressure) when that worker's queue is full.
    pub fn submit(&mut self, packet: &[u8], now_us: u64) {
        let key = (self.shard)(packet);
        let wi = (shard::mix64(key) % self.workers.len() as u64) as usize;
        let seq = self.next_seq;
        self.next_seq += 1;
        let w = &mut self.workers[wi];
        w.pending.push(seq, now_us, packet);
        if w.pending.len() >= self.batch_packets {
            Self::flush_worker(w);
        }
    }

    /// Packets submitted so far.
    pub fn submitted(&self) -> u64 {
        self.next_seq
    }

    fn flush_worker(w: &mut WorkerHandle) {
        if w.pending.is_empty() {
            return;
        }
        // Reuse a batch the worker has already drained, if one is
        // waiting; otherwise grow the pool by one.
        let mut next = match w.pool.pop() {
            Some(b) => b,
            None => match w.recycle_rx.try_recv() {
                Ok(b) => {
                    w.outstanding -= 1;
                    b
                }
                Err(_) => Batch::default(),
            },
        };
        next.clear();
        let full = std::mem::replace(&mut w.pending, next);
        w.outstanding += 1;
        // A send error means the worker died; the panic surfaces when
        // finish() joins the thread.
        let _ = w.tx.send(full);
    }

    /// Flushes every pending batch and blocks until all workers have
    /// fully processed everything submitted so far. On return the data
    /// plane is quiescent: no packet is in flight, and the guarantee
    /// that post-quiescence forwarding matches a fresh full compile of
    /// the cumulative rule set is testable. (A worker that died keeps
    /// its panic for [`Engine::finish`] to surface.)
    pub fn quiesce(&mut self) {
        for w in &mut self.workers {
            Self::flush_worker(w);
            while w.outstanding > 0 {
                match w.recycle_rx.recv() {
                    Ok(b) => {
                        w.outstanding -= 1;
                        w.pool.push(b);
                    }
                    Err(_) => break,
                }
            }
        }
    }

    /// Applies an incremental-compiler update to the running engine.
    ///
    /// The next-generation pipeline is built off the packet hot path:
    /// delta reports splice their per-table entry diffs into the
    /// engine's master template (reusing the match-engine
    /// allocations), while `full_rebuild` reports — the
    /// `NeedsFullRecompile` fallback round-tripped through the same
    /// channel — replace the template wholesale. Either way the result
    /// is published with an atomic generation bump; workers adopt it
    /// at their next batch boundary, carrying register state and
    /// counters over. Packets submitted after this returns are
    /// guaranteed to be processed by the new generation (or a later
    /// one); packets already in flight finish under the generation
    /// their batch started with — never a half-applied rule set.
    pub fn apply_update(&mut self, report: &UpdateReport) -> Result<(), CompileError> {
        report.apply_to(&mut self.template)?;
        if report.full_rebuild {
            self.full_swaps += 1;
        } else {
            self.delta_updates += 1;
        }
        self.publish();
        Ok(())
    }

    /// Full-swap fallback with an arbitrary pipeline (e.g. from a
    /// from-scratch [`Compiler::compile`](camus_core::Compiler) when no
    /// incremental session exists): replaces the template wholesale and
    /// publishes it. Workers still carry their register state over
    /// positionally on adoption.
    pub fn install_pipeline(&mut self, pipeline: &Pipeline) {
        self.template = pipeline.clone();
        self.template.exec.stats.reset();
        self.template.prepare();
        self.full_swaps += 1;
        self.publish();
    }

    /// Update-plane counters accumulated so far (worker adoption
    /// counts are only known at [`Engine::finish`]).
    pub fn update_stats(&self) -> UpdateStats {
        UpdateStats {
            published: self.delta_updates + self.full_swaps,
            delta_updates: self.delta_updates,
            full_swaps: self.full_swaps,
            adoptions: 0,
            coalesced: 0,
        }
    }

    fn publish(&mut self) {
        self.template.prepare();
        let next = Arc::new(self.template.clone());
        *self.published.slot.lock().expect("publish slot lock") = next;
        // Release pairs with the workers' Acquire load: a worker that
        // sees the new generation sees the new pipeline.
        self.published.generation.fetch_add(1, Ordering::Release);
    }

    /// Flushes remaining packets, joins every worker and aggregates
    /// the report.
    pub fn finish(self) -> EngineReport {
        let workers = self.workers.len();
        let mut per_worker = Vec::with_capacity(workers);
        let mut all_decisions: Vec<(u64, ForwardDecision)> = Vec::new();
        let mut error: Option<EngineError> = None;
        let mut updates = self.update_stats();

        let mut handles = Vec::with_capacity(workers);
        for mut w in self.workers {
            Self::flush_worker(&mut w);
            // Dropping the sender ends the worker's recv loop.
            drop(w.tx);
            drop(w.recycle_rx);
            handles.push(w.handle);
        }
        for handle in handles {
            let out = handle.join().expect("engine worker panicked");
            per_worker.push(out.stats);
            all_decisions.extend(out.decisions);
            updates.adoptions += out.adoptions;
            updates.coalesced += out.coalesced;
            if error.is_none() {
                error = out.error;
            }
        }

        let mut stats = ExecStats::default();
        for s in &per_worker {
            stats.merge(s);
        }
        all_decisions.sort_unstable_by_key(|(seq, _)| *seq);
        let decisions = all_decisions.into_iter().map(|(_, d)| d).collect();
        EngineReport {
            workers,
            stats,
            per_worker,
            decisions,
            error,
            updates,
        }
    }
}

/// Convenience one-shot: start, replay `packets`, finish.
pub fn run_trace<'a, I>(
    pipeline: &Pipeline,
    cfg: &EngineConfig,
    shard: ShardFn,
    packets: I,
) -> EngineReport
where
    I: IntoIterator<Item = (&'a [u8], u64)>,
{
    let mut engine = Engine::start(pipeline, cfg, shard);
    for (bytes, now_us) in packets {
        engine.submit(bytes, now_us);
    }
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_pipeline::parser::{Extract, ParseState, ParserSpec, StateId, Transition};
    use camus_pipeline::register::RegisterFile;
    use camus_pipeline::{
        ActionOp, Entry, ExecState, Key, MatchKind, MatchValue, MulticastTable, PhvLayout, PortId,
        Table,
    };
    use std::sync::Arc;

    /// One-byte-symbol pipeline: byte b forwards to port b for b in
    /// 1..=4; other bytes miss and drop.
    fn byte_pipeline() -> Pipeline {
        let mut layout = PhvLayout::new();
        let sym = layout.add("sym", 8);
        let parser = ParserSpec::new(
            vec![ParseState {
                name: "start".into(),
                extracts: vec![Extract {
                    dst: sym,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: false,
                next: Transition::Accept,
            }],
            StateId(0),
        );
        let mut table = Table::new(
            "leaf",
            vec![Key {
                field: sym,
                kind: MatchKind::Exact,
                bits: 8,
            }],
            vec![],
        );
        for b in 1u64..=4 {
            table
                .add_entry(Entry {
                    priority: 0,
                    matches: vec![MatchValue::Exact(b)],
                    ops: vec![ActionOp::Forward(PortId(b as u16))],
                })
                .unwrap();
        }
        Pipeline {
            layout,
            parser,
            tables: vec![table],
            mcast: MulticastTable::new(),
            registers: RegisterFile::new(),
            state_bindings: vec![],
            init_fields: vec![],
            exec: ExecState::default(),
        }
    }

    fn first_byte_shard() -> ShardFn {
        Arc::new(|p: &[u8]| u64::from(p.first().copied().unwrap_or(0)))
    }

    #[test]
    fn engine_matches_sequential_on_toy_pipeline() {
        let pipeline = byte_pipeline();
        let packets: Vec<Vec<u8>> = (0..500u32).map(|i| vec![(i % 7) as u8]).collect();

        let mut sequential = pipeline.clone();
        let expected: Vec<ForwardDecision> = packets
            .iter()
            .map(|p| sequential.process(p, 0).unwrap())
            .collect();

        for workers in [1usize, 2, 8] {
            let cfg = EngineConfig {
                workers,
                batch_packets: 16,
                record_decisions: true,
                ..Default::default()
            };
            let report = run_trace(
                &pipeline,
                &cfg,
                first_byte_shard(),
                packets.iter().map(|p| (p.as_slice(), 0u64)),
            );
            assert!(report.error.is_none(), "{:?}", report.error);
            assert_eq!(report.decisions, expected, "workers={workers}");
            assert_eq!(report.stats.packets, packets.len() as u64);
            assert_eq!(report.per_worker.len(), workers);
        }
    }

    #[test]
    fn stats_aggregate_across_workers() {
        let pipeline = byte_pipeline();
        let packets: Vec<Vec<u8>> = (0..256u32).map(|i| vec![(i % 8) as u8]).collect();
        let cfg = EngineConfig {
            workers: 4,
            batch_packets: 8,
            ..Default::default()
        };
        let report = run_trace(
            &pipeline,
            &cfg,
            first_byte_shard(),
            packets.iter().map(|p| (p.as_slice(), 0u64)),
        );
        assert_eq!(report.stats.packets, 256);
        assert_eq!(report.stats.messages, 256);
        // Bytes 1..=4 forward (4 of every 8), the rest miss.
        assert_eq!(report.stats.forwarded_packets, 128);
        assert_eq!(report.stats.dropped_packets, 128);
        let worker_sum: u64 = report.per_worker.iter().map(|s| s.packets).sum();
        assert_eq!(worker_sum, 256);
        // Per-stage counters survive aggregation.
        assert_eq!(report.stats.table_hits.iter().sum::<u64>(), 128);
        assert_eq!(report.stats.table_misses.iter().sum::<u64>(), 128);
    }

    #[test]
    fn errors_are_reported_with_packet_seq() {
        // The parser needs one byte; an empty packet underflows.
        let pipeline = byte_pipeline();
        let packets: Vec<Vec<u8>> = vec![vec![1], vec![], vec![2]];
        let cfg = EngineConfig {
            workers: 1,
            batch_packets: 1,
            record_decisions: true,
            ..Default::default()
        };
        let report = run_trace(
            &pipeline,
            &cfg,
            first_byte_shard(),
            packets.iter().map(|p| (p.as_slice(), 0u64)),
        );
        let err = report.error.expect("parse error surfaces");
        assert_eq!(err.packet_seq, 1);
        assert_eq!(err.worker, 0);
        // The packet before the failure still has its decision.
        assert_eq!(report.decisions[0].ports, vec![PortId(1)]);
    }

    #[test]
    fn install_pipeline_swaps_rules_at_a_quiescence_point() {
        let pipeline = byte_pipeline();
        // Alternate generation: byte 1 forwards to port 9 instead of 1,
        // spliced in via the same table API the delta path uses.
        let mut alt = byte_pipeline();
        let entry = |port| Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(1)],
            ops: vec![ActionOp::Forward(PortId(port))],
        };
        alt.tables[0]
            .splice_entries(&[entry(1)], &[entry(9)])
            .unwrap();

        let cfg = EngineConfig {
            workers: 2,
            batch_packets: 4,
            record_decisions: true,
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
        for _ in 0..40 {
            engine.submit(&[1], 0);
        }
        engine.quiesce();
        engine.install_pipeline(&alt);
        for _ in 0..40 {
            engine.submit(&[1], 0);
        }
        let report = engine.finish();
        assert!(report.error.is_none(), "{:?}", report.error);
        // Zero loss: every submitted packet has a decision.
        assert_eq!(report.decisions.len(), 80);
        // Quiescence before the swap makes the cutover exact.
        for d in &report.decisions[..40] {
            assert_eq!(d.ports, vec![PortId(1)]);
        }
        for d in &report.decisions[40..] {
            assert_eq!(d.ports, vec![PortId(9)]);
        }
        assert_eq!(report.stats.packets, 80);
        assert_eq!(report.updates.published, 1);
        assert_eq!(report.updates.full_swaps, 1);
        assert_eq!(report.updates.delta_updates, 0);
        assert!(report.updates.adoptions >= 1, "{:?}", report.updates);
    }

    #[test]
    fn quiesce_is_reentrant_and_safe_when_idle() {
        let pipeline = byte_pipeline();
        let cfg = EngineConfig {
            workers: 3,
            batch_packets: 5,
            record_decisions: true,
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
        engine.quiesce(); // nothing submitted yet
        for i in 0..57u32 {
            engine.submit(&[(i % 7) as u8], 0);
        }
        engine.quiesce();
        engine.quiesce(); // already drained: no-op
        for i in 0..13u32 {
            engine.submit(&[(i % 7) as u8], 0);
        }
        let report = engine.finish();
        assert!(report.error.is_none());
        assert_eq!(report.stats.packets, 70);
        assert_eq!(report.decisions.len(), 70);
    }

    #[test]
    fn coalesced_generations_are_counted() {
        let pipeline = byte_pipeline();
        let mut alt = byte_pipeline();
        let entry = |port| Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(1)],
            ops: vec![ActionOp::Forward(PortId(port))],
        };
        alt.tables[0]
            .splice_entries(&[entry(1)], &[entry(9)])
            .unwrap();
        let cfg = EngineConfig {
            workers: 1,
            batch_packets: 8,
            record_decisions: true,
            ..Default::default()
        };
        let mut engine = Engine::start(&pipeline, &cfg, first_byte_shard());
        engine.submit(&[1], 0);
        engine.quiesce();
        // Three generations published back-to-back while the worker has
        // no traffic: it adopts only the last one.
        engine.install_pipeline(&alt);
        engine.install_pipeline(&pipeline);
        engine.install_pipeline(&alt);
        for _ in 0..8 {
            engine.submit(&[1], 0);
        }
        let report = engine.finish();
        assert!(report.error.is_none());
        assert_eq!(report.updates.published, 3);
        assert_eq!(report.updates.adoptions, 1);
        assert_eq!(report.updates.coalesced, 2);
        assert_eq!(report.decisions.len(), 9);
        assert_eq!(report.decisions[0].ports, vec![PortId(1)]);
        for d in &report.decisions[1..] {
            assert_eq!(d.ports, vec![PortId(9)]);
        }
    }

    #[test]
    fn empty_run_finishes_cleanly() {
        let pipeline = byte_pipeline();
        let report = run_trace(
            &pipeline,
            &EngineConfig::with_workers(3),
            first_byte_shard(),
            std::iter::empty(),
        );
        assert_eq!(report.stats.packets, 0);
        assert!(report.error.is_none());
        assert_eq!(report.workers, 3);
    }
}
