//! # camus-engine — a multi-core sharded forwarding engine
//!
//! Wraps the sequential [`Pipeline`](camus_pipeline::Pipeline) executor
//! with N worker threads (std-only: `std::thread` plus bounded
//! channels), each owning a cloned pipeline, and shards packets
//! RSS-style on a flow key — by default the ITCH stock symbol
//! ([`shard::itch_symbol_shard`]).
//!
//! Camus's stateful rules (`@query_counter`) are keyed on the stock
//! symbol, so symbol sharding keeps every register slot's updates on
//! exactly one worker and the engine's forwarding decisions are
//! **bit-identical** to running the sequential executor over the same
//! trace (verified by the determinism test). Each worker processes its
//! packets in submission order through
//! [`Pipeline::process_batch`](camus_pipeline::Pipeline::process_batch),
//! the allocation-free batch hot path; batches and their byte arenas
//! are recycled through a return channel, so the steady state allocates
//! nothing per packet on either side of the queue.
//!
//! ```no_run
//! use camus_engine::{shard, Engine, EngineConfig};
//! # fn demo(pipeline: &camus_pipeline::Pipeline, trace: &[(Vec<u8>, u64)]) {
//! let mut engine = Engine::start(pipeline, &EngineConfig::default(),
//!                                shard::itch_symbol_shard());
//! for (bytes, now_us) in trace {
//!     engine.submit(bytes, *now_us);
//! }
//! let report = engine.finish();
//! println!("{} packets, {} matched messages",
//!          report.stats.packets, report.stats.matched_messages);
//! # }
//! ```

pub mod shard;

use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::thread::JoinHandle;

use camus_pipeline::{DecisionBuf, ExecStats, ForwardDecision, Pipeline, PipelineError};

pub use shard::ShardFn;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. Defaults to the machine's available parallelism.
    pub workers: usize,
    /// Packets accumulated per batch before hand-off to a worker.
    pub batch_packets: usize,
    /// Bounded depth (in batches) of each worker's input queue;
    /// [`Engine::submit`] applies backpressure when a worker lags.
    pub queue_batches: usize,
    /// Record every per-packet [`ForwardDecision`] in the report
    /// (needed by the determinism test; costs an allocation per packet,
    /// so leave off when benchmarking throughput).
    pub record_decisions: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_packets: 64,
            queue_batches: 8,
            record_decisions: false,
        }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..Default::default()
        }
    }
}

/// A flattened batch of packets: one contiguous byte arena plus
/// per-packet end offsets, so recycling a batch recycles every
/// allocation in it at once.
#[derive(Debug, Default)]
struct Batch {
    seqs: Vec<u64>,
    times: Vec<u64>,
    ends: Vec<usize>,
    bytes: Vec<u8>,
}

impl Batch {
    fn clear(&mut self) {
        self.seqs.clear();
        self.times.clear();
        self.ends.clear();
        self.bytes.clear();
    }

    fn len(&self) -> usize {
        self.seqs.len()
    }

    fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    fn push(&mut self, seq: u64, now_us: u64, packet: &[u8]) {
        self.seqs.push(seq);
        self.times.push(now_us);
        self.bytes.extend_from_slice(packet);
        self.ends.push(self.bytes.len());
    }

    fn packet(&self, i: usize) -> (&[u8], u64) {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        (&self.bytes[start..self.ends[i]], self.times[i])
    }

    fn iter(&self) -> impl Iterator<Item = (&[u8], u64)> {
        (0..self.len()).map(|i| self.packet(i))
    }
}

/// A pipeline error annotated with where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// Worker that hit the error.
    pub worker: usize,
    /// Submission sequence number of the failing packet.
    pub packet_seq: u64,
    /// The underlying pipeline error.
    pub error: PipelineError,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {} failed on packet {}: {}",
            self.worker, self.packet_seq, self.error
        )
    }
}

impl std::error::Error for EngineError {}

struct WorkerOutput {
    stats: ExecStats,
    decisions: Vec<(u64, ForwardDecision)>,
    error: Option<EngineError>,
}

struct WorkerHandle {
    tx: SyncSender<Batch>,
    recycle_rx: Receiver<Batch>,
    pending: Batch,
    handle: JoinHandle<WorkerOutput>,
}

/// The engine-level report: aggregated and per-worker counters, plus
/// (optionally) every forwarding decision in submission order.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Worker threads that ran.
    pub workers: usize,
    /// Aggregated execution counters across all workers.
    pub stats: ExecStats,
    /// Per-worker execution counters (index = worker).
    pub per_worker: Vec<ExecStats>,
    /// Per-packet decisions in submission order; empty unless
    /// [`EngineConfig::record_decisions`] was set. With an `error`,
    /// holds whatever completed, still in submission order.
    pub decisions: Vec<ForwardDecision>,
    /// First error any worker hit, if any. The failing worker stops
    /// processing further batches; other shards run to completion.
    pub error: Option<EngineError>,
}

/// A running multi-core engine. Create with [`Engine::start`], feed it
/// with [`Engine::submit`], then call [`Engine::finish`] to join the
/// workers and collect the [`EngineReport`].
pub struct Engine {
    workers: Vec<WorkerHandle>,
    shard: ShardFn,
    batch_packets: usize,
    next_seq: u64,
}

fn worker_loop(
    index: usize,
    mut pipeline: Pipeline,
    rx: Receiver<Batch>,
    recycle_tx: Sender<Batch>,
    record: bool,
) -> WorkerOutput {
    let mut out = DecisionBuf::default();
    let mut decisions: Vec<(u64, ForwardDecision)> = Vec::new();
    let mut error: Option<EngineError> = None;
    while let Ok(batch) = rx.recv() {
        if error.is_none() {
            out.clear();
            match pipeline.process_batch(batch.iter(), &mut out) {
                Ok(()) => {
                    if record {
                        for (i, d) in out.iter().enumerate() {
                            decisions.push((batch.seqs[i], d.clone()));
                        }
                    }
                }
                Err(e) => {
                    // The failing packet's slot is the last one claimed.
                    let seq = batch.seqs[out.len().saturating_sub(1)];
                    error = Some(EngineError {
                        worker: index,
                        packet_seq: seq,
                        error: e,
                    });
                }
            }
        }
        // Hand the batch back for reuse; the engine may already be
        // finishing, in which case the recycle side is simply gone.
        let _ = recycle_tx.send(batch);
    }
    WorkerOutput {
        stats: pipeline.exec.stats.clone(),
        decisions,
        error,
    }
}

impl Engine {
    /// Spawns the worker threads, each owning a clone of `pipeline`
    /// (tables prepared once up front, counters zeroed). Register
    /// *contents* are cloned as-is, so start from a freshly compiled
    /// pipeline for reproducible runs.
    pub fn start(pipeline: &Pipeline, cfg: &EngineConfig, shard: ShardFn) -> Engine {
        let n = cfg.workers.max(1);
        let mut template = pipeline.clone();
        template.prepare();
        template.exec.stats.reset();
        let workers = (0..n)
            .map(|wi| {
                let (tx, rx) = sync_channel::<Batch>(cfg.queue_batches.max(1));
                let (recycle_tx, recycle_rx) = channel::<Batch>();
                let worker_pipeline = template.clone();
                let record = cfg.record_decisions;
                let handle = std::thread::Builder::new()
                    .name(format!("camus-engine-{wi}"))
                    .spawn(move || worker_loop(wi, worker_pipeline, rx, recycle_tx, record))
                    .expect("spawn engine worker");
                WorkerHandle {
                    tx,
                    recycle_rx,
                    pending: Batch::default(),
                    handle,
                }
            })
            .collect();
        Engine {
            workers,
            shard,
            batch_packets: cfg.batch_packets.max(1),
            next_seq: 0,
        }
    }

    /// Routes one packet to its shard's worker. Packets with equal
    /// shard keys are processed in submission order on one worker.
    /// Blocks (backpressure) when that worker's queue is full.
    pub fn submit(&mut self, packet: &[u8], now_us: u64) {
        let key = (self.shard)(packet);
        let wi = (shard::mix64(key) % self.workers.len() as u64) as usize;
        let seq = self.next_seq;
        self.next_seq += 1;
        let w = &mut self.workers[wi];
        w.pending.push(seq, now_us, packet);
        if w.pending.len() >= self.batch_packets {
            Self::flush_worker(w);
        }
    }

    /// Packets submitted so far.
    pub fn submitted(&self) -> u64 {
        self.next_seq
    }

    fn flush_worker(w: &mut WorkerHandle) {
        if w.pending.is_empty() {
            return;
        }
        // Reuse a batch the worker has already drained, if one is
        // waiting; otherwise grow the pool by one.
        let mut next = w.recycle_rx.try_recv().unwrap_or_default();
        next.clear();
        let full = std::mem::replace(&mut w.pending, next);
        // A send error means the worker died; the panic surfaces when
        // finish() joins the thread.
        let _ = w.tx.send(full);
    }

    /// Flushes remaining packets, joins every worker and aggregates
    /// the report.
    pub fn finish(self) -> EngineReport {
        let workers = self.workers.len();
        let mut per_worker = Vec::with_capacity(workers);
        let mut all_decisions: Vec<(u64, ForwardDecision)> = Vec::new();
        let mut error: Option<EngineError> = None;

        let mut handles = Vec::with_capacity(workers);
        for mut w in self.workers {
            Self::flush_worker(&mut w);
            // Dropping the sender ends the worker's recv loop.
            drop(w.tx);
            drop(w.recycle_rx);
            handles.push(w.handle);
        }
        for handle in handles {
            let out = handle.join().expect("engine worker panicked");
            per_worker.push(out.stats);
            all_decisions.extend(out.decisions);
            if error.is_none() {
                error = out.error;
            }
        }

        let mut stats = ExecStats::default();
        for s in &per_worker {
            stats.merge(s);
        }
        all_decisions.sort_unstable_by_key(|(seq, _)| *seq);
        let decisions = all_decisions.into_iter().map(|(_, d)| d).collect();
        EngineReport {
            workers,
            stats,
            per_worker,
            decisions,
            error,
        }
    }
}

/// Convenience one-shot: start, replay `packets`, finish.
pub fn run_trace<'a, I>(
    pipeline: &Pipeline,
    cfg: &EngineConfig,
    shard: ShardFn,
    packets: I,
) -> EngineReport
where
    I: IntoIterator<Item = (&'a [u8], u64)>,
{
    let mut engine = Engine::start(pipeline, cfg, shard);
    for (bytes, now_us) in packets {
        engine.submit(bytes, now_us);
    }
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_pipeline::parser::{Extract, ParseState, ParserSpec, StateId, Transition};
    use camus_pipeline::register::RegisterFile;
    use camus_pipeline::{
        ActionOp, Entry, ExecState, Key, MatchKind, MatchValue, MulticastTable, PhvLayout, PortId,
        Table,
    };
    use std::sync::Arc;

    /// One-byte-symbol pipeline: byte b forwards to port b for b in
    /// 1..=4; other bytes miss and drop.
    fn byte_pipeline() -> Pipeline {
        let mut layout = PhvLayout::new();
        let sym = layout.add("sym", 8);
        let parser = ParserSpec::new(
            vec![ParseState {
                name: "start".into(),
                extracts: vec![Extract {
                    dst: sym,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: false,
                next: Transition::Accept,
            }],
            StateId(0),
        );
        let mut table = Table::new(
            "leaf",
            vec![Key {
                field: sym,
                kind: MatchKind::Exact,
                bits: 8,
            }],
            vec![],
        );
        for b in 1u64..=4 {
            table
                .add_entry(Entry {
                    priority: 0,
                    matches: vec![MatchValue::Exact(b)],
                    ops: vec![ActionOp::Forward(PortId(b as u16))],
                })
                .unwrap();
        }
        Pipeline {
            layout,
            parser,
            tables: vec![table],
            mcast: MulticastTable::new(),
            registers: RegisterFile::new(),
            state_bindings: vec![],
            init_fields: vec![],
            exec: ExecState::default(),
        }
    }

    fn first_byte_shard() -> ShardFn {
        Arc::new(|p: &[u8]| u64::from(p.first().copied().unwrap_or(0)))
    }

    #[test]
    fn engine_matches_sequential_on_toy_pipeline() {
        let pipeline = byte_pipeline();
        let packets: Vec<Vec<u8>> = (0..500u32).map(|i| vec![(i % 7) as u8]).collect();

        let mut sequential = pipeline.clone();
        let expected: Vec<ForwardDecision> = packets
            .iter()
            .map(|p| sequential.process(p, 0).unwrap())
            .collect();

        for workers in [1usize, 2, 8] {
            let cfg = EngineConfig {
                workers,
                batch_packets: 16,
                record_decisions: true,
                ..Default::default()
            };
            let report = run_trace(
                &pipeline,
                &cfg,
                first_byte_shard(),
                packets.iter().map(|p| (p.as_slice(), 0u64)),
            );
            assert!(report.error.is_none(), "{:?}", report.error);
            assert_eq!(report.decisions, expected, "workers={workers}");
            assert_eq!(report.stats.packets, packets.len() as u64);
            assert_eq!(report.per_worker.len(), workers);
        }
    }

    #[test]
    fn stats_aggregate_across_workers() {
        let pipeline = byte_pipeline();
        let packets: Vec<Vec<u8>> = (0..256u32).map(|i| vec![(i % 8) as u8]).collect();
        let cfg = EngineConfig {
            workers: 4,
            batch_packets: 8,
            ..Default::default()
        };
        let report = run_trace(
            &pipeline,
            &cfg,
            first_byte_shard(),
            packets.iter().map(|p| (p.as_slice(), 0u64)),
        );
        assert_eq!(report.stats.packets, 256);
        assert_eq!(report.stats.messages, 256);
        // Bytes 1..=4 forward (4 of every 8), the rest miss.
        assert_eq!(report.stats.forwarded_packets, 128);
        assert_eq!(report.stats.dropped_packets, 128);
        let worker_sum: u64 = report.per_worker.iter().map(|s| s.packets).sum();
        assert_eq!(worker_sum, 256);
        // Per-stage counters survive aggregation.
        assert_eq!(report.stats.table_hits.iter().sum::<u64>(), 128);
        assert_eq!(report.stats.table_misses.iter().sum::<u64>(), 128);
    }

    #[test]
    fn errors_are_reported_with_packet_seq() {
        // The parser needs one byte; an empty packet underflows.
        let pipeline = byte_pipeline();
        let packets: Vec<Vec<u8>> = vec![vec![1], vec![], vec![2]];
        let cfg = EngineConfig {
            workers: 1,
            batch_packets: 1,
            record_decisions: true,
            ..Default::default()
        };
        let report = run_trace(
            &pipeline,
            &cfg,
            first_byte_shard(),
            packets.iter().map(|p| (p.as_slice(), 0u64)),
        );
        let err = report.error.expect("parse error surfaces");
        assert_eq!(err.packet_seq, 1);
        assert_eq!(err.worker, 0);
        // The packet before the failure still has its decision.
        assert_eq!(report.decisions[0].ports, vec![PortId(1)]);
    }

    #[test]
    fn empty_run_finishes_cleanly() {
        let pipeline = byte_pipeline();
        let report = run_trace(
            &pipeline,
            &EngineConfig::with_workers(3),
            first_byte_shard(),
            std::iter::empty(),
        );
        assert_eq!(report.stats.packets, 0);
        assert!(report.error.is_none());
        assert_eq!(report.workers, 3);
    }
}
