//! Bounded single-producer / single-consumer rings for the engine's
//! batch hand-off.
//!
//! The previous data path used `std::sync::mpsc` channels, which take a
//! lock (and often a futex syscall) per send/recv. Batch hand-off is
//! strictly one engine thread talking to one worker thread in each
//! direction, so the full MPSC machinery is wasted: an SPSC ring needs
//! exactly two atomic words — a producer-owned `tail` and a
//! consumer-owned `head` — each on its own cache line so the two sides
//! never false-share.
//!
//! ## Memory layout and ordering
//!
//! ```text
//! Shared<T>:
//!   head  [64-byte line]  consumer cursor (written by consumer only)
//!   tail  [64-byte line]  producer cursor (written by producer only)
//!   flags [64-byte line]  tx_alive / rx_alive (hangup detection)
//!   slots Box<[UnsafeCell<Option<T>>]>, capacity a power of two
//! ```
//!
//! `push` writes the slot, then publishes it with a `Release` store of
//! `tail + 1`; `pop` loads `tail` with `Acquire`, so a consumer that
//! observes the new tail also observes the slot write. Symmetrically,
//! `pop` frees the slot before its `Release` store of `head + 1`, and
//! `push` loads `head` with `Acquire` before reusing a slot. Cursors
//! are free-running `usize`s (wrap-around is harmless modulo the
//! power-of-two capacity), `occupied = tail - head`.
//!
//! ## Hangup semantics
//!
//! The engine's supervision logic was written against channel
//! semantics, so the ring reproduces them exactly:
//!
//! * producer dropped → `tx_alive = false`; a consumer that finds the
//!   ring empty *and* the producer gone sees end-of-stream (`recv`
//!   returning `Err` in mpsc terms). Items pushed before the hangup
//!   are still delivered.
//! * consumer dropped → `rx_alive = false`; a producer push fails like
//!   `SendError`, handing the value back. The drop guard runs on panic
//!   unwind too, so a worker that dies any way at all is detected at
//!   the engine's next push.
//!
//! Blocking ops spin with [`std::hint::spin_loop`] and yield the CPU
//! every few iterations (mandatory on single-core hosts, where the
//! peer cannot run until we yield). Each side counts its wait
//! iterations — `full_spins` on the producer, `empty_spins` on the
//! consumer — which the engine surfaces as ring back-pressure
//! telemetry.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pads a value out to its own cache line to stop the producer and
/// consumer cursors from false-sharing.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Shared<T> {
    /// Consumer cursor: next slot to pop. Written by the consumer only.
    head: CachePadded<AtomicUsize>,
    /// Producer cursor: next slot to fill. Written by the producer only.
    tail: CachePadded<AtomicUsize>,
    /// Producer handle still exists (cleared by `Producer::drop`).
    tx_alive: AtomicBool,
    /// Consumer handle still exists (cleared by `Consumer::drop`).
    rx_alive: AtomicBool,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
    slots: Box<[UnsafeCell<Option<T>>]>,
}

// SAFETY: the ring is SPSC by construction — `Producer` and `Consumer`
// are the only handles, neither is `Clone`, and each slot is accessed
// mutably by at most one side at a time (the cursor protocol above).
// `T: Send` is required because values cross the thread boundary.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

/// Rounds `n` up to the next power of two (min 1).
pub fn round_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Creates a bounded SPSC ring. `capacity` is rounded up to a power of
/// two so slot indexing is a mask, not a division.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = round_pow2(capacity);
    let slots: Box<[UnsafeCell<Option<T>>]> = (0..cap).map(|_| UnsafeCell::new(None)).collect();
    let shared = Arc::new(Shared {
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        tx_alive: AtomicBool::new(true),
        rx_alive: AtomicBool::new(true),
        mask: cap - 1,
        slots,
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            full_spins: 0,
        },
        Consumer {
            shared,
            empty_spins: 0,
        },
    )
}

/// Why a non-blocking push did not take the value.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// Ring is full; the value is handed back. Retry after the
    /// consumer drains.
    Full(T),
    /// The consumer is gone; no push will ever succeed again.
    Gone(T),
}

/// Result of a deadline-bounded pop.
#[derive(Debug)]
pub enum PopDeadline<T> {
    /// An item was drained.
    Item(T),
    /// Ring empty and the deadline passed; the producer is still alive.
    Timeout,
    /// Ring empty and the producer hung up — end of stream.
    Closed,
}

/// Sending half of the ring. Dropping it closes the stream: the
/// consumer drains what remains, then sees end-of-stream.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Wait iterations spent in [`Producer::push_blocking`] on a full
    /// ring — the engine's back-pressure signal.
    full_spins: u64,
}

impl<T> Producer<T> {
    /// Attempts a push without blocking.
    pub fn try_push(&mut self, value: T) -> Result<(), PushError<T>> {
        let s = &*self.shared;
        if !s.rx_alive.load(Ordering::Acquire) {
            return Err(PushError::Gone(value));
        }
        let tail = s.tail.0.load(Ordering::Relaxed);
        let head = s.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > s.mask {
            return Err(PushError::Full(value));
        }
        // SAFETY: slot `tail & mask` is outside the occupied window
        // [head, tail), so the consumer will not touch it until the
        // Release store below publishes it; we are the only producer.
        unsafe {
            *s.slots[tail & s.mask].get() = Some(value);
        }
        s.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Pushes, spinning (with periodic yields) while the ring is full.
    /// Returns the value back when the consumer is gone — the
    /// `SendError` equivalent the engine's respawn logic keys on.
    pub fn push_blocking(&mut self, mut value: T) -> Result<(), T> {
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Gone(v)) => return Err(v),
                Err(PushError::Full(v)) => {
                    value = v;
                    self.full_spins += 1;
                    backoff(self.full_spins);
                }
            }
        }
    }

    /// Wait iterations spent on a full ring so far.
    pub fn full_spins(&self) -> u64 {
        self.full_spins
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.tx_alive.store(false, Ordering::Release);
    }
}

/// Receiving half of the ring. Dropping it (including during a panic
/// unwind) marks the consumer dead so producer pushes fail fast.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Wait iterations spent in blocking pops on an empty ring.
    empty_spins: u64,
}

impl<T> Consumer<T> {
    /// Attempts a pop without blocking.
    pub fn try_pop(&mut self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.0.load(Ordering::Relaxed);
        let tail = s.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: slot `head & mask` is inside the occupied window, so
        // the producer published it (Acquire on tail above) and will
        // not reuse it until the Release store below frees it.
        let value = unsafe { (*s.slots[head & s.mask].get()).take() };
        s.head.0.store(head.wrapping_add(1), Ordering::Release);
        value
    }

    /// Pops, spinning while the ring is empty; `None` means the
    /// producer hung up and everything it pushed has been drained —
    /// the `recv() == Err` end-of-stream the worker loop exits on.
    pub fn pop_blocking(&mut self) -> Option<T> {
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            // Re-check emptiness *after* observing the hangup flag:
            // the producer's final pushes happen-before its drop.
            if !self.shared.tx_alive.load(Ordering::Acquire) {
                return self.try_pop();
            }
            self.empty_spins += 1;
            backoff(self.empty_spins);
        }
    }

    /// Pops with a deadline — the `recv_timeout` the quiesce watchdog
    /// needs. Drains available items first, then distinguishes a slow
    /// producer ([`PopDeadline::Timeout`]) from a dead one
    /// ([`PopDeadline::Closed`]).
    pub fn pop_deadline(&mut self, timeout: Duration) -> PopDeadline<T> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(v) = self.try_pop() {
                return PopDeadline::Item(v);
            }
            if !self.shared.tx_alive.load(Ordering::Acquire) {
                return match self.try_pop() {
                    Some(v) => PopDeadline::Item(v),
                    None => PopDeadline::Closed,
                };
            }
            if Instant::now() >= deadline {
                return PopDeadline::Timeout;
            }
            self.empty_spins += 1;
            backoff(self.empty_spins);
        }
    }

    /// Wait iterations spent on an empty ring so far.
    pub fn empty_spins(&self) -> u64 {
        self.empty_spins
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.rx_alive.store(false, Ordering::Release);
    }
}

/// Wait strategy: a handful of pipeline-friendly spin hints, then yield
/// the timeslice. The yield is load-bearing on single-core hosts —
/// without it the spinning side starves the peer it is waiting for.
fn backoff(iteration: u64) {
    if iteration.is_multiple_of(8) {
        std::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_capacity() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert!(matches!(tx.try_push(99), Err(PushError::Full(99))));
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (mut tx, mut rx) = ring::<u8>(5); // rounds to 8
        for i in 0..8 {
            tx.try_push(i).unwrap();
        }
        assert!(matches!(tx.try_push(8), Err(PushError::Full(8))));
        assert_eq!(rx.try_pop(), Some(0));
        // Freed slot is immediately reusable.
        tx.try_push(8).unwrap();
    }

    #[test]
    fn cursors_survive_many_wraps() {
        let (mut tx, mut rx) = ring::<usize>(2);
        for i in 0..1000 {
            tx.try_push(i).unwrap();
            assert_eq!(rx.try_pop(), Some(i));
        }
    }

    #[test]
    fn producer_drop_closes_after_drain() {
        let (mut tx, mut rx) = ring::<u32>(4);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        drop(tx);
        // Buffered items still come out, then end-of-stream.
        assert_eq!(rx.pop_blocking(), Some(1));
        assert_eq!(rx.pop_blocking(), Some(2));
        assert_eq!(rx.pop_blocking(), None);
        assert!(matches!(
            rx.pop_deadline(Duration::from_millis(1)),
            PopDeadline::Closed
        ));
    }

    #[test]
    fn consumer_drop_fails_pushes() {
        let (mut tx, rx) = ring::<u32>(4);
        drop(rx);
        assert!(matches!(tx.try_push(7), Err(PushError::Gone(7))));
        assert_eq!(tx.push_blocking(7), Err(7));
    }

    #[test]
    fn pop_deadline_times_out_on_slow_producer() {
        let (_tx, mut rx) = ring::<u32>(4);
        let start = Instant::now();
        assert!(matches!(
            rx.pop_deadline(Duration::from_millis(10)),
            PopDeadline::Timeout
        ));
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert!(rx.empty_spins() > 0);
    }

    #[test]
    fn cross_thread_stream_is_lossless_and_ordered() {
        const N: u64 = 50_000;
        let (mut tx, mut rx) = ring::<u64>(8);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.push_blocking(i).unwrap();
            }
            tx.full_spins()
        });
        let mut expected = 0u64;
        while let Some(v) = rx.pop_blocking() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, N);
        // Both wait counters are observable (tiny ring forces waits on
        // at least one side; which one depends on scheduling).
        let full = producer.join().unwrap();
        let _ = full + rx.empty_spins();
    }

    #[test]
    fn panic_unwind_trips_the_consumer_guard() {
        let (mut tx, rx) = ring::<u32>(4);
        let worker = std::thread::spawn(move || {
            let _rx = rx; // owned by the panicking thread
            panic!("scripted");
        });
        assert!(worker.join().is_err());
        // Unwind dropped the consumer: pushes now fail like SendError.
        assert_eq!(tx.push_blocking(1), Err(1));
    }
}
