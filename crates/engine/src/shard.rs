//! Flow sharding for the multi-core engine.
//!
//! The shard key decides which worker — and therefore which register
//! file — a packet's messages update. Camus's stateful rules
//! (`@query_counter`) are keyed on the ITCH stock symbol, so sharding
//! on the symbol keeps every counter's updates on a single worker and
//! makes the multi-core engine's decisions identical to the sequential
//! executor's (see DESIGN.md, "Engine architecture").
//!
//! [`itch_symbol_key`] walks the raw frame (Ethernet → IPv4 → UDP →
//! MoldUDP64 → ITCH) without allocating and returns the first
//! add-order's 8-byte symbol; packets with no add-order fall back to a
//! FNV-1a hash of the whole frame, which at least spreads them evenly.

use std::sync::Arc;

/// A shard-key extractor: raw frame → 64-bit flow key.
pub type ShardFn = Arc<dyn Fn(&[u8]) -> u64 + Send + Sync>;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates low bits before `% workers`, so
/// structured keys (ASCII symbols) still spread evenly.
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

const ETH_LEN: usize = 14;
const UDP_LEN: usize = 8;
const MOLD_HEADER_LEN: usize = 20;
const ADD_ORDER_LEN: usize = 36;
/// Offset of the 8-byte stock field inside an add-order message
/// (type 1 + locate 2 + tracking 2 + timestamp 6 + order_ref 8 +
/// side 1 + shares 4).
const STOCK_OFFSET: usize = 24;

/// Extracts the first add-order's stock symbol (as a big-endian `u64`)
/// from an Ethernet/IPv4/UDP/MoldUDP64/ITCH frame. Returns `None` when
/// any layer is malformed or the packet carries no add-order message.
///
/// Multi-byte fields use the SWAR loads from [`camus_itch::bytes`]
/// (single wide reads with zero-filled tails), so the walk stays
/// branch-lean and panic-free even on truncated frames — the explicit
/// length guards keep the semantics identical to the old
/// byte-at-a-time version.
pub fn itch_symbol_key(packet: &[u8]) -> Option<u64> {
    use camus_itch::bytes::{load_be_u16, load_be_u64};
    if packet.len() < ETH_LEN + 20 {
        return None;
    }
    // Ethertype must be IPv4.
    if load_be_u16(packet, 12) != 0x0800 {
        return None;
    }
    let ip = &packet[ETH_LEN..];
    let ihl = usize::from(ip[0] & 0x0f) * 4;
    if ip[0] >> 4 != 4 || ihl < 20 || ip.len() < ihl + UDP_LEN {
        return None;
    }
    if ip[9] != 17 {
        return None;
    }
    let mold = &ip[ihl + UDP_LEN..];
    if mold.len() < MOLD_HEADER_LEN {
        return None;
    }
    let count = usize::from(load_be_u16(mold, 18));
    let mut off = MOLD_HEADER_LEN;
    for _ in 0..count {
        if off + 2 > mold.len() {
            return None;
        }
        let len = usize::from(load_be_u16(mold, off));
        off += 2;
        if off + len > mold.len() {
            return None;
        }
        let msg = &mold[off..off + len];
        if len >= ADD_ORDER_LEN && msg[0] == b'A' {
            // One 8-byte read; len >= 36 guarantees it is in bounds.
            return Some(load_be_u64(msg, STOCK_OFFSET));
        }
        off += len;
    }
    None
}

/// The default shard function: first add-order symbol, FNV-1a over the
/// whole frame as fallback.
pub fn itch_symbol_shard() -> ShardFn {
    Arc::new(|packet| itch_symbol_key(packet).unwrap_or_else(|| fnv1a(packet)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_itch::itch::{encode_stock, AddOrder, ItchMessage, Side};
    use camus_itch::{build_feed_packet, FeedConfig};

    #[test]
    fn extracts_first_add_order_symbol() {
        let cfg = FeedConfig::default();
        let msgs = vec![
            ItchMessage::OrderDelete { order_ref: 1 },
            ItchMessage::AddOrder(AddOrder::new("GOOGL", Side::Buy, 10, 100)),
            ItchMessage::AddOrder(AddOrder::new("MSFT", Side::Sell, 20, 200)),
        ];
        let pkt = build_feed_packet(&cfg, 1, &msgs);
        let key = itch_symbol_key(&pkt).unwrap();
        assert_eq!(key, u64::from_be_bytes(encode_stock("GOOGL")));
    }

    #[test]
    fn no_add_order_means_none() {
        let cfg = FeedConfig::default();
        let pkt = build_feed_packet(&cfg, 1, &[ItchMessage::OrderDelete { order_ref: 1 }]);
        assert_eq!(itch_symbol_key(&pkt), None);
        // The shard fn still yields a stable key.
        let shard = itch_symbol_shard();
        assert_eq!(shard(&pkt), shard(&pkt));
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert_eq!(itch_symbol_key(&[]), None);
        assert_eq!(itch_symbol_key(&[0u8; 40]), None);
        let cfg = FeedConfig::default();
        let mut pkt = build_feed_packet(
            &cfg,
            1,
            &[ItchMessage::AddOrder(AddOrder::new(
                "GOOGL",
                Side::Buy,
                1,
                1,
            ))],
        );
        // Truncate mid-message: the walk must bail, not panic.
        pkt.truncate(pkt.len() - 10);
        assert_eq!(itch_symbol_key(&pkt), None);
    }

    #[test]
    fn same_symbol_same_key_across_packets() {
        let cfg = FeedConfig::default();
        let a = build_feed_packet(
            &cfg,
            1,
            &[ItchMessage::AddOrder(AddOrder::new(
                "AAPL",
                Side::Buy,
                5,
                50,
            ))],
        );
        let b = build_feed_packet(
            &cfg,
            999,
            &[ItchMessage::AddOrder(AddOrder::new(
                "AAPL",
                Side::Sell,
                9,
                90,
            ))],
        );
        assert_eq!(itch_symbol_key(&a), itch_symbol_key(&b));
    }
}
