//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p camus-bench --bin figures -- all
//! cargo run --release -p camus-bench --bin figures -- fig5c --fast
//! ```
//!
//! Prints each series as a text table and writes the raw rows as JSON
//! under `results/` (next to the workspace root), so EXPERIMENTS.md
//! numbers are regenerable and diffable.

use std::fs;
use std::path::PathBuf;

use camus_bench::figures;
use camus_bench::json::{self, ToJson};

fn usage() -> ! {
    eprintln!(
        "usage: figures [fig5a|fig5b|fig5c|fig7a|fig7b|linerate|ablations|incremental|all] [--fast]\n\
         \n\
         --fast    smaller sweeps/traces (CI-sized); full runs match EXPERIMENTS.md"
    );
    std::process::exit(2);
}

fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

fn dump_json<T: ToJson>(name: &str, rows: &T) {
    let path = results_dir().join(format!("{name}.json"));
    if let Err(e) = fs::write(&path, json::to_string_pretty(rows)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("  -> {}", path.display());
    }
}

fn run_fig5a() {
    println!("== Figure 5a: table entries vs #subscriptions (Siena workload) ==");
    let rows = figures::fig5a();
    println!(
        "{:>14} {:>14} {:>11} {:>13}",
        "subscriptions", "table entries", "bdd nodes", "mcast groups"
    );
    for r in &rows {
        println!(
            "{:>14} {:>14} {:>11} {:>13}",
            r.subscriptions, r.table_entries, r.bdd_nodes, r.mcast_groups
        );
    }
    dump_json("fig5a", &rows);
}

fn run_fig5b() {
    println!("== Figure 5b: table entries vs #predicates per subscription ==");
    let rows = figures::fig5b();
    println!(
        "{:>11} {:>14} {:>11}",
        "predicates", "table entries", "bdd nodes"
    );
    for r in &rows {
        println!(
            "{:>11} {:>14} {:>11}",
            r.predicates, r.table_entries, r.bdd_nodes
        );
    }
    dump_json("fig5b", &rows);
}

fn run_fig5c(fast: bool) {
    println!("== Figure 5c: compile time vs #subscriptions (ITCH workload) ==");
    let rows = figures::fig5c(fast);
    println!(
        "{:>14} {:>12} {:>14} {:>13} {:>6}",
        "subscriptions", "compile (ms)", "table entries", "mcast groups", "fits"
    );
    for r in &rows {
        println!(
            "{:>14} {:>12.1} {:>14} {:>13} {:>6}",
            r.subscriptions, r.compile_ms, r.table_entries, r.mcast_groups, r.fits
        );
    }
    dump_json("fig5c", &rows);
}

fn print_panel(p: &figures::Fig7Panel) {
    for s in [&p.baseline, &p.switch_filtering] {
        println!(
            "  {:<26} measured={:<7} p50={:>8.1}us p99={:>8.1}us p99.5={:>8.1}us max={:>8.1}us \
             <=20us={:>6.2}% <=50us={:>6.2}% drops={}",
            s.label,
            s.measured,
            s.p50_us,
            s.p99_us,
            s.p995_us,
            s.max_us,
            s.within_20us * 100.0,
            s.within_50us * 100.0,
            s.drops
        );
    }
    println!("  CDF (latency_us, fraction) every 10th sample:");
    for s in [&p.baseline, &p.switch_filtering] {
        let pts: Vec<String> = s
            .cdf
            .iter()
            .step_by(10)
            .map(|(us, f)| format!("({us:.1},{f:.2})"))
            .collect();
        println!("    {:<26} {}", s.label, pts.join(" "));
    }
}

fn run_fig7(kind: &str, fast: bool) {
    println!(
        "== Figure 7{}: latency CDF, {} trace ==",
        if kind == "nasdaq" { "a" } else { "b" },
        kind
    );
    let p = figures::fig7(kind, fast);
    print_panel(&p);
    dump_json(&format!("fig7_{kind}"), &p);
}

fn run_linerate(fast: bool) {
    println!("== Line rate: full switch bandwidth (§4 throughput claim) ==");
    let rows = figures::linerate(fast);
    println!(
        "{:<18} {:>6} {:>13} {:>15} {:>10} {:>14}",
        "model", "ports", "offered Tb/s", "forwarded Tb/s", "peak util", "msgs/sec"
    );
    for r in &rows {
        println!(
            "{:<18} {:>6} {:>13.2} {:>15.2} {:>10.3} {:>14.3e}",
            r.model,
            r.ports,
            r.offered_tbps,
            r.forwarded_tbps,
            r.peak_egress_utilization,
            r.messages_per_sec
        );
    }
    dump_json("linerate", &rows);
}

fn run_incremental(fast: bool) {
    println!("== Incremental recompilation (paper §3 future work) ==");
    let rows = figures::incremental(fast);
    println!(
        "{:>6} {:>12} {:>10} {:>16} {:>9} {:>9} {:>9}",
        "batch", "rules total", "full (ms)", "incremental (ms)", "added", "removed", "kept"
    );
    for r in &rows {
        println!(
            "{:>6} {:>12} {:>10.1} {:>16.1} {:>9} {:>9} {:>9}",
            r.batch,
            r.rules_total,
            r.full_ms,
            r.incremental_ms,
            r.entries_added,
            r.entries_removed,
            r.entries_kept
        );
    }
    dump_json("incremental", &rows);
}

fn run_ablations(fast: bool) {
    println!("== Ablations (§3.2 design choices) ==");
    let rows = figures::ablations(fast);
    println!(
        "{:<20} {:<18} {:>9} {:>10} {:>11} {:>10} {:>6} {:>10}",
        "experiment", "config", "entries", "bdd nodes", "tcam slcs", "sram", "fits", "ms"
    );
    for r in &rows {
        println!(
            "{:<20} {:<18} {:>9} {:>10} {:>11} {:>10} {:>6} {:>10.1}",
            r.experiment,
            r.config,
            r.table_entries,
            r.bdd_nodes,
            r.tcam_slices,
            r.sram_entries,
            r.fits,
            r.compile_ms
        );
    }
    dump_json("ablations", &rows);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };

    for w in which {
        match w {
            "fig5a" => run_fig5a(),
            "fig5b" => run_fig5b(),
            "fig5c" => run_fig5c(fast),
            "fig7a" => run_fig7("nasdaq", fast),
            "fig7b" => run_fig7("synthetic", fast),
            "fig7" => {
                run_fig7("nasdaq", fast);
                run_fig7("synthetic", fast);
            }
            "linerate" => run_linerate(fast),
            "ablations" => run_ablations(fast),
            "incremental" => run_incremental(fast),
            "all" => {
                run_fig5a();
                run_fig5b();
                run_fig5c(fast);
                run_fig7("nasdaq", fast);
                run_fig7("synthetic", fast);
                run_linerate(fast);
                run_ablations(fast);
                run_incremental(fast);
            }
            _ => usage(),
        }
        println!();
    }
}
