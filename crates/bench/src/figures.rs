//! Regeneration of every table and figure in the paper's evaluation
//! (§4), plus the ablations DESIGN.md calls out.
//!
//! Each `fig*` function returns plain data rows (JSON-renderable via
//! [`crate::json::ToJson`]); the `figures` binary renders them as text
//! tables and JSON. Absolute
//! numbers differ from the paper (different hardware, synthesized
//! traces — see DESIGN.md §2); the *shapes* are the reproduction
//! targets recorded in EXPERIMENTS.md.

use std::time::Instant;

use crate::impl_to_json;
use camus_bdd::order::OrderHeuristic;
use camus_core::{Compiler, CompilerOptions};
use camus_lang::parse_spec;
use camus_netsim::{run_experiment, ExperimentConfig, FilterMode};
use camus_pipeline::resources::AsicModel;
use camus_workload::{
    generate_itch_subscriptions, synthesize_feed, ItchSubsConfig, SienaConfig, TraceConfig,
};

/// Builds the default ITCH compiler.
fn itch_compiler(options: CompilerOptions) -> Compiler {
    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).expect("built-in spec parses");
    Compiler::new(spec, options).expect("built-in spec compiles")
}

// ---------------------------------------------------------------- fig 5a

/// One row of Figure 5a: table entries vs. number of subscriptions.
#[derive(Debug, Clone)]
pub struct Fig5aRow {
    /// Number of Siena subscriptions.
    pub subscriptions: usize,
    /// Total table entries on the switch.
    pub table_entries: usize,
    /// Reachable BDD nodes.
    pub bdd_nodes: usize,
    /// Multicast groups.
    pub mcast_groups: usize,
}

impl_to_json!(Fig5aRow {
    subscriptions,
    table_entries,
    bdd_nodes,
    mcast_groups
});

/// Figure 5a: "the number of table entries required on the switch as we
/// vary … number of subscriptions" (10–45, Siena workload).
pub fn fig5a() -> Vec<Fig5aRow> {
    (10..=45)
        .step_by(5)
        .map(|n| {
            let cfg = SienaConfig {
                subscriptions: n,
                ..Default::default()
            };
            let w = cfg.generate();
            let compiler =
                Compiler::new(w.spec.clone(), CompilerOptions::raw()).expect("siena spec compiles");
            let prog = compiler.compile(&w.rules).expect("siena rules compile");
            Fig5aRow {
                subscriptions: n,
                table_entries: prog.stats.total_entries,
                bdd_nodes: prog.stats.bdd_nodes,
                mcast_groups: prog.stats.mcast_groups,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- fig 5b

/// One row of Figure 5b: table entries vs. predicates per subscription.
#[derive(Debug, Clone)]
pub struct Fig5bRow {
    /// Predicates in each subscription's conjunction.
    pub predicates: usize,
    /// Total table entries.
    pub table_entries: usize,
    /// Reachable BDD nodes.
    pub bdd_nodes: usize,
}

impl_to_json!(Fig5bRow {
    predicates,
    table_entries,
    bdd_nodes
});

/// Figure 5b: entries vs. selectiveness (2–8 predicates). "More
/// selective subscription conditions … require fewer table entries,
/// which is because they result in fewer paths in the BDD."
pub fn fig5b() -> Vec<Fig5bRow> {
    (2..=8)
        .map(|k| {
            let cfg = SienaConfig {
                subscriptions: 30,
                predicates_per_subscription: k,
                int_attributes: 5,
                symbol_attributes: 3,
                ..Default::default()
            };
            let w = cfg.generate();
            let compiler =
                Compiler::new(w.spec.clone(), CompilerOptions::raw()).expect("siena spec compiles");
            let prog = compiler.compile(&w.rules).expect("siena rules compile");
            Fig5bRow {
                predicates: k,
                table_entries: prog.stats.total_entries,
                bdd_nodes: prog.stats.bdd_nodes,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- fig 5c

/// One row of Figure 5c: compile time vs. number of subscriptions.
#[derive(Debug, Clone)]
pub struct Fig5cRow {
    /// ITCH subscriptions compiled.
    pub subscriptions: usize,
    /// Wall-clock compile time, milliseconds.
    pub compile_ms: f64,
    /// Total (logical) table entries.
    pub table_entries: usize,
    /// Multicast groups.
    pub mcast_groups: usize,
    /// Whether the program fits the 12-stage Tofino model.
    pub fits: bool,
}

impl_to_json!(Fig5cRow {
    subscriptions,
    compile_ms,
    table_entries,
    mcast_groups,
    fits
});

/// Figure 5c: compiler runtime on the ITCH workload
/// (`stock == S ∧ price > P : fwd(H)`), up to 100 K subscriptions. The
/// paper's checkpoint: "Compiling 100K subscriptions resulted in 21,401
/// table entries and 198 multicast groups, which can easily fit in
/// switch memory."
pub fn fig5c(fast: bool) -> Vec<Fig5cRow> {
    let points: &[usize] = if fast {
        &[1_000, 5_000, 10_000, 25_000]
    } else {
        &[1_000, 5_000, 10_000, 25_000, 50_000, 100_000]
    };
    points
        .iter()
        .map(|&n| {
            let cfg = ItchSubsConfig {
                subscriptions: n,
                ..Default::default()
            };
            let rules = generate_itch_subscriptions(&cfg);
            let compiler = itch_compiler(CompilerOptions {
                compress_bits: Some(10),
                ..CompilerOptions::default()
            });
            let t = Instant::now();
            let prog = compiler.compile(&rules).expect("itch subs compile");
            Fig5cRow {
                subscriptions: n,
                compile_ms: t.elapsed().as_secs_f64() * 1e3,
                table_entries: prog.stats.total_entries,
                mcast_groups: prog.stats.mcast_groups,
                fits: prog.placement.fits(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- fig 7

/// Summary of one latency CDF (one line of Figure 7).
#[derive(Debug, Clone)]
pub struct CdfSummary {
    /// Configuration label.
    pub label: String,
    /// Target messages measured.
    pub measured: usize,
    /// `(latency_us, fraction)` CDF samples.
    pub cdf: Vec<(f64, f64)>,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.5th percentile, µs.
    pub p995_us: f64,
    /// Maximum, µs.
    pub max_us: f64,
    /// Fraction delivered within 20 µs.
    pub within_20us: f64,
    /// Fraction delivered within 50 µs.
    pub within_50us: f64,
    /// Packets dropped (switch + host).
    pub drops: usize,
}

impl_to_json!(CdfSummary {
    label,
    measured,
    cdf,
    p50_us,
    p99_us,
    p995_us,
    max_us,
    within_20us,
    within_50us,
    drops,
});

/// Both lines of one Figure 7 panel.
#[derive(Debug, Clone)]
pub struct Fig7Panel {
    /// Workload name ("nasdaq" or "synthetic").
    pub workload: String,
    /// End-host software filtering.
    pub baseline: CdfSummary,
    /// Switch filtering with the compiled Camus pipeline.
    pub switch_filtering: CdfSummary,
}

impl_to_json!(Fig7Panel {
    workload,
    baseline,
    switch_filtering
});

fn summarize(label: &str, r: &camus_netsim::ExperimentResult) -> CdfSummary {
    CdfSummary {
        label: label.to_string(),
        measured: r.stats.len(),
        cdf: r.stats.cdf(100),
        p50_us: r.stats.percentile(0.50) as f64 / 1000.0,
        p99_us: r.stats.percentile(0.99) as f64 / 1000.0,
        p995_us: r.stats.percentile(0.995) as f64 / 1000.0,
        max_us: r.stats.max() as f64 / 1000.0,
        within_20us: r.stats.fraction_within(20_000),
        within_50us: r.stats.fraction_within(50_000),
        drops: r.drops_switch + r.drops_host,
    }
}

/// Compiles the experiment's subscription ("the subscriber filters the
/// feed for add-order messages with stock symbol GOOGL") and runs both
/// configurations.
pub fn fig7(kind: &str, fast: bool) -> Fig7Panel {
    let messages = if fast { 200_000 } else { 1_000_000 };
    let trace = match kind {
        "nasdaq" => synthesize_feed(&TraceConfig::nasdaq_like(messages)),
        "synthetic" => synthesize_feed(&TraceConfig::synthetic(messages)),
        other => panic!("unknown workload `{other}`"),
    };
    let cfg = ExperimentConfig::default();

    let baseline = run_experiment(&trace, FilterMode::Baseline, &cfg);

    let compiler = itch_compiler(CompilerOptions::default());
    let rules = camus_lang::parse_program("stock == GOOGL : fwd(1)").expect("rule parses");
    let prog = compiler.compile(&rules).expect("GOOGL rule compiles");
    let camus = run_experiment(&trace, FilterMode::Switch(Box::new(prog.pipeline)), &cfg);

    Fig7Panel {
        workload: kind.to_string(),
        baseline: summarize("baseline (host filtering)", &baseline),
        switch_filtering: summarize("camus (switch filtering)", &camus),
    }
}

// ------------------------------------------------------------- line rate

/// One row of the line-rate experiment.
#[derive(Debug, Clone)]
pub struct LineRateRow {
    /// ASIC model name.
    pub model: String,
    /// Front-panel ports.
    pub ports: u16,
    /// Aggregate offered load, Tb/s (all ports at line rate).
    pub offered_tbps: f64,
    /// Aggregate load forwarded to egress ports, Tb/s.
    pub forwarded_tbps: f64,
    /// Peak egress-port utilization (must stay ≤ 1 for zero loss).
    pub peak_egress_utilization: f64,
    /// Messages evaluated per second at that load (aggregate).
    pub messages_per_sec: f64,
    /// Sample messages run through the actual compiled pipeline.
    pub sample_messages: usize,
}

impl_to_json!(LineRateRow {
    model,
    ports,
    offered_tbps,
    forwarded_tbps,
    peak_egress_utilization,
    messages_per_sec,
    sample_messages,
});

/// The §4 line-rate claim: "message processing at line rate using the
/// full switch bandwidth of 6.5Tbps" (3.25 Tb/s on the 32-port box).
///
/// Every port ingests minimum-size feed packets back-to-back; rules
/// spread the symbol universe evenly over all egress ports, so the
/// egress side is exactly as loaded as the ingress side. The compiled
/// pipeline executes on a sample of the stream to demonstrate
/// functional filtering; the aggregate arithmetic is the bandwidth
/// model's.
pub fn linerate(fast: bool) -> Vec<LineRateRow> {
    [AsicModel::tofino32(), AsicModel::tofino64()]
        .into_iter()
        .map(|model| {
            let ports = model.ports;
            // Rules: every symbol forwarded to some port — all traffic
            // is "interesting", the worst case for the egress side. The
            // universe is a multiple of the port count so the expected
            // egress load is exactly balanced.
            let symbols = usize::from(ports) * 6;
            let src: String = (0..symbols)
                .map(|i| {
                    format!(
                        "stock == {} : fwd({})\n",
                        camus_workload::itch_subs::stock_symbol(i),
                        i as u16 % ports + 1
                    )
                })
                .collect();
            let rules = camus_lang::parse_program(&src).expect("rules parse");
            let compiler = itch_compiler(CompilerOptions::default());
            let prog = compiler.compile(&rules).expect("rules compile");
            let mut pipeline = prog.pipeline;

            // Sample feed: uniform symbols, 1 message per packet.
            let sample = if fast { 50_000 } else { 200_000 };
            let trace = synthesize_feed(&TraceConfig {
                target_fraction: 0.0,
                add_order_fraction: 1.0,
                burst_multiplier: 1.0,
                symbols,
                ..TraceConfig::synthetic(sample)
            });

            // Execute the pipeline on the sample; tally egress bytes.
            let mut egress_bytes = vec![0u64; usize::from(ports) + 1];
            let mut total_bytes = 0u64;
            for p in &trace {
                total_bytes += p.bytes.len() as u64;
                if let Ok(d) = pipeline.process(&p.bytes, 0) {
                    for port in &d.ports {
                        if let Some(b) = egress_bytes.get_mut(usize::from(port.0)) {
                            *b += p.bytes.len() as u64;
                        }
                    }
                }
            }

            // Scale to all ports at line rate: each ingress port carries
            // the sampled distribution at 100 Gb/s.
            let offered_tbps = model.total_tbps();
            let match_fraction: f64 = egress_bytes.iter().sum::<u64>() as f64 / total_bytes as f64;
            let forwarded_tbps = offered_tbps * match_fraction;
            let peak_port_share =
                egress_bytes.iter().copied().max().unwrap_or(0) as f64 / total_bytes as f64;
            // Each of the `ports` ingress streams spreads `peak_port_share`
            // of its bytes onto the hottest egress port.
            let peak_egress_utilization = peak_port_share * f64::from(ports);
            let avg_packet = total_bytes as f64 / trace.len() as f64;
            let pkts_per_sec_per_port = model.port_gbps * 1e9 / (avg_packet * 8.0);
            LineRateRow {
                model: model.name.clone(),
                ports,
                offered_tbps,
                forwarded_tbps,
                peak_egress_utilization,
                messages_per_sec: pkts_per_sec_per_port * f64::from(ports),
                sample_messages: sample,
            }
        })
        .collect()
}

// ----------------------------------------------------------- incremental

/// One row of the incremental-recompilation experiment.
#[derive(Debug, Clone)]
pub struct IncrementalRow {
    /// Batch index (each batch adds rules on top of the previous).
    pub batch: usize,
    /// Rules installed so far.
    pub rules_total: usize,
    /// Full recompilation time for the cumulative set, ms.
    pub full_ms: f64,
    /// Incremental install time for just this batch, ms.
    pub incremental_ms: f64,
    /// Entries the control plane adds for this batch.
    pub entries_added: usize,
    /// Entries removed.
    pub entries_removed: usize,
    /// Entries reused in place.
    pub entries_kept: usize,
}

impl_to_json!(IncrementalRow {
    batch,
    rules_total,
    full_ms,
    incremental_ms,
    entries_added,
    entries_removed,
    entries_kept,
});

/// The §3 future-work experiment: install ITCH subscriptions in
/// batches, comparing a full recompile of the cumulative set against
/// an incremental install of just the new batch, and counting how many
/// table entries the update actually touches ("state updates can
/// benefit from table entry re-use").
pub fn incremental(fast: bool) -> Vec<IncrementalRow> {
    use camus_core::IncrementalCompiler;

    let total = if fast { 2_000 } else { 10_000 };
    let batches = 10usize;
    let all = generate_itch_subscriptions(&ItchSubsConfig {
        subscriptions: total,
        ..Default::default()
    });
    let options = CompilerOptions::default();
    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let mut session =
        IncrementalCompiler::new(spec, &options, &all).expect("alphabet session builds");
    let full_compiler = itch_compiler(options);

    let per = total / batches;
    let mut rows = Vec::with_capacity(batches);
    for b in 0..batches {
        let batch = &all[b * per..(b + 1) * per];
        let cumulative = &all[..(b + 1) * per];

        let t = Instant::now();
        let report = session.install(batch).expect("incremental install");
        let incremental_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let _ = full_compiler.compile(cumulative).expect("full compile");
        let full_ms = t.elapsed().as_secs_f64() * 1e3;

        rows.push(IncrementalRow {
            batch: b + 1,
            rules_total: (b + 1) * per,
            full_ms,
            incremental_ms,
            entries_added: report.entries_added,
            entries_removed: report.entries_removed,
            entries_kept: report.entries_kept,
        });
    }
    rows
}

// ------------------------------------------------------------- ablations

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which knob.
    pub experiment: String,
    /// Configuration label.
    pub config: String,
    /// Total table entries.
    pub table_entries: usize,
    /// Reachable BDD nodes.
    pub bdd_nodes: usize,
    /// TCAM entry-slices after placement.
    pub tcam_slices: usize,
    /// SRAM entries after placement.
    pub sram_entries: usize,
    /// Fits the 12-stage model?
    pub fits: bool,
    /// Compile time, ms.
    pub compile_ms: f64,
}

impl_to_json!(AblationRow {
    experiment,
    config,
    table_entries,
    bdd_nodes,
    tcam_slices,
    sram_entries,
    fits,
    compile_ms,
});

fn ablation_row(
    experiment: &str,
    config: &str,
    compiler: &Compiler,
    rules: &[camus_lang::ast::Rule],
) -> AblationRow {
    let t = Instant::now();
    let prog = compiler.compile(rules).expect("ablation workload compiles");
    AblationRow {
        experiment: experiment.to_string(),
        config: config.to_string(),
        table_entries: prog.stats.total_entries,
        bdd_nodes: prog.stats.bdd_nodes,
        tcam_slices: prog.placement.tcam_slices,
        sram_entries: prog.placement.sram_entries,
        fits: prog.placement.fits(),
        compile_ms: t.elapsed().as_secs_f64() * 1e3,
    }
}

/// Ablations over the design choices §3.2 discusses: reduction (iii),
/// the field-ordering heuristic, DirtCAM vs. prefix-expanded ranges,
/// and the low-resolution domain mapping.
pub fn ablations(fast: bool) -> Vec<AblationRow> {
    // 2 000 subscriptions even in full mode: the bad field orders
    // (spec-order / freq-desc put `price` before `stock`) scale
    // superlinearly and would dominate the whole harness's runtime at
    // 10 000 without changing the comparison.
    let n = 2_000;
    let _ = fast;
    let rules = generate_itch_subscriptions(&ItchSubsConfig {
        subscriptions: n,
        ..Default::default()
    });
    let mut rows = Vec::new();

    // Reduction (iii) uses a deliberately tiny workload: without it,
    // contradictory predicate combinations (`stock == A ∧ stock == B`
    // paths, inverted range pairs) are materialized, and every subset
    // of rules yields a distinct terminal action set — the diagram
    // grows as 2^rules. Twenty rules already show a ~4000× node blowup;
    // the full workload would not terminate.
    let tiny = generate_itch_subscriptions(&ItchSubsConfig {
        subscriptions: 20,
        symbols: 4,
        price_range: 50,
        ..Default::default()
    });
    for (label, pruning) in [("on", true), ("off", false)] {
        let c = itch_compiler(CompilerOptions {
            semantic_pruning: pruning,
            ..CompilerOptions::default()
        });
        rows.push(ablation_row("reduction-iii", label, &c, &tiny));
    }
    for h in OrderHeuristic::ALL {
        let c = itch_compiler(CompilerOptions {
            heuristic: h,
            ..CompilerOptions::default()
        });
        rows.push(ablation_row("field-order", h.name(), &c, &rules));
    }
    for (label, model) in [
        ("dirtcam", AsicModel::tofino32()),
        (
            "prefix-expansion",
            AsicModel::tofino32().with_prefix_expansion(),
        ),
    ] {
        let c = itch_compiler(CompilerOptions {
            asic: model,
            ..CompilerOptions::default()
        });
        rows.push(ablation_row("range-mode", label, &c, &rules));
    }
    for (label, bits) in [("off", None), ("10-bit", Some(10)), ("8-bit", Some(8))] {
        let c = itch_compiler(CompilerOptions {
            compress_bits: bits,
            ..CompilerOptions::default()
        });
        rows.push(ablation_row("domain-compression", label, &c, &rules));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_entries_grow_controlled() {
        let rows = fig5a();
        assert_eq!(rows.len(), 8);
        // Growth in subscriptions…
        assert!(rows.last().unwrap().table_entries > rows[0].table_entries);
        // …bounded far below the exponential worst case. (The paper's
        // own Fig. 5a curve is mildly superlinear over 10→45: range
        // predicates over several attributes multiply BDD paths; the
        // point of the figure is that absolute counts stay small.)
        let last = rows.last().unwrap();
        assert!(last.table_entries < 200 * last.subscriptions, "{rows:?}");
        assert!(last.table_entries < 10_000, "{rows:?}");
    }

    #[test]
    fn fig5b_more_predicates_fewer_entries() {
        let rows = fig5b();
        assert_eq!(rows.len(), 7);
        // The paper's headline shape: the 8-predicate point needs fewer
        // entries than the 2-predicate point.
        assert!(
            rows.last().unwrap().table_entries < rows[0].table_entries,
            "{rows:?}"
        );
    }

    #[test]
    fn fig5c_fast_points_fit() {
        let rows = fig5c(true);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.fits, "{r:?}");
            assert!(r.table_entries > 0);
        }
        // Entry growth is sublinear in subscriptions.
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert!(
            (last.table_entries as f64 / first.table_entries as f64)
                < (last.subscriptions as f64 / first.subscriptions as f64),
            "{rows:?}"
        );
    }

    #[test]
    fn fig7_nasdaq_shape() {
        let p = fig7("nasdaq", true);
        // Camus: everything well inside 50 µs.
        assert!(
            p.switch_filtering.within_50us > 0.999,
            "{:?}",
            p.switch_filtering
        );
        // Baseline: a heavy tail beyond 50 µs.
        assert!(p.baseline.within_50us < 0.95, "{:?}", p.baseline);
        assert!(p.baseline.max_us > 100.0, "{:?}", p.baseline);
        // No target message lost in the Camus configuration.
        assert_eq!(p.switch_filtering.drops, 0);
    }

    #[test]
    fn fig7_synthetic_shape() {
        let p = fig7("synthetic", true);
        // Camus dominates at the 20 µs mark (paper: 99.5% vs 96.5%).
        assert!(
            p.switch_filtering.within_20us > 0.995,
            "{:?}",
            p.switch_filtering
        );
        assert!(
            p.baseline.within_20us < p.switch_filtering.within_20us,
            "{:?}",
            p.baseline
        );
        // Baseline tail reaches hundreds of µs.
        assert!(p.baseline.max_us > 100.0, "{:?}", p.baseline);
    }

    #[test]
    fn linerate_reaches_full_bandwidth() {
        let rows = linerate(true);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].offered_tbps - 3.2).abs() < 0.1);
        assert!((rows[1].offered_tbps - 6.4).abs() < 0.2);
        for r in &rows {
            // All traffic matches some subscriber; egress keeps up.
            assert!(
                (r.forwarded_tbps - r.offered_tbps).abs() / r.offered_tbps < 0.01,
                "{r:?}"
            );
            // Expected utilization is exactly 1.0; allow sampling noise.
            assert!(r.peak_egress_utilization <= 1.15, "{r:?}");
            assert!(r.messages_per_sec > 1e8, "{r:?}");
        }
    }

    #[test]
    fn incremental_beats_full_recompile_on_later_batches() {
        let rows = incremental(true);
        assert_eq!(rows.len(), 10);
        let last = rows.last().unwrap();
        // By the last batch the full recompile does ~10x the work.
        assert!(
            last.incremental_ms < last.full_ms,
            "incremental {} >= full {}",
            last.incremental_ms,
            last.full_ms
        );
        // Most installed entries are reused in place.
        assert!(last.entries_kept > last.entries_added, "{last:?}");
    }

    #[test]
    fn ablations_cover_all_experiments() {
        let rows = ablations(true);
        let exps: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.experiment.as_str()).collect();
        assert_eq!(exps.len(), 4);
        // Reduction (iii) shrinks the BDD.
        let on = rows.iter().find(|r| r.config == "on").unwrap();
        let off = rows.iter().find(|r| r.config == "off").unwrap();
        assert!(on.bdd_nodes <= off.bdd_nodes, "{on:?} vs {off:?}");
        // Prefix expansion costs far more TCAM than DirtCAM.
        let dirt = rows.iter().find(|r| r.config == "dirtcam").unwrap();
        let pfx = rows
            .iter()
            .find(|r| r.config == "prefix-expansion")
            .unwrap();
        assert!(pfx.tcam_slices > dirt.tcam_slices, "{pfx:?} vs {dirt:?}");
    }
}
