//! # camus-bench — benchmark and figure-reproduction harness
//!
//! See the `figures` binary (`cargo run -p camus-bench --release --bin
//! figures -- <fig>`), which regenerates every table/figure series of
//! the paper's evaluation, and the std-only benches under `benches/`
//! (plain binaries built on [`harness`]; the environment has no
//! registry access, so Criterion is not available).

pub mod engine_runs;
pub mod figures;
pub mod harness;
pub mod json;
