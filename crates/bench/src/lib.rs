//! # camus-bench — benchmark and figure-reproduction harness
//!
//! See the `figures` binary (`cargo run -p camus-bench --release --bin
//! figures -- <fig>`), which regenerates every table/figure series of
//! the paper's evaluation, and the Criterion benches under `benches/`.

pub mod figures;
