//! Minimal std-only benchmark harness.
//!
//! The build environment has no registry access, so Criterion is not
//! available; this module provides the small subset the benches need:
//! warmup, wall-clock measurement over many iterations, and a
//! throughput report. Benches are ordinary binaries (`harness = false`)
//! that call [`Bench::run`] and print one line per measurement.
//!
//! Tuning knobs (environment variables, milliseconds):
//! * `CAMUS_BENCH_WARMUP_MS` — warmup duration (default 200).
//! * `CAMUS_BENCH_MEASURE_MS` — measurement duration (default 1000).

use std::time::{Duration, Instant};

/// Re-export so benches don't need to import `std::hint` separately.
pub use std::hint::black_box;

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Measurement name (group/function, Criterion-style).
    pub name: String,
    /// Iterations actually timed (after warmup).
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Logical elements processed per iteration (0 = unset).
    pub elems_per_iter: u64,
}

impl BenchResult {
    /// Elements per second implied by the mean, if a throughput was set.
    pub fn elems_per_sec(&self) -> Option<f64> {
        if self.elems_per_iter == 0 {
            return None;
        }
        Some(self.elems_per_iter as f64 * 1e9 / self.ns_per_iter)
    }

    /// Prints the standard one-line report.
    pub fn report(&self) -> &Self {
        match self.elems_per_sec() {
            Some(eps) => println!(
                "{:<44} {:>14} ns/iter   {:>12} elem/s   ({} iters)",
                self.name,
                format_ns(self.ns_per_iter),
                format_si(eps),
                self.iters
            ),
            None => println!(
                "{:<44} {:>14} ns/iter   ({} iters)",
                self.name,
                format_ns(self.ns_per_iter),
                self.iters
            ),
        }
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{:.0}", ns)
    }
}

fn format_si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Harness configuration; construct with [`Bench::from_env`].
#[derive(Debug, Clone)]
pub struct Bench {
    warmup: Duration,
    measure: Duration,
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    let ms = std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default_ms);
    Duration::from_millis(ms)
}

impl Bench {
    /// Reads the duration knobs from the environment.
    pub fn from_env() -> Self {
        Bench {
            warmup: env_ms("CAMUS_BENCH_WARMUP_MS", 200),
            measure: env_ms("CAMUS_BENCH_MEASURE_MS", 1000),
        }
    }

    /// The configured warmup window.
    pub fn warmup_window(&self) -> Duration {
        self.warmup
    }

    /// The configured measurement window.
    pub fn measure_window(&self) -> Duration {
        self.measure
    }

    /// Times `f`, first warming up, then iterating for the configured
    /// measurement window. The closure's return value goes through
    /// [`black_box`] so the optimizer cannot delete the work.
    pub fn run<T, F: FnMut() -> T>(
        &self,
        name: &str,
        elems_per_iter: u64,
        mut f: F,
    ) -> BenchResult {
        // Warmup: at least one call, then until the window expires.
        let start = Instant::now();
        loop {
            black_box(f());
            if start.elapsed() >= self.warmup {
                break;
            }
        }

        let mut iters = 0u64;
        let start = Instant::now();
        let elapsed = loop {
            black_box(f());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measure {
                break elapsed;
            }
        };

        BenchResult {
            name: name.to_string(),
            iters,
            ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
            elems_per_iter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        let b = Bench {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(10),
        };
        let r = b.run("smoke", 100, || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(r.iters > 0);
        assert!(r.ns_per_iter > 0.0);
        assert!(r.elems_per_sec().unwrap() > 0.0);
        let none = b.run("no-throughput", 0, || 1u32);
        assert!(none.elems_per_sec().is_none());
    }
}
