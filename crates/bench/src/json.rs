//! Tiny JSON emitter for the benchmark/figure result files.
//!
//! The workspace cannot pull serde from a registry, and the only JSON
//! need is *writing* flat rows of numbers/strings under `results/`, so
//! this module hand-rolls exactly that: a [`ToJson`] trait with impls
//! for the primitive types the row structs use, plus the
//! [`impl_to_json!`] macro that derives a struct impl from its field
//! list. Output is pretty-printed (two-space indent) so result files
//! diff cleanly across runs.

/// Serialization into a JSON string being built up.
pub trait ToJson {
    /// Appends `self` to `out`. `indent` is the indentation level of
    /// the *current* line (containers indent their children one more).
    fn write_json(&self, out: &mut String, indent: usize);
}

/// Renders any [`ToJson`] value as a pretty-printed document.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value.write_json(&mut out, 0);
    out.push('\n');
    out
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! int_to_json {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String, _indent: usize) {
                out.push_str(&self.to_string());
            }
        }
    )+};
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn write_json(&self, out: &mut String, _indent: usize) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String, _indent: usize) {
        if self.is_finite() {
            // Rust's shortest-roundtrip formatting is valid JSON (no
            // exponent notation for f64 Display).
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String, _indent: usize) {
        write_escaped(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String, indent: usize) {
        self.as_str().write_json(out, indent);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String, indent: usize) {
        match self {
            Some(v) => v.write_json(out, indent),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String, indent: usize) {
        if self.is_empty() {
            out.push_str("[]");
            return;
        }
        out.push_str("[\n");
        for (i, v) in self.iter().enumerate() {
            push_indent(out, indent + 1);
            v.write_json(out, indent + 1);
            if i + 1 < self.len() {
                out.push(',');
            }
            out.push('\n');
        }
        push_indent(out, indent);
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String, indent: usize) {
        self.as_slice().write_json(out, indent);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String, indent: usize) {
        (**self).write_json(out, indent);
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn write_json(&self, out: &mut String, indent: usize) {
        out.push('[');
        self.0.write_json(out, indent);
        out.push_str(", ");
        self.1.write_json(out, indent);
        out.push(']');
    }
}

/// Implements [`ToJson`] for a struct as an object of its named fields,
/// in declaration order:
///
/// ```ignore
/// impl_to_json!(Fig5aRow { subscriptions, table_entries, bdd_nodes });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn write_json(&self, out: &mut String, indent: usize) {
                out.push_str("{\n");
                let fields = [$(stringify!($field)),+];
                let mut i = 0usize;
                $(
                    for _ in 0..indent + 1 {
                        out.push_str("  ");
                    }
                    out.push('"');
                    out.push_str(fields[i]);
                    out.push_str("\": ");
                    $crate::json::ToJson::write_json(&self.$field, out, indent + 1);
                    i += 1;
                    if i < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                )+
                let _ = i;
                for _ in 0..indent {
                    out.push_str("  ");
                }
                out.push('}');
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Row {
        name: String,
        count: usize,
        ratio: f64,
        ok: bool,
        cdf: Vec<(f64, f64)>,
    }

    impl_to_json!(Row {
        name,
        count,
        ratio,
        ok,
        cdf
    });

    #[test]
    fn renders_structs_and_containers() {
        let r = Row {
            name: "a \"quoted\"\nlabel".into(),
            count: 3,
            ratio: 0.5,
            ok: true,
            cdf: vec![(1.0, 0.25), (2.5, 1.0)],
        };
        let s = to_string_pretty(&vec![r]);
        assert!(s.starts_with("[\n  {\n"), "{s}");
        assert!(s.contains("\"name\": \"a \\\"quoted\\\"\\nlabel\""), "{s}");
        assert!(s.contains("\"count\": 3"), "{s}");
        assert!(s.contains("\"ratio\": 0.5"), "{s}");
        assert!(s.contains("\"ok\": true"), "{s}");
        assert!(s.contains("[1, 0.25]"), "{s}");
        assert!(s.ends_with("]\n"), "{s}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        f64::NAN.write_json(&mut out, 0);
        assert_eq!(out, "null");
    }

    #[test]
    fn empty_and_option() {
        let empty: Vec<u32> = vec![];
        assert_eq!(to_string_pretty(&empty), "[]\n");
        assert_eq!(to_string_pretty(&Option::<u32>::None), "null\n");
        assert_eq!(to_string_pretty(&Some(7u32)), "7\n");
    }
}
