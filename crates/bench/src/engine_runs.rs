//! Shared engine-bench plumbing.
//!
//! Every bench that replays a packet trace through
//! [`camus_engine::Engine`] used to hand-roll the same loop (start,
//! submit, finish, assert clean) and the same host-core probe; this
//! module is that loop, written once. It also owns the telemetry
//! export: [`capture_telemetry`] runs one instrumented replay and
//! [`write_telemetry_json`] serializes the merged
//! [`TelemetrySnapshot`] — per-stage percentiles, per-table hit
//! counters, control-plane spans and the instrumented-vs-uninstrumented
//! A/B overhead row — to `results/TELEMETRY_engine.json`.

use crate::harness::{Bench, BenchResult};
use crate::{impl_to_json, json};
use camus_engine::{Engine, EngineConfig, ShardFn, TelemetrySnapshot};
use camus_pipeline::Pipeline;
use camus_telemetry::Histogram;

/// Host core count, recorded alongside every row: on a single-core
/// container a worker sweep measures scheduling overhead, not parallel
/// speedup, and the JSON must say so honestly.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The workspace `results/` directory, anchored to the manifest so it
/// works regardless of the bench binary's working directory.
pub fn results_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Times one full engine run per iteration — start, replay the trace,
/// join — asserting every iteration completes without a fault. The
/// measured rate includes thread startup, matching how a replay tool
/// would run it. Prints the standard one-line report.
pub fn time_engine_trace(
    bench: &Bench,
    name: &str,
    pipeline: &Pipeline,
    cfg: &EngineConfig,
    shard_fn: &ShardFn,
    packets: &[Vec<u8>],
) -> BenchResult {
    let n = packets.len() as u64;
    let r = bench.run(name, n, || {
        let mut engine = Engine::start(pipeline, cfg, shard_fn.clone());
        for p in packets {
            engine.submit(p, 0);
        }
        let report = engine.finish();
        assert!(report.error.is_none(), "engine fault during bench");
        report.stats.packets
    });
    r.report();
    r
}

/// One untimed instrumented replay, returning the merged cross-shard
/// snapshot. Used to populate the telemetry export with real
/// distributions without polluting a timed measurement.
pub fn capture_telemetry(
    pipeline: &Pipeline,
    cfg: &EngineConfig,
    shard_fn: &ShardFn,
    packets: &[Vec<u8>],
) -> TelemetrySnapshot {
    let cfg = EngineConfig {
        telemetry: true,
        ..cfg.clone()
    };
    let mut engine = Engine::start(pipeline, &cfg, shard_fn.clone());
    for p in packets {
        engine.submit(p, 0);
    }
    let report = engine.finish();
    assert!(report.error.is_none(), "engine fault during capture");
    report
        .telemetry
        .expect("telemetry enabled but no snapshot returned")
}

/// Measures the telemetry A/B as *paired, alternating* iterations:
/// each round runs one uninstrumented and one instrumented replay
/// back-to-back (order swapping every round), so slow drift on a noisy
/// host — frequency scaling, a busy sibling container — hits both
/// sides equally instead of biasing whichever ran first. Sequential
/// `Bench::run` calls proved unusable for this on single-core CI
/// runners: run-to-run swing there exceeds the 5 % budget being
/// verified.
pub fn telemetry_overhead_ab(
    bench: &Bench,
    pipeline: &Pipeline,
    cfg: &EngineConfig,
    shard_fn: &ShardFn,
    packets: &[Vec<u8>],
) -> OverheadDoc {
    use std::time::{Duration, Instant};
    let run_once = |telemetry: bool| -> Duration {
        let cfg = EngineConfig {
            telemetry,
            ..cfg.clone()
        };
        let start = Instant::now();
        let mut engine = Engine::start(pipeline, &cfg, shard_fn.clone());
        for p in packets {
            engine.submit(p, 0);
        }
        let report = engine.finish();
        assert!(report.error.is_none(), "engine fault during A/B");
        std::hint::black_box(report.stats.packets);
        start.elapsed()
    };

    let warm_deadline = Instant::now() + bench.warmup_window();
    loop {
        run_once(false);
        run_once(true);
        if Instant::now() >= warm_deadline {
            break;
        }
    }

    // Minimum-of-rounds estimator: external noise (a busy sibling, a
    // scheduler hiccup) only ever *adds* time, so each side's minimum
    // converges on its true cost and the ratio isolates the
    // instrumentation itself. Means proved too jittery on shared
    // hosts to verify a 5 % bound.
    let mut plain = Duration::MAX;
    let mut instrumented = Duration::MAX;
    let mut rounds = 0u64;
    let deadline = Instant::now() + bench.measure_window();
    loop {
        if rounds.is_multiple_of(2) {
            plain = plain.min(run_once(false));
            instrumented = instrumented.min(run_once(true));
        } else {
            instrumented = instrumented.min(run_once(true));
            plain = plain.min(run_once(false));
        }
        rounds += 1;
        if rounds >= 8 && Instant::now() >= deadline {
            break;
        }
    }

    let n = packets.len() as u64;
    let pps = |best: Duration| n as f64 * 1e9 / best.as_nanos() as f64;
    let (plain_pps, telem_pps) = (pps(plain), pps(instrumented));
    OverheadDoc {
        workers: cfg.workers,
        pkts_per_sec_instrumented: telem_pps,
        pkts_per_sec_uninstrumented: plain_pps,
        overhead_pct: (1.0 - telem_pps / plain_pps) * 100.0,
    }
}

/// One latency-stage row in the telemetry export.
#[derive(Debug, Clone)]
pub struct StageDoc {
    /// Stage name: `batch`, `parse`, `match` or `mcast`.
    pub stage: String,
    /// Samples in the histogram.
    pub count: u64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub mean_ns: f64,
}

impl_to_json!(StageDoc {
    stage,
    count,
    p50_ns,
    p99_ns,
    p999_ns,
    min_ns,
    max_ns,
    mean_ns,
});

impl StageDoc {
    fn from_hist(stage: &str, h: &Histogram) -> Self {
        StageDoc {
            stage: stage.into(),
            count: h.count(),
            p50_ns: h.percentile(50.0),
            p99_ns: h.percentile(99.0),
            p999_ns: h.percentile(99.9),
            min_ns: h.min(),
            max_ns: h.max(),
            mean_ns: h.mean(),
        }
    }
}

/// One per-table counter row.
#[derive(Debug, Clone)]
pub struct TableDoc {
    pub table: String,
    pub hits: u64,
    pub misses: u64,
}

impl_to_json!(TableDoc {
    table,
    hits,
    misses
});

/// One control-plane span row.
#[derive(Debug, Clone)]
pub struct SpanDoc {
    pub span: String,
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub mean_ns: f64,
}

impl_to_json!(SpanDoc {
    span,
    count,
    total_ns,
    min_ns,
    max_ns,
    mean_ns,
});

/// The instrumented-vs-uninstrumented A/B result.
#[derive(Debug, Clone)]
pub struct OverheadDoc {
    /// Worker count both sides of the A/B ran with.
    pub workers: usize,
    pub pkts_per_sec_instrumented: f64,
    pub pkts_per_sec_uninstrumented: f64,
    /// `(1 - instrumented/uninstrumented) * 100`; negative values mean
    /// the instrumented run measured faster (noise).
    pub overhead_pct: f64,
}

impl_to_json!(OverheadDoc {
    workers,
    pkts_per_sec_instrumented,
    pkts_per_sec_uninstrumented,
    overhead_pct,
});

/// The `results/TELEMETRY_engine.json` document.
#[derive(Debug, Clone)]
pub struct TelemetryDoc {
    /// Snapshot schema version (`camus_telemetry::SNAPSHOT_VERSION`).
    pub version: u64,
    /// Which bench produced this document.
    pub bench: String,
    pub host_cores: usize,
    pub workers: usize,
    pub packets: u64,
    pub batches: u64,
    pub sampled_packets: u64,
    /// Packets between stage samples (1 = every packet).
    pub sample_interval: u64,
    pub stages: Vec<StageDoc>,
    pub tables: Vec<TableDoc>,
    pub spans: Vec<SpanDoc>,
    pub overhead: OverheadDoc,
}

impl_to_json!(TelemetryDoc {
    version,
    bench,
    host_cores,
    workers,
    packets,
    batches,
    sampled_packets,
    sample_interval,
    stages,
    tables,
    spans,
    overhead,
});

/// Flattens a snapshot + A/B overhead pair into the export document.
pub fn telemetry_doc(bench: &str, snap: &TelemetrySnapshot, overhead: OverheadDoc) -> TelemetryDoc {
    TelemetryDoc {
        version: snap.version,
        bench: bench.into(),
        host_cores: host_cores(),
        workers: snap.workers,
        packets: snap.packets,
        batches: snap.data.batches,
        sampled_packets: snap.data.sampled_packets,
        sample_interval: snap.data.sample_interval(),
        stages: vec![
            StageDoc::from_hist("batch", &snap.data.batch_ns),
            StageDoc::from_hist("parse", &snap.data.parse_ns),
            StageDoc::from_hist("match", &snap.data.match_ns),
            StageDoc::from_hist("mcast", &snap.data.mcast_ns),
        ],
        tables: snap
            .tables
            .iter()
            .map(|t| TableDoc {
                table: t.name.clone(),
                hits: t.hits,
                misses: t.misses,
            })
            .collect(),
        spans: snap
            .spans
            .recorded()
            .map(|(kind, s)| SpanDoc {
                span: kind.as_str().into(),
                count: s.count,
                total_ns: s.total_ns,
                min_ns: s.min_ns,
                max_ns: s.max_ns,
                mean_ns: s.mean_ns(),
            })
            .collect(),
        overhead,
    }
}

/// Writes the telemetry document to `results/TELEMETRY_engine.json`.
pub fn write_telemetry_json(doc: &TelemetryDoc) -> std::path::PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("TELEMETRY_engine.json");
    std::fs::write(&path, json::to_string_pretty(doc)).expect("write TELEMETRY_engine.json");
    path
}
