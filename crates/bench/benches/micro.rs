//! Micro-benchmarks for the core data structures: BDD rule insertion
//! and evaluation, table lookup, TCAM range expansion, and the ITCH
//! feed codec. These back the ablation discussion rather than a single
//! paper figure.

use camus_bdd::pred::{ActionId, FieldId, FieldInfo, Pred};
use camus_bdd::Bdd;
use camus_bench::harness::Bench;
use camus_itch::itch::{AddOrder, ItchMessage, Side};
use camus_itch::{build_feed_packet, parse_feed_packet, FeedConfig};
use camus_pipeline::phv::PhvLayout;
use camus_pipeline::resources::range_to_prefixes;
use camus_pipeline::table::{Entry, Key, MatchKind, MatchValue, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn itch_like_rules(n: usize) -> Vec<(Pred, Pred, u32)> {
    let stock = FieldId(0);
    let price = FieldId(1);
    let mut rng = StdRng::seed_from_u64(42);
    (0..n)
        .map(|i| {
            (
                Pred::eq(stock, rng.gen_range(0..100u64)),
                Pred::gt(price, rng.gen_range(0..999u64)),
                i as u32,
            )
        })
        .collect()
}

fn bench_bdd(bench: &Bench) {
    let rules = itch_like_rules(1_000);
    let fields = vec![FieldInfo::exact("stock", 64), FieldInfo::range("price", 32)];
    let preds: Vec<Pred> = rules.iter().flat_map(|(a, b, _)| [*a, *b]).collect();

    bench
        .run("bdd/insert_1k_rules", rules.len() as u64, || {
            let mut bdd = Bdd::new(fields.clone(), preds.iter().copied()).unwrap();
            for (s, p, i) in &rules {
                bdd.add_rule(&[(*s, true), (*p, true)], &[ActionId(*i)])
                    .unwrap();
            }
            bdd.node_count()
        })
        .report();

    let mut bdd = Bdd::new(fields.clone(), preds.iter().copied()).unwrap();
    for (s, p, i) in &rules {
        bdd.add_rule(&[(*s, true), (*p, true)], &[ActionId(*i)])
            .unwrap();
    }
    let mut rng = StdRng::seed_from_u64(7);
    let queries: Vec<(u64, u64)> = (0..1_000)
        .map(|_| (rng.gen_range(0..100), rng.gen_range(0..2_000)))
        .collect();
    bench
        .run("bdd/eval_1k_packets", queries.len() as u64, || {
            let mut hits = 0usize;
            for &(s, p) in &queries {
                hits += bdd.eval(|f| if f == FieldId(0) { s } else { p }).len();
            }
            hits
        })
        .report();
}

fn bench_table(bench: &Bench) {
    let mut layout = PhvLayout::new();
    let state = layout.add("state", 32);
    let value = layout.add("value", 64);
    let mut table = Table::new(
        "t",
        vec![
            Key {
                field: state,
                kind: MatchKind::Exact,
                bits: 32,
            },
            Key {
                field: value,
                kind: MatchKind::Exact,
                bits: 64,
            },
        ],
        vec![],
    );
    for i in 0..10_000u64 {
        table
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(i % 64), MatchValue::Exact(i)],
                ops: vec![],
            })
            .unwrap();
    }
    table.build_index();
    let mut rng = StdRng::seed_from_u64(3);
    let lookups: Vec<(u64, u64)> = (0..1_000)
        .map(|_| (rng.gen_range(0..64), rng.gen_range(0..12_000)))
        .collect();
    bench
        .run("table/lookup_10k_entry_table", lookups.len() as u64, || {
            let mut phv = layout.instantiate();
            let mut hits = 0usize;
            for &(s, v) in &lookups {
                phv.set(state, s);
                phv.set(value, v);
                hits += usize::from(table.lookup(&phv).is_some());
            }
            hits
        })
        .report();
}

fn bench_resources(bench: &Bench) {
    bench
        .run("resources/range_to_prefixes_worst_case_32b", 0, || {
            range_to_prefixes(1, (1u64 << 32) - 2, 32).len()
        })
        .report();
}

fn bench_codec(bench: &Bench) {
    let msgs: Vec<ItchMessage> = (0..8)
        .map(|i| ItchMessage::AddOrder(AddOrder::new("GOOGL", Side::Buy, 100 + i, 5_000 + i)))
        .collect();
    let cfg = FeedConfig::default();
    bench
        .run("itch_codec/build_feed_packet_8_msgs", 8, || {
            build_feed_packet(&cfg, 1, &msgs).len()
        })
        .report();
    let pkt = build_feed_packet(&cfg, 1, &msgs);
    bench
        .run("itch_codec/parse_feed_packet_8_msgs", 8, || {
            parse_feed_packet(&pkt).unwrap().1.len()
        })
        .report();
}

fn main() {
    let bench = Bench::from_env();
    bench_bdd(&bench);
    bench_table(&bench);
    bench_resources(&bench);
    bench_codec(&bench);
}
