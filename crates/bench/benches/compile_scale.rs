//! Compile-throughput sweep: dynamic compilation (rules → BDD → table
//! entries) across subscription-pool sizes and shard counts.
//!
//! Each row is one end-to-end `Compiler::compile` run — the sharded
//! BDD build, canonical renumbering, table emission and domain
//! compression all included — so `rules_per_sec` is the figure a
//! control plane would actually see. Sharded rows are only faster than
//! `shards = 1` on multi-core hosts; `host_cores` is recorded so
//! single-core CI numbers are not mistaken for parallel speedups.
//!
//! Output: `results/BENCH_compile.json`.
//!
//! Env knobs:
//! * `CAMUS_BENCH_QUICK=1` — small pools only (≤10K rules), for CI.

use std::time::Instant;

use camus_bench::impl_to_json;
use camus_bench::json::to_string_pretty;
use camus_core::{Compiler, CompilerOptions};
use camus_lang::ast::Rule;
use camus_lang::parse_spec;
use camus_lang::spec::Spec;
use camus_workload::{generate_itch_subscriptions, ItchSubsConfig, SienaConfig};

#[derive(Debug)]
struct Row {
    workload: String,
    subscriptions: usize,
    shards: usize,
    host_cores: usize,
    secs: f64,
    rules_per_sec: f64,
    /// Node allocation of the build store before canonical renumbering
    /// (the build's peak working set).
    peak_nodes: usize,
    /// Reachable nodes after renumbering.
    reachable_nodes: usize,
    memo_hits: u64,
    memo_misses: u64,
    memo_hit_rate: f64,
    total_entries: usize,
    mcast_groups: usize,
    states: usize,
}

impl_to_json!(Row {
    workload,
    subscriptions,
    shards,
    host_cores,
    secs,
    rules_per_sec,
    peak_nodes,
    reachable_nodes,
    memo_hits,
    memo_misses,
    memo_hit_rate,
    total_entries,
    mcast_groups,
    states,
});

const SHARDS: [usize; 3] = [1, 2, 8];

fn measure(workload: &str, spec: &Spec, opts: &CompilerOptions, rules: &[Rule]) -> Vec<Row> {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    SHARDS
        .iter()
        .map(|&shards| {
            let compiler = Compiler::new(
                spec.clone(),
                CompilerOptions {
                    compile_shards: shards,
                    ..opts.clone()
                },
            )
            .expect("spec compiles");
            let t = Instant::now();
            let prog = compiler.compile(rules).expect("rules compile");
            let secs = t.elapsed().as_secs_f64();
            let s = &prog.stats;
            let row = Row {
                workload: workload.to_string(),
                subscriptions: rules.len(),
                shards,
                host_cores,
                secs,
                rules_per_sec: rules.len() as f64 / secs,
                peak_nodes: s.allocated_nodes,
                reachable_nodes: s.bdd_nodes,
                memo_hits: s.memo_hits,
                memo_misses: s.memo_misses,
                memo_hit_rate: s.memo_hits as f64 / (s.memo_hits + s.memo_misses).max(1) as f64,
                total_entries: s.total_entries,
                mcast_groups: s.mcast_groups,
                states: s.states,
            };
            println!(
                "{workload} subs={} shards={shards} secs={secs:.3} rules/s={:.1} \
                 peak_nodes={} entries={}",
                rules.len(),
                row.rules_per_sec,
                row.peak_nodes,
                row.total_entries,
            );
            row
        })
        .collect()
}

fn main() {
    let quick = std::env::var("CAMUS_BENCH_QUICK").is_ok_and(|v| v != "0");

    let itch_sizes: &[usize] = if quick {
        &[1_000, 5_000, 10_000]
    } else {
        &[1_000, 10_000, 50_000, 100_000, 200_000]
    };
    // Raw Siena subscriptions are path-explosive (the paper's Fig. 5a
    // shows superlinear entry growth and stops at 45): 1K subscriptions
    // already emit ~11M entries. Sizes stay small so the sweep measures
    // the build, not an out-of-budget emission.
    let siena_sizes: &[usize] = if quick { &[100] } else { &[100, 300, 600] };

    let mut rows: Vec<Row> = Vec::new();

    // ITCH subscriptions over the paper's add-order spec, with the
    // low-resolution domain mapping on (the Figure 5 configuration;
    // also what the pre-PR baseline in EXPERIMENTS.md was measured
    // with).
    let itch_spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let itch_opts = CompilerOptions {
        compress_bits: Some(10),
        ..CompilerOptions::default()
    };
    for &subs in itch_sizes {
        let rules = generate_itch_subscriptions(&ItchSubsConfig {
            subscriptions: subs,
            ..Default::default()
        });
        rows.extend(measure("itch", &itch_spec, &itch_opts, &rules));
    }

    // Siena-style multi-attribute subscriptions over a generated spec.
    for &subs in siena_sizes {
        let w = SienaConfig {
            subscriptions: subs,
            ..Default::default()
        }
        .generate();
        rows.extend(measure("siena", &w.spec, &CompilerOptions::raw(), &w.rules));
    }

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results/");
    std::fs::write(dir.join("BENCH_compile.json"), to_string_pretty(&rows))
        .expect("write results/BENCH_compile.json");
    println!("wrote results/BENCH_compile.json ({} rows)", rows.len());
}
