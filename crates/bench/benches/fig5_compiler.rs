//! Benches behind Figure 5: compiler space/time efficiency.
//!
//! * `fig5a/siena_compile_*` — one point of the entries-vs-subscriptions
//!   sweep (Siena workload);
//! * `fig5b/siena_predicates_*` — one point of the entries-vs-predicates
//!   sweep;
//! * `fig5c/itch_compile_*` — the compile-time curve points (the figure
//!   itself is wall-clock compile time, which is exactly what these
//!   measure).

use camus_bench::harness::Bench;
use camus_core::{Compiler, CompilerOptions};
use camus_lang::parse_spec;
use camus_workload::{generate_itch_subscriptions, ItchSubsConfig, SienaConfig};

fn bench_fig5a(bench: &Bench) {
    for subs in [10usize, 25, 45] {
        let w = SienaConfig {
            subscriptions: subs,
            ..Default::default()
        }
        .generate();
        let compiler = Compiler::new(w.spec.clone(), CompilerOptions::raw()).unwrap();
        bench
            .run(&format!("fig5a/siena_compile_{subs}"), 0, || {
                compiler.compile(&w.rules).unwrap().stats.total_entries
            })
            .report();
    }
}

fn bench_fig5b(bench: &Bench) {
    for preds in [2usize, 5, 8] {
        let w = SienaConfig {
            subscriptions: 30,
            predicates_per_subscription: preds,
            int_attributes: 5,
            symbol_attributes: 3,
            ..Default::default()
        }
        .generate();
        let compiler = Compiler::new(w.spec.clone(), CompilerOptions::raw()).unwrap();
        bench
            .run(&format!("fig5b/siena_predicates_{preds}"), 0, || {
                compiler.compile(&w.rules).unwrap().stats.total_entries
            })
            .report();
    }
}

fn bench_fig5c(bench: &Bench) {
    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(
        spec,
        CompilerOptions {
            compress_bits: Some(10),
            ..CompilerOptions::default()
        },
    )
    .unwrap();
    for subs in [1_000usize, 5_000] {
        let rules = generate_itch_subscriptions(&ItchSubsConfig {
            subscriptions: subs,
            ..Default::default()
        });
        bench
            .run(&format!("fig5c/itch_compile_{subs}"), 0, || {
                compiler.compile(&rules).unwrap().stats.total_entries
            })
            .report();
    }
}

fn main() {
    let bench = Bench::from_env();
    bench_fig5a(&bench);
    bench_fig5b(&bench);
    bench_fig5c(&bench);
}
