//! Criterion benches behind Figure 5: compiler space/time efficiency.
//!
//! * `fig5a/siena_compile_*` — one point of the entries-vs-subscriptions
//!   sweep (Siena workload);
//! * `fig5b/siena_predicates_*` — one point of the entries-vs-predicates
//!   sweep;
//! * `fig5c/itch_compile_*` — the compile-time curve points (the figure
//!   itself is wall-clock compile time, which is exactly what these
//!   measure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use camus_core::{Compiler, CompilerOptions};
use camus_lang::parse_spec;
use camus_workload::{generate_itch_subscriptions, ItchSubsConfig, SienaConfig};

fn bench_fig5a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5a");
    for subs in [10usize, 25, 45] {
        let w = SienaConfig { subscriptions: subs, ..Default::default() }.generate();
        let compiler = Compiler::new(w.spec.clone(), CompilerOptions::raw()).unwrap();
        g.bench_with_input(BenchmarkId::new("siena_compile", subs), &w.rules, |b, rules| {
            b.iter(|| compiler.compile(rules).unwrap().stats.total_entries)
        });
    }
    g.finish();
}

fn bench_fig5b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5b");
    for preds in [2usize, 5, 8] {
        let w = SienaConfig {
            subscriptions: 30,
            predicates_per_subscription: preds,
            int_attributes: 5,
            symbol_attributes: 3,
            ..Default::default()
        }
        .generate();
        let compiler = Compiler::new(w.spec.clone(), CompilerOptions::raw()).unwrap();
        g.bench_with_input(BenchmarkId::new("siena_predicates", preds), &w.rules, |b, rules| {
            b.iter(|| compiler.compile(rules).unwrap().stats.total_entries)
        });
    }
    g.finish();
}

fn bench_fig5c(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5c");
    g.sample_size(10);
    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(
        spec,
        CompilerOptions { compress_bits: Some(10), ..CompilerOptions::default() },
    )
    .unwrap();
    for subs in [1_000usize, 5_000] {
        let rules =
            generate_itch_subscriptions(&ItchSubsConfig { subscriptions: subs, ..Default::default() });
        g.bench_with_input(BenchmarkId::new("itch_compile", subs), &rules, |b, rules| {
            b.iter(|| compiler.compile(rules).unwrap().stats.total_entries)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig5a, bench_fig5b, bench_fig5c);
criterion_main!(benches);
