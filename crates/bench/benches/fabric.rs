//! Fabric benchmark: what does spreading one subscription program
//! across a spine/leaf of engines cost (and buy)? Writes
//! `results/BENCH_fabric.json`.
//!
//! Two row groups:
//!
//! * `fabric_l{1,2,4}` — one Siena trace pushed through a fabric of
//!   1/2/4 leaves (leaf 1 ≙ the big switch: partition + route overhead
//!   with none of the parallelism). Single-core hosts measure the
//!   routing/ring overhead, not leaf parallelism — `host_cores` is
//!   recorded so readers can tell which.
//! * `fabric_epoch` — the two-phase epoch commit: prepare on every
//!   leaf, quiesce barrier, commit, with traffic bursts between
//!   epochs. `ns_per_iter / epochs_per_iter` is the end-to-end latency
//!   of an atomic fabric-wide swap.

use camus_bench::engine_runs::{host_cores, results_dir};
use camus_bench::harness::Bench;
use camus_bench::{impl_to_json, json};
use camus_core::{Compiler, CompilerOptions};
use camus_engine::EngineConfig;
use camus_fabric::{Fabric, FabricConfig};
use camus_pipeline::Pipeline;
use camus_workload::{raw_field_extractor, SienaConfig};

#[derive(Debug, Clone)]
struct FabricRow {
    config: String,
    leaves: usize,
    workers: usize,
    host_cores: usize,
    packets_per_iter: u64,
    epochs_per_iter: u64,
    ns_per_iter: f64,
    pkts_per_sec: f64,
}

impl_to_json!(FabricRow {
    config,
    leaves,
    workers,
    host_cores,
    packets_per_iter,
    epochs_per_iter,
    ns_per_iter,
    pkts_per_sec,
});

fn main() {
    let bench = Bench::from_env();
    let host_cores = host_cores();

    let siena = SienaConfig {
        subscriptions: 32,
        int_attributes: 2,
        symbol_attributes: 1,
        symbol_alphabet: 16,
        int_range: 60,
        predicates_per_subscription: 2,
        seed: 0xFAB,
        ..Default::default()
    };
    let wl = siena.generate();
    let compiler = Compiler::new(wl.spec.clone(), CompilerOptions::raw()).unwrap();
    let master = compiler.compile(&wl.rules).unwrap().pipeline;
    // A second generation (a shifted rule subset) for the epoch rows.
    let alt_rules: Vec<_> = wl.rules.iter().skip(8).cloned().collect();
    let alt: Pipeline = compiler.compile(&alt_rules).unwrap().pipeline;
    let extract = raw_field_extractor(&wl.spec, "sym0").unwrap();

    let packets = siena.generate_events(&wl, 4_000);
    let n = packets.len() as u64;
    let workers = host_cores.clamp(1, 2);

    let mut rows: Vec<FabricRow> = Vec::new();

    // Data path: the same trace through 1-, 2- and 4-leaf fabrics.
    for leaves in [1usize, 2, 4] {
        let cfg = FabricConfig::uniform(
            leaves,
            "ev.sym0",
            extract.clone(),
            EngineConfig {
                workers,
                ..EngineConfig::default()
            },
        );
        let r = bench.run(&format!("fabric/trace_l{leaves}_w{workers}"), n, || {
            let mut fabric = Fabric::start(&master, &cfg).unwrap();
            for p in &packets {
                fabric.submit(p, 0);
            }
            fabric.finish().submitted()
        });
        r.report();
        rows.push(FabricRow {
            config: format!("fabric_l{leaves}"),
            leaves,
            workers,
            host_cores,
            packets_per_iter: n,
            epochs_per_iter: 0,
            ns_per_iter: r.ns_per_iter,
            pkts_per_sec: r.elems_per_sec().unwrap(),
        });
    }

    // Update plane: two-phase epochs (prepare → quiesce → commit on
    // every leaf) with traffic bursts between swaps.
    let leaves = 2usize;
    let epochs = 8u64;
    let burst = packets.len() / (epochs as usize + 1);
    let cfg = FabricConfig::uniform(
        leaves,
        "ev.sym0",
        extract.clone(),
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
    );
    let r = bench.run(
        &format!("fabric/epoch_l{leaves}_w{workers}_x{epochs}"),
        epochs,
        || {
            let mut fabric = Fabric::start(&master, &cfg).unwrap();
            let mut fed = 0;
            for e in 0..epochs {
                for p in &packets[fed..fed + burst] {
                    fabric.submit(p, 0);
                }
                fed += burst;
                let next = if e % 2 == 0 { &alt } else { &master };
                fabric.install_master(next.clone()).unwrap();
            }
            for p in &packets[fed..] {
                fabric.submit(p, 0);
            }
            fabric.finish().epoch
        },
    );
    r.report();
    rows.push(FabricRow {
        config: "fabric_epoch".into(),
        leaves,
        workers,
        host_cores,
        packets_per_iter: n,
        epochs_per_iter: epochs,
        ns_per_iter: r.ns_per_iter,
        pkts_per_sec: 0.0,
    });

    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_fabric.json");
    std::fs::write(&path, json::to_string_pretty(rows.as_slice())).unwrap();
    println!(
        "wrote {} ({} rows, host_cores={host_cores})",
        path.display(),
        rows.len()
    );
}
