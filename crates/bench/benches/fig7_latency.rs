//! Bench behind Figure 7: the end-to-end latency experiment (baseline
//! host filtering vs. Camus switch filtering), on a reduced trace so a
//! sample stays sub-second. The full-size run is `figures
//! fig7a`/`fig7b`.

use camus_bench::harness::Bench;
use camus_core::{Compiler, CompilerOptions};
use camus_lang::{parse_program, parse_spec};
use camus_netsim::{run_experiment, ExperimentConfig, FilterMode};
use camus_workload::{synthesize_feed, TraceConfig};

fn main() {
    let bench = Bench::from_env();
    let trace = synthesize_feed(&TraceConfig::nasdaq_like(30_000));
    let cfg = ExperimentConfig::default();

    bench
        .run("fig7/baseline_nasdaq_30k", 0, || {
            run_experiment(&trace, FilterMode::Baseline, &cfg)
                .stats
                .max()
        })
        .report();

    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();
    let rules = parse_program("stock == GOOGL : fwd(1)").unwrap();
    bench
        .run("fig7/camus_nasdaq_30k", 0, || {
            // The pipeline is stateful (registers), so each iteration
            // gets a fresh instance; compilation cost is part of neither
            // figure and dominated by the 30 k-packet run.
            let prog = compiler.compile(&rules).unwrap();
            run_experiment(&trace, FilterMode::Switch(Box::new(prog.pipeline)), &cfg)
                .stats
                .max()
        })
        .report();
}
