//! Criterion bench behind Figure 7: the end-to-end latency experiment
//! (baseline host filtering vs. Camus switch filtering), on a reduced
//! trace so a Criterion sample stays sub-second. The full-size run is
//! `figures fig7a`/`fig7b`.

use criterion::{criterion_group, criterion_main, Criterion};

use camus_core::{Compiler, CompilerOptions};
use camus_lang::{parse_program, parse_spec};
use camus_netsim::{run_experiment, ExperimentConfig, FilterMode};
use camus_workload::{synthesize_feed, TraceConfig};

fn bench_fig7(c: &mut Criterion) {
    let trace = synthesize_feed(&TraceConfig::nasdaq_like(30_000));
    let cfg = ExperimentConfig::default();

    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("baseline_nasdaq_30k", |b| {
        b.iter(|| run_experiment(&trace, FilterMode::Baseline, &cfg).stats.max())
    });

    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();
    let rules = parse_program("stock == GOOGL : fwd(1)").unwrap();
    g.bench_function("camus_nasdaq_30k", |b| {
        b.iter(|| {
            // The pipeline is stateful (registers), so each iteration
            // gets a fresh instance; compilation cost is part of neither
            // figure and dominated by the 30 k-packet run.
            let prog = compiler.compile(&rules).unwrap();
            run_experiment(&trace, FilterMode::Switch(Box::new(prog.pipeline)), &cfg).stats.max()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
