//! Live-churn benchmark: update-plane latency and data-path throughput
//! while subscriptions are added and removed at runtime. Writes
//! `results/BENCH_churn.json`.
//!
//! Three questions, one row group each:
//!
//! * how long does compiling + applying one update take, on the delta
//!   path (pure in-alphabet adds) vs. the full-rebuild path (removals)?
//! * what does the engine's data path deliver with **no** churn?
//! * what does it deliver while updates are published mid-trace, with
//!   no quiescing — i.e. what does churn actually cost the hot path?
//!
//! The host's core count is recorded alongside every row, as in
//! `BENCH_engine.json`: single-core containers measure scheduling
//! overhead, not parallel speedup.

use camus_bench::engine_runs::{host_cores, results_dir, time_engine_trace};
use camus_bench::harness::Bench;
use camus_bench::{impl_to_json, json};
use camus_core::{CompilerOptions, IncrementalCompiler};
use camus_engine::{shard, Engine, EngineConfig};
use camus_lang::parse_spec;
use camus_workload::{bench_feed, itch_churn, ChurnConfig, ItchSubsConfig};

#[derive(Debug, Clone)]
struct ChurnRow {
    config: String,
    workers: usize,
    host_cores: usize,
    packets_per_iter: u64,
    updates_per_iter: u64,
    ns_per_iter: f64,
    pkts_per_sec: f64,
    update_latency_ns: f64,
}

impl_to_json!(ChurnRow {
    config,
    workers,
    host_cores,
    packets_per_iter,
    updates_per_iter,
    ns_per_iter,
    pkts_per_sec,
    update_latency_ns,
});

fn main() {
    let bench = Bench::from_env();
    let host_cores = host_cores();

    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let opts = CompilerOptions::default();

    // Figure-5c-shaped churn: `stock == S ∧ price > P : fwd(H)`. The
    // pool doubles as the session alphabet, so adds splice; the
    // `rebuild` schedule's removals force full recompiles.
    let itch = ItchSubsConfig::default();
    let base_churn = ChurnConfig {
        initial_rules: 64,
        steps: 8,
        adds_per_step: 8,
        removes_per_step: 0,
        seed: 0xBE11,
        ..Default::default()
    };
    let delta = itch_churn(&itch, &base_churn);
    let rebuild = itch_churn(
        &itch,
        &ChurnConfig {
            removes_per_step: 4,
            ..base_churn.clone()
        },
    );

    let mut rows: Vec<ChurnRow> = Vec::new();

    // Baseline: session creation + initial install alone, so the
    // update rows below can report marginal per-update latency.
    let setup = bench
        .run("churn/session_setup_64_rules", 1, || {
            let mut session = IncrementalCompiler::new(spec.clone(), &opts, &delta.0).unwrap();
            session.install(&delta.1.initial).unwrap().total_entries
        })
        .report()
        .ns_per_iter;

    for (name, (pool, schedule)) in [("delta", &delta), ("rebuild", &rebuild)] {
        let updates = schedule.steps.len() as u64;
        let r = bench.run(
            &format!("churn/update_{name}_compile_and_apply_x{updates}"),
            updates,
            || {
                let mut session = IncrementalCompiler::new(spec.clone(), &opts, pool).unwrap();
                let mut pipe = session.install(&schedule.initial).unwrap().pipeline;
                for step in &schedule.steps {
                    let report = session.update(&step.add, &step.remove).unwrap();
                    report.apply_to(&mut pipe).unwrap();
                }
                pipe.tables.len()
            },
        );
        r.report();
        rows.push(ChurnRow {
            config: format!("update_{name}"),
            workers: 0,
            host_cores,
            packets_per_iter: 0,
            updates_per_iter: updates,
            ns_per_iter: r.ns_per_iter,
            pkts_per_sec: 0.0,
            update_latency_ns: (r.ns_per_iter - setup).max(0.0) / updates as f64,
        });
    }

    // Data path: the same 4k-packet synthetic feed the engine
    // line-rate bench replays.
    let packets: Vec<Vec<u8>> = bench_feed(4_000).into_iter().map(|p| p.bytes).collect();
    let n = packets.len() as u64;
    let workers = host_cores.clamp(1, 4);
    let cfg = EngineConfig {
        workers,
        ..Default::default()
    };
    let shard_fn = shard::itch_symbol_shard();

    let mut quiet_session = IncrementalCompiler::new(spec.clone(), &opts, &rebuild.0).unwrap();
    let initial_pipeline = quiet_session.install(&rebuild.1.initial).unwrap().pipeline;

    let quiet = time_engine_trace(
        &bench,
        &format!("churn/engine_no_churn_w{workers}"),
        &initial_pipeline,
        &cfg,
        &shard_fn,
        &packets,
    );
    rows.push(ChurnRow {
        config: "engine_no_churn".into(),
        workers,
        host_cores,
        packets_per_iter: n,
        updates_per_iter: 0,
        ns_per_iter: quiet.ns_per_iter,
        pkts_per_sec: quiet.elems_per_sec().unwrap(),
        update_latency_ns: 0.0,
    });

    // Under churn: one generation published per trace slice, no
    // quiescing — the workers adopt at batch boundaries while packets
    // keep flowing. The iteration includes the update compiles, which
    // is exactly the cost a live control plane would impose.
    let steps = rebuild.1.steps.len();
    let burst = packets.len() / (steps + 1);
    let churned = bench.run(
        &format!("churn/engine_under_churn_w{workers}_x{steps}_updates"),
        n,
        || {
            let mut session = IncrementalCompiler::new(spec.clone(), &opts, &rebuild.0).unwrap();
            let initial = session.install(&rebuild.1.initial).unwrap();
            let mut engine = Engine::start(&initial.pipeline, &cfg, shard_fn.clone());
            let mut fed = 0;
            for step in &rebuild.1.steps {
                for p in &packets[fed..fed + burst] {
                    engine.submit(p, 0);
                }
                fed += burst;
                let report = session.update(&step.add, &step.remove).unwrap();
                engine.apply_update(&report).unwrap();
            }
            for p in &packets[fed..] {
                engine.submit(p, 0);
            }
            engine.finish().stats.packets
        },
    );
    churned.report();
    rows.push(ChurnRow {
        config: "engine_under_churn".into(),
        workers,
        host_cores,
        packets_per_iter: n,
        updates_per_iter: steps as u64,
        ns_per_iter: churned.ns_per_iter,
        pkts_per_sec: churned.elems_per_sec().unwrap(),
        update_latency_ns: 0.0,
    });

    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_churn.json");
    std::fs::write(&path, json::to_string_pretty(rows.as_slice())).unwrap();
    println!(
        "wrote {} ({} rows, host_cores={host_cores})",
        path.display(),
        rows.len()
    );
}
