//! Bench behind the §4 line-rate claim: per-packet cost of the
//! compiled data plane (parse → per-field tables → leaf →
//! replication). On hardware this path runs at line rate by
//! construction; here it quantifies the simulator's message-processing
//! throughput, which bounds how large the Figure 7 traces can be.

use camus_bench::harness::Bench;
use camus_core::{Compiler, CompilerOptions};
use camus_lang::{parse_program, parse_spec};
use camus_workload::{synthesize_feed, TraceConfig};

fn main() {
    let bench = Bench::from_env();
    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();

    // 200 symbols spread over 32 ports — the line-rate experiment's
    // table shape.
    let src: String = (0..200)
        .map(|i| {
            format!(
                "stock == {} : fwd({})\n",
                camus_workload::itch_subs::stock_symbol(i),
                i % 32 + 1
            )
        })
        .collect();
    let rules = parse_program(&src).unwrap();
    let prog = compiler.compile(&rules).unwrap();
    let mut pipeline = prog.pipeline;

    let trace = synthesize_feed(&TraceConfig {
        target_fraction: 0.0,
        add_order_fraction: 1.0,
        burst_multiplier: 1.0,
        ..TraceConfig::synthetic(1_000)
    });
    let packets: Vec<&[u8]> = trace.iter().map(|p| p.bytes.as_slice()).collect();
    let n = packets.len() as u64;

    bench
        .run("linerate/pipeline_process_1k_packets", n, || {
            let mut forwarded = 0usize;
            for p in &packets {
                forwarded += pipeline.process(p, 0).unwrap().ports.len();
            }
            forwarded
        })
        .report();

    // Batched path: same packets through the scratch-reusing API.
    let mut out = camus_pipeline::DecisionBuf::default();
    bench
        .run("linerate/pipeline_process_batch_1k_packets", n, || {
            out.clear();
            pipeline
                .process_batch(packets.iter().map(|p| (*p, 0u64)), &mut out)
                .unwrap();
            out.len()
        })
        .report();

    // Parser alone (header extraction is the hardware-critical path).
    let layout = pipeline.layout.clone();
    let parser = pipeline.parser.clone();
    bench
        .run("linerate/parser_only_1k_packets", n, || {
            let mut msgs = 0usize;
            for p in &packets {
                msgs += parser.parse(&layout, p).unwrap().len();
            }
            msgs
        })
        .report();
}
