//! Throughput of the multi-core sharded engine vs. the sequential
//! batch path, sweeping worker counts. Writes
//! `results/BENCH_engine.json` with packets/sec per configuration so
//! the scaling curve is inspectable offline.
//!
//! The host's core count is recorded alongside every row: on a
//! single-core container the worker sweep measures scheduling overhead,
//! not parallel speedup, and the JSON must say so honestly.

use camus_bench::harness::Bench;
use camus_bench::{impl_to_json, json};
use camus_core::{Compiler, CompilerOptions};
use camus_engine::{shard, Engine, EngineConfig};
use camus_lang::{parse_program, parse_spec};
use camus_pipeline::DecisionBuf;
use camus_workload::{synthesize_feed, TraceConfig};

#[derive(Debug, Clone)]
struct EngineRow {
    config: String,
    workers: usize,
    host_cores: usize,
    packets_per_iter: u64,
    ns_per_iter: f64,
    pkts_per_sec: f64,
    speedup_vs_sequential: f64,
}

impl_to_json!(EngineRow {
    config,
    workers,
    host_cores,
    packets_per_iter,
    ns_per_iter,
    pkts_per_sec,
    speedup_vs_sequential,
});

fn main() {
    let bench = Bench::from_env();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Same table shape as linerate_pipeline: 200 symbols over 32 ports.
    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();
    let src: String = (0..200)
        .map(|i| {
            format!(
                "stock == {} : fwd({})\n",
                camus_workload::itch_subs::stock_symbol(i),
                i % 32 + 1
            )
        })
        .collect();
    let rules = parse_program(&src).unwrap();
    let prog = compiler.compile(&rules).unwrap();
    let pipeline = prog.pipeline;

    let trace = synthesize_feed(&TraceConfig {
        target_fraction: 0.0,
        add_order_fraction: 1.0,
        burst_multiplier: 1.0,
        ..TraceConfig::synthetic(4_000)
    });
    let packets: Vec<&[u8]> = trace.iter().map(|p| p.bytes.as_slice()).collect();
    let n = packets.len() as u64;

    let mut rows: Vec<EngineRow> = Vec::new();

    // Sequential baseline: the allocation-free batch path on one core.
    let mut baseline = pipeline.clone();
    let mut out = DecisionBuf::default();
    let base = bench.run("engine/sequential_batch_4k_packets", n, || {
        out.clear();
        baseline
            .process_batch(packets.iter().map(|p| (*p, 0u64)), &mut out)
            .unwrap();
        out.len()
    });
    base.report();
    let base_pps = base.elems_per_sec().unwrap();
    rows.push(EngineRow {
        config: "sequential_batch".into(),
        workers: 1,
        host_cores,
        packets_per_iter: n,
        ns_per_iter: base.ns_per_iter,
        pkts_per_sec: base_pps,
        speedup_vs_sequential: 1.0,
    });

    // Worker sweep: each iteration starts the engine, replays the
    // trace and joins — so the measured rate includes thread startup,
    // matching how a replay tool would run it.
    for workers in [1usize, 2, 4, 8] {
        let cfg = EngineConfig {
            workers,
            ..Default::default()
        };
        let shard_fn = shard::itch_symbol_shard();
        let r = bench.run(
            &format!("engine/run_trace_4k_packets_w{workers}"),
            n,
            || {
                let mut engine = Engine::start(&pipeline, &cfg, shard_fn.clone());
                for p in &packets {
                    engine.submit(p, 0);
                }
                engine.finish().stats.packets
            },
        );
        r.report();
        let pps = r.elems_per_sec().unwrap();
        rows.push(EngineRow {
            config: format!("engine_w{workers}"),
            workers,
            host_cores,
            packets_per_iter: n,
            ns_per_iter: r.ns_per_iter,
            pkts_per_sec: pps,
            speedup_vs_sequential: pps / base_pps,
        });
    }

    // Anchor to the workspace root: `cargo bench` runs the binary with
    // the package directory (crates/bench) as its working directory.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_engine.json");
    std::fs::write(&path, json::to_string_pretty(rows.as_slice())).unwrap();
    println!(
        "wrote {} ({} rows, host_cores={host_cores})",
        path.display(),
        rows.len()
    );
}
