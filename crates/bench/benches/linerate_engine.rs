//! Throughput of the multi-core sharded engine vs. the sequential
//! batch path, sweeping worker counts, plus the telemetry A/B. Writes
//! `results/BENCH_engine.json` with packets/sec per configuration so
//! the scaling curve is inspectable offline, and
//! `results/TELEMETRY_engine.json` with the merged observability
//! snapshot (per-stage latency percentiles, per-table hit counters,
//! control-plane spans) from an instrumented replay.
//!
//! The `engine_w{N}_telemetry` rows re-run the worker sweep with
//! histograms enabled; the A/B against the matching uninstrumented row
//! is what proves instrumentation stays under its 5 % throughput
//! budget (`overhead_pct` in the telemetry export, asserted by CI).
//!
//! The host's core count is recorded alongside every row: on a
//! single-core container the worker sweep measures scheduling overhead,
//! not parallel speedup, and the JSON must say so honestly.

use camus_bench::engine_runs::{
    capture_telemetry, host_cores, results_dir, telemetry_doc, telemetry_overhead_ab,
    time_engine_trace, write_telemetry_json,
};
use camus_bench::harness::Bench;
use camus_bench::{impl_to_json, json};
use camus_core::{Compiler, CompilerOptions};
use camus_engine::{shard, EngineConfig};
use camus_lang::{parse_program, parse_spec};
use camus_pipeline::DecisionBuf;
use camus_workload::bench_feed;

#[derive(Debug, Clone)]
struct EngineRow {
    config: String,
    workers: usize,
    host_cores: usize,
    packets_per_iter: u64,
    ns_per_iter: f64,
    pkts_per_sec: f64,
    speedup_vs_sequential: f64,
}

impl_to_json!(EngineRow {
    config,
    workers,
    host_cores,
    packets_per_iter,
    ns_per_iter,
    pkts_per_sec,
    speedup_vs_sequential,
});

fn main() {
    let bench = Bench::from_env();
    let host_cores = host_cores();

    // Same table shape as linerate_pipeline: 200 symbols over 32 ports.
    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();
    let src: String = (0..200)
        .map(|i| {
            format!(
                "stock == {} : fwd({})\n",
                camus_workload::itch_subs::stock_symbol(i),
                i % 32 + 1
            )
        })
        .collect();
    let rules = parse_program(&src).unwrap();
    let prog = compiler.compile(&rules).unwrap();
    let pipeline = prog.pipeline;

    let packets: Vec<Vec<u8>> = bench_feed(4_000).into_iter().map(|p| p.bytes).collect();
    let n = packets.len() as u64;

    let mut rows: Vec<EngineRow> = Vec::new();

    // Sequential baseline: the allocation-free batch path on one core.
    let mut baseline = pipeline.clone();
    let mut out = DecisionBuf::default();
    let base = bench.run("engine/sequential_batch_4k_packets", n, || {
        out.clear();
        baseline
            .process_batch(packets.iter().map(|p| (p.as_slice(), 0u64)), &mut out)
            .unwrap();
        out.len()
    });
    base.report();
    let base_pps = base.elems_per_sec().unwrap();
    rows.push(EngineRow {
        config: "sequential_batch".into(),
        workers: 1,
        host_cores,
        packets_per_iter: n,
        ns_per_iter: base.ns_per_iter,
        pkts_per_sec: base_pps,
        speedup_vs_sequential: 1.0,
    });

    // Worker sweep, uninstrumented then instrumented (the visible A/B
    // rows). Each iteration starts the engine, replays the trace and
    // joins — so the measured rate includes thread startup, matching
    // how a replay tool would run it.
    let shard_fn = shard::itch_symbol_shard();
    let sweep = [1usize, 2, 4, 8];
    for &workers in &sweep {
        for telemetry in [false, true] {
            let cfg = EngineConfig {
                workers,
                telemetry,
                ..Default::default()
            };
            let suffix = if telemetry { "_telemetry" } else { "" };
            let r = time_engine_trace(
                &bench,
                &format!("engine/run_trace_4k_packets_w{workers}{suffix}"),
                &pipeline,
                &cfg,
                &shard_fn,
                &packets,
            );
            let pps = r.elems_per_sec().unwrap();
            rows.push(EngineRow {
                config: format!("engine_w{workers}{suffix}"),
                workers,
                host_cores,
                packets_per_iter: n,
                ns_per_iter: r.ns_per_iter,
                pkts_per_sec: pps,
                speedup_vs_sequential: pps / base_pps,
            });
        }
    }

    // Authoritative overhead number: paired alternating iterations at
    // the largest worker count the host can actually run in parallel
    // (larger sweep counts on a small host measure scheduling noise,
    // not instrumentation).
    let ab_workers = sweep
        .iter()
        .copied()
        .filter(|&w| w <= host_cores)
        .max()
        .unwrap_or(1);
    let ab_cfg = EngineConfig {
        workers: ab_workers,
        ..Default::default()
    };
    let overhead = telemetry_overhead_ab(&bench, &pipeline, &ab_cfg, &shard_fn, &packets);
    println!(
        "telemetry overhead @ w{} (paired A/B): {:.2}%",
        overhead.workers, overhead.overhead_pct
    );

    // Telemetry export: one untimed instrumented replay at the A/B
    // worker count for the distributions, plus the A/B numbers above.
    let snap = capture_telemetry(&pipeline, &ab_cfg, &shard_fn, &packets);
    let doc = telemetry_doc("linerate_engine", &snap, overhead);
    let tpath = write_telemetry_json(&doc);
    println!("wrote {}", tpath.display());

    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_engine.json");
    std::fs::write(&path, json::to_string_pretty(rows.as_slice())).unwrap();
    println!(
        "wrote {} ({} rows, host_cores={host_cores})",
        path.display(),
        rows.len()
    );
}
