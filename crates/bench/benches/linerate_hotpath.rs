//! Hot-path accelerators end to end: the SPSC-ring engine with and
//! without the hot-symbol decision cache, against the sequential batch
//! baseline. Writes `results/BENCH_hotpath.json`.
//!
//! Two traces, two questions:
//!
//! - **Uniform fan-out feed** (`bench_feed`, the canonical engine-bench
//!   trace): does the single-worker engine now beat the sequential
//!   batch path? `engine_w1_nocache` shows what the ring + shared-`Arc`
//!   data path alone buys; `engine_w1` adds the decision cache — the
//!   headline row, targeted at ≥ 1.1× `sequential_batch`.
//! - **Zipf-popularity feed** (`zipf_s = 1.1`, the paper's symbol
//!   skew): the cache A/B. `zipf_cache_on` vs `zipf_cache_off` is the
//!   same engine, same trace, cache armed vs not — the ratio isolates
//!   what memoizing per-symbol decisions is worth on realistic traffic
//!   (target ≥ 1.5×).
//!
//! Cache-on rows record the measured hit rate from an untimed replay of
//! the same configuration (`time_engine_trace` discards the engine
//! report), and the bench asserts the cache was genuinely live — a row
//! whose cache silently failed to arm would otherwise measure the
//! uncached path under a cached label.
//!
//! `engine_w8` rides along only when the host has more than one core;
//! on a 1-core container an 8-worker row measures scheduling overhead,
//! not parallelism, and would just be noise with a misleading name.

use camus_bench::engine_runs::{host_cores, results_dir, time_engine_trace};
use camus_bench::harness::Bench;
use camus_bench::{impl_to_json, json};
use camus_core::{Compiler, CompilerOptions};
use camus_engine::{shard, Engine, EngineConfig, ShardFn};
use camus_lang::{parse_program, parse_spec};
use camus_pipeline::{DecisionBuf, Pipeline};
use camus_workload::{bench_feed, synthesize_feed, TraceConfig};

#[derive(Debug, Clone)]
struct HotpathRow {
    config: String,
    workers: usize,
    cache: bool,
    host_cores: usize,
    packets_per_iter: u64,
    ns_per_iter: f64,
    pkts_per_sec: f64,
    /// Uniform rows: vs `sequential_batch`. Zipf rows: vs
    /// `zipf_cache_off` (each pair's own uncached run is its baseline).
    speedup_vs_baseline: f64,
    /// hits / (hits + misses) from an untimed replay; 0 when uncached.
    cache_hit_rate: f64,
}

impl_to_json!(HotpathRow {
    config,
    workers,
    cache,
    host_cores,
    packets_per_iter,
    ns_per_iter,
    pkts_per_sec,
    speedup_vs_baseline,
    cache_hit_rate,
});

const CACHE_FIELD: &str = "add_order.stock";

/// One untimed replay returning the cache hit rate, asserting the cache
/// actually armed and observed every message.
fn measured_hit_rate(
    pipeline: &Pipeline,
    cfg: &EngineConfig,
    shard_fn: &ShardFn,
    packets: &[Vec<u8>],
) -> f64 {
    let mut engine = Engine::start(pipeline, cfg, shard_fn.clone());
    for p in packets {
        engine.submit(p, 0);
    }
    let report = engine.finish();
    assert!(report.error.is_none(), "engine fault during hit-rate probe");
    let h = &report.hotpath;
    assert!(
        h.cache_hits > 0,
        "decision cache never hit — did it arm? {h:?}"
    );
    assert_eq!(
        h.cache_hits + h.cache_misses,
        report.stats.messages,
        "a cacheable program must classify every message"
    );
    h.cache_hits as f64 / (h.cache_hits + h.cache_misses) as f64
}

fn main() {
    let bench = Bench::from_env();
    let host_cores = host_cores();

    // Same program shape as linerate_engine: 200 symbols over 32 ports.
    // Symbol-only rules keep the compiled chain a pure function of the
    // stock field, so the decision cache can arm.
    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();
    let src: String = (0..200)
        .map(|i| {
            format!(
                "stock == {} : fwd({})\n",
                camus_workload::itch_subs::stock_symbol(i),
                i % 32 + 1
            )
        })
        .collect();
    let rules = parse_program(&src).unwrap();
    let pipeline = compiler.compile(&rules).unwrap().pipeline;
    let shard_fn = shard::itch_symbol_shard();

    let uniform: Vec<Vec<u8>> = bench_feed(4_000).into_iter().map(|p| p.bytes).collect();
    // The paper's symbol skew: Zipf(1.1) add-order popularity over the
    // same 200-symbol universe the rules subscribe to, smooth arrivals.
    let zipf: Vec<Vec<u8>> = synthesize_feed(&TraceConfig {
        target_fraction: 0.0,
        add_order_fraction: 1.0,
        zipf_s: 1.1,
        burst_multiplier: 1.0,
        ..TraceConfig::synthetic(4_000)
    })
    .into_iter()
    .map(|p| p.bytes)
    .collect();
    let n = uniform.len() as u64;

    let mut rows: Vec<HotpathRow> = Vec::new();

    // Sequential baseline: the allocation-free batch path on one core,
    // no cache — the bar the accelerated engine has to clear.
    let mut baseline = pipeline.clone();
    let mut out = DecisionBuf::default();
    let base = bench.run("hotpath/sequential_batch_4k_packets", n, || {
        out.clear();
        baseline
            .process_batch(uniform.iter().map(|p| (p.as_slice(), 0u64)), &mut out)
            .unwrap();
        out.len()
    });
    base.report();
    let base_pps = base.elems_per_sec().unwrap();
    rows.push(HotpathRow {
        config: "sequential_batch".into(),
        workers: 1,
        cache: false,
        host_cores,
        packets_per_iter: n,
        ns_per_iter: base.ns_per_iter,
        pkts_per_sec: base_pps,
        speedup_vs_baseline: 1.0,
        cache_hit_rate: 0.0,
    });

    // Uniform-feed engine rows: ring+Arc alone, then with the cache.
    let mut engine_sweep: Vec<(String, usize, bool)> = vec![
        ("engine_w1_nocache".into(), 1, false),
        ("engine_w1".into(), 1, true),
    ];
    if host_cores > 1 {
        engine_sweep.push(("engine_w8".into(), 8, true));
    } else {
        println!("host has 1 core: skipping the engine_w8 row");
    }
    for (config, workers, cache) in engine_sweep {
        let cfg = EngineConfig {
            workers,
            pin_workers: host_cores > 1,
            decision_cache: cache.then(|| CACHE_FIELD.into()),
            ..Default::default()
        };
        let hit_rate = if cache {
            measured_hit_rate(&pipeline, &cfg, &shard_fn, &uniform)
        } else {
            0.0
        };
        let r = time_engine_trace(
            &bench,
            &format!("hotpath/{config}_4k_packets"),
            &pipeline,
            &cfg,
            &shard_fn,
            &uniform,
        );
        let pps = r.elems_per_sec().unwrap();
        rows.push(HotpathRow {
            config,
            workers,
            cache,
            host_cores,
            packets_per_iter: n,
            ns_per_iter: r.ns_per_iter,
            pkts_per_sec: pps,
            speedup_vs_baseline: pps / base_pps,
            cache_hit_rate: hit_rate,
        });
    }

    // Zipf A/B: identical single-worker engine, cache off vs on.
    let zn = zipf.len() as u64;
    let mut zipf_off_pps = 0.0f64;
    for (config, cache) in [("zipf_cache_off", false), ("zipf_cache_on", true)] {
        let cfg = EngineConfig {
            workers: 1,
            decision_cache: cache.then(|| CACHE_FIELD.into()),
            ..Default::default()
        };
        let hit_rate = if cache {
            measured_hit_rate(&pipeline, &cfg, &shard_fn, &zipf)
        } else {
            0.0
        };
        let r = time_engine_trace(
            &bench,
            &format!("hotpath/{config}_4k_packets"),
            &pipeline,
            &cfg,
            &shard_fn,
            &zipf,
        );
        let pps = r.elems_per_sec().unwrap();
        if !cache {
            zipf_off_pps = pps;
        }
        rows.push(HotpathRow {
            config: config.into(),
            workers: 1,
            cache,
            host_cores,
            packets_per_iter: zn,
            ns_per_iter: r.ns_per_iter,
            pkts_per_sec: pps,
            speedup_vs_baseline: pps / zipf_off_pps,
            cache_hit_rate: hit_rate,
        });
    }

    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_hotpath.json");
    std::fs::write(&path, json::to_string_pretty(rows.as_slice())).unwrap();
    println!(
        "wrote {} ({} rows, host_cores={host_cores})",
        path.display(),
        rows.len()
    );
}
