//! Service-shell benchmark: what the control bus costs. Writes
//! `results/BENCH_daemon.json`.
//!
//! One long-lived daemon (in-process, real TCP sockets) serves every
//! row:
//!
//! * `rpc_ping` — raw RPC round-trip over the bus: connect once, then
//!   ping in a closed loop. `rpc_p50_ns`/`rpc_p99_ns` come from the
//!   per-call samples; `rpcs_per_sec = 1e9 / p99` is the
//!   higher-is-better rate the one-sided regression gate bounds from
//!   below.
//! * `churn_c{1,8,64}` — mutation throughput at 1/8/64 concurrent
//!   clients: every iteration runs the `camus-workload` bus-churn
//!   driver (disjoint rule slices, alternating subscribe/unsubscribe,
//!   self-cancelling so the daemon's rule set is unchanged between
//!   iterations). `mutations_per_sec` is the gated figure;
//!   `coalesce_factor` (mutations applied / epochs published, from
//!   `Stats` RPC deltas) records how many queued requests each
//!   `apply_update` epoch absorbed.
//!
//! `CAMUS_BENCH_QUICK=1` shrinks the per-iteration op counts for CI.

use std::time::Instant;

use camus_bench::engine_runs::{host_cores, results_dir};
use camus_bench::harness::Bench;
use camus_bench::{impl_to_json, json};
use camus_bus::BusClient;
use camus_workload::bus_churn::percentile;
use camus_workload::{run_bus_churn, BusChurnConfig};
use camusd::{Daemon, DaemonConfig};

#[derive(Debug, Clone)]
struct DaemonRow {
    config: String,
    clients: usize,
    host_cores: usize,
    ops_per_iter: u64,
    ns_per_iter: f64,
    /// Accepted mutation RPCs per second (0 on the ping row).
    mutations_per_sec: f64,
    rpc_p50_ns: u64,
    rpc_p99_ns: u64,
    /// `1e9 / rpc_p99_ns` — tail latency as a higher-is-better rate
    /// so the one-sided bench-regression gate can bound it from below.
    rpcs_per_sec: f64,
    /// Mutations applied per published epoch over this row's window
    /// (1.0 = no coalescing; 0 on the ping row).
    coalesce_factor: f64,
    /// Epochs published during this row's window.
    epochs: u64,
}

impl_to_json!(DaemonRow {
    config,
    clients,
    host_cores,
    ops_per_iter,
    ns_per_iter,
    mutations_per_sec,
    rpc_p50_ns,
    rpc_p99_ns,
    rpcs_per_sec,
    coalesce_factor,
    epochs,
});

const INITIAL: usize = 16;
const CHURN_POOL: usize = 256;

fn main() {
    let bench = Bench::from_env();
    let quick = std::env::var("CAMUS_BENCH_QUICK").is_ok_and(|v| v != "0");
    let host_cores = host_cores();

    let cfg = DaemonConfig::itch(INITIAL, INITIAL + CHURN_POOL).expect("itch config");
    let pool = cfg.pool.clone();
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let addr = daemon.bus_addrs()[0].clone();
    let churn_pool = &pool[INITIAL..];

    let mut rows: Vec<DaemonRow> = Vec::new();

    // Raw RPC round trip: one persistent connection, closed-loop pings.
    let pings: usize = if quick { 2_000 } else { 20_000 };
    let mut client = BusClient::connect(&addr).expect("ping client");
    let mut samples: Vec<u64> = Vec::with_capacity(pings);
    // Warmup outside the sample window.
    for _ in 0..pings / 10 + 1 {
        client.ping().expect("warmup ping");
    }
    let start = Instant::now();
    for _ in 0..pings {
        let t = Instant::now();
        client.ping().expect("ping");
        samples.push(t.elapsed().as_nanos() as u64);
    }
    let ns_per_iter = start.elapsed().as_nanos() as f64 / pings as f64;
    samples.sort_unstable();
    let (p50, p99) = (percentile(&samples, 0.50), percentile(&samples, 0.99));
    println!(
        "{:<44} {:>14.0} ns/iter   p50 {p50} ns   p99 {p99} ns   ({pings} iters)",
        "daemon/rpc_ping", ns_per_iter
    );
    rows.push(DaemonRow {
        config: "rpc_ping".into(),
        clients: 1,
        host_cores,
        ops_per_iter: pings as u64,
        ns_per_iter,
        mutations_per_sec: 0.0,
        rpc_p50_ns: p50,
        rpc_p99_ns: p99,
        rpcs_per_sec: 1e9 / p99.max(1) as f64,
        coalesce_factor: 0.0,
        epochs: 0,
    });

    // Mutation throughput under concurrent clients. Even op counts are
    // self-cancelling, so each iteration starts from the same rule set.
    let ops_per_client: usize = if quick { 8 } else { 32 };
    for clients in [1usize, 8, 64] {
        let churn_cfg = BusChurnConfig {
            clients,
            ops_per_client,
        };
        let ops = (clients * ops_per_client) as u64;
        let before = client.stats().expect("stats before");
        let mut last_latencies: Vec<u64> = Vec::new();
        let r = bench.run(&format!("daemon/churn_c{clients}"), ops, || {
            let report = run_bus_churn(&addr, churn_pool, &churn_cfg).expect("churn run");
            assert_eq!(report.rejected, 0, "disjoint slices must never reject");
            assert_eq!(report.accepted, ops);
            last_latencies = report.latencies_ns;
            report.max_generation
        });
        r.report();
        let after = client.stats().expect("stats after");
        let epochs = after.epochs - before.epochs;
        let applied = after.mutations_applied - before.mutations_applied;
        let (p50, p99) = (
            percentile(&last_latencies, 0.50),
            percentile(&last_latencies, 0.99),
        );
        rows.push(DaemonRow {
            config: format!("churn_c{clients}"),
            clients,
            host_cores,
            ops_per_iter: ops,
            ns_per_iter: r.ns_per_iter,
            mutations_per_sec: ops as f64 * 1e9 / r.ns_per_iter,
            rpc_p50_ns: p50,
            rpc_p99_ns: p99,
            rpcs_per_sec: 1e9 / p99.max(1) as f64,
            coalesce_factor: applied as f64 / epochs.max(1) as f64,
            epochs,
        });
    }

    let report = daemon.join();
    assert!(report.zero_loss(), "bench daemon must quiesce clean");
    assert_eq!(
        report.active_rules.len(),
        INITIAL,
        "self-cancelling churn must leave the rule set unchanged"
    );

    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_daemon.json");
    std::fs::write(&path, json::to_string_pretty(rows.as_slice())).unwrap();
    println!(
        "wrote {} ({} rows, host_cores={host_cores})",
        path.display(),
        rows.len()
    );
}
