//! Fault-plane benchmark: what robustness costs on the hot path and
//! how fast the control plane says no. Writes
//! `results/BENCH_faults.json`.
//!
//! Row groups:
//!
//! * supervision overhead — the same clean trace through the engine
//!   with the per-batch `catch_unwind` supervisor on vs. off;
//! * corrupted wire — a trace where 10 % of frames are truncated or
//!   bit-flipped, absorbed as typed drops by the total parse path;
//! * panic recovery — scripted worker panics mid-trace, batches
//!   quarantined and the run still completing;
//! * admission control — the latency of charging an update against the
//!   ASIC model, for an accepted update and for a rejected capacity
//!   bomb (both are pure `place_chain` arithmetic plus a clone).
//!
//! The host's core count rides along, as in `BENCH_engine.json`.

use std::sync::Arc;

use camus_bench::engine_runs::{host_cores, results_dir, time_engine_trace};
use camus_bench::harness::Bench;
use camus_bench::{impl_to_json, json};
use camus_core::{Compiler, CompilerOptions};
use camus_engine::{shard, EngineConfig, FaultInjection, ShardFn};
use camus_lang::parse_spec;
use camus_pipeline::resources::place_chain;
use camus_pipeline::AsicModel;
use camus_workload::{
    bench_feed, capacity_bomb, generate_itch_subscriptions, FaultPlan, FaultPlanConfig,
    ItchSubsConfig,
};

#[derive(Debug, Clone)]
struct FaultRow {
    config: String,
    workers: usize,
    host_cores: usize,
    packets_per_iter: u64,
    faults_per_iter: u64,
    ns_per_iter: f64,
    pkts_per_sec: f64,
}

impl_to_json!(FaultRow {
    config,
    workers,
    host_cores,
    packets_per_iter,
    faults_per_iter,
    ns_per_iter,
    pkts_per_sec,
});

/// Total shard: corrupted frames get a constant shard, never a panic.
fn total_symbol_shard() -> ShardFn {
    let inner = shard::itch_symbol_shard();
    Arc::new(move |p: &[u8]| {
        if p.len() >= 64 {
            inner(p)
        } else {
            shard::mix64(shard::fnv1a(p))
        }
    })
}

fn main() {
    // The scripted-panic rows intentionally panic inside supervised
    // workers; keep those unwinds out of the bench output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected worker panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let bench = Bench::from_env();
    let host_cores = host_cores();
    let workers = host_cores.clamp(1, 4);

    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();
    let itch = ItchSubsConfig {
        subscriptions: 64,
        ..Default::default()
    };
    let pipeline = compiler
        .compile(&generate_itch_subscriptions(&itch))
        .unwrap()
        .pipeline;

    let clean: Vec<Vec<u8>> = bench_feed(4_000).into_iter().map(|p| p.bytes).collect();
    let n = clean.len() as u64;
    let shard_fn = total_symbol_shard();

    let mut rows: Vec<FaultRow> = Vec::new();
    let engine_row = |name: &str,
                      rows: &mut Vec<FaultRow>,
                      packets: &[Vec<u8>],
                      cfg: &EngineConfig,
                      faults_per_iter: u64| {
        let r = time_engine_trace(
            &bench,
            &format!("faults/{name}_w{}", cfg.workers),
            &pipeline,
            cfg,
            &shard_fn,
            packets,
        );
        rows.push(FaultRow {
            config: name.into(),
            workers: cfg.workers,
            host_cores,
            packets_per_iter: n,
            faults_per_iter,
            ns_per_iter: r.ns_per_iter,
            pkts_per_sec: r.elems_per_sec().unwrap(),
        });
    };

    // Supervision overhead on a clean trace.
    let supervised = EngineConfig {
        workers,
        supervise: true,
        ..Default::default()
    };
    let unsupervised = EngineConfig {
        supervise: false,
        ..supervised.clone()
    };
    engine_row("engine_clean_supervised", &mut rows, &clean, &supervised, 0);
    engine_row(
        "engine_clean_unsupervised",
        &mut rows,
        &clean,
        &unsupervised,
        0,
    );

    // Corrupted wire: 10 % of frames truncated or bit-flipped.
    let plan = FaultPlan::generate(
        &clean,
        &FaultPlanConfig {
            seed: 0xC0DE,
            truncate_fraction: 0.05,
            bitflip_fraction: 0.05,
            panics: 0,
            deaths: 0,
            stalls: 0,
        },
    );
    engine_row(
        "engine_corrupted_wire",
        &mut rows,
        &plan.packets,
        &supervised,
        plan.mutations.len() as u64,
    );

    // Scripted panics: four batches quarantined per iteration.
    let panic_plan = FaultPlan::generate(
        &clean,
        &FaultPlanConfig {
            seed: 0xD1E,
            truncate_fraction: 0.0,
            bitflip_fraction: 0.0,
            panics: 4,
            deaths: 0,
            stalls: 0,
        },
    );
    let panicky = EngineConfig {
        faults: FaultInjection {
            panic_seqs: Arc::new(panic_plan.panic_seqs.clone()),
            ..Default::default()
        },
        ..supervised.clone()
    };
    engine_row(
        "engine_scripted_panics",
        &mut rows,
        &clean,
        &panicky,
        panic_plan.panic_seqs.len() as u64,
    );

    // Admission arithmetic: accept (the installed program fits the
    // default model) and reject (a capacity bomb against a small one).
    let model = AsicModel::tofino32();
    let accept = bench.run("faults/admission_accept", 1, || {
        let placement = place_chain(&pipeline.tables, &model);
        assert!(placement.failure.is_none());
        placement.placements.len()
    });
    accept.report();
    rows.push(FaultRow {
        config: "admission_accept".into(),
        workers: 0,
        host_cores,
        packets_per_iter: 0,
        faults_per_iter: 0,
        ns_per_iter: accept.ns_per_iter,
        pkts_per_sec: 0.0,
    });

    let tiny = AsicModel {
        stages: 2,
        sram_entries_per_stage: 8,
        tcam_entries_per_stage: 8,
        ..AsicModel::tofino32()
    };
    let bomb_pipeline = compiler
        .compile(&capacity_bomb(&itch, 16, 0xB0B))
        .unwrap()
        .pipeline;
    let reject = bench.run("faults/admission_reject", 1, || {
        let placement = place_chain(&bomb_pipeline.tables, &tiny);
        assert!(placement.failure.is_some());
        placement.placements.len()
    });
    reject.report();
    rows.push(FaultRow {
        config: "admission_reject".into(),
        workers: 0,
        host_cores,
        packets_per_iter: 0,
        faults_per_iter: 1,
        ns_per_iter: reject.ns_per_iter,
        pkts_per_sec: 0.0,
    });

    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_faults.json");
    std::fs::write(&path, json::to_string_pretty(rows.as_slice())).unwrap();
    println!(
        "wrote {} ({} rows, host_cores={host_cores})",
        path.display(),
        rows.len()
    );
}
