//! Survivability benchmark: what a leaf death costs the fabric. Writes
//! `results/BENCH_failover.json`.
//!
//! Row groups:
//!
//! * `failover_kill_l{2,4}` — a leaf is killed mid-trace; the spine
//!   detects it at the next probe tick and commits an emergency
//!   failover epoch over the survivors. Each row records the measured
//!   MTTR (fault injection → failover epoch committed), the detection
//!   latency component, and the degraded-window drop count (packets
//!   orphaned between the kill and the repair).
//! * `epoch_retry_stall` — a transient whole-leaf stall hits the
//!   quiesce barrier; the epoch retries with bounded exponential
//!   backoff until the stall drains. Records how many retries the
//!   backoff loop burned.
//!
//! The timing columns come from the bench harness; the robustness
//! columns (MTTR, retries, orphans) come from the *last* measured
//! iteration — they are deterministic per scenario up to scheduler
//! jitter, and the ledger identity `submitted == decided + quarantined
//! + orphaned` is asserted on every iteration.

use camus_bench::engine_runs::{host_cores, results_dir};
use camus_bench::harness::Bench;
use camus_bench::{impl_to_json, json};
use camus_core::{Compiler, CompilerOptions};
use camus_engine::EngineConfig;
use camus_fabric::{EpochOptions, Fabric, FabricConfig};
use camus_workload::{raw_field_extractor, SienaConfig};

#[derive(Debug, Clone)]
struct FailoverRow {
    config: String,
    leaves: usize,
    workers: usize,
    host_cores: usize,
    packets_per_iter: u64,
    ns_per_iter: f64,
    mttr_ns: f64,
    detect_ns: f64,
    /// `1e9 / mttr_ns` — MTTR as a higher-is-better rate so the
    /// one-sided bench-regression gate can bound it from below.
    repairs_per_sec: f64,
    epoch_retries: u64,
    degraded_window_packets: u64,
}

impl_to_json!(FailoverRow {
    config,
    leaves,
    workers,
    host_cores,
    packets_per_iter,
    ns_per_iter,
    mttr_ns,
    detect_ns,
    repairs_per_sec,
    epoch_retries,
    degraded_window_packets,
});

fn main() {
    let bench = Bench::from_env();
    let host_cores = host_cores();
    let workers = host_cores.clamp(1, 2);

    let siena = SienaConfig {
        subscriptions: 24,
        int_attributes: 2,
        symbol_attributes: 1,
        symbol_alphabet: 16,
        int_range: 60,
        predicates_per_subscription: 2,
        seed: 0xFA11,
        ..Default::default()
    };
    let wl = siena.generate();
    let compiler = Compiler::new(wl.spec.clone(), CompilerOptions::raw()).unwrap();
    let master = compiler.compile(&wl.rules).unwrap().pipeline;
    let extract = raw_field_extractor(&wl.spec, "sym0").unwrap();

    let packets = siena.generate_events(&wl, 2_000);
    let n = packets.len() as u64;
    let kill_at = packets.len() / 2;

    let mut rows: Vec<FailoverRow> = Vec::new();

    // Kill a leaf mid-trace; probe-tick detection + emergency epoch.
    for leaves in [2usize, 4] {
        let mut cfg = FabricConfig::uniform(
            leaves,
            "ev.sym0",
            extract.clone(),
            EngineConfig {
                workers,
                watchdog_ms: 50,
                ..EngineConfig::default()
            },
        );
        cfg.probe_interval = 32;
        cfg.epoch = EpochOptions {
            retry_attempts: 20,
            retry_base_ms: 2,
            retry_cap_ms: 20,
        };

        let mut mttr_ns = 0f64;
        let mut detect_ns = 0f64;
        let mut orphaned = 0u64;
        let mut retries = 0u64;
        let r = bench.run(&format!("failover/kill_l{leaves}_w{workers}"), n, || {
            let mut fabric = Fabric::start(&master, &cfg).unwrap();
            for (i, p) in packets.iter().enumerate() {
                if i == kill_at {
                    fabric.kill_leaf(leaves - 1);
                }
                fabric.submit(p, 0);
            }
            assert!(!fabric.degraded(), "failover must converge in-trace");
            let f = fabric.failovers()[0];
            mttr_ns = f.mttr_ns as f64;
            detect_ns = f.detect_ns as f64;
            let report = fabric.finish();
            assert!(report.reconciles(), "ledger must stay exact");
            orphaned = report.robustness.orphaned_packets;
            retries = report.robustness.epoch_retries;
            report.submitted()
        });
        r.report();
        rows.push(FailoverRow {
            config: format!("failover_kill_l{leaves}"),
            leaves,
            workers,
            host_cores,
            packets_per_iter: n,
            ns_per_iter: r.ns_per_iter,
            mttr_ns,
            detect_ns,
            repairs_per_sec: 1e9 / mttr_ns,
            epoch_retries: retries,
            degraded_window_packets: orphaned,
        });
    }

    // Transient stall at the quiesce barrier: retry/backoff until it
    // drains. No deaths, no orphans — just burned retries.
    let leaves = 2usize;
    let mut cfg = FabricConfig::uniform(
        leaves,
        "ev.sym0",
        extract.clone(),
        EngineConfig {
            workers,
            watchdog_ms: 10,
            ..EngineConfig::default()
        },
    );
    cfg.epoch = EpochOptions {
        retry_attempts: 100,
        retry_base_ms: 2,
        retry_cap_ms: 20,
    };
    let mut retries = 0u64;
    let r = bench.run(
        &format!("failover/retry_stall_l{leaves}_w{workers}"),
        1,
        || {
            let mut fabric = Fabric::start(&master, &cfg).unwrap();
            for p in &packets[..64] {
                fabric.submit(p, 0);
            }
            fabric.stall_leaf(0, 40);
            fabric.stall_leaf(1, 40);
            fabric.install_master(master.clone()).unwrap();
            let report = fabric.finish();
            assert!(report.reconciles(), "ledger must stay exact");
            retries = report.robustness.epoch_retries;
            report.epoch
        },
    );
    r.report();
    rows.push(FailoverRow {
        config: "epoch_retry_stall".into(),
        leaves,
        workers,
        host_cores,
        packets_per_iter: 64,
        ns_per_iter: r.ns_per_iter,
        mttr_ns: 0.0,
        detect_ns: 0.0,
        repairs_per_sec: 0.0,
        epoch_retries: retries,
        degraded_window_packets: 0,
    });

    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_failover.json");
    std::fs::write(&path, json::to_string_pretty(rows.as_slice())).unwrap();
    println!(
        "wrote {} ({} rows, host_cores={host_cores})",
        path.display(),
        rows.len()
    );
}
