//! Proof that telemetry keeps the batch hot path allocation-free.
//!
//! Same counting-`#[global_allocator]` harness as `alloc_free.rs`, but
//! with `Pipeline::enable_telemetry` switched on (sampling every
//! packet, the worst case): after warm-up, a steady-state batch with
//! histogram recording active must still perform **zero** allocations —
//! the telemetry record is one `Box` at enable time and fixed-array
//! arithmetic thereafter.
//!
//! This file holds exactly one `#[test]`: the libtest harness runs
//! tests on separate threads but the allocation counter is global, so a
//! sibling test allocating concurrently would corrupt the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use camus_pipeline::parser::{Extract, ParseState, ParserSpec, StateId, Transition};
use camus_pipeline::register::RegisterFile;
use camus_pipeline::{
    ActionOp, DecisionBuf, Entry, ExecState, Key, MatchKind, MatchValue, MulticastTable, PhvLayout,
    Pipeline, PortId, Table,
};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Single-table multi-message pipeline: count byte + one-byte messages,
/// symbols 1..=4 forward (enough to exercise parse, match and the
/// multicast port union every packet).
fn simple_pipeline() -> Pipeline {
    let mut layout = PhvLayout::new();
    let count = layout.add("count", 8);
    let sym = layout.add("sym", 8);

    let parser = ParserSpec::new(
        vec![
            ParseState {
                name: "hdr".into(),
                extracts: vec![Extract {
                    dst: count,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: false,
                next: Transition::SelectRemaining { more: StateId(1) },
            },
            ParseState {
                name: "msg".into(),
                extracts: vec![Extract {
                    dst: sym,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: true,
                next: Transition::SelectRemaining { more: StateId(1) },
            },
        ],
        StateId(0),
    );

    let mut filter = Table::new(
        "filter",
        vec![Key {
            field: sym,
            kind: MatchKind::Exact,
            bits: 8,
        }],
        vec![],
    );
    for b in 1u64..=4 {
        filter
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(b)],
                ops: vec![ActionOp::Forward(PortId(b as u16))],
            })
            .unwrap();
    }

    Pipeline {
        layout,
        parser,
        tables: vec![filter],
        mcast: MulticastTable::new(),
        registers: RegisterFile::new(),
        state_bindings: vec![],
        init_fields: vec![],
        exec: ExecState::default(),
    }
}

fn trace(packets: usize) -> Vec<(Vec<u8>, u64)> {
    let mut rng: u64 = 0x9e3779b97f4a7c15;
    let mut step = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng >> 33
    };
    let mut out = Vec::with_capacity(packets);
    let mut now_us = 0u64;
    for _ in 0..packets {
        let msgs = 1 + (step() % 3) as usize;
        let mut pkt = vec![msgs as u8];
        for _ in 0..msgs {
            pkt.push((step() % 6) as u8);
        }
        now_us += 57;
        out.push((pkt, now_us));
    }
    out
}

#[test]
fn steady_state_batch_with_telemetry_makes_zero_allocations() {
    let mut pipeline = simple_pipeline();
    // Worst case: sample every packet, so all four histograms record on
    // the hot path every iteration.
    pipeline.enable_telemetry(0);
    let packets = trace(1_000);
    let mut out = DecisionBuf::default();

    // Warm-up: two passes grow every scratch buffer to steady state.
    for _ in 0..2 {
        out.clear();
        pipeline
            .process_batch(packets.iter().map(|(p, t)| (p.as_slice(), *t)), &mut out)
            .unwrap();
    }
    let warm_len = out.len();

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    out.clear();
    pipeline
        .process_batch(packets.iter().map(|(p, t)| (p.as_slice(), *t)), &mut out)
        .unwrap();
    let after = ALLOC_CALLS.load(Ordering::SeqCst);

    assert_eq!(out.len(), warm_len);
    let t = pipeline.telemetry().expect("telemetry enabled");
    assert_eq!(t.batches, 3, "three batches recorded");
    assert!(t.sampled_packets >= 3_000, "every packet sampled");
    assert_eq!(
        after - before,
        0,
        "instrumented hot path allocated {} time(s) for a {}-packet batch",
        after - before,
        packets.len()
    );
}
