//! Proof that the batch hot path is allocation-free in steady state.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after
//! two warm-up batches (which grow every scratch buffer to its
//! high-water mark), a third pass over the same trace must perform
//! **zero** allocations — the ISSUE's acceptance criterion for
//! `process_batch`.
//!
//! This file holds exactly one `#[test]`: the libtest harness runs
//! tests on separate threads but the allocation counter is global, so a
//! sibling test allocating concurrently would corrupt the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use camus_pipeline::parser::{Extract, ParseState, ParserSpec, StateId, Transition};
use camus_pipeline::pipeline::StateBinding;
use camus_pipeline::register::{AggKind, RegisterFile};
use camus_pipeline::table::RegOp;
use camus_pipeline::{
    ActionOp, DecisionBuf, Entry, ExecState, Key, MatchKind, MatchValue, MulticastTable, PhvLayout,
    Pipeline, PortId, Table,
};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Multi-message, stateful pipeline (same shape as tests/batch.rs):
/// count byte + one-byte messages; symbols 1..=4 forward and increment
/// a windowed counter; a threshold rule matches the counter binding.
fn stateful_pipeline() -> Pipeline {
    let mut layout = PhvLayout::new();
    let count = layout.add("count", 8);
    let sym = layout.add("sym", 8);
    let cnt = layout.add("cnt", 32);

    let parser = ParserSpec::new(
        vec![
            ParseState {
                name: "hdr".into(),
                extracts: vec![Extract {
                    dst: count,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: false,
                next: Transition::SelectRemaining { more: StateId(1) },
            },
            ParseState {
                name: "msg".into(),
                extracts: vec![Extract {
                    dst: sym,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: true,
                next: Transition::SelectRemaining { more: StateId(1) },
            },
        ],
        StateId(0),
    );

    let mut registers = RegisterFile::new();
    let hot = registers.allocate(1_000);

    let mut filter = Table::new(
        "filter",
        vec![Key {
            field: sym,
            kind: MatchKind::Exact,
            bits: 8,
        }],
        vec![],
    );
    for b in 1u64..=4 {
        filter
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(b)],
                ops: vec![
                    ActionOp::Forward(PortId(b as u16)),
                    ActionOp::Register {
                        slot: hot,
                        op: RegOp::Increment,
                    },
                ],
            })
            .unwrap();
    }

    let mut thresh = Table::new(
        "thresh",
        vec![
            Key {
                field: sym,
                kind: MatchKind::Exact,
                bits: 8,
            },
            Key {
                field: cnt,
                kind: MatchKind::Range,
                bits: 32,
            },
        ],
        vec![],
    );
    thresh
        .add_entry(Entry {
            priority: 0,
            matches: vec![
                MatchValue::Exact(1),
                MatchValue::Range {
                    lo: 4,
                    hi: u64::from(u32::MAX),
                },
            ],
            ops: vec![ActionOp::Forward(PortId(99))],
        })
        .unwrap();

    Pipeline {
        layout,
        parser,
        tables: vec![filter, thresh],
        mcast: MulticastTable::new(),
        registers,
        state_bindings: vec![StateBinding {
            dst: cnt,
            slot: hot,
            agg: AggKind::Count,
        }],
        init_fields: vec![],
        exec: ExecState::default(),
    }
}

fn trace(packets: usize) -> Vec<(Vec<u8>, u64)> {
    let mut rng: u64 = 0x9e3779b97f4a7c15;
    let mut step = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng >> 33
    };
    let mut out = Vec::with_capacity(packets);
    let mut now_us = 0u64;
    for _ in 0..packets {
        let msgs = 1 + (step() % 3) as usize;
        let mut pkt = vec![msgs as u8];
        for _ in 0..msgs {
            pkt.push((step() % 6) as u8);
        }
        now_us += 57;
        out.push((pkt, now_us));
    }
    out
}

#[test]
fn steady_state_batch_makes_zero_allocations() {
    let mut pipeline = stateful_pipeline();
    let packets = trace(1_000);
    let mut out = DecisionBuf::default();

    // Warm-up: two passes grow every scratch buffer (message PHVs,
    // decision port vectors, hoist plan, table index) to steady state.
    for _ in 0..2 {
        out.clear();
        pipeline
            .process_batch(packets.iter().map(|(p, t)| (p.as_slice(), *t)), &mut out)
            .unwrap();
    }
    let warm_len = out.len();

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    out.clear();
    pipeline
        .process_batch(packets.iter().map(|(p, t)| (p.as_slice(), *t)), &mut out)
        .unwrap();
    let after = ALLOC_CALLS.load(Ordering::SeqCst);

    assert_eq!(out.len(), warm_len);
    assert_eq!(
        after - before,
        0,
        "hot path allocated {} time(s) for a {}-packet batch",
        after - before,
        packets.len()
    );
}
