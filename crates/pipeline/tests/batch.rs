//! `Pipeline::process_batch` must be decision-identical to calling
//! `Pipeline::process` per packet — including stateful programs where
//! register bindings feed match keys and table actions update the
//! registers back (the `@query_counter` shape).

use camus_pipeline::parser::{Extract, ParseState, ParserSpec, StateId, Transition};
use camus_pipeline::pipeline::StateBinding;
use camus_pipeline::register::{AggKind, RegisterFile};
use camus_pipeline::table::RegOp;
use camus_pipeline::{
    ActionOp, DecisionBuf, Entry, ExecState, Key, MatchKind, MatchValue, MulticastTable, ParseDrop,
    Phv, PhvLayout, Pipeline, PortId, Table,
};

/// A multi-message, stateful pipeline built by hand:
///
/// * packets are `[count, sym0, sym1, ...]` — a one-byte count followed
///   by one-byte "messages", each emitted as its own PHV;
/// * symbols 1..=4 forward to their own port and increment a windowed
///   counter (slot 0);
/// * once the counter for the window exceeds 3, symbol 1 additionally
///   forwards to port 99 (a counter-threshold rule);
/// * a second, never-written register slot is bound as a pseudo-field
///   to exercise the hoisted-binding path.
fn stateful_pipeline() -> Pipeline {
    let mut layout = PhvLayout::new();
    let count = layout.add("count", 8);
    let sym = layout.add("sym", 8);
    let cnt = layout.add("cnt", 32);
    let idle = layout.add("idle", 32);

    let parser = ParserSpec::new(
        vec![
            ParseState {
                name: "hdr".into(),
                extracts: vec![Extract {
                    dst: count,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: false,
                next: Transition::SelectRemaining { more: StateId(1) },
            },
            ParseState {
                name: "msg".into(),
                extracts: vec![Extract {
                    dst: sym,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: true,
                next: Transition::SelectRemaining { more: StateId(1) },
            },
        ],
        StateId(0),
    );

    let mut registers = RegisterFile::new();
    let hot = registers.allocate(1_000); // written by the filter table
    let cold = registers.allocate(0); // never written: hoistable

    let mut filter = Table::new(
        "filter",
        vec![Key {
            field: sym,
            kind: MatchKind::Exact,
            bits: 8,
        }],
        vec![],
    );
    for b in 1u64..=4 {
        filter
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(b)],
                ops: vec![
                    ActionOp::Forward(PortId(b as u16)),
                    ActionOp::Register {
                        slot: hot,
                        op: RegOp::Increment,
                    },
                ],
            })
            .unwrap();
    }

    let mut thresh = Table::new(
        "thresh",
        vec![
            Key {
                field: sym,
                kind: MatchKind::Exact,
                bits: 8,
            },
            Key {
                field: cnt,
                kind: MatchKind::Range,
                bits: 32,
            },
        ],
        vec![],
    );
    thresh
        .add_entry(Entry {
            priority: 0,
            matches: vec![
                MatchValue::Exact(1),
                MatchValue::Range {
                    lo: 4,
                    hi: u64::from(u32::MAX),
                },
            ],
            ops: vec![ActionOp::Forward(PortId(99))],
        })
        .unwrap();

    Pipeline {
        layout,
        parser,
        tables: vec![filter, thresh],
        mcast: MulticastTable::new(),
        registers,
        state_bindings: vec![
            StateBinding {
                dst: cnt,
                slot: hot,
                agg: AggKind::Count,
            },
            StateBinding {
                dst: idle,
                slot: cold,
                agg: AggKind::Count,
            },
        ],
        init_fields: vec![],
        exec: ExecState::default(),
    }
}

/// Deterministic trace: mixed symbols, varying message counts, strictly
/// increasing timestamps (so the counter window tumbles mid-trace).
fn trace(packets: usize) -> Vec<(Vec<u8>, u64)> {
    let mut rng: u64 = 0x9e3779b97f4a7c15;
    let mut step = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng >> 33
    };
    let mut out = Vec::with_capacity(packets);
    let mut now_us = 0u64;
    for _ in 0..packets {
        let msgs = 1 + (step() % 3) as usize;
        let mut pkt = vec![msgs as u8];
        for _ in 0..msgs {
            pkt.push((step() % 6) as u8); // 0 and 5 miss, 1..=4 hit
        }
        now_us += 57; // tumbles the 1000 µs window every ~18 packets
        out.push((pkt, now_us));
    }
    out
}

#[test]
fn batch_equals_per_packet_processing() {
    let pipeline = stateful_pipeline();
    let packets = trace(2_000);

    let mut seq = pipeline.clone();
    let expected: Vec<_> = packets
        .iter()
        .map(|(p, t)| seq.process(p, *t).unwrap())
        .collect();
    // The threshold rule must actually fire for this to test anything.
    assert!(
        expected.iter().any(|d| d.ports.contains(&PortId(99))),
        "trace never tripped the counter threshold"
    );

    let mut batched = pipeline.clone();
    let mut out = DecisionBuf::default();
    batched
        .process_batch(packets.iter().map(|(p, t)| (p.as_slice(), *t)), &mut out)
        .unwrap();

    assert_eq!(out.len(), expected.len());
    for (i, (got, want)) in out.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "packet {i}");
    }
    assert_eq!(seq.exec.stats, batched.exec.stats);
}

#[test]
fn batch_equals_per_packet_across_chunked_batches() {
    // Same trace split into many small batches reusing one DecisionBuf:
    // recycled scratch must not leak state between batches.
    let pipeline = stateful_pipeline();
    let packets = trace(512);

    let mut seq = pipeline.clone();
    let expected: Vec<_> = packets
        .iter()
        .map(|(p, t)| seq.process(p, *t).unwrap())
        .collect();

    let mut batched = pipeline.clone();
    let mut out = DecisionBuf::default();
    let mut got = Vec::new();
    for chunk in packets.chunks(17) {
        out.clear();
        batched
            .process_batch(chunk.iter().map(|(p, t)| (p.as_slice(), *t)), &mut out)
            .unwrap();
        got.extend(out.iter().cloned());
    }
    assert_eq!(got, expected);
}

#[test]
fn malformed_packet_mid_batch_is_a_typed_drop() {
    let pipeline = stateful_pipeline();
    let mut batched = pipeline.clone();
    let mut out = DecisionBuf::default();
    // Second packet is empty: the parser's first extract underflows.
    // The parse path is total — the batch completes with a typed drop
    // decision in the malformed packet's slot, and the packets around
    // it are unaffected.
    let packets: Vec<(Vec<u8>, u64)> = vec![(vec![1, 1], 10), (vec![], 20), (vec![1, 2], 30)];
    batched
        .process_batch(packets.iter().map(|(p, t)| (p.as_slice(), *t)), &mut out)
        .unwrap();
    assert_eq!(out.len(), 3);
    let slots = out.as_slice();
    assert_eq!(slots[0].ports, vec![PortId(1)]);
    assert_eq!(slots[1].drop_reason, Some(ParseDrop::Underflow));
    assert!(slots[1].dropped());
    assert!(slots[2].drop_reason.is_none());
    let s = &batched.exec.stats;
    assert_eq!(s.packets, 3);
    assert_eq!(s.drop_underflow, 1);
    assert_eq!(s.packets, s.forwarded_packets + s.dropped_packets);
}

#[test]
fn evaluate_message_compat_path_agrees() {
    // The legacy single-message entry point must agree with process()
    // on single-message packets (stateless prefix of the trace).
    let pipeline = stateful_pipeline();
    let mut a = pipeline.clone();
    let mut b = pipeline.clone();
    for (i, byte) in [0u8, 1, 2, 5, 3].into_iter().enumerate() {
        let now = i as u64;
        let d = a.process(&[1, byte], now).unwrap();
        let phvs: Vec<Phv> = b.parser.parse(&b.layout, &[1, byte]).unwrap();
        assert_eq!(phvs.len(), 1);
        let mut phv = phvs.into_iter().next().unwrap();
        let ports = b.evaluate_message(&mut phv, now).unwrap();
        assert_eq!(d.ports, ports, "byte {byte}");
    }
}
