//! Property tests for the pipeline substrate: table lookup against a
//! reference matcher, TCAM range expansion, and bit-level codecs.

// Gated off by default: `proptest` is an external crate the offline
// build environment cannot fetch. Vendor proptest into the workspace
// and enable the `proptest` feature to run this suite.
#![cfg(feature = "proptest")]

use camus_pipeline::bits::{extract_bits, insert_bits};
use camus_pipeline::phv::PhvLayout;
use camus_pipeline::resources::range_to_prefixes;
use camus_pipeline::table::{Entry, Key, MatchKind, MatchValue, Table};
use proptest::prelude::*;

// ----------------------------------------------------------- bits

proptest! {
    /// insert_bits followed by extract_bits is the identity, and does
    /// not disturb bits outside the written range.
    #[test]
    fn bits_roundtrip(
        offset in 0u64..100,
        bits in 1u32..=64,
        value: u64,
        fill: u8,
    ) {
        let mut buf = vec![fill; 24];
        let before = buf.clone();
        if offset + u64::from(bits) <= (buf.len() as u64) * 8 {
            prop_assert!(insert_bits(&mut buf, offset, bits, value));
            let masked = if bits == 64 { value } else { value & ((1u64 << bits) - 1) };
            prop_assert_eq!(extract_bits(&buf, offset, bits), Some(masked));
            // Bits before and after the range are untouched.
            if offset > 0 {
                prop_assert_eq!(
                    extract_bits(&buf, 0, offset.min(64) as u32),
                    extract_bits(&before, 0, offset.min(64) as u32)
                );
            }
            let after = offset + u64::from(bits);
            let tail = ((buf.len() as u64) * 8 - after).min(64) as u32;
            if tail > 0 {
                prop_assert_eq!(
                    extract_bits(&buf, after, tail),
                    extract_bits(&before, after, tail)
                );
            }
        }
    }
}

// ------------------------------------------------- range expansion

proptest! {
    /// The prefix decomposition covers exactly [lo, hi], without
    /// overlap, and within the 2w−2 bound.
    #[test]
    fn prefix_decomposition_is_exact(
        bits in 1u32..=12,
        raw_lo: u64,
        raw_hi: u64,
    ) {
        let max = (1u64 << bits) - 1;
        let mut lo = raw_lo % (max + 1);
        let mut hi = raw_hi % (max + 1);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let prefixes = range_to_prefixes(lo, hi, bits);
        prop_assert!(prefixes.len() <= (2 * bits as usize).max(1));
        for v in 0..=max {
            let n = prefixes.iter().filter(|&&(val, mask)| v & mask == val & mask).count();
            prop_assert_eq!(n, usize::from(v >= lo && v <= hi), "v={}", v);
        }
    }
}

// ----------------------------------------------------------- table

#[derive(Debug, Clone)]
struct GenEntry {
    priority: u32,
    m0: MatchValue,
    m1: MatchValue,
}

fn arb_match(kind: MatchKind, max: u64) -> BoxedStrategy<MatchValue> {
    match kind {
        MatchKind::Exact => {
            prop_oneof![(0..=max).prop_map(MatchValue::Exact), Just(MatchValue::Any),].boxed()
        }
        MatchKind::Range => prop_oneof![
            (0..=max).prop_map(MatchValue::Exact),
            (0..=max, 0..=max).prop_map(|(a, b)| {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                MatchValue::Range { lo, hi }
            }),
            Just(MatchValue::Any),
        ]
        .boxed(),
        MatchKind::Ternary => prop_oneof![
            (0..=max, 0..=max).prop_map(|(v, m)| MatchValue::Ternary {
                value: v & m,
                mask: m
            }),
            Just(MatchValue::Any),
        ]
        .boxed(),
        MatchKind::Lpm => unreachable!("not generated"),
    }
}

fn matches_ref(m: &MatchValue, v: u64) -> bool {
    match *m {
        MatchValue::Exact(e) => v == e,
        MatchValue::Range { lo, hi } => v >= lo && v <= hi,
        MatchValue::Ternary { value, mask } => v & mask == value,
        MatchValue::Lpm { .. } => unreachable!(),
        MatchValue::Any => true,
    }
}

proptest! {
    /// Indexed table lookup agrees with a naive highest-priority
    /// linear scan, for random entries over (exact state, range value)
    /// keys — the compiled-table shape.
    #[test]
    fn lookup_matches_linear_reference(
        entries in prop::collection::vec(
            (0u32..8, arb_match(MatchKind::Exact, 15), arb_match(MatchKind::Range, 63))
                .prop_map(|(priority, m0, m1)| GenEntry { priority, m0, m1 }),
            0..24,
        ),
        probes in prop::collection::vec((0u64..=15, 0u64..=63), 1..32),
    ) {
        let mut layout = PhvLayout::new();
        let state = layout.add("state", 8);
        let value = layout.add("value", 8);
        let mut table = Table::new(
            "t",
            vec![
                Key { field: state, kind: MatchKind::Exact, bits: 8 },
                Key { field: value, kind: MatchKind::Range, bits: 8 },
            ],
            vec![],
        );
        for (i, e) in entries.iter().enumerate() {
            table
                .add_entry(Entry {
                    priority: e.priority,
                    matches: vec![e.m0, e.m1],
                    ops: vec![camus_pipeline::table::ActionOp::SetField(
                        state,
                        i as u64, // unique tag to identify the winner
                    )],
                })
                .unwrap();
        }
        for &(s, v) in &probes {
            let mut phv = layout.instantiate();
            phv.set(state, s);
            phv.set(value, v);
            let got = table.lookup(&phv).map(|e| e.ops.clone());
            // Reference: min (priority, index) among matching entries.
            let want = entries
                .iter()
                .enumerate()
                .filter(|(_, e)| matches_ref(&e.m0, s) && matches_ref(&e.m1, v))
                .min_by_key(|(i, e)| (e.priority, *i))
                .map(|(i, _)| {
                    vec![camus_pipeline::table::ActionOp::SetField(state, i as u64)]
                });
            prop_assert_eq!(got, want, "state={} value={}", s, v);
        }
    }

    /// Ternary tables behave identically under the linear index (no
    /// exact leading key).
    #[test]
    fn ternary_lookup_matches_reference(
        entries in prop::collection::vec(
            (0u32..4, arb_match(MatchKind::Ternary, 255)),
            0..16,
        ),
        probes in prop::collection::vec(0u64..=255, 1..16),
    ) {
        let mut layout = PhvLayout::new();
        let f = layout.add("f", 8);
        let marker = layout.add("m", 32);
        let mut table = Table::new(
            "t",
            vec![Key { field: f, kind: MatchKind::Ternary, bits: 8 }],
            vec![],
        );
        for (i, (prio, m)) in entries.iter().enumerate() {
            table
                .add_entry(Entry {
                    priority: *prio,
                    matches: vec![*m],
                    ops: vec![camus_pipeline::table::ActionOp::SetField(marker, i as u64)],
                })
                .unwrap();
        }
        for &v in &probes {
            let mut phv = layout.instantiate();
            phv.set(f, v);
            let got = table.lookup(&phv).map(|e| e.ops.clone());
            let want = entries
                .iter()
                .enumerate()
                .filter(|(_, (_, m))| matches_ref(m, v))
                .min_by_key(|(i, (p, _))| (*p, *i))
                .map(|(i, _)| vec![camus_pipeline::table::ActionOp::SetField(marker, i as u64)]);
            prop_assert_eq!(got, want, "v={}", v);
        }
    }
}
