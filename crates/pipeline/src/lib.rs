//! # camus-pipeline — a programmable-ASIC match-action pipeline substrate
//!
//! The paper runs its compiled programs on a Barefoot Tofino switch.
//! This crate is the substitution (DESIGN.md §2): an RMT-style
//! reconfigurable pipeline that executes exactly the artifacts the Camus
//! compiler emits — parser programs, match-action tables, multicast
//! groups and register blocks — and enforces the same resource
//! constraints a real switching ASIC imposes (TCAM range expansion,
//! per-stage memory budgets, bounded stage counts).
//!
//! Components, mirroring the architecture of Bosshart et al.'s RMT
//! ("Forwarding Metamorphosis", SIGCOMM'13 — reference [6] of the
//! paper):
//!
//! * [`phv`] — the Packet Header Vector: the typed field bus carried
//!   between stages, including compiler-defined metadata such as the
//!   BDD state register;
//! * [`parser`] — a programmable parse graph that extracts header
//!   fields from raw bytes into the PHV (one PHV per application
//!   message, so multi-message MoldUDP packets evaluate per message);
//! * [`table`] — match-action tables with exact, ternary, range and
//!   LPM match kinds, priority semantics and per-state indexing;
//! * [`register`] — stateful register arrays with tumbling-window
//!   aggregates (the `@query_counter` substrate);
//! * [`multicast`] — the multicast group engine (packet replication);
//! * [`resources`] — SRAM/TCAM accounting, range→ternary expansion and
//!   greedy stage placement against a Tofino-like resource model;
//! * [`pipeline`] — the executor tying it together: parse → per-field
//!   tables → leaf table → forward.

pub mod bits;
pub mod cache;
pub mod error;
pub mod multicast;
pub mod parser;
pub mod phv;
pub mod pipeline;
pub mod register;
pub mod resources;
pub mod table;

pub use cache::{CacheStats, DecisionCache, DEFAULT_CACHE_SHIFT};
pub use camus_telemetry::{DataPlaneTelemetry, Histogram, TelemetrySnapshot};
pub use error::PipelineError;
pub use multicast::{GroupId, MulticastTable, PortId};
pub use phv::{Phv, PhvBuf, PhvField, PhvLayout};
pub use pipeline::{
    DecisionBuf, ExecState, ExecStats, ForwardDecision, ParseDrop, Pipeline, ShardCtx,
};
pub use resources::{place_chain, AdmissionError, AsicModel, Memory, PlacementReport};
pub use table::{ActionOp, Entry, Key, MatchKind, MatchValue, Table};
