//! ASIC resource model: SRAM/TCAM accounting, TCAM range expansion and
//! stage placement.
//!
//! §3.2 "Resource Optimizations": TCAM "consume[s] large area of die and
//! high power", and "matching on a range in TCAM is not scalable … as
//! each range-match requires multiple TCAM entries (O(#bits))". This
//! module makes those costs concrete: ranges are expanded into prefix
//! entries (the classic decomposition, worst case `2w−2` entries for a
//! `w`-bit field), exact tables are charged to SRAM, and the compiled
//! program is placed onto a fixed number of stages with per-stage
//! budgets patterned on a Tofino-class device.

use std::fmt;

use crate::table::{Key, MatchKind, MatchValue, Table};

/// Which memory a table consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Memory {
    /// Hash-based exact matching.
    Sram,
    /// Ternary matching (priority CAM).
    Tcam,
}

/// How the ASIC implements range matching in TCAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeMode {
    /// Naive prefix decomposition: one logical range becomes O(#bits)
    /// physical entries — the cost §3.2 warns about.
    PrefixExpansion,
    /// DirtCAM-style nibble encoding (what Tofino ships): one physical
    /// entry per logical range, but each 4-bit nibble of the field
    /// consumes 16 TCAM bits, quadrupling the key width.
    DirtCam,
}

/// A Tofino-class resource model. Numbers are representative of
/// published RMT/Tofino figures, not vendor-exact; what matters for the
/// reproduction is that they impose the same *shape* of constraint
/// (TCAM ≪ SRAM, fixed stages, per-stage budgets).
#[derive(Debug, Clone, PartialEq)]
pub struct AsicModel {
    /// Model name for reports.
    pub name: String,
    /// Number of match-action stages.
    pub stages: usize,
    /// Exact-match (SRAM) entries available per stage.
    pub sram_entries_per_stage: usize,
    /// Ternary (TCAM) entries available per stage.
    pub tcam_entries_per_stage: usize,
    /// Width of one TCAM slice; wider keys gang multiple slices and
    /// proportionally reduce entry capacity.
    pub tcam_slice_bits: u32,
    /// Number of front-panel ports.
    pub ports: u16,
    /// Line rate per port, Gb/s.
    pub port_gbps: f64,
    /// Minimum port-to-port latency of the pipeline, nanoseconds.
    pub pipeline_latency_ns: u64,
    /// Range-match implementation.
    pub range_mode: RangeMode,
}

impl AsicModel {
    /// The 32-port, 3.25 Tb/s configuration used in the paper's
    /// evaluation (§4: "a 32-port Barefoot Tofino switch, which can
    /// process packets at 3.25 Tbps").
    pub fn tofino32() -> Self {
        AsicModel {
            name: "tofino-32x100G".into(),
            stages: 12,
            sram_entries_per_stage: 80 * 1024,
            tcam_entries_per_stage: 24 * 512,
            tcam_slice_bits: 44,
            ports: 32,
            port_gbps: 100.0,
            pipeline_latency_ns: 400,
            range_mode: RangeMode::DirtCam,
        }
    }

    /// The same device with naive prefix-expanded ranges — the ablation
    /// baseline for §3.2's TCAM-cost discussion.
    pub fn with_prefix_expansion(mut self) -> Self {
        self.range_mode = RangeMode::PrefixExpansion;
        self
    }

    /// The 64-port, 6.5 Tb/s configuration (§4: "on the 64-port version
    /// of the switch, we would support 6.5 Tbps").
    pub fn tofino64() -> Self {
        AsicModel {
            name: "tofino-64x100G".into(),
            ports: 64,
            ..Self::tofino32()
        }
    }

    /// Aggregate switching bandwidth in Tb/s.
    pub fn total_tbps(&self) -> f64 {
        f64::from(self.ports) * self.port_gbps / 1000.0
    }
}

/// Decomposes an inclusive range into ternary prefix entries
/// (value, mask) over a `bits`-wide field — the O(#bits) expansion the
/// paper's resource discussion refers to.
pub fn range_to_prefixes(lo: u64, hi: u64, bits: u32) -> Vec<(u64, u64)> {
    assert!(lo <= hi, "empty range");
    let bits = bits.min(64);
    let full: u128 = if bits == 64 {
        1u128 << 64
    } else {
        1u128 << bits
    };
    assert!((hi as u128) < full, "range exceeds field domain");
    let mut out = Vec::new();
    let mut lo = lo as u128;
    let hi = hi as u128;
    while lo <= hi {
        // Largest power-of-two block that starts at `lo` (alignment)
        // and does not overshoot `hi`.
        let align = if lo == 0 {
            full
        } else {
            lo & lo.wrapping_neg()
        };
        let mut size = align;
        while lo + size - 1 > hi {
            size >>= 1;
        }
        let mask = ((full - 1) ^ (size - 1)) as u64;
        out.push((lo as u64, mask));
        lo += size;
        if size == full {
            break; // whole domain covered
        }
    }
    out
}

/// Resource cost of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableCost {
    /// Table name.
    pub name: String,
    /// Memory type (TCAM iff any key is non-exact).
    pub memory: Memory,
    /// Logical entries installed by the control plane.
    pub logical_entries: usize,
    /// Physical entries after range expansion.
    pub physical_entries: usize,
    /// TCAM slices ganged per physical entry (1 for SRAM).
    pub slices_per_entry: usize,
}

impl TableCost {
    /// Physical entries × slices: the stage-budget charge.
    pub fn charge(&self) -> usize {
        self.physical_entries * self.slices_per_entry
    }
}

/// Computes the cost of a table under a model.
pub fn table_cost(table: &Table, model: &AsicModel) -> TableCost {
    let memory = if table.keys.iter().all(|k| k.kind == MatchKind::Exact) {
        Memory::Sram
    } else {
        Memory::Tcam
    };
    // Effective key width: DirtCAM quadruples range-key bits (nibble →
    // 16-bit one-hot); prefix expansion keeps the raw width but
    // multiplies entries instead.
    let key_bits: u32 = table
        .keys
        .iter()
        .map(|k| {
            if k.kind == MatchKind::Range && model.range_mode == RangeMode::DirtCam {
                4 * k.bits
            } else {
                k.bits
            }
        })
        .sum();
    let slices_per_entry = match memory {
        Memory::Sram => 1,
        Memory::Tcam => key_bits.div_ceil(model.tcam_slice_bits) as usize,
    };
    let mut physical = 0usize;
    let mut logical = 0usize;
    for e in table.entries() {
        logical += 1;
        physical += entry_expansion(&table.keys, &e.matches, memory, model.range_mode);
    }
    TableCost {
        name: table.name.clone(),
        memory,
        logical_entries: logical,
        physical_entries: physical,
        slices_per_entry,
    }
}

fn entry_expansion(keys: &[Key], matches: &[MatchValue], memory: Memory, mode: RangeMode) -> usize {
    if memory == Memory::Sram || mode == RangeMode::DirtCam {
        return 1;
    }
    let mut n = 1usize;
    for (k, m) in keys.iter().zip(matches) {
        if let MatchValue::Range { lo, hi } = *m {
            n = n.saturating_mul(range_to_prefixes(lo, hi, k.bits).len());
        }
    }
    n
}

/// A typed resource-admission failure: which table could not be
/// placed, where placement gave up, and the budget arithmetic — the
/// error the live update plane rejects over-committing updates with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionError {
    /// Table that failed to place.
    pub table: String,
    /// First stage the table was eligible to start in.
    pub stage: usize,
    /// Memory pool that ran out.
    pub memory: Memory,
    /// Entry-slices the table needs.
    pub needed: usize,
    /// Entry-slices still available in the eligible stages.
    pub available: usize,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mem = match self.memory {
            Memory::Sram => "SRAM",
            Memory::Tcam => "TCAM",
        };
        if self.available == 0 {
            write!(
                f,
                "table `{}`: out of stages ({} {mem} entry-slices needed from stage {})",
                self.table, self.needed, self.stage
            )
        } else {
            write!(
                f,
                "table `{}`: needs {} {mem} entry-slices from stage {}, only {} available",
                self.table, self.needed, self.stage, self.available
            )
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Where one table landed in the stage plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TablePlacement {
    /// Cost summary.
    pub cost: TableCost,
    /// First stage used (0-based).
    pub first_stage: usize,
    /// Last stage used.
    pub last_stage: usize,
}

/// Result of placing a program onto the ASIC.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementReport {
    /// The model placed against.
    pub model: AsicModel,
    /// Per-table placements (empty on failure).
    pub placements: Vec<TablePlacement>,
    /// Total stages used.
    pub stages_used: usize,
    /// Total SRAM entries consumed.
    pub sram_entries: usize,
    /// Total TCAM entry-slices consumed.
    pub tcam_slices: usize,
    /// `None` when the program fits; otherwise the typed admission
    /// failure (which table, which memory, needed vs available).
    pub failure: Option<AdmissionError>,
}

impl PlacementReport {
    /// Whether the program fits the device.
    pub fn fits(&self) -> bool {
        self.failure.is_none()
    }
}

/// Assigns the compiler's dependency levels to a compiled table chain:
/// `t_cmp_*` compression tables read only parser fields (level 0, so
/// they may share the earliest stages); each main table must follow
/// both the previous main table (the state-metadata chain) and its own
/// compression table, if any. This is the leveling convention both the
/// offline compiler and the live update plane charge admission with —
/// keeping them byte-identical is what makes the engine's admission
/// check authoritative.
pub fn level_chain(tables: &[Table]) -> Vec<(&Table, usize)> {
    let mut prev_main: Option<usize> = None;
    let mut last_was_cmp = false;
    tables
        .iter()
        .map(|t| {
            if t.name.starts_with("t_cmp_") {
                last_was_cmp = true;
                (t, 0)
            } else {
                let mut level = prev_main.map_or(0, |l| l + 1);
                if last_was_cmp {
                    level = level.max(1);
                }
                last_was_cmp = false;
                prev_main = Some(level);
                (t, level)
            }
        })
        .collect()
}

/// Places a compiled table chain ([`level_chain`] leveling) onto a
/// model — the shared admission charge for full compiles and live
/// updates.
pub fn place_chain(tables: &[Table], model: &AsicModel) -> PlacementReport {
    place_leveled(&level_chain(tables), model)
}

/// Greedy in-order placement of a pure dependency chain: every table
/// depends on its predecessor. See [`place_leveled`] for programs with
/// independent tables.
pub fn place(tables: &[&Table], model: &AsicModel) -> PlacementReport {
    let leveled: Vec<(&Table, usize)> = tables.iter().enumerate().map(|(i, t)| (*t, i)).collect();
    place_leveled(&leveled, model)
}

/// Greedy placement with explicit dependency levels.
///
/// Tables at the same level are independent and may share a stage;
/// a table at level `L` must start strictly after every level-`<L`
/// table has finished (match dependencies through the `state`
/// metadata). Large tables spill over consecutive stages (Tofino
/// table chaining).
pub fn place_leveled(tables: &[(&Table, usize)], model: &AsicModel) -> PlacementReport {
    let mut placements = Vec::new();
    let mut sram_left = vec![model.sram_entries_per_stage; model.stages];
    let mut tcam_left = vec![model.tcam_entries_per_stage; model.stages];
    let mut failure = None;
    // First stage each level may start in; level L+1 starts after the
    // last stage any level-<=L table used.
    let mut level_start: Vec<usize> = Vec::new();

    let mut sorted: Vec<&(&Table, usize)> = tables.iter().collect();
    sorted.sort_by_key(|(_, lvl)| *lvl);

    for &&(t, level) in &sorted {
        let cost = table_cost(t, model);
        let needed = cost.charge().max(1); // empty tables still occupy a stage
        while level_start.len() <= level {
            let prev_end = placements
                .iter()
                .zip(sorted.iter())
                .filter(|(_, (_, l)): &(&TablePlacement, _)| *l < level_start.len())
                .map(|(p, _): (&TablePlacement, _)| p.last_stage + 1)
                .max()
                .unwrap_or(0);
            level_start.push(prev_end.max(level_start.last().copied().unwrap_or(0)));
        }
        let mut stage = level_start[level];
        // Skip stages already exhausted for this memory type.
        let exhausted = |s: usize, sram: &Vec<usize>, tcam: &Vec<usize>| match cost.memory {
            Memory::Sram => sram[s] == 0,
            Memory::Tcam => tcam[s] == 0,
        };
        while stage < model.stages && exhausted(stage, &sram_left, &tcam_left) {
            stage += 1;
        }
        // Admission arithmetic up front: the table spills greedily from
        // `stage`, draining each stage's remaining budget, so it fits
        // iff the eligible window holds its whole charge. Checking
        // before consuming keeps a failed placement side-effect-free —
        // the budgets (and the report's totals) reflect only tables
        // that actually placed.
        let available: usize = (stage..model.stages)
            .map(|s| match cost.memory {
                Memory::Sram => sram_left[s],
                Memory::Tcam => tcam_left[s],
            })
            .sum();
        if stage >= model.stages || needed > available {
            failure = Some(AdmissionError {
                table: cost.name.clone(),
                stage: level_start[level].min(model.stages),
                memory: cost.memory,
                needed,
                available,
            });
            let edge = stage.min(model.stages);
            placements.push(TablePlacement {
                cost,
                first_stage: edge,
                last_stage: edge,
            });
            break;
        }
        let first_stage = stage;
        let mut remaining = needed;
        while remaining > 0 {
            let budget = match cost.memory {
                Memory::Sram => &mut sram_left[stage],
                Memory::Tcam => &mut tcam_left[stage],
            };
            let take = remaining.min(*budget);
            *budget -= take;
            remaining -= take;
            if remaining > 0 {
                stage += 1;
            }
        }
        let last_stage = stage;
        placements.push(TablePlacement {
            cost,
            first_stage,
            last_stage,
        });
    }

    let sram_entries: usize = placements
        .iter()
        .filter(|p| p.cost.memory == Memory::Sram)
        .map(|p| p.cost.charge())
        .sum();
    let tcam_slices: usize = placements
        .iter()
        .filter(|p| p.cost.memory == Memory::Tcam)
        .map(|p| p.cost.charge())
        .sum();
    let stages_used = placements
        .iter()
        .map(|p| p.last_stage + 1)
        .max()
        .unwrap_or(0);
    PlacementReport {
        model: model.clone(),
        placements,
        stages_used,
        sram_entries,
        tcam_slices,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::PhvLayout;
    use crate::table::{Entry, Key, MatchKind, MatchValue, Table};

    #[test]
    fn range_expansion_covers_exactly() {
        for (lo, hi, bits) in [
            (0u64, 255u64, 8u32),
            (1, 6, 4),
            (0, 59, 8),
            (101, 255, 8),
            (60, 100, 8),
            (7, 7, 8),
        ] {
            let prefixes = range_to_prefixes(lo, hi, bits);
            for v in 0..(1u64 << bits) {
                let covered = prefixes.iter().any(|&(val, mask)| v & mask == val & mask);
                assert_eq!(covered, v >= lo && v <= hi, "v={v} range=[{lo},{hi}]");
            }
            // No overlap between prefixes.
            for v in lo..=hi {
                let n = prefixes
                    .iter()
                    .filter(|&&(val, mask)| v & mask == val & mask)
                    .count();
                assert_eq!(n, 1, "v={v} covered {n} times");
            }
        }
    }

    #[test]
    fn range_expansion_size_is_linear_in_bits() {
        // Worst case 2w−2 entries: [1, 2^w−2].
        let p = range_to_prefixes(1, (1 << 16) - 2, 16);
        assert_eq!(p.len(), 2 * 16 - 2);
        // Aligned power-of-two ranges take one entry.
        assert_eq!(range_to_prefixes(0, 255, 8).len(), 1);
        assert_eq!(range_to_prefixes(64, 127, 8).len(), 1);
        // Full 64-bit domain.
        assert_eq!(range_to_prefixes(0, u64::MAX, 64).len(), 1);
    }

    fn mk_table(name: &str, kinds: &[(MatchKind, u32)]) -> Table {
        let mut layout = PhvLayout::new();
        let keys: Vec<Key> = kinds
            .iter()
            .enumerate()
            .map(|(i, &(kind, bits))| Key {
                field: layout.add(format!("f{i}"), bits),
                kind,
                bits,
            })
            .collect();
        Table::new(name, keys, vec![])
    }

    #[test]
    fn exact_tables_are_sram() {
        let mut t = mk_table("t", &[(MatchKind::Exact, 16), (MatchKind::Exact, 64)]);
        t.add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(1), MatchValue::Exact(2)],
            ops: vec![],
        })
        .unwrap();
        let c = table_cost(&t, &AsicModel::tofino32());
        assert_eq!(c.memory, Memory::Sram);
        assert_eq!(c.physical_entries, 1);
        assert_eq!(c.slices_per_entry, 1);
    }

    #[test]
    fn range_tables_expand_into_tcam() {
        let mut t = mk_table("t", &[(MatchKind::Exact, 16), (MatchKind::Range, 32)]);
        t.add_entry(Entry {
            priority: 0,
            matches: vec![
                MatchValue::Exact(1),
                MatchValue::Range {
                    lo: 1,
                    hi: (1 << 32) - 2,
                },
            ],
            ops: vec![],
        })
        .unwrap();
        let model = AsicModel::tofino32().with_prefix_expansion();
        let c = table_cost(&t, &model);
        assert_eq!(c.memory, Memory::Tcam);
        assert_eq!(c.physical_entries, 2 * 32 - 2);
        // 16 + 32 = 48 bits > 44-bit slice → 2 slices.
        assert_eq!(c.slices_per_entry, 2);
        assert_eq!(c.charge(), (2 * 32 - 2) * 2);

        // DirtCAM: one physical entry, but the 32-bit range key widens to
        // 128 bits → (16 + 128) / 44 → 4 slices.
        let dirt = AsicModel::tofino32();
        let c = table_cost(&t, &dirt);
        assert_eq!(c.physical_entries, 1);
        assert_eq!(c.slices_per_entry, 4);
    }

    #[test]
    fn placement_chains_dependent_tables() {
        let mk = |name: &str| {
            let mut t = mk_table(name, &[(MatchKind::Exact, 16)]);
            t.add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(0)],
                ops: vec![],
            })
            .unwrap();
            t
        };
        let (a, b, c) = (mk("a"), mk("b"), mk("c"));
        let model = AsicModel::tofino32();
        let rep = place(&[&a, &b, &c], &model);
        assert!(rep.fits());
        assert_eq!(rep.stages_used, 3);
        let stages: Vec<usize> = rep.placements.iter().map(|p| p.first_stage).collect();
        assert_eq!(stages, vec![0, 1, 2]);
    }

    #[test]
    fn oversized_table_spills_stages() {
        let mut t = mk_table("big", &[(MatchKind::Exact, 16)]);
        let model = AsicModel::tofino32();
        for i in 0..(model.sram_entries_per_stage + 10) {
            t.add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(i as u64)],
                ops: vec![],
            })
            .unwrap();
        }
        let rep = place(&[&t], &model);
        assert!(rep.fits());
        assert_eq!(rep.placements[0].first_stage, 0);
        assert_eq!(rep.placements[0].last_stage, 1);
    }

    #[test]
    fn too_many_tables_fail_placement() {
        let tables: Vec<Table> = (0..20)
            .map(|i| mk_table(&format!("t{i}"), &[(MatchKind::Exact, 8)]))
            .collect();
        let refs: Vec<&Table> = tables.iter().collect();
        let rep = place(&refs, &AsicModel::tofino32());
        assert!(!rep.fits());
        let err = rep.failure.as_ref().unwrap();
        assert_eq!(err.table, "t12");
        assert_eq!(err.stage, 12);
        assert_eq!(err.available, 0);
        assert!(err.to_string().contains("out of stages"));
    }

    #[test]
    fn admission_failure_reports_budget_arithmetic() {
        // One exact table larger than the whole device: the typed error
        // must carry the exact needed-vs-available arithmetic so the
        // update plane can explain rejections.
        let model = AsicModel::tofino32();
        let total = model.sram_entries_per_stage * model.stages;
        let mut t = mk_table("huge", &[(MatchKind::Exact, 16)]);
        for i in 0..(total + 1) {
            t.add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(i as u64)],
                ops: vec![],
            })
            .unwrap();
        }
        let rep = place(&[&t], &model);
        assert!(!rep.fits());
        let err = rep.failure.as_ref().unwrap();
        assert_eq!(err.table, "huge");
        assert_eq!(err.memory, Memory::Sram);
        assert_eq!(err.stage, 0);
        assert_eq!(err.needed, total + 1);
        assert_eq!(err.available, total);
        // A failed placement must be side-effect-free on the totals:
        // nothing was actually consumed.
        assert_eq!(rep.sram_entries, total + 1); // cost summary, not consumption
        assert!(err.to_string().contains("only"));
    }

    #[test]
    fn level_chain_matches_compiler_convention() {
        let tables = vec![
            mk_table("t_cmp_price", &[(MatchKind::Exact, 32)]),
            mk_table("t_price", &[(MatchKind::Exact, 16)]),
            mk_table("t_stock", &[(MatchKind::Exact, 64)]),
            mk_table("t_leaf", &[(MatchKind::Exact, 16)]),
        ];
        let leveled = level_chain(&tables);
        let levels: Vec<usize> = leveled.iter().map(|&(_, l)| l).collect();
        assert_eq!(levels, vec![0, 1, 2, 3]);
        // No compression tables: mains start at level 0.
        let plain = vec![
            mk_table("t_a", &[(MatchKind::Exact, 16)]),
            mk_table("t_b", &[(MatchKind::Exact, 16)]),
        ];
        let levels: Vec<usize> = level_chain(&plain).iter().map(|&(_, l)| l).collect();
        assert_eq!(levels, vec![0, 1]);
    }

    #[test]
    fn model_bandwidths_match_paper() {
        assert!((AsicModel::tofino32().total_tbps() - 3.2).abs() < 0.1);
        assert!((AsicModel::tofino64().total_tbps() - 6.4).abs() < 0.2);
    }
}
