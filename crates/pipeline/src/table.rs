//! Match-action tables.
//!
//! A table declares a list of keys (PHV field + match kind); entries
//! supply one match value per key, a priority, and a list of action
//! operations. Lookup returns the highest-priority (lowest number)
//! matching entry, mirroring TCAM semantics; ties break by insertion
//! order.
//!
//! Compiled Camus tables have the shape `(state: exact, field: …)`;
//! lookup is indexed on the first exact key so that per-packet matching
//! stays O(entries-per-state) instead of O(table).

use std::collections::{HashMap, VecDeque};

use crate::error::PipelineError;
use crate::multicast::{GroupId, PortId};
use crate::phv::{Phv, PhvField};

/// How a key matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchKind {
    /// Exact value (SRAM hash table).
    Exact,
    /// Value/mask (TCAM).
    Ternary,
    /// Inclusive range (TCAM via range expansion, or dedicated range
    /// match units).
    Range,
    /// Longest-prefix match (TCAM/algorithmic).
    Lpm,
}

/// A table key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    /// PHV field matched.
    pub field: PhvField,
    /// Match kind.
    pub kind: MatchKind,
    /// Field width in bits (needed for LPM masks and resource
    /// accounting).
    pub bits: u32,
}

/// A concrete match value in an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchValue {
    /// Match exactly this value.
    Exact(u64),
    /// TCAM value/mask: matches when `phv & mask == value`.
    Ternary {
        /// Target bits.
        value: u64,
        /// Care mask.
        mask: u64,
    },
    /// Inclusive range.
    Range {
        /// Lower bound.
        lo: u64,
        /// Upper bound.
        hi: u64,
    },
    /// Prefix match on the top `prefix_len` bits.
    Lpm {
        /// Prefix value (already shifted into field position).
        value: u64,
        /// Prefix length.
        prefix_len: u32,
    },
    /// Wildcard.
    Any,
}

impl MatchValue {
    fn matches(&self, v: u64, bits: u32) -> bool {
        match *self {
            MatchValue::Exact(e) => v == e,
            MatchValue::Ternary { value, mask } => v & mask == value,
            MatchValue::Range { lo, hi } => v >= lo && v <= hi,
            MatchValue::Lpm { value, prefix_len } => {
                let mask = lpm_mask(bits, prefix_len);
                v & mask == value & mask
            }
            MatchValue::Any => true,
        }
    }

    fn compatible(&self, kind: MatchKind) -> bool {
        matches!(
            (self, kind),
            (MatchValue::Any, _)
                | (MatchValue::Exact(_), _)
                | (MatchValue::Ternary { .. }, MatchKind::Ternary)
                | (MatchValue::Range { .. }, MatchKind::Range)
                | (MatchValue::Range { .. }, MatchKind::Ternary)
                | (MatchValue::Lpm { .. }, MatchKind::Lpm)
                | (MatchValue::Lpm { .. }, MatchKind::Ternary)
        )
    }
}

/// Mask selecting the top `prefix_len` bits of a `bits`-wide field.
pub fn lpm_mask(bits: u32, prefix_len: u32) -> u64 {
    let bits = bits.min(64);
    let p = prefix_len.min(bits);
    if p == 0 {
        0
    } else {
        let ones = if p == 64 { u64::MAX } else { (1u64 << p) - 1 };
        ones << (bits - p)
    }
}

/// Register update operations available to actions (the generic update
/// code §3.1 says the static compiler emits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegOp {
    /// `count += 1`.
    Increment,
    /// Fold a PHV field into the aggregate (sum/count/min/max all
    /// update from the sample).
    Observe(PhvField),
    /// Overwrite with a constant.
    SetConst(u64),
    /// Overwrite with a PHV field.
    SetField(PhvField),
}

/// A single action operation; an entry's action is a sequence of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionOp {
    /// Write a PHV field (e.g. the BDD `state` metadata).
    SetField(PhvField, u64),
    /// Unicast to a port.
    Forward(PortId),
    /// Replicate to a multicast group.
    Multicast(GroupId),
    /// Drop the packet.
    Drop,
    /// Update a register slot.
    Register {
        /// Register slot index.
        slot: usize,
        /// Update operation.
        op: RegOp,
    },
}

/// A table entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Entry {
    /// Priority: lower value = higher priority (TCAM order).
    pub priority: u32,
    /// One match value per table key.
    pub matches: Vec<MatchValue>,
    /// Action operations executed on match.
    pub ops: Vec<ActionOp>,
}

#[derive(Debug, Clone)]
enum Index {
    /// Scan all entries (no exact leading key).
    Linear,
    /// Bucket by the first key's exact value; `wild` holds entries whose
    /// first match is `Any`.
    ByFirstExact {
        map: HashMap<u64, Vec<usize>>,
        wild: Vec<usize>,
    },
}

/// A match-action table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Diagnostic name (also used in P4 output and placement reports).
    pub name: String,
    /// Keys, in match order.
    pub keys: Vec<Key>,
    entries: Vec<Entry>,
    /// Actions applied when no entry matches.
    pub default_ops: Vec<ActionOp>,
    index: Index,
    dirty: bool,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, keys: Vec<Key>, default_ops: Vec<ActionOp>) -> Self {
        Table {
            name: name.into(),
            keys,
            entries: Vec::new(),
            default_ops,
            index: Index::Linear,
            dirty: true,
        }
    }

    fn validate_entry(&self, entry: &Entry) -> Result<(), PipelineError> {
        if entry.matches.len() != self.keys.len() {
            return Err(PipelineError::EntryShapeMismatch {
                table: self.name.clone(),
                expected: self.keys.len(),
                got: entry.matches.len(),
            });
        }
        for (i, (m, k)) in entry.matches.iter().zip(&self.keys).enumerate() {
            if !m.compatible(k.kind) {
                return Err(PipelineError::EntryKindMismatch {
                    table: self.name.clone(),
                    key: i,
                });
            }
        }
        Ok(())
    }

    /// Adds an entry after validating its shape against the keys.
    pub fn add_entry(&mut self, entry: Entry) -> Result<(), PipelineError> {
        self.validate_entry(&entry)?;
        self.entries.push(entry);
        self.dirty = true;
        Ok(())
    }

    /// Removes one occurrence of `entry` (the first in insertion
    /// order).
    pub fn remove_entry(&mut self, entry: &Entry) -> Result<(), PipelineError> {
        self.splice_entries(std::slice::from_ref(entry), &[])
    }

    /// Applies a batched entry diff: removes one occurrence per entry
    /// in `removes` (multiset semantics), then appends every entry in
    /// `adds` — all-or-nothing, validated up front, with a single index
    /// refresh deferred to the next `prepare`. Kept entries preserve
    /// their relative insertion order, so equal-priority tie-breaks
    /// stay stable across a splice.
    pub fn splice_entries(
        &mut self,
        removes: &[Entry],
        adds: &[Entry],
    ) -> Result<(), PipelineError> {
        for a in adds {
            self.validate_entry(a)?;
        }
        let mut drop = vec![false; self.entries.len()];
        if !removes.is_empty() {
            // One index over the current entries, consumed front-first
            // per removal — earliest-occurrence multiset semantics at
            // O(n + r) instead of a scan per removal.
            let mut occurrences: HashMap<&Entry, VecDeque<usize>> = HashMap::new();
            for (i, e) in self.entries.iter().enumerate() {
                occurrences.entry(e).or_default().push_back(i);
            }
            for r in removes {
                let i = occurrences
                    .get_mut(r)
                    .and_then(|q| q.pop_front())
                    .ok_or_else(|| PipelineError::EntryNotFound {
                        table: self.name.clone(),
                    })?;
                drop[i] = true;
            }
        }
        if !removes.is_empty() {
            let mut i = 0;
            self.entries.retain(|_| {
                let keep = !drop[i];
                i += 1;
                keep
            });
        }
        self.entries.extend(adds.iter().cloned());
        self.dirty = true;
        Ok(())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    /// Rebuilds the lookup index. Called lazily by `lookup`; exposed so
    /// construction cost can be paid eagerly in benchmarks.
    ///
    /// Reuses the previous index's map and bucket allocations so that
    /// update-plane refreshes recycle the match engine instead of
    /// reallocating it. Buckets for first-key values that no longer
    /// have entries are kept (empty) — lookups on them simply fall
    /// through to the wildcard list.
    pub fn build_index(&mut self) {
        if self.keys.first().map(|k| k.kind) == Some(MatchKind::Exact) {
            let (mut map, mut wild) = match std::mem::replace(&mut self.index, Index::Linear) {
                Index::ByFirstExact { mut map, mut wild } => {
                    for bucket in map.values_mut() {
                        bucket.clear();
                    }
                    wild.clear();
                    (map, wild)
                }
                Index::Linear => (HashMap::new(), Vec::new()),
            };
            for (i, e) in self.entries.iter().enumerate() {
                match e.matches[0] {
                    MatchValue::Exact(v) => map.entry(v).or_default().push(i),
                    MatchValue::Any => wild.push(i),
                    _ => unreachable!("validated exact-compatible"),
                }
            }
            self.index = Index::ByFirstExact { map, wild };
        } else {
            self.index = Index::Linear;
        }
        self.dirty = false;
    }

    fn entry_matches(&self, e: &Entry, phv: &Phv, skip_first: bool) -> bool {
        let start = usize::from(skip_first);
        e.matches[start..]
            .iter()
            .zip(&self.keys[start..])
            .all(|(m, k)| m.matches(phv.get_or_zero(k.field), k.bits))
    }

    /// Rebuilds the index if entries changed since the last build.
    /// Idempotent and cheap when already prepared.
    pub fn prepare(&mut self) {
        if self.dirty {
            self.build_index();
        }
    }

    /// Whether the index reflects the current entries.
    pub fn is_prepared(&self) -> bool {
        !self.dirty
    }

    /// Finds the winning entry for a PHV: the matching entry with the
    /// smallest `(priority, insertion index)`.
    pub fn lookup(&mut self, phv: &Phv) -> Option<&Entry> {
        self.prepare();
        self.lookup_prepared(phv)
    }

    /// Immutable lookup for the batch hot path: the caller must have
    /// called [`Table::prepare`] after the last entry change. If the
    /// table is dirty anyway, falls back to a full (correct, slower)
    /// linear scan rather than consulting the stale index.
    pub fn lookup_prepared(&self, phv: &Phv) -> Option<&Entry> {
        debug_assert!(
            !self.dirty,
            "lookup_prepared on un-prepared table `{}`",
            self.name
        );
        let best: Option<usize> = match (&self.index, self.dirty) {
            (Index::Linear, _) | (_, true) => {
                let mut best: Option<usize> = None;
                for (i, e) in self.entries.iter().enumerate() {
                    if self.entry_matches(e, phv, false)
                        && best.is_none_or(|b| e.priority < self.entries[b].priority)
                    {
                        best = Some(i);
                    }
                }
                best
            }
            (Index::ByFirstExact { map, wild }, false) => {
                let v = phv.get_or_zero(self.keys[0].field);
                let mut best: Option<usize> = None;
                let consider = |idxs: &[usize], best: &mut Option<usize>, skip_first: bool| {
                    for &i in idxs {
                        let e = &self.entries[i];
                        if self.entry_matches(e, phv, skip_first)
                            && best
                                .map(|b| (e.priority, i) < (self.entries[b].priority, b))
                                .unwrap_or(true)
                        {
                            *best = Some(i);
                        }
                    }
                };
                if let Some(idxs) = map.get(&v) {
                    consider(idxs, &mut best, true);
                }
                consider(wild, &mut best, false);
                best
            }
        };
        best.map(|i| &self.entries[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::PhvLayout;

    fn layout2() -> (PhvLayout, PhvField, PhvField) {
        let mut l = PhvLayout::new();
        let state = l.add("state", 16);
        let stock = l.add("stock", 64);
        (l, state, stock)
    }

    fn phv_with(l: &PhvLayout, state: PhvField, stock: PhvField, s: u64, v: u64) -> Phv {
        let mut p = l.instantiate();
        p.set(state, s);
        p.set(stock, v);
        p
    }

    /// The Stock table of Figure 4.
    #[test]
    fn figure4_stock_table_semantics() {
        let (l, state, stock) = layout2();
        const AAPL: u64 = 10;
        const MSFT: u64 = 20;
        let mut t = Table::new(
            "stock",
            vec![
                Key {
                    field: state,
                    kind: MatchKind::Exact,
                    bits: 16,
                },
                Key {
                    field: stock,
                    kind: MatchKind::Exact,
                    bits: 64,
                },
            ],
            vec![],
        );
        let e = |prio, m0, m1, s| Entry {
            priority: prio,
            matches: vec![m0, m1],
            ops: vec![ActionOp::SetField(state, s)],
        };
        t.add_entry(e(0, MatchValue::Exact(1), MatchValue::Exact(AAPL), 3))
            .unwrap();
        t.add_entry(e(1, MatchValue::Exact(1), MatchValue::Any, 6))
            .unwrap();
        t.add_entry(e(0, MatchValue::Exact(2), MatchValue::Exact(AAPL), 3))
            .unwrap();
        t.add_entry(e(0, MatchValue::Exact(2), MatchValue::Exact(MSFT), 4))
            .unwrap();
        t.add_entry(e(1, MatchValue::Exact(2), MatchValue::Any, 5))
            .unwrap();

        let mut got = |s, v| {
            let phv = phv_with(&l, state, stock, s, v);
            t.lookup(&phv).map(|e| e.ops.clone())
        };
        assert_eq!(got(1, AAPL), Some(vec![ActionOp::SetField(state, 3)]));
        assert_eq!(got(1, MSFT), Some(vec![ActionOp::SetField(state, 6)]));
        assert_eq!(got(2, MSFT), Some(vec![ActionOp::SetField(state, 4)]));
        assert_eq!(got(2, 99), Some(vec![ActionOp::SetField(state, 5)]));
        assert_eq!(got(9, AAPL), None); // unknown state: default action
    }

    #[test]
    fn range_keys_match_inclusively() {
        let (l, state, shares) = layout2();
        let mut t = Table::new(
            "shares",
            vec![
                Key {
                    field: state,
                    kind: MatchKind::Exact,
                    bits: 16,
                },
                Key {
                    field: shares,
                    kind: MatchKind::Range,
                    bits: 64,
                },
            ],
            vec![],
        );
        t.add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(0), MatchValue::Range { lo: 0, hi: 59 }],
            ops: vec![ActionOp::SetField(state, 1)],
        })
        .unwrap();
        for (v, hits) in [(0u64, true), (59, true), (60, false)] {
            let phv = phv_with(&l, state, shares, 0, v);
            assert_eq!(t.lookup(&phv).is_some(), hits, "v={v}");
        }
    }

    #[test]
    fn ternary_and_lpm_match() {
        let (l, _state, f) = layout2();
        let mut t = Table::new(
            "tern",
            vec![Key {
                field: f,
                kind: MatchKind::Ternary,
                bits: 64,
            }],
            vec![],
        );
        t.add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Ternary {
                value: 0x10,
                mask: 0xf0,
            }],
            ops: vec![ActionOp::Drop],
        })
        .unwrap();
        let mut phv = l.instantiate();
        phv.set(f, 0x1a);
        assert!(t.lookup(&phv).is_some());
        phv.set(f, 0x2a);
        assert!(t.lookup(&phv).is_none());

        let mut t = Table::new(
            "lpm",
            vec![Key {
                field: f,
                kind: MatchKind::Lpm,
                bits: 32,
            }],
            vec![],
        );
        t.add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Lpm {
                value: 0xc0a8_0000,
                prefix_len: 16,
            }],
            ops: vec![ActionOp::Drop],
        })
        .unwrap();
        phv.set(f, 0xc0a8_1234);
        assert!(t.lookup(&phv).is_some());
        phv.set(f, 0xc0a9_1234);
        assert!(t.lookup(&phv).is_none());
    }

    #[test]
    fn priority_orders_overlapping_entries() {
        let (l, _s, f) = layout2();
        let mut t = Table::new(
            "t",
            vec![Key {
                field: f,
                kind: MatchKind::Range,
                bits: 64,
            }],
            vec![],
        );
        t.add_entry(Entry {
            priority: 5,
            matches: vec![MatchValue::Range { lo: 0, hi: 100 }],
            ops: vec![ActionOp::Forward(PortId(1))],
        })
        .unwrap();
        t.add_entry(Entry {
            priority: 1,
            matches: vec![MatchValue::Range { lo: 50, hi: 60 }],
            ops: vec![ActionOp::Forward(PortId(2))],
        })
        .unwrap();
        let mut phv = l.instantiate();
        phv.set(f, 55);
        assert_eq!(
            t.lookup(&phv).unwrap().ops,
            vec![ActionOp::Forward(PortId(2))]
        );
        phv.set(f, 10);
        assert_eq!(
            t.lookup(&phv).unwrap().ops,
            vec![ActionOp::Forward(PortId(1))]
        );
    }

    #[test]
    fn equal_priority_ties_break_by_insertion() {
        let (l, _s, f) = layout2();
        let mut t = Table::new(
            "t",
            vec![Key {
                field: f,
                kind: MatchKind::Exact,
                bits: 64,
            }],
            vec![],
        );
        t.add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(7)],
            ops: vec![ActionOp::Forward(PortId(1))],
        })
        .unwrap();
        t.add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(7)],
            ops: vec![ActionOp::Forward(PortId(2))],
        })
        .unwrap();
        let mut phv = l.instantiate();
        phv.set(f, 7);
        assert_eq!(
            t.lookup(&phv).unwrap().ops,
            vec![ActionOp::Forward(PortId(1))]
        );
    }

    #[test]
    fn shape_and_kind_validation() {
        let (_, state, stock) = layout2();
        let mut t = Table::new(
            "t",
            vec![
                Key {
                    field: state,
                    kind: MatchKind::Exact,
                    bits: 16,
                },
                Key {
                    field: stock,
                    kind: MatchKind::Exact,
                    bits: 64,
                },
            ],
            vec![],
        );
        assert!(matches!(
            t.add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(1)],
                ops: vec![]
            }),
            Err(PipelineError::EntryShapeMismatch { .. })
        ));
        assert!(matches!(
            t.add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(1), MatchValue::Range { lo: 0, hi: 1 }],
                ops: vec![]
            }),
            Err(PipelineError::EntryKindMismatch { key: 1, .. })
        ));
    }

    #[test]
    fn lookup_after_incremental_adds_rebuilds_index() {
        let (l, state, stock) = layout2();
        let mut t = Table::new(
            "t",
            vec![Key {
                field: state,
                kind: MatchKind::Exact,
                bits: 16,
            }],
            vec![],
        );
        let mut phv = l.instantiate();
        phv.set(state, 1);
        phv.set(stock, 0);
        assert!(t.lookup(&phv).is_none());
        t.add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(1)],
            ops: vec![ActionOp::Drop],
        })
        .unwrap();
        assert!(t.lookup(&phv).is_some());
    }

    #[test]
    fn splice_removes_then_adds() {
        let (l, _s, f) = layout2();
        let mut t = Table::new(
            "t",
            vec![Key {
                field: f,
                kind: MatchKind::Exact,
                bits: 64,
            }],
            vec![],
        );
        let e = |v, port| Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(v)],
            ops: vec![ActionOp::Forward(PortId(port))],
        };
        t.add_entry(e(1, 10)).unwrap();
        t.add_entry(e(2, 20)).unwrap();
        t.add_entry(e(2, 20)).unwrap(); // duplicate: multiset semantics
        t.splice_entries(&[e(2, 20)], &[e(3, 30)]).unwrap();
        assert_eq!(t.len(), 3);
        let mut got = |v: u64| {
            let mut phv = l.instantiate();
            phv.set(f, v);
            t.lookup(&phv).map(|e| e.ops.clone())
        };
        assert_eq!(got(1), Some(vec![ActionOp::Forward(PortId(10))]));
        // One duplicate removed, one kept.
        assert_eq!(got(2), Some(vec![ActionOp::Forward(PortId(20))]));
        assert_eq!(got(3), Some(vec![ActionOp::Forward(PortId(30))]));
    }

    #[test]
    fn splice_is_all_or_nothing() {
        let (l, _s, f) = layout2();
        let mut t = Table::new(
            "t",
            vec![Key {
                field: f,
                kind: MatchKind::Exact,
                bits: 64,
            }],
            vec![],
        );
        let e = |v| Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(v)],
            ops: vec![ActionOp::Drop],
        };
        t.add_entry(e(1)).unwrap();
        // Removing a present entry and an absent one fails without
        // touching the table.
        assert!(matches!(
            t.splice_entries(&[e(1), e(9)], &[]),
            Err(PipelineError::EntryNotFound { .. })
        ));
        assert_eq!(t.len(), 1);
        // A bad add is rejected before any remove is applied.
        let bad = Entry {
            priority: 0,
            matches: vec![],
            ops: vec![],
        };
        assert!(t.splice_entries(&[e(1)], &[bad]).is_err());
        assert_eq!(t.len(), 1);
        let mut phv = l.instantiate();
        phv.set(f, 1);
        assert!(t.lookup(&phv).is_some());
    }

    #[test]
    fn splice_duplicate_removes_consume_distinct_occurrences() {
        let (_l, _s, f) = layout2();
        let mut t = Table::new(
            "t",
            vec![Key {
                field: f,
                kind: MatchKind::Exact,
                bits: 64,
            }],
            vec![],
        );
        let e = |v| Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(v)],
            ops: vec![ActionOp::Drop],
        };
        t.add_entry(e(1)).unwrap();
        t.add_entry(e(1)).unwrap();
        t.add_entry(e(2)).unwrap();
        // Two removes of the same entry consume both copies.
        t.splice_entries(&[e(1), e(1)], &[]).unwrap();
        assert_eq!(t.len(), 1);
        // A third remove has nothing left to consume.
        assert!(matches!(
            t.splice_entries(&[e(2), e(2)], &[]),
            Err(PipelineError::EntryNotFound { .. })
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_entry_takes_first_occurrence() {
        let (l, _s, f) = layout2();
        let mut t = Table::new(
            "t",
            vec![Key {
                field: f,
                kind: MatchKind::Exact,
                bits: 64,
            }],
            vec![],
        );
        let e = |v| Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(v)],
            ops: vec![ActionOp::Drop],
        };
        t.add_entry(e(5)).unwrap();
        t.add_entry(e(5)).unwrap();
        t.remove_entry(&e(5)).unwrap();
        assert_eq!(t.len(), 1);
        t.remove_entry(&e(5)).unwrap();
        assert!(t.is_empty());
        assert!(t.remove_entry(&e(5)).is_err());
        let mut phv = l.instantiate();
        phv.set(f, 5);
        assert!(t.lookup(&phv).is_none());
    }

    #[test]
    fn index_rebuild_after_splice_stays_correct() {
        // Exercise the allocation-reusing rebuild: a value whose
        // bucket empties must miss, not hit stale indices.
        let (l, state, stock) = layout2();
        let mut t = Table::new(
            "t",
            vec![
                Key {
                    field: state,
                    kind: MatchKind::Exact,
                    bits: 16,
                },
                Key {
                    field: stock,
                    kind: MatchKind::Exact,
                    bits: 64,
                },
            ],
            vec![],
        );
        let e = |s, v| Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(s), MatchValue::Exact(v)],
            ops: vec![ActionOp::Drop],
        };
        t.add_entry(e(1, 10)).unwrap();
        t.add_entry(e(2, 20)).unwrap();
        t.prepare();
        t.splice_entries(&[e(1, 10)], &[e(3, 30)]).unwrap();
        t.prepare();
        for (s, v, hit) in [(1u64, 10u64, false), (2, 20, true), (3, 30, true)] {
            let phv = phv_with(&l, state, stock, s, v);
            assert_eq!(t.lookup_prepared(&phv).is_some(), hit, "state={s}");
        }
    }

    #[test]
    fn lpm_mask_edges() {
        assert_eq!(lpm_mask(32, 0), 0);
        assert_eq!(lpm_mask(32, 32), 0xffff_ffff);
        assert_eq!(lpm_mask(32, 16), 0xffff_0000);
        assert_eq!(lpm_mask(64, 64), u64::MAX);
        assert_eq!(lpm_mask(64, 1), 1 << 63);
    }
}
