//! The pipeline executor: parse → match-action stages → forward.
//!
//! A [`Pipeline`] bundles everything the Camus compiler emits for one
//! application: the PHV layout, the parser program, the ordered table
//! chain, the multicast groups and the register file. [`Pipeline::process`]
//! runs one packet through it and returns the forwarding decision —
//! the union, over all application messages in the packet, of each
//! message's matched ports (§2: the switch executes the actions of all
//! matching rules).

use crate::error::PipelineError;
use crate::multicast::{MulticastTable, PortId};
use crate::parser::ParserSpec;
use crate::phv::{Phv, PhvLayout};
use crate::register::{AggKind, RegisterFile};
use crate::table::{ActionOp, RegOp, Table};

/// The forwarding decision for one packet.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ForwardDecision {
    /// Egress ports (sorted, deduplicated). Empty = dropped.
    pub ports: Vec<PortId>,
    /// Number of application messages evaluated.
    pub messages: usize,
    /// Number of messages that matched at least one forwarding rule.
    pub matched_messages: usize,
}

impl ForwardDecision {
    /// Whether the packet is dropped.
    pub fn dropped(&self) -> bool {
        self.ports.is_empty()
    }
}

/// Descriptor binding a PHV pseudo-field to a register aggregate, so
/// stateful predicates (`avg(price) > 50`) can be matched by ordinary
/// tables: before the table chain runs, the executor materializes each
/// aggregate into its pseudo-field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateBinding {
    /// PHV slot the aggregate is written into.
    pub dst: crate::phv::PhvField,
    /// Register slot read.
    pub slot: usize,
    /// Aggregate kind.
    pub agg: AggKind,
}

/// A complete data-plane program instance.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// PHV layout shared by parser and tables.
    pub layout: PhvLayout,
    /// Parser program.
    pub parser: ParserSpec,
    /// Match-action tables, applied in order.
    pub tables: Vec<Table>,
    /// Multicast groups.
    pub mcast: MulticastTable,
    /// Register file backing `@query_counter` state.
    pub registers: RegisterFile,
    /// Aggregate → pseudo-field bindings evaluated before the tables.
    pub state_bindings: Vec<StateBinding>,
    /// Metadata initialization applied to every message PHV before the
    /// table chain (e.g. the BDD entry state, which is nonzero after
    /// incremental recompilations).
    pub init_fields: Vec<(crate::phv::PhvField, u64)>,
}

impl Pipeline {
    /// Processes one packet arriving at `now_us`, returning its
    /// forwarding decision.
    pub fn process(&mut self, packet: &[u8], now_us: u64) -> Result<ForwardDecision, PipelineError> {
        let phvs = self.parser.parse(&self.layout, packet)?;
        let mut decision = ForwardDecision { messages: phvs.len(), ..Default::default() };
        for mut phv in phvs {
            let ports = self.evaluate_message(&mut phv, now_us)?;
            if !ports.is_empty() {
                decision.matched_messages += 1;
            }
            decision.ports.extend(ports);
        }
        decision.ports.sort_unstable();
        decision.ports.dedup();
        Ok(decision)
    }

    /// Runs the match-action chain on a single message PHV.
    pub fn evaluate_message(
        &mut self,
        phv: &mut Phv,
        now_us: u64,
    ) -> Result<Vec<PortId>, PipelineError> {
        for &(f, v) in &self.init_fields {
            phv.set(f, v);
        }
        // Materialize stateful aggregates into their pseudo-fields.
        for b in &self.state_bindings {
            let v = self
                .registers
                .read(b.slot, b.agg, now_us)
                .map_err(PipelineError::RegisterOutOfRange)?;
            phv.set(b.dst, v);
        }

        let mut ports: Vec<PortId> = Vec::new();
        let mut dropped = false;
        for t in &mut self.tables {
            let ops: Vec<ActionOp> = match t.lookup(phv) {
                Some(e) => e.ops.clone(),
                None => t.default_ops.clone(),
            };
            for op in ops {
                match op {
                    ActionOp::SetField(f, v) => phv.set(f, v),
                    ActionOp::Forward(p) => ports.push(p),
                    ActionOp::Multicast(g) => {
                        let members = self
                            .mcast
                            .ports(g)
                            .ok_or(PipelineError::UnknownGroup(g.0))?;
                        ports.extend_from_slice(members);
                    }
                    ActionOp::Drop => dropped = true,
                    ActionOp::Register { slot, op } => {
                        let res = match op {
                            RegOp::Increment => self.registers.increment(slot, now_us),
                            RegOp::Observe(f) => {
                                self.registers.observe(slot, phv.get_or_zero(f), now_us)
                            }
                            RegOp::SetConst(v) => self.registers.set(slot, v, now_us),
                            RegOp::SetField(f) => {
                                self.registers.set(slot, phv.get_or_zero(f), now_us)
                            }
                        };
                        res.map_err(PipelineError::RegisterOutOfRange)?;
                    }
                }
            }
        }
        if dropped {
            // An explicit drop() wins only if nothing forwards: per §2 all
            // matching rules' actions execute, and forwarding to *some*
            // subscriber must not be vetoed by an unrelated drop rule.
            if ports.is_empty() {
                return Ok(Vec::new());
            }
        }
        ports.sort_unstable();
        ports.dedup();
        Ok(ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multicast::GroupId;
    use crate::parser::{Extract, ParseState, ParserSpec, StateId, Transition};
    use crate::phv::PhvLayout;
    use crate::table::{Entry, Key, MatchKind, MatchValue};

    /// A tiny program: parse one byte `sym`; table forwards sym==1 to
    /// port 1, sym==2 to multicast {2,3}; counts matches in a register.
    fn tiny_pipeline() -> Pipeline {
        let mut layout = PhvLayout::new();
        let sym = layout.add("sym", 8);
        let parser = ParserSpec::new(
            vec![ParseState {
                name: "start".into(),
                extracts: vec![Extract { dst: sym, bit_offset: 0, bits: 8 }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: false,
                next: Transition::Accept,
            }],
            StateId(0),
        );
        let mut table = Table::new(
            "leaf",
            vec![Key { field: sym, kind: MatchKind::Exact, bits: 8 }],
            vec![],
        );
        table
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(1)],
                ops: vec![
                    ActionOp::Forward(PortId(1)),
                    ActionOp::Register { slot: 0, op: RegOp::Increment },
                ],
            })
            .unwrap();
        table
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(2)],
                ops: vec![ActionOp::Multicast(GroupId(0))],
            })
            .unwrap();
        let mut mcast = MulticastTable::new();
        mcast.install(GroupId(0), vec![PortId(2), PortId(3)]);
        let mut registers = RegisterFile::new();
        registers.allocate(0);
        Pipeline { layout, parser, tables: vec![table], mcast, registers, state_bindings: vec![], init_fields: vec![] }
    }

    #[test]
    fn unicast_and_multicast_forwarding() {
        let mut p = tiny_pipeline();
        let d = p.process(&[1], 0).unwrap();
        assert_eq!(d.ports, vec![PortId(1)]);
        assert_eq!((d.messages, d.matched_messages), (1, 1));
        let d = p.process(&[2], 0).unwrap();
        assert_eq!(d.ports, vec![PortId(2), PortId(3)]);
    }

    #[test]
    fn miss_means_drop() {
        let mut p = tiny_pipeline();
        let d = p.process(&[9], 0).unwrap();
        assert!(d.dropped());
        assert_eq!(d.matched_messages, 0);
    }

    #[test]
    fn register_side_effects_accumulate() {
        let mut p = tiny_pipeline();
        p.process(&[1], 0).unwrap();
        p.process(&[1], 1).unwrap();
        p.process(&[9], 2).unwrap();
        assert_eq!(p.registers.read(0, AggKind::Count, 3).unwrap(), 2);
    }

    #[test]
    fn unknown_group_is_an_error() {
        let mut p = tiny_pipeline();
        p.tables[0]
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(7)],
                ops: vec![ActionOp::Multicast(GroupId(99))],
            })
            .unwrap();
        assert_eq!(p.process(&[7], 0).unwrap_err(), PipelineError::UnknownGroup(99));
    }

    #[test]
    fn state_binding_materializes_aggregate() {
        let mut p = tiny_pipeline();
        let agg_field = p.layout.add("avg_x", 64);
        // New table matching on the aggregate pseudo-field.
        let mut t = Table::new(
            "state",
            vec![Key { field: agg_field, kind: MatchKind::Range, bits: 64 }],
            vec![],
        );
        t.add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Range { lo: 2, hi: u64::MAX }],
            ops: vec![ActionOp::Forward(PortId(9))],
        })
        .unwrap();
        p.tables.push(t);
        p.state_bindings.push(StateBinding { dst: agg_field, slot: 0, agg: AggKind::Count });

        // First two packets: count 0 then 1 at evaluation time → no port 9.
        assert_eq!(p.process(&[1], 0).unwrap().ports, vec![PortId(1)]);
        assert_eq!(p.process(&[1], 1).unwrap().ports, vec![PortId(1)]);
        // Third packet: count reads 2 → port 9 too.
        assert_eq!(p.process(&[1], 2).unwrap().ports, vec![PortId(1), PortId(9)]);
    }

    #[test]
    fn multi_message_packets_union_ports() {
        let mut layout = PhvLayout::new();
        let sym = layout.add("sym", 8);
        let parser = ParserSpec::new(
            vec![ParseState {
                name: "msg".into(),
                extracts: vec![Extract { dst: sym, bit_offset: 0, bits: 8 }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: true,
                next: Transition::SelectRemaining { more: StateId(0) },
            }],
            StateId(0),
        );
        let mut p = tiny_pipeline();
        p.parser = parser;
        p.layout = layout;
        let d = p.process(&[1, 2, 9], 0).unwrap();
        assert_eq!(d.ports, vec![PortId(1), PortId(2), PortId(3)]);
        assert_eq!(d.messages, 3);
        assert_eq!(d.matched_messages, 2);
    }

    #[test]
    fn drop_does_not_veto_forwarding() {
        let mut p = tiny_pipeline();
        p.tables[0]
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(1)],
                ops: vec![ActionOp::Drop],
            })
            .unwrap();
        // The first entry (insertion order) still forwards to port 1;
        // even if a drop rule also matched a different message, ports win.
        let d = p.process(&[1], 0).unwrap();
        assert_eq!(d.ports, vec![PortId(1)]);
    }
}
