//! The pipeline executor: parse → match-action stages → forward.
//!
//! A [`Pipeline`] bundles everything the Camus compiler emits for one
//! application: the PHV layout, the parser program, the ordered table
//! chain, the multicast groups and the register file. [`Pipeline::process`]
//! runs one packet through it and returns the forwarding decision —
//! the union, over all application messages in the packet, of each
//! message's matched ports (§2: the switch executes the actions of all
//! matching rules).

use std::fmt;
use std::time::Instant;

use camus_telemetry::DataPlaneTelemetry;

use crate::cache::{CacheStats, DecisionCache};
use crate::error::PipelineError;
use crate::multicast::{MulticastTable, PortId};
use crate::parser::ParserSpec;
use crate::phv::{Phv, PhvBuf, PhvField, PhvLayout};
use crate::register::{AggKind, RegisterFile};
use crate::table::{ActionOp, RegOp, Table};

/// Why a malformed packet was dropped at the parser, mirroring the
/// parse-class [`PipelineError`] variants. Truncated or garbage frames
/// are data-plane inputs, not program bugs: a real switch drops them
/// and increments a counter, so the executor turns them into typed
/// drop *decisions* rather than `Err`s (which would poison the rest of
/// a batch) or panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParseDrop {
    /// The parser ran past the end of the packet (truncated frame).
    Underflow,
    /// A selector value matched no transition (unknown EtherType,
    /// protocol, message type…).
    NoTransition,
    /// The parser exceeded its loop bound (malformed length fields).
    LoopBound,
}

impl ParseDrop {
    /// Classifies a pipeline error as a parse-class drop, or `None` for
    /// config-class errors (which stay fatal: they mean the *program*
    /// is broken, not the packet).
    pub fn classify(e: &PipelineError) -> Option<ParseDrop> {
        match e {
            PipelineError::ParseUnderflow { .. } => Some(ParseDrop::Underflow),
            PipelineError::ParseNoTransition { .. } => Some(ParseDrop::NoTransition),
            PipelineError::ParseLoopBound => Some(ParseDrop::LoopBound),
            _ => None,
        }
    }

    /// Stable counter-style name.
    pub fn as_str(self) -> &'static str {
        match self {
            ParseDrop::Underflow => "parse_underflow",
            ParseDrop::NoTransition => "parse_no_transition",
            ParseDrop::LoopBound => "parse_loop_bound",
        }
    }
}

impl fmt::Display for ParseDrop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The forwarding decision for one packet.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ForwardDecision {
    /// Egress ports (sorted, deduplicated). Empty = dropped.
    pub ports: Vec<PortId>,
    /// Number of application messages evaluated.
    pub messages: usize,
    /// Number of messages that matched at least one forwarding rule.
    pub matched_messages: usize,
    /// `Some` when the packet was dropped because it failed to parse;
    /// `None` for well-formed packets (which may still drop on miss).
    pub drop_reason: Option<ParseDrop>,
}

impl ForwardDecision {
    /// Whether the packet is dropped.
    pub fn dropped(&self) -> bool {
        self.ports.is_empty()
    }

    /// Whether the packet was dropped because it failed to parse.
    pub fn malformed(&self) -> bool {
        self.drop_reason.is_some()
    }
}

/// A reusable buffer of [`ForwardDecision`]s for the batch API.
///
/// [`DecisionBuf::clear`] retires decisions without freeing their
/// `ports` vectors, so a warmed buffer serves subsequent batches with
/// zero allocation.
#[derive(Debug, Clone, Default)]
pub struct DecisionBuf {
    slots: Vec<ForwardDecision>,
    len: usize,
}

impl DecisionBuf {
    /// Logically empties the buffer, keeping per-decision storage.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Number of live decisions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no live decisions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The live decisions, in submission order.
    pub fn as_slice(&self) -> &[ForwardDecision] {
        &self.slots[..self.len]
    }

    /// Iterates the live decisions.
    pub fn iter(&self) -> impl Iterator<Item = &ForwardDecision> {
        self.as_slice().iter()
    }

    /// Claims the next slot, recycling a retired decision's storage.
    fn next_slot(&mut self) -> &mut ForwardDecision {
        if self.len == self.slots.len() {
            self.slots.push(ForwardDecision::default());
        }
        let d = &mut self.slots[self.len];
        self.len += 1;
        d.ports.clear();
        d.messages = 0;
        d.matched_messages = 0;
        d.drop_reason = None;
        d
    }
}

impl<'a> IntoIterator for &'a DecisionBuf {
    type Item = &'a ForwardDecision;
    type IntoIter = std::slice::Iter<'a, ForwardDecision>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Execution counters accumulated by the executor (never consulted by
/// it). Message-level counters also accumulate through
/// [`Pipeline::evaluate_message`]; packet-level ones only through
/// [`Pipeline::process`] / [`Pipeline::process_batch`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Packets processed.
    pub packets: u64,
    /// Application messages evaluated.
    pub messages: u64,
    /// Messages that matched at least one forwarding rule.
    pub matched_messages: u64,
    /// Packets forwarded to at least one port.
    pub forwarded_packets: u64,
    /// Packets forwarded nowhere.
    pub dropped_packets: u64,
    /// Truncated frames dropped at the parser ([`ParseDrop::Underflow`]).
    /// Parse-drop counters are a subset of `dropped_packets`.
    pub drop_underflow: u64,
    /// Unknown-selector frames dropped ([`ParseDrop::NoTransition`]).
    pub drop_no_transition: u64,
    /// Loop-bound frames dropped ([`ParseDrop::LoopBound`]).
    pub drop_loop_bound: u64,
    /// Per-table (stage) entry-hit counts, indexed like
    /// [`Pipeline::tables`].
    pub table_hits: Vec<u64>,
    /// Per-table default-action (miss) counts.
    pub table_misses: Vec<u64>,
}

impl ExecStats {
    /// Total packets dropped because they failed to parse (the sum of
    /// the per-reason drop counters).
    pub fn malformed_packets(&self) -> u64 {
        self.drop_underflow + self.drop_no_transition + self.drop_loop_bound
    }

    /// Records a parse-class drop.
    fn count_parse_drop(&mut self, reason: ParseDrop) {
        match reason {
            ParseDrop::Underflow => self.drop_underflow += 1,
            ParseDrop::NoTransition => self.drop_no_transition += 1,
            ParseDrop::LoopBound => self.drop_loop_bound += 1,
        }
    }

    /// Overwrites `self` with `src`, reusing the per-table vectors'
    /// storage (allocation-free once sized). Used by the engine's
    /// supervisor to snapshot/restore counters around a batch so a
    /// caught panic never leaves half-counted packets.
    pub fn copy_from(&mut self, src: &ExecStats) {
        self.packets = src.packets;
        self.messages = src.messages;
        self.matched_messages = src.matched_messages;
        self.forwarded_packets = src.forwarded_packets;
        self.dropped_packets = src.dropped_packets;
        self.drop_underflow = src.drop_underflow;
        self.drop_no_transition = src.drop_no_transition;
        self.drop_loop_bound = src.drop_loop_bound;
        self.table_hits.clear();
        self.table_hits.extend_from_slice(&src.table_hits);
        self.table_misses.clear();
        self.table_misses.extend_from_slice(&src.table_misses);
    }

    /// Zeroes every counter (keeping the per-table vectors' storage).
    pub fn reset(&mut self) {
        self.packets = 0;
        self.messages = 0;
        self.matched_messages = 0;
        self.forwarded_packets = 0;
        self.dropped_packets = 0;
        self.drop_underflow = 0;
        self.drop_no_transition = 0;
        self.drop_loop_bound = 0;
        self.table_hits.fill(0);
        self.table_misses.fill(0);
    }

    /// Adds `other`'s counters into `self` (for cross-worker
    /// aggregation).
    pub fn merge(&mut self, other: &ExecStats) {
        self.packets += other.packets;
        self.messages += other.messages;
        self.matched_messages += other.matched_messages;
        self.forwarded_packets += other.forwarded_packets;
        self.dropped_packets += other.dropped_packets;
        self.drop_underflow += other.drop_underflow;
        self.drop_no_transition += other.drop_no_transition;
        self.drop_loop_bound += other.drop_loop_bound;
        if self.table_hits.len() < other.table_hits.len() {
            self.table_hits.resize(other.table_hits.len(), 0);
        }
        for (a, b) in self.table_hits.iter_mut().zip(&other.table_hits) {
            *a += *b;
        }
        if self.table_misses.len() < other.table_misses.len() {
            self.table_misses.resize(other.table_misses.len(), 0);
        }
        for (a, b) in self.table_misses.iter_mut().zip(&other.table_misses) {
            *a += *b;
        }
    }
}

/// Reusable per-pipeline execution state: scratch buffers for the
/// allocation-free hot path, counters, and the prepared hoisting plan.
/// Cloned with the pipeline (each engine worker gets its own).
#[derive(Debug, Clone, Default)]
pub struct ExecState {
    /// Execution counters.
    pub stats: ExecStats,
    /// Parsed-message pool (reused across packets).
    msgs: PhvBuf,
    /// The parser's working PHV.
    work: Phv,
    /// Per-binding flag: true when the register slot is never written
    /// by any table action, so its value is message-invariant within a
    /// packet and the read can be hoisted out of the per-message loop.
    hoist: Vec<bool>,
    /// Per-packet cache of hoisted aggregate values.
    hoist_vals: Vec<u64>,
    /// Optional per-shard telemetry (counters + latency histograms).
    /// Boxed so the disabled case costs one pointer; `None` (the
    /// default) keeps the hot path free of clock reads entirely.
    telemetry: Option<Box<DataPlaneTelemetry>>,
    /// Optional per-shard decision cache (see [`crate::cache`]). Boxed
    /// for the same reason as `telemetry`; only ever `Some` after
    /// [`Pipeline::enable_decision_cache`] proved the program
    /// cacheable on the key field.
    cache: Option<Box<DecisionCache>>,
}

impl ExecState {
    /// Enables telemetry, sampling every `2^sample_shift`-th packet.
    /// The one `Box` allocation happens here, not on the packet path.
    pub fn enable_telemetry(&mut self, sample_shift: u32) {
        self.telemetry = Some(Box::new(DataPlaneTelemetry::new(sample_shift)));
    }

    /// The telemetry collected so far, if enabled.
    pub fn telemetry(&self) -> Option<&DataPlaneTelemetry> {
        self.telemetry.as_deref()
    }

    /// Detaches the telemetry record (disabling further collection).
    pub fn take_telemetry(&mut self) -> Option<Box<DataPlaneTelemetry>> {
        self.telemetry.take()
    }

    /// Re-attaches a telemetry record.
    pub fn set_telemetry(&mut self, t: Option<Box<DataPlaneTelemetry>>) {
        self.telemetry = t;
    }

    /// The decision cache, if armed.
    pub fn decision_cache(&self) -> Option<&DecisionCache> {
        self.cache.as_deref()
    }

    /// The decision-cache counters, if a cache is armed.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_deref().map(|c| c.stats)
    }

    /// Disarms the decision cache.
    pub fn disable_decision_cache(&mut self) {
        self.cache = None;
    }
}

/// Descriptor binding a PHV pseudo-field to a register aggregate, so
/// stateful predicates (`avg(price) > 50`) can be matched by ordinary
/// tables: before the table chain runs, the executor materializes each
/// aggregate into its pseudo-field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateBinding {
    /// PHV slot the aggregate is written into.
    pub dst: crate::phv::PhvField,
    /// Register slot read.
    pub slot: usize,
    /// Aggregate kind.
    pub agg: AggKind,
}

/// A complete data-plane program instance.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// PHV layout shared by parser and tables.
    pub layout: PhvLayout,
    /// Parser program.
    pub parser: ParserSpec,
    /// Match-action tables, applied in order.
    pub tables: Vec<Table>,
    /// Multicast groups.
    pub mcast: MulticastTable,
    /// Register file backing `@query_counter` state.
    pub registers: RegisterFile,
    /// Aggregate → pseudo-field bindings evaluated before the tables.
    pub state_bindings: Vec<StateBinding>,
    /// Metadata initialization applied to every message PHV before the
    /// table chain (e.g. the BDD entry state, which is nonzero after
    /// incremental recompilations).
    pub init_fields: Vec<(crate::phv::PhvField, u64)>,
    /// Scratch buffers, counters and the prepared hoisting plan.
    pub exec: ExecState,
}

/// Runs the prepared table chain on one message PHV, appending matched
/// ports to `ports`. Free function so the caller can hold disjoint
/// borrows of the pipeline's fields: `ops` stays a borrow of `tables`
/// (no per-table clone) while `phv` and `registers` are mutated.
///
/// Returns `(dropped, hit_mask)`: whether any matching rule dropped,
/// and a bitmask with bit `i` set when table `i` hit a non-default
/// entry (tables ≥ 64 are not recorded — the decision cache, the only
/// mask consumer, refuses such chains).
fn eval_tables(
    tables: &[Table],
    mcast: &MulticastTable,
    registers: &mut RegisterFile,
    phv: &mut Phv,
    now_us: u64,
    ports: &mut Vec<PortId>,
    stats: &mut ExecStats,
) -> Result<(bool, u64), PipelineError> {
    let mut dropped = false;
    let mut hit_mask = 0u64;
    for (ti, t) in tables.iter().enumerate() {
        let ops: &[ActionOp] = match t.lookup_prepared(phv) {
            Some(e) => {
                stats.table_hits[ti] += 1;
                if ti < 64 {
                    hit_mask |= 1 << ti;
                }
                &e.ops
            }
            None => {
                stats.table_misses[ti] += 1;
                &t.default_ops
            }
        };
        for &op in ops {
            match op {
                ActionOp::SetField(f, v) => phv.set(f, v),
                ActionOp::Forward(p) => ports.push(p),
                ActionOp::Multicast(g) => {
                    let members = mcast.ports(g).ok_or(PipelineError::UnknownGroup(g.0))?;
                    ports.extend_from_slice(members);
                }
                ActionOp::Drop => dropped = true,
                ActionOp::Register { slot, op } => {
                    let res = match op {
                        RegOp::Increment => registers.increment(slot, now_us),
                        RegOp::Observe(f) => registers.observe(slot, phv.get_or_zero(f), now_us),
                        RegOp::SetConst(v) => registers.set(slot, v, now_us),
                        RegOp::SetField(f) => registers.set(slot, phv.get_or_zero(f), now_us),
                    };
                    res.map_err(PipelineError::RegisterOutOfRange)?;
                }
            }
        }
    }
    Ok((dropped, hit_mask))
}

/// The per-packet hot path over split borrows: the immutable compiled
/// program (`layout` … `init_fields`) on one side, the mutable
/// per-shard execution state (`registers`, `exec`) on the other. Free
/// function so [`Pipeline::process_batch`] (owning both) and
/// [`Pipeline::process_batch_shared`] (program behind an `Arc`, state
/// in a [`ShardCtx`]) run byte-identical code.
#[allow(clippy::too_many_arguments)]
fn process_packet(
    layout: &PhvLayout,
    parser: &ParserSpec,
    tables: &[Table],
    mcast: &MulticastTable,
    state_bindings: &[StateBinding],
    init_fields: &[(PhvField, u64)],
    registers: &mut RegisterFile,
    exec: &mut ExecState,
    packet: &[u8],
    now_us: u64,
    decision: &mut ForwardDecision,
) -> Result<(), PipelineError> {
    let ExecState {
        stats,
        msgs,
        work,
        hoist,
        hoist_vals,
        telemetry,
        cache,
    } = exec;

    // Sampled stage timing: `tick()` advances the per-shard packet
    // sequence and selects every `2^sample_shift`-th packet. Only
    // sampled packets pay the per-stage `Instant` reads; with
    // telemetry disabled this is a single `None` branch.
    let sampled = match telemetry.as_deref_mut() {
        Some(t) => t.tick(),
        None => false,
    };
    let t_start = if sampled { Some(Instant::now()) } else { None };

    msgs.clear();
    if let Err(e) = parser.parse_into(layout, packet, work, msgs) {
        // Parse-class failures are properties of the *packet*, not
        // the program: total behavior is a typed drop decision, so
        // one garbage frame can never abort a batch or wedge a
        // worker. Config-class errors still propagate.
        let Some(reason) = ParseDrop::classify(&e) else {
            return Err(e);
        };
        decision.messages = 0;
        decision.drop_reason = Some(reason);
        stats.packets += 1;
        stats.dropped_packets += 1;
        stats.count_parse_drop(reason);
        if let (Some(start), Some(t)) = (t_start, telemetry.as_deref_mut()) {
            t.record_parse_only(elapsed_ns(start));
        }
        return Ok(());
    }
    let t_parsed = t_start.map(|_| Instant::now());
    decision.messages = msgs.len();

    // Message-invariant aggregates: read once per packet. Register
    // reads are idempotent at a fixed `now_us` (the window roll is
    // aligned to the timestamp), so this is decision-identical to
    // re-reading per message as long as no table action writes the
    // slot — exactly the condition `hoist` encodes.
    hoist_vals.clear();
    for (b, &h) in state_bindings.iter().zip(hoist.iter()) {
        let v = if h {
            registers
                .read(b.slot, b.agg, now_us)
                .map_err(PipelineError::RegisterOutOfRange)?
        } else {
            0
        };
        hoist_vals.push(v);
    }

    for mi in 0..msgs.len() {
        let phv = msgs.get_mut(mi);
        for &(f, v) in init_fields.iter() {
            phv.set(f, v);
        }
        for (i, b) in state_bindings.iter().enumerate() {
            let v = if hoist[i] {
                hoist_vals[i]
            } else {
                registers
                    .read(b.slot, b.agg, now_us)
                    .map_err(PipelineError::RegisterOutOfRange)?
            };
            phv.set(b.dst, v);
        }
        let before = decision.ports.len();
        // An explicit drop() wins only if nothing forwards: per §2
        // all matching rules' actions execute, and forwarding to
        // *some* subscriber must not be vetoed by an unrelated drop
        // rule. A drop-only message simply contributes no ports.
        match cache.as_deref_mut() {
            Some(c) => {
                // The key is read before the chain runs: a mid-chain
                // `SetField` may overwrite the key field, but the
                // memoized decision is keyed on the *initial* value.
                let key = phv.get_or_zero(c.key_field());
                if let Some(mask) = c.lookup(key, &mut decision.ports) {
                    // Replay the per-table hit/miss counters so the
                    // cached path is counter-identical to evaluation.
                    for ti in 0..tables.len() {
                        if (mask >> ti) & 1 == 1 {
                            stats.table_hits[ti] += 1;
                        } else {
                            stats.table_misses[ti] += 1;
                        }
                    }
                } else {
                    let (_dropped, mask) = eval_tables(
                        tables,
                        mcast,
                        registers,
                        phv,
                        now_us,
                        &mut decision.ports,
                        stats,
                    )?;
                    c.insert(key, &decision.ports[before..], mask);
                }
            }
            None => {
                let _ = eval_tables(
                    tables,
                    mcast,
                    registers,
                    phv,
                    now_us,
                    &mut decision.ports,
                    stats,
                )?;
            }
        }
        if decision.ports.len() > before {
            decision.matched_messages += 1;
        }
    }
    let t_matched = t_start.map(|_| Instant::now());
    // One packet-level sort+dedup subsumes the per-message merge the
    // executor used to do (the union of per-message port sets is
    // insensitive to inner ordering/duplication).
    decision.ports.sort_unstable();
    decision.ports.dedup();
    if let (Some(start), Some(parsed), Some(matched), Some(t)) =
        (t_start, t_parsed, t_matched, telemetry.as_deref_mut())
    {
        // parse = wire bytes → message PHVs; match = hoisted register
        // reads + table evaluation over every message (including
        // multicast group expansion); mcast = the final port-set
        // union (sort + dedup) resolving replication.
        t.record_stages(
            ns_between(start, parsed),
            ns_between(parsed, matched),
            elapsed_ns(matched),
        );
    }

    stats.packets += 1;
    stats.messages += decision.messages as u64;
    stats.matched_messages += decision.matched_messages as u64;
    if decision.ports.is_empty() {
        stats.dropped_packets += 1;
    } else {
        stats.forwarded_packets += 1;
    }
    Ok(())
}

/// Per-worker mutable execution state for running a *shared* compiled
/// program: the register file (shard-local stateful memory) plus the
/// scratch/counter/telemetry/cache state. Engine workers hold one
/// `ShardCtx` and an `Arc<Pipeline>` instead of cloning the whole
/// program — tables and parser (the bulk of a compiled program) are
/// shared immutably across every worker.
#[derive(Debug, Clone, Default)]
pub struct ShardCtx {
    /// Shard-local register file (`@query_counter` state).
    pub registers: RegisterFile,
    /// Scratch buffers, counters, telemetry and decision cache.
    pub exec: ExecState,
}

impl ShardCtx {
    /// Re-targets this context at a newly published program generation
    /// (the RCU adoption path): registers are re-shaped to the new
    /// program's layout with windowed state carried over, the per-table
    /// counter vectors are resized, the hoisting plan is copied, and
    /// every memoized decision is invalidated — the generation bump is
    /// the cache's invalidation signal. Telemetry and cumulative
    /// counters (including cache hit/miss totals) survive adoption, and
    /// the cache's slot storage is reused, so adopting allocates only
    /// for the register clone.
    ///
    /// `program` must be prepared (the engine prepares before every
    /// publish).
    pub fn adopt(&mut self, program: &Pipeline) {
        let old = std::mem::replace(&mut self.registers, program.registers.clone());
        self.registers.carry_from(&old);
        let n = program.tables.len();
        self.exec.stats.table_hits.resize(n, 0);
        self.exec.stats.table_misses.resize(n, 0);
        self.exec.hoist.clear();
        self.exec.hoist.extend_from_slice(&program.exec.hoist);
        let keep = self
            .exec
            .cache
            .as_deref()
            .map(|c| program.cacheable_on(c.key_field()));
        match keep {
            Some(true) => {
                if let Some(c) = self.exec.cache.as_deref_mut() {
                    c.invalidate_all();
                }
            }
            // The new generation is not a pure function of the key
            // field any more (e.g. a stateful rule appeared): caching
            // it would be unsound, so the cache is dropped.
            Some(false) => self.exec.cache = None,
            None => {}
        }
    }
}

/// Nanoseconds since `start`, saturating at `u64::MAX`.
#[inline]
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Nanoseconds from `start` to `end` (0 if the clock stepped back).
#[inline]
fn ns_between(start: Instant, end: Instant) -> u64 {
    u64::try_from(end.saturating_duration_since(start).as_nanos()).unwrap_or(u64::MAX)
}

impl Pipeline {
    /// Prepares the pipeline for (batched) execution: builds every
    /// table's lookup index, sizes the per-table counters, and computes
    /// which state bindings can be hoisted out of the per-message loop
    /// (those whose register slot no table action writes). Idempotent
    /// and cheap when nothing changed; called automatically by the
    /// processing entry points.
    pub fn prepare(&mut self) {
        let up_to_date = self.tables.iter().all(|t| t.is_prepared())
            && self.exec.hoist.len() == self.state_bindings.len()
            && self.exec.stats.table_hits.len() == self.tables.len();
        if up_to_date {
            return;
        }
        for t in &mut self.tables {
            t.prepare();
        }
        let mut written: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for t in &self.tables {
            for ops in t
                .entries()
                .map(|e| &e.ops)
                .chain(std::iter::once(&t.default_ops))
            {
                for op in ops {
                    if let ActionOp::Register { slot, .. } = op {
                        written.insert(*slot);
                    }
                }
            }
        }
        self.exec.hoist = self
            .state_bindings
            .iter()
            .map(|b| !written.contains(&b.slot))
            .collect();
        let n = self.tables.len();
        self.exec.stats.table_hits.resize(n, 0);
        self.exec.stats.table_misses.resize(n, 0);
        // Something changed (a table was mutated, or the chain was
        // re-shaped): memoized decisions are stale. Re-prove
        // cacheability against the new program — splices can introduce
        // ops that make the chain key-impure.
        let keep = self
            .exec
            .cache
            .as_deref()
            .map(|c| self.cacheable_on(c.key_field()));
        match keep {
            Some(true) => {
                if let Some(c) = self.exec.cache.as_deref_mut() {
                    c.invalidate_all();
                }
            }
            Some(false) => self.exec.cache = None,
            None => {}
        }
    }

    /// Whether the table chain's per-message decision is a pure
    /// function of `key_field`'s initial value — the soundness
    /// condition for the decision cache (see [`crate::cache`]):
    /// no register ops, at most 64 tables, no state binding feeding a
    /// table key (or the cache key itself — a binding's value comes
    /// from a register read, so a keyed binding makes the decision
    /// depend on traffic history, while an un-keyed one is
    /// decision-inert and safe to skip on a hit), and every table key
    /// field is either the cache key itself, message-invariant (an
    /// `init_fields` constant overwrites it before the chain), or
    /// never written by the parser (its pre-chain value is identical
    /// for every message).
    ///
    /// Note the spec-level `@query_*` declarations always compile to
    /// state bindings, even when no active rule consumes them — that
    /// is exactly the un-keyed-binding case, so pure fan-out programs
    /// stay cacheable.
    pub fn cacheable_on(&self, key_field: PhvField) -> bool {
        if self.tables.len() > 64 {
            return false;
        }
        for t in &self.tables {
            for ops in t
                .entries()
                .map(|e| &e.ops)
                .chain(std::iter::once(&t.default_ops))
            {
                if ops.iter().any(|op| matches!(op, ActionOp::Register { .. })) {
                    return false;
                }
            }
        }
        let binding_dsts: std::collections::HashSet<u32> =
            self.state_bindings.iter().map(|b| b.dst.0).collect();
        if binding_dsts.contains(&key_field.0) {
            // A binding overwrites the cache key between parse and
            // match: the key the cache indexed on is not the value the
            // tables saw.
            return false;
        }
        let extracted: std::collections::HashSet<u32> = self
            .parser
            .states
            .iter()
            .flat_map(|s| s.extracts.iter().map(|e| e.dst.0))
            .collect();
        let inits: std::collections::HashSet<u32> =
            self.init_fields.iter().map(|&(f, _)| f.0).collect();
        self.tables.iter().all(|t| {
            t.keys.iter().all(|k| {
                if binding_dsts.contains(&k.field.0) {
                    // Bindings run after init_fields, so a keyed
                    // binding is state-dependent no matter what.
                    return false;
                }
                k.field == key_field
                    || inits.contains(&k.field.0)
                    || !extracted.contains(&k.field.0)
            })
        })
    }

    /// Arms the decision cache keyed on `key_field` with `2^shift`
    /// slots — if the program is provably cacheable on that field
    /// (otherwise any existing cache is disarmed and `false` is
    /// returned; matching stays correct either way, just uncached).
    /// The slot storage allocates here, never on the packet path.
    pub fn enable_decision_cache(&mut self, key_field: PhvField, shift: u32) -> bool {
        self.prepare();
        if self.cacheable_on(key_field) {
            self.exec.cache = Some(Box::new(DecisionCache::new(key_field, shift)));
            true
        } else {
            self.exec.cache = None;
            false
        }
    }

    /// The decision cache, if armed.
    pub fn decision_cache(&self) -> Option<&DecisionCache> {
        self.exec.decision_cache()
    }

    /// Enables data-plane telemetry on this pipeline instance, sampling
    /// every `2^sample_shift`-th packet for per-stage timing. The one
    /// `Box` allocation happens here, not on the packet path. Resets
    /// any previously collected telemetry.
    pub fn enable_telemetry(&mut self, sample_shift: u32) {
        self.exec.enable_telemetry(sample_shift);
    }

    /// The telemetry collected so far, if enabled.
    pub fn telemetry(&self) -> Option<&DataPlaneTelemetry> {
        self.exec.telemetry()
    }

    /// Detaches the telemetry record (disabling further collection).
    /// The engine uses this to carry telemetry across RCU pipeline
    /// swaps and to harvest it at worker exit.
    pub fn take_telemetry(&mut self) -> Option<Box<DataPlaneTelemetry>> {
        self.exec.take_telemetry()
    }

    /// Re-attaches a telemetry record (the inverse of
    /// [`Pipeline::take_telemetry`]).
    pub fn set_telemetry(&mut self, t: Option<Box<DataPlaneTelemetry>>) {
        self.exec.set_telemetry(t);
    }

    /// Builds a fresh per-worker execution context for running *this*
    /// program via [`Pipeline::process_batch_shared`]. The pipeline
    /// must be prepared (this method prepares it); the context clones
    /// the register file, the sized counter vectors, the hoisting plan
    /// and — when armed — an empty decision cache, so the first batch
    /// through the context already runs the allocation-free path.
    pub fn new_shard_ctx(&mut self) -> ShardCtx {
        self.prepare();
        ShardCtx {
            registers: self.registers.clone(),
            exec: self.exec.clone(),
        }
    }

    /// The shared-program batch path: identical to
    /// [`Pipeline::process_batch`], but the compiled program is only
    /// read (`&self`, typically through an `Arc`) and all mutable state
    /// lives in `ctx`. Requires a prepared pipeline (`ctx` came from
    /// [`Pipeline::new_shard_ctx`], which prepares) — the engine
    /// prepares before every publish, so workers never observe an
    /// unprepared program.
    pub fn process_batch_shared<'a, I>(
        &self,
        ctx: &mut ShardCtx,
        packets: I,
        out: &mut DecisionBuf,
    ) -> Result<(), PipelineError>
    where
        I: IntoIterator<Item = (&'a [u8], u64)>,
    {
        let batch_start = ctx.exec.telemetry.as_ref().map(|_| Instant::now());
        for (bytes, now_us) in packets {
            let slot = out.next_slot();
            process_packet(
                &self.layout,
                &self.parser,
                &self.tables,
                &self.mcast,
                &self.state_bindings,
                &self.init_fields,
                &mut ctx.registers,
                &mut ctx.exec,
                bytes,
                now_us,
                slot,
            )?;
        }
        if let (Some(start), Some(t)) = (batch_start, ctx.exec.telemetry.as_deref_mut()) {
            t.record_batch(elapsed_ns(start));
        }
        Ok(())
    }

    /// Processes one packet arriving at `now_us`, returning its
    /// forwarding decision.
    pub fn process(
        &mut self,
        packet: &[u8],
        now_us: u64,
    ) -> Result<ForwardDecision, PipelineError> {
        self.prepare();
        let mut decision = ForwardDecision::default();
        self.process_one(packet, now_us, &mut decision)?;
        Ok(decision)
    }

    /// Processes a batch of `(packet, now_us)` pairs, appending one
    /// decision per packet to `out` (in order; the caller clears `out`).
    ///
    /// This is the allocation-free hot path: parsing reuses the
    /// pipeline's PHV pool, lookups borrow table entries instead of
    /// cloning action lists, and `out` recycles its decisions' port
    /// vectors. After a warmup batch has sized every buffer,
    /// steady-state processing performs zero heap allocations per
    /// packet. Decisions are identical to calling [`Pipeline::process`]
    /// per packet.
    ///
    /// On error, decisions for the packets preceding the failing one
    /// remain in `out` (the failing packet's slot holds a partial
    /// decision).
    pub fn process_batch<'a, I>(
        &mut self,
        packets: I,
        out: &mut DecisionBuf,
    ) -> Result<(), PipelineError>
    where
        I: IntoIterator<Item = (&'a [u8], u64)>,
    {
        self.prepare();
        // Whole-batch latency costs two clock reads per batch (amortized
        // over `batch_packets` packets); per-stage timing is sampled
        // inside `process_one`.
        let batch_start = self.exec.telemetry.as_ref().map(|_| Instant::now());
        for (bytes, now_us) in packets {
            let slot = out.next_slot();
            self.process_one(bytes, now_us, slot)?;
        }
        if let (Some(start), Some(t)) = (batch_start, self.exec.telemetry.as_deref_mut()) {
            t.record_batch(elapsed_ns(start));
        }
        Ok(())
    }

    /// Core per-packet path; assumes [`Pipeline::prepare`] has run.
    fn process_one(
        &mut self,
        packet: &[u8],
        now_us: u64,
        decision: &mut ForwardDecision,
    ) -> Result<(), PipelineError> {
        process_packet(
            &self.layout,
            &self.parser,
            &self.tables,
            &self.mcast,
            &self.state_bindings,
            &self.init_fields,
            &mut self.registers,
            &mut self.exec,
            packet,
            now_us,
            decision,
        )
    }

    /// Runs the match-action chain on a single message PHV.
    pub fn evaluate_message(
        &mut self,
        phv: &mut Phv,
        now_us: u64,
    ) -> Result<Vec<PortId>, PipelineError> {
        self.prepare();
        let Pipeline {
            tables,
            mcast,
            registers,
            state_bindings,
            init_fields,
            exec,
            ..
        } = self;
        for &(f, v) in init_fields.iter() {
            phv.set(f, v);
        }
        // Materialize stateful aggregates into their pseudo-fields.
        for b in state_bindings.iter() {
            let v = registers
                .read(b.slot, b.agg, now_us)
                .map_err(PipelineError::RegisterOutOfRange)?;
            phv.set(b.dst, v);
        }
        let mut ports: Vec<PortId> = Vec::new();
        let (dropped, _mask) = eval_tables(
            tables,
            mcast,
            registers,
            phv,
            now_us,
            &mut ports,
            &mut exec.stats,
        )?;
        if dropped && ports.is_empty() {
            return Ok(Vec::new());
        }
        ports.sort_unstable();
        ports.dedup();
        Ok(ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multicast::GroupId;
    use crate::parser::{Extract, ParseState, ParserSpec, StateId, Transition};
    use crate::phv::PhvLayout;
    use crate::table::{Entry, Key, MatchKind, MatchValue};

    /// A tiny program: parse one byte `sym`; table forwards sym==1 to
    /// port 1, sym==2 to multicast {2,3}; counts matches in a register.
    fn tiny_pipeline() -> Pipeline {
        let mut layout = PhvLayout::new();
        let sym = layout.add("sym", 8);
        let parser = ParserSpec::new(
            vec![ParseState {
                name: "start".into(),
                extracts: vec![Extract {
                    dst: sym,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: false,
                next: Transition::Accept,
            }],
            StateId(0),
        );
        let mut table = Table::new(
            "leaf",
            vec![Key {
                field: sym,
                kind: MatchKind::Exact,
                bits: 8,
            }],
            vec![],
        );
        table
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(1)],
                ops: vec![
                    ActionOp::Forward(PortId(1)),
                    ActionOp::Register {
                        slot: 0,
                        op: RegOp::Increment,
                    },
                ],
            })
            .unwrap();
        table
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(2)],
                ops: vec![ActionOp::Multicast(GroupId(0))],
            })
            .unwrap();
        let mut mcast = MulticastTable::new();
        mcast.install(GroupId(0), vec![PortId(2), PortId(3)]);
        let mut registers = RegisterFile::new();
        registers.allocate(0);
        Pipeline {
            layout,
            parser,
            tables: vec![table],
            mcast,
            registers,
            state_bindings: vec![],
            init_fields: vec![],
            exec: ExecState::default(),
        }
    }

    #[test]
    fn unicast_and_multicast_forwarding() {
        let mut p = tiny_pipeline();
        let d = p.process(&[1], 0).unwrap();
        assert_eq!(d.ports, vec![PortId(1)]);
        assert_eq!((d.messages, d.matched_messages), (1, 1));
        let d = p.process(&[2], 0).unwrap();
        assert_eq!(d.ports, vec![PortId(2), PortId(3)]);
    }

    #[test]
    fn miss_means_drop() {
        let mut p = tiny_pipeline();
        let d = p.process(&[9], 0).unwrap();
        assert!(d.dropped());
        assert_eq!(d.matched_messages, 0);
    }

    #[test]
    fn register_side_effects_accumulate() {
        let mut p = tiny_pipeline();
        p.process(&[1], 0).unwrap();
        p.process(&[1], 1).unwrap();
        p.process(&[9], 2).unwrap();
        assert_eq!(p.registers.read(0, AggKind::Count, 3).unwrap(), 2);
    }

    #[test]
    fn unknown_group_is_an_error() {
        let mut p = tiny_pipeline();
        p.tables[0]
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(7)],
                ops: vec![ActionOp::Multicast(GroupId(99))],
            })
            .unwrap();
        assert_eq!(
            p.process(&[7], 0).unwrap_err(),
            PipelineError::UnknownGroup(99)
        );
    }

    #[test]
    fn state_binding_materializes_aggregate() {
        let mut p = tiny_pipeline();
        let agg_field = p.layout.add("avg_x", 64);
        // New table matching on the aggregate pseudo-field.
        let mut t = Table::new(
            "state",
            vec![Key {
                field: agg_field,
                kind: MatchKind::Range,
                bits: 64,
            }],
            vec![],
        );
        t.add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Range {
                lo: 2,
                hi: u64::MAX,
            }],
            ops: vec![ActionOp::Forward(PortId(9))],
        })
        .unwrap();
        p.tables.push(t);
        p.state_bindings.push(StateBinding {
            dst: agg_field,
            slot: 0,
            agg: AggKind::Count,
        });

        // First two packets: count 0 then 1 at evaluation time → no port 9.
        assert_eq!(p.process(&[1], 0).unwrap().ports, vec![PortId(1)]);
        assert_eq!(p.process(&[1], 1).unwrap().ports, vec![PortId(1)]);
        // Third packet: count reads 2 → port 9 too.
        assert_eq!(
            p.process(&[1], 2).unwrap().ports,
            vec![PortId(1), PortId(9)]
        );
    }

    #[test]
    fn multi_message_packets_union_ports() {
        let mut layout = PhvLayout::new();
        let sym = layout.add("sym", 8);
        let parser = ParserSpec::new(
            vec![ParseState {
                name: "msg".into(),
                extracts: vec![Extract {
                    dst: sym,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: true,
                next: Transition::SelectRemaining { more: StateId(0) },
            }],
            StateId(0),
        );
        let mut p = tiny_pipeline();
        p.parser = parser;
        p.layout = layout;
        let d = p.process(&[1, 2, 9], 0).unwrap();
        assert_eq!(d.ports, vec![PortId(1), PortId(2), PortId(3)]);
        assert_eq!(d.messages, 3);
        assert_eq!(d.matched_messages, 2);
    }

    #[test]
    fn truncated_packet_is_a_typed_drop_not_an_error() {
        let mut p = tiny_pipeline();
        let d = p.process(&[], 0).unwrap();
        assert!(d.dropped());
        assert!(d.malformed());
        assert_eq!(d.drop_reason, Some(ParseDrop::Underflow));
        assert_eq!(d.messages, 0);
        assert_eq!(p.exec.stats.packets, 1);
        assert_eq!(p.exec.stats.dropped_packets, 1);
        assert_eq!(p.exec.stats.drop_underflow, 1);
        assert_eq!(p.exec.stats.malformed_packets(), 1);
        // Counters reconcile: packets == forwarded + dropped.
        let s = &p.exec.stats;
        assert_eq!(s.packets, s.forwarded_packets + s.dropped_packets);
    }

    #[test]
    fn malformed_packet_does_not_poison_a_batch() {
        let mut p = tiny_pipeline();
        let packets: Vec<(&[u8], u64)> = vec![(&[1][..], 0), (&[][..], 1), (&[2][..], 2)];
        let mut out = DecisionBuf::default();
        p.process_batch(packets, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.as_slice()[0].ports, vec![PortId(1)]);
        assert_eq!(out.as_slice()[1].drop_reason, Some(ParseDrop::Underflow));
        assert_eq!(out.as_slice()[2].ports, vec![PortId(2), PortId(3)]);
        // A recycled slot must not leak a stale drop reason.
        out.clear();
        let packets: Vec<(&[u8], u64)> = vec![(&[1][..], 3), (&[1][..], 4), (&[1][..], 5)];
        p.process_batch(packets, &mut out).unwrap();
        assert!(out.iter().all(|d| d.drop_reason.is_none()));
    }

    #[test]
    fn telemetry_records_batches_stages_and_parse_drops() {
        let mut p = tiny_pipeline();
        p.enable_telemetry(0); // sample every packet
        let packets: Vec<(&[u8], u64)> = vec![(&[1][..], 0), (&[][..], 1), (&[2][..], 2)];
        let mut out = DecisionBuf::default();
        p.process_batch(packets, &mut out).unwrap();
        let t = p.telemetry().unwrap();
        assert_eq!(t.batches, 1);
        assert_eq!(t.sampled_packets, 3);
        assert_eq!(t.batch_ns.count(), 1);
        // All three packets parse (the empty one records parse-only).
        assert_eq!(t.parse_ns.count(), 3);
        assert_eq!(t.match_ns.count(), 2);
        assert_eq!(t.mcast_ns.count(), 2);
        // Decisions are unchanged by instrumentation.
        assert_eq!(out.as_slice()[0].ports, vec![PortId(1)]);
        assert_eq!(out.as_slice()[2].ports, vec![PortId(2), PortId(3)]);
        // take/set round-trips the record for RCU adoption.
        let boxed = p.take_telemetry();
        assert!(p.telemetry().is_none());
        p.set_telemetry(boxed);
        assert_eq!(p.telemetry().unwrap().sampled_packets, 3);
    }

    /// Like `tiny_pipeline` but with no register ops, so the chain is a
    /// pure function of `sym` and the decision cache can arm. Parses a
    /// stream of one-byte messages (multi-message packets).
    fn cacheable_pipeline() -> Pipeline {
        let mut p = tiny_pipeline();
        let mut layout = PhvLayout::new();
        let sym = layout.add("sym", 8);
        p.parser = ParserSpec::new(
            vec![ParseState {
                name: "msg".into(),
                extracts: vec![Extract {
                    dst: sym,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: true,
                next: Transition::SelectRemaining { more: StateId(0) },
            }],
            StateId(0),
        );
        p.layout = layout;
        // Drop the Register op from the sym==1 entry.
        let mut t = Table::new(
            "leaf",
            vec![Key {
                field: sym,
                kind: MatchKind::Exact,
                bits: 8,
            }],
            vec![],
        );
        t.add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(1)],
            ops: vec![ActionOp::Forward(PortId(1))],
        })
        .unwrap();
        t.add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(2)],
            ops: vec![ActionOp::Multicast(GroupId(0))],
        })
        .unwrap();
        p.tables = vec![t];
        p
    }

    #[test]
    fn uncacheable_program_refuses_cache() {
        // tiny_pipeline has a Register op: caching would skip a
        // side effect, so arming must fail and disarm.
        let mut p = tiny_pipeline();
        let sym = p.layout.get("sym").unwrap();
        assert!(!p.enable_decision_cache(sym, 4));
        assert!(p.decision_cache().is_none());
        // Decisions still correct, just uncached.
        assert_eq!(p.process(&[1], 0).unwrap().ports, vec![PortId(1)]);
    }

    #[test]
    fn inert_binding_is_cacheable_keyed_binding_is_not() {
        // A state binding whose destination no table keys on is
        // decision-inert: the compiled spec always carries the
        // `@query_*` bindings, so pure fan-out programs must still
        // cache. The moment a table keys on the binding's destination,
        // the decision depends on register history and caching must be
        // refused.
        let mut p = cacheable_pipeline();
        let agg = p.layout.add("agg", 64);
        let slot = p.registers.allocate(0);
        p.state_bindings.push(StateBinding {
            dst: agg,
            slot,
            agg: AggKind::Count,
        });
        let sym = p.layout.get("sym").unwrap();
        assert!(p.cacheable_on(sym), "un-keyed binding must not block");
        assert!(p.enable_decision_cache(sym, 4));

        // Key a table on the binding's destination: refused.
        p.tables[0].keys.push(Key {
            field: agg,
            kind: MatchKind::Exact,
            bits: 64,
        });
        assert!(!p.cacheable_on(sym));

        // A binding that overwrites the cache key itself: refused.
        let mut q = cacheable_pipeline();
        let qslot = q.registers.allocate(0);
        let qsym = q.layout.get("sym").unwrap();
        q.state_bindings.push(StateBinding {
            dst: qsym,
            slot: qslot,
            agg: AggKind::Count,
        });
        assert!(!q.cacheable_on(qsym));
    }

    #[test]
    fn cached_decisions_and_counters_match_uncached() {
        let mut cached = cacheable_pipeline();
        let mut plain = cacheable_pipeline();
        let sym = cached.layout.get("sym").unwrap();
        assert!(cached.enable_decision_cache(sym, 4));

        let feed: Vec<Vec<u8>> = vec![
            vec![1, 2, 9],
            vec![2, 2, 1],
            vec![9],
            vec![1],
            vec![1, 1, 1, 2],
        ];
        for (i, pkt) in feed.iter().enumerate() {
            let a = cached.process(pkt, i as u64).unwrap();
            let b = plain.process(pkt, i as u64).unwrap();
            assert_eq!(a, b, "packet {i}");
        }
        assert_eq!(cached.exec.stats, plain.exec.stats);
        let cs = cached.exec.cache_stats().unwrap();
        assert!(cs.hits > 0, "repeated symbols must hit: {cs:?}");
        assert_eq!(cs.hits + cs.misses, cached.exec.stats.messages);
    }

    #[test]
    fn table_mutation_invalidates_cache() {
        let mut p = cacheable_pipeline();
        let sym = p.layout.get("sym").unwrap();
        assert!(p.enable_decision_cache(sym, 4));
        // sym==9 misses: the cache memoizes the empty decision.
        assert!(p.process(&[9], 0).unwrap().dropped());
        assert!(p.process(&[9], 1).unwrap().dropped());
        assert_eq!(p.decision_cache().unwrap().stats.hits, 1);
        // Mutate the table: sym==9 now forwards to port 7. The
        // dirty-table prepare() must invalidate the memoized miss.
        p.tables[0]
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(9)],
                ops: vec![ActionOp::Forward(PortId(7))],
            })
            .unwrap();
        assert_eq!(p.process(&[9], 2).unwrap().ports, vec![PortId(7)]);
    }

    #[test]
    fn shared_batch_path_matches_owned_batch_path() {
        let mut owned = cacheable_pipeline();
        let mut shared = cacheable_pipeline();
        let sym = shared.layout.get("sym").unwrap();
        assert!(shared.enable_decision_cache(sym, 4));
        let mut ctx = shared.new_shard_ctx();

        let packets: Vec<(&[u8], u64)> = vec![
            (&[1, 2][..], 0),
            (&[][..], 1),
            (&[2, 9][..], 2),
            (&[1][..], 3),
        ];
        let mut out_a = DecisionBuf::default();
        let mut out_b = DecisionBuf::default();
        owned.process_batch(packets.clone(), &mut out_a).unwrap();
        shared
            .process_batch_shared(&mut ctx, packets, &mut out_b)
            .unwrap();
        assert_eq!(out_a.as_slice(), out_b.as_slice());
        assert_eq!(owned.exec.stats, ctx.exec.stats);
        // The pipeline's own exec state is untouched by the shared path.
        assert_eq!(shared.exec.stats.packets, 0);
    }

    #[test]
    fn adopt_invalidates_cache_and_resizes_counters() {
        let mut v1 = cacheable_pipeline();
        let sym = v1.layout.get("sym").unwrap();
        assert!(v1.enable_decision_cache(sym, 4));
        let mut ctx = v1.new_shard_ctx();
        let mut out = DecisionBuf::default();
        v1.prepare();
        v1.process_batch_shared(&mut ctx, vec![(&[1][..], 0), (&[1][..], 1)], &mut out)
            .unwrap();
        assert_eq!(ctx.exec.cache_stats().unwrap().hits, 1);

        // New generation: sym==1 rerouted to port 5, and an extra table.
        let mut v2 = cacheable_pipeline();
        let sym2 = v2.layout.get("sym").unwrap();
        let mut extra = Table::new(
            "extra",
            vec![Key {
                field: sym2,
                kind: MatchKind::Exact,
                bits: 8,
            }],
            vec![],
        );
        extra
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(1)],
                ops: vec![ActionOp::Forward(PortId(5))],
            })
            .unwrap();
        v2.tables.push(extra);
        v2.prepare();
        ctx.adopt(&v2);

        out.clear();
        v2.process_batch_shared(&mut ctx, vec![(&[1][..], 2)], &mut out)
            .unwrap();
        assert_eq!(out.as_slice()[0].ports, vec![PortId(1), PortId(5)]);
        // Counters survived adoption; the memoized v1 decision did not.
        let cs = ctx.exec.cache_stats().unwrap();
        assert_eq!((cs.hits, cs.misses), (1, 2));
        assert_eq!(ctx.exec.stats.table_hits.len(), 2);
    }

    #[test]
    fn drop_does_not_veto_forwarding() {
        let mut p = tiny_pipeline();
        p.tables[0]
            .add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Exact(1)],
                ops: vec![ActionOp::Drop],
            })
            .unwrap();
        // The first entry (insertion order) still forwards to port 1;
        // even if a drop rule also matched a different message, ports win.
        let d = p.process(&[1], 0).unwrap();
        assert_eq!(d.ports, vec![PortId(1)]);
    }
}
