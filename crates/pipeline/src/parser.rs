//! Programmable parser engine.
//!
//! A parse graph in the P4 style: states extract bit-ranges from the
//! packet into the PHV, advance a cursor, and select the next state on
//! a parsed field. Two extensions support the Camus use case:
//!
//! * **message emission** — a state flagged [`ParseState::emit`]
//!   snapshots the current PHV as one *application message*. MoldUDP
//!   packets carry many ITCH messages; the executor evaluates the
//!   filter pipeline once per emitted PHV and unions the forwarding
//!   decisions (§2: the switch executes the actions of all matching
//!   rules);
//! * **end-of-packet selection** — [`Transition::SelectRemaining`]
//!   branches on whether the cursor reached the end of the payload,
//!   which is how the per-message loop terminates.

use crate::bits::extract_bits;
use crate::error::PipelineError;
use crate::phv::{Phv, PhvBuf, PhvField, PhvLayout};

/// Index of a parse state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateId(pub u32);

/// A field extraction: copy `bits` bits at `bit_offset` (relative to
/// the cursor) into PHV slot `dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extract {
    /// Destination PHV slot.
    pub dst: PhvField,
    /// Offset from the current cursor, in bits.
    pub bit_offset: u32,
    /// Width in bits (1..=64).
    pub bits: u32,
}

/// Control transfer out of a parse state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transition {
    /// Parsing succeeded.
    Accept,
    /// Unconditional jump.
    Always(StateId),
    /// Branch on a PHV field parsed earlier (e.g. EtherType, IP proto,
    /// ITCH message type). Falls back to `default`; with no default, an
    /// unmatched value is a parse error.
    Select {
        /// Selector field.
        field: PhvField,
        /// (value, next-state) cases.
        cases: Vec<(u64, StateId)>,
        /// Default transition; `None` ⇒ error on no match.
        default: Option<StateId>,
    },
    /// Branch on cursor position: `Accept` when the cursor is at (or
    /// past) the end of the packet, otherwise continue at the given
    /// state. Terminates per-message loops.
    SelectRemaining {
        /// State to continue in while payload remains.
        more: StateId,
    },
}

/// One parser state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseState {
    /// Diagnostic name.
    pub name: String,
    /// Extractions performed on entry (offsets relative to the cursor).
    pub extracts: Vec<Extract>,
    /// Cursor advance after extraction, in bits.
    pub advance_bits: u32,
    /// Additional advance read from a PHV field, in *bytes* (for
    /// length-prefixed message blocks like MoldUDP64's; extract the
    /// length first, then advance past the payload).
    pub advance_bytes_from: Option<PhvField>,
    /// Snapshot the PHV as an application message after this state's
    /// extractions.
    pub emit: bool,
    /// Next-state logic.
    pub next: Transition,
}

/// A complete parse program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParserSpec {
    /// Parse states; index = [`StateId`].
    pub states: Vec<ParseState>,
    /// Entry state.
    pub start: StateId,
    /// Safety bound on state executions per packet (hardware parsers
    /// have a fixed maximum too).
    pub max_steps: usize,
}

impl ParserSpec {
    /// Builds a spec with the default step bound (4096).
    pub fn new(states: Vec<ParseState>, start: StateId) -> Self {
        ParserSpec {
            states,
            start,
            max_steps: 4096,
        }
    }

    /// Parses a packet, producing one PHV per emitted message.
    ///
    /// If *no state in the graph* has `emit` set, the final PHV at
    /// accept is the single message (ordinary single-header-stack
    /// programs). Graphs with emitting states never fall back: a packet
    /// whose blocks were all skipped yields zero messages, not a
    /// phantom PHV of unparsed fields.
    pub fn parse(&self, layout: &PhvLayout, bytes: &[u8]) -> Result<Vec<Phv>, PipelineError> {
        let mut work = layout.instantiate();
        let mut out = PhvBuf::default();
        self.parse_into(layout, bytes, &mut work, &mut out)?;
        Ok(out.into_vec())
    }

    /// Allocation-free variant of [`ParserSpec::parse`]: appends the
    /// emitted messages to `out` (which the caller clears), using `work`
    /// as the running PHV. Once `work` and `out` have warmed up to the
    /// packet shape, steady-state parsing performs no heap allocation.
    pub fn parse_into(
        &self,
        layout: &PhvLayout,
        bytes: &[u8],
        work: &mut Phv,
        out: &mut PhvBuf,
    ) -> Result<(), PipelineError> {
        if work.len() != layout.len() {
            *work = layout.instantiate();
        } else {
            work.reset();
        }
        let phv = work;
        let has_emitters = self.states.iter().any(|s| s.emit);
        let total_bits = (bytes.len() as u64) * 8;
        let start_len = out.len();
        let mut cursor: u64 = 0;
        let mut state_id = self.start;
        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > self.max_steps {
                return Err(PipelineError::ParseLoopBound);
            }
            let state = &self.states[state_id.0 as usize];
            for e in &state.extracts {
                let off = cursor + u64::from(e.bit_offset);
                let v = extract_bits(bytes, off, e.bits).ok_or_else(|| {
                    PipelineError::ParseUnderflow {
                        state: state.name.clone(),
                        missing_bits: ((off + u64::from(e.bits)).saturating_sub(total_bits)) as u32,
                    }
                })?;
                phv.set(e.dst, v);
            }
            cursor += u64::from(state.advance_bits);
            if let Some(f) = state.advance_bytes_from {
                cursor += phv.get_or_zero(f).saturating_mul(8);
            }
            if cursor > total_bits {
                return Err(PipelineError::ParseUnderflow {
                    state: state.name.clone(),
                    missing_bits: (cursor - total_bits) as u32,
                });
            }
            if state.emit {
                out.push_copy(phv);
            }
            match &state.next {
                Transition::Accept => {
                    if out.len() == start_len && !has_emitters {
                        out.push_copy(phv);
                    }
                    return Ok(());
                }
                Transition::Always(next) => state_id = *next,
                Transition::Select {
                    field,
                    cases,
                    default,
                } => {
                    let v = phv.get_or_zero(*field);
                    match cases.iter().find(|(c, _)| *c == v) {
                        Some((_, next)) => state_id = *next,
                        None => match default {
                            Some(next) => state_id = *next,
                            None => {
                                return Err(PipelineError::ParseNoTransition {
                                    state: state.name.clone(),
                                    value: v,
                                })
                            }
                        },
                    }
                }
                Transition::SelectRemaining { more } => {
                    if cursor >= total_bits {
                        if out.len() == start_len && !has_emitters {
                            out.push_copy(phv);
                        }
                        return Ok(());
                    }
                    state_id = *more;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Layout: a 1-byte tag, then either a 2-byte `a` (tag 1) or a
    /// 1-byte `b` (tag 2).
    fn tagged_layout() -> (PhvLayout, PhvField, PhvField, PhvField) {
        let mut l = PhvLayout::new();
        let tag = l.add("tag", 8);
        let a = l.add("a", 16);
        let b = l.add("b", 8);
        (l, tag, a, b)
    }

    fn tagged_parser(tag: PhvField, a: PhvField, b: PhvField) -> ParserSpec {
        ParserSpec::new(
            vec![
                ParseState {
                    name: "start".into(),
                    extracts: vec![Extract {
                        dst: tag,
                        bit_offset: 0,
                        bits: 8,
                    }],
                    advance_bits: 8,
                    advance_bytes_from: None,
                    emit: false,
                    next: Transition::Select {
                        field: tag,
                        cases: vec![(1, StateId(1)), (2, StateId(2))],
                        default: None,
                    },
                },
                ParseState {
                    name: "parse_a".into(),
                    extracts: vec![Extract {
                        dst: a,
                        bit_offset: 0,
                        bits: 16,
                    }],
                    advance_bits: 16,
                    advance_bytes_from: None,
                    emit: false,
                    next: Transition::Accept,
                },
                ParseState {
                    name: "parse_b".into(),
                    extracts: vec![Extract {
                        dst: b,
                        bit_offset: 0,
                        bits: 8,
                    }],
                    advance_bits: 8,
                    advance_bytes_from: None,
                    emit: false,
                    next: Transition::Accept,
                },
            ],
            StateId(0),
        )
    }

    #[test]
    fn selects_branch_by_tag() {
        let (l, tag, a, b) = tagged_layout();
        let p = tagged_parser(tag, a, b);
        let msgs = p.parse(&l, &[1, 0xab, 0xcd]).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].get(a), Some(0xabcd));
        assert_eq!(msgs[0].get(b), None);

        let msgs = p.parse(&l, &[2, 0x7f]).unwrap();
        assert_eq!(msgs[0].get(b), Some(0x7f));
        assert_eq!(msgs[0].get(a), None);
    }

    #[test]
    fn unknown_tag_is_parse_error() {
        let (l, tag, a, b) = tagged_layout();
        let p = tagged_parser(tag, a, b);
        let err = p.parse(&l, &[9]).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::ParseNoTransition { value: 9, .. }
        ));
    }

    #[test]
    fn short_packet_is_underflow() {
        let (l, tag, a, b) = tagged_layout();
        let p = tagged_parser(tag, a, b);
        let err = p.parse(&l, &[1, 0xab]).unwrap_err();
        assert!(matches!(err, PipelineError::ParseUnderflow { .. }));
    }

    #[test]
    fn message_loop_emits_per_message() {
        // Packet: count byte, then `count` 2-byte messages.
        let mut l = PhvLayout::new();
        let val = l.add("val", 16);
        let p = ParserSpec::new(
            vec![
                ParseState {
                    name: "hdr".into(),
                    extracts: vec![],
                    advance_bits: 8,
                    advance_bytes_from: None,
                    emit: false,
                    next: Transition::SelectRemaining { more: StateId(1) },
                },
                ParseState {
                    name: "msg".into(),
                    extracts: vec![Extract {
                        dst: val,
                        bit_offset: 0,
                        bits: 16,
                    }],
                    advance_bits: 16,
                    advance_bytes_from: None,
                    emit: true,
                    next: Transition::SelectRemaining { more: StateId(1) },
                },
            ],
            StateId(0),
        );
        let msgs = p
            .parse(&l, &[3, 0x00, 0x01, 0x00, 0x02, 0x00, 0x03])
            .unwrap();
        assert_eq!(msgs.len(), 3);
        let vals: Vec<u64> = msgs.iter().map(|m| m.get(val).unwrap()).collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn empty_message_loop_emits_nothing_extra() {
        let mut l = PhvLayout::new();
        let _val = l.add("val", 16);
        let p = ParserSpec::new(
            vec![ParseState {
                name: "hdr".into(),
                extracts: vec![],
                advance_bits: 8,
                advance_bytes_from: None,
                emit: false,
                next: Transition::SelectRemaining { more: StateId(0) },
            }],
            StateId(0),
        );
        // One header byte, no messages: the PHV itself is the message.
        let msgs = p.parse(&l, &[0]).unwrap();
        assert_eq!(msgs.len(), 1);
    }

    #[test]
    fn loop_bound_trips_on_no_advance() {
        let mut l = PhvLayout::new();
        let _ = l.add("x", 8);
        let p = ParserSpec::new(
            vec![ParseState {
                name: "spin".into(),
                extracts: vec![],
                advance_bits: 0,
                advance_bytes_from: None,
                emit: false,
                next: Transition::Always(StateId(0)),
            }],
            StateId(0),
        );
        assert_eq!(
            p.parse(&l, &[0, 1, 2]).unwrap_err(),
            PipelineError::ParseLoopBound
        );
    }

    #[test]
    fn length_prefixed_blocks_advance_by_field() {
        // Blocks of [len:1][payload:len]; extract the first payload byte
        // of each block as `v`.
        let mut l = PhvLayout::new();
        let len = l.add("len", 8);
        let v = l.add("v", 8);
        let p = ParserSpec::new(
            vec![ParseState {
                name: "block".into(),
                extracts: vec![
                    Extract {
                        dst: len,
                        bit_offset: 0,
                        bits: 8,
                    },
                    Extract {
                        dst: v,
                        bit_offset: 8,
                        bits: 8,
                    },
                ],
                advance_bits: 8,
                advance_bytes_from: Some(len),
                emit: true,
                next: Transition::SelectRemaining { more: StateId(0) },
            }],
            StateId(0),
        );
        // Two blocks: len=2 payload [0xaa, 0xbb]; len=1 payload [0xcc].
        let msgs = p.parse(&l, &[2, 0xaa, 0xbb, 1, 0xcc]).unwrap();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].get(v), Some(0xaa));
        assert_eq!(msgs[1].get(v), Some(0xcc));
    }

    #[test]
    fn length_prefix_running_past_end_is_underflow() {
        let mut l = PhvLayout::new();
        let len = l.add("len", 8);
        let p = ParserSpec::new(
            vec![ParseState {
                name: "block".into(),
                extracts: vec![Extract {
                    dst: len,
                    bit_offset: 0,
                    bits: 8,
                }],
                advance_bits: 8,
                advance_bytes_from: Some(len),
                emit: true,
                next: Transition::SelectRemaining { more: StateId(0) },
            }],
            StateId(0),
        );
        assert!(matches!(
            p.parse(&l, &[5, 0xaa]).unwrap_err(),
            PipelineError::ParseUnderflow { .. }
        ));
    }

    #[test]
    fn advance_past_end_is_underflow() {
        let mut l = PhvLayout::new();
        let _ = l.add("x", 8);
        let p = ParserSpec::new(
            vec![ParseState {
                name: "hdr".into(),
                extracts: vec![],
                advance_bits: 64,
                advance_bytes_from: None,
                emit: false,
                next: Transition::Accept,
            }],
            StateId(0),
        );
        assert!(matches!(
            p.parse(&l, &[0]).unwrap_err(),
            PipelineError::ParseUnderflow { .. }
        ));
    }
}
