//! Hot-symbol decision cache (the NetCache idea applied to our own
//! data plane).
//!
//! Symbol popularity in market feeds is Zipf: a handful of tickers
//! dominate the traffic. The match stage, by contrast, pays the full
//! table chain for every message. This module memoizes the chain's
//! *outcome* per key value of one designated field (the sharding
//! field, e.g. `add_order.stock`): on a hit the executor replays the
//! stored port set and per-table hit/miss counters and skips table
//! evaluation entirely.
//!
//! ## Soundness
//!
//! Caching is only armed when [`Pipeline::cacheable_on`] proves the
//! chain's decision is a pure function of the key field for the
//! *installed* program:
//!
//! * no state bindings (register reads vary with time and traffic);
//! * no `ActionOp::Register` anywhere (register writes are per-message
//!   side effects that must not be skipped);
//! * at most 64 tables (the per-table hit/miss replay mask is a u64);
//! * every table key field is either the cache key field itself,
//!   message-invariant (an `init_fields` constant), or never written
//!   by the parser (so its pre-chain value is the same for every
//!   message of a generation).
//!
//! Under those conditions the chain is a deterministic function of the
//! key field's value (mid-chain `SetField` writes are constants, so
//! they preserve determinism), and replaying a stored decision is
//! bit-identical to re-evaluating it — including the per-table
//! counters, which the stored hit mask reproduces exactly.
//!
//! ## Invalidation
//!
//! A cache is valid for exactly one compiled generation. The two
//! mutation paths both invalidate for free: the engine's RCU
//! generation bump rebuilds the worker context against the new program
//! ([`invalidate_all`](DecisionCache::invalidate_all) keeps the slot
//! storage and counters, so adoption stays allocation-light), and the
//! sequential path's [`Pipeline::prepare`] clears the cache whenever a
//! table was mutated (`splice_entries` / `add_entry` mark it dirty).
//!
//! [`Pipeline::prepare`]: crate::pipeline::Pipeline::prepare
//! [`Pipeline::cacheable_on`]: crate::pipeline::Pipeline::cacheable_on
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::multicast::PortId;
use crate::phv::PhvField;

/// Default direct-mapped size: `2^10` = 1024 slots — comfortably more
/// than the hot symbol set of a Zipf trace, small enough to stay cache
/// resident.
pub const DEFAULT_CACHE_SHIFT: u32 = 10;

/// SplitMix64 finalizer — decorrelates structured keys (ASCII stock
/// symbols) before the power-of-two index mask.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Aggregated cache counters (exported through telemetry and the
/// engine report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Messages answered from the cache (table chain skipped).
    pub hits: u64,
    /// Messages that evaluated the full chain (and filled a slot).
    pub misses: u64,
    /// Valid slots overwritten by a different key (direct-mapped
    /// conflict).
    pub evictions: u64,
}

impl CacheStats {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// One direct-mapped slot: the key tag plus the memoized per-message
/// outcome. `ports` is recycled in place on eviction, so a warmed
/// cache refills without allocating.
#[derive(Debug, Clone, Default)]
struct Slot {
    key: u64,
    valid: bool,
    /// Bit `i` set ⇔ table `i` hit a non-default entry for this key.
    hit_mask: u64,
    /// The ports this key's message contributes (sorted, deduplicated —
    /// the packet-level union is insensitive to inner order).
    ports: Vec<PortId>,
}

/// A per-shard, direct-mapped decision cache keyed on one PHV field.
#[derive(Debug, Clone)]
pub struct DecisionCache {
    key_field: PhvField,
    mask: usize,
    slots: Vec<Slot>,
    /// Hit/miss/eviction counters, carried across RCU adoptions.
    pub stats: CacheStats,
}

impl DecisionCache {
    /// An empty cache with `2^shift` slots keyed on `key_field`.
    pub fn new(key_field: PhvField, shift: u32) -> Self {
        let n = 1usize << shift.min(20);
        DecisionCache {
            key_field,
            mask: n - 1,
            slots: vec![Slot::default(); n],
            stats: CacheStats::default(),
        }
    }

    /// The PHV field decisions are keyed on.
    pub fn key_field(&self) -> PhvField {
        self.key_field
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache has zero slots (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Drops every memoized decision but keeps the slot storage and
    /// the counters — the generation-bump invalidation path.
    pub fn invalidate_all(&mut self) {
        for s in &mut self.slots {
            s.valid = false;
        }
    }

    #[inline]
    fn index(&self, key: u64) -> usize {
        (mix64(key) as usize) & self.mask
    }

    /// Looks `key` up; on a hit appends the memoized ports to `ports`
    /// and returns the stored table hit mask. Counters are updated
    /// either way.
    #[inline]
    pub fn lookup(&mut self, key: u64, ports: &mut Vec<PortId>) -> Option<u64> {
        let i = self.index(key);
        let s = &self.slots[i];
        if s.valid && s.key == key {
            self.stats.hits += 1;
            ports.extend_from_slice(&s.ports);
            Some(s.hit_mask)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Memoizes a freshly evaluated decision: the ports the message
    /// appended (`appended`) and the table hit mask the evaluation
    /// produced. Replaces whatever occupied the slot.
    #[inline]
    pub fn insert(&mut self, key: u64, appended: &[PortId], hit_mask: u64) {
        let i = self.index(key);
        let s = &mut self.slots[i];
        if s.valid && s.key != key {
            self.stats.evictions += 1;
        }
        s.key = key;
        s.valid = true;
        s.hit_mask = hit_mask;
        s.ports.clear();
        s.ports.extend_from_slice(appended);
        s.ports.sort_unstable();
        s.ports.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_replays_ports_and_mask() {
        let mut c = DecisionCache::new(PhvField(0), 4);
        let mut ports = Vec::new();
        assert_eq!(c.lookup(42, &mut ports), None);
        c.insert(42, &[PortId(3), PortId(1), PortId(3)], 0b101);
        assert_eq!(c.lookup(42, &mut ports), Some(0b101));
        // Stored ports are sorted and deduplicated.
        assert_eq!(ports, vec![PortId(1), PortId(3)]);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.evictions, 0);
    }

    #[test]
    fn conflicting_key_evicts() {
        let mut c = DecisionCache::new(PhvField(0), 0); // one slot
        c.insert(1, &[PortId(1)], 1);
        c.insert(2, &[PortId(2)], 0);
        assert_eq!(c.stats.evictions, 1);
        let mut ports = Vec::new();
        assert_eq!(c.lookup(1, &mut ports), None);
        assert_eq!(c.lookup(2, &mut ports), Some(0));
        assert_eq!(ports, vec![PortId(2)]);
    }

    #[test]
    fn invalidate_keeps_counters_and_storage() {
        let mut c = DecisionCache::new(PhvField(0), 2);
        c.insert(7, &[PortId(9)], 1);
        let mut ports = Vec::new();
        c.lookup(7, &mut ports).unwrap();
        c.invalidate_all();
        assert_eq!(c.lookup(7, &mut ports), None);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn empty_port_set_hits_too() {
        // A key whose message forwards nowhere is still worth caching:
        // the chain is skipped and zero ports are appended.
        let mut c = DecisionCache::new(PhvField(0), 2);
        c.insert(5, &[], 0);
        let mut ports = Vec::new();
        assert_eq!(c.lookup(5, &mut ports), Some(0));
        assert!(ports.is_empty());
    }
}
