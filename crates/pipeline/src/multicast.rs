//! Multicast group engine.
//!
//! §3.2: "The compiler translates this to forwarding to a multicast
//! group with ports 1 and 2." The switch's packet-replication engine
//! maps a group id (set by a match-action action) to a set of egress
//! ports.

use std::collections::HashMap;

/// A switch port number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

/// A multicast group id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// The multicast group table.
#[derive(Debug, Clone, Default)]
pub struct MulticastTable {
    groups: HashMap<GroupId, Vec<PortId>>,
    next_id: u32,
}

impl MulticastTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a group with an explicit id (ports are sorted and
    /// deduplicated). Overwrites any previous definition.
    pub fn install(&mut self, id: GroupId, ports: Vec<PortId>) {
        let mut ports = ports;
        ports.sort_unstable();
        ports.dedup();
        self.next_id = self.next_id.max(id.0 + 1);
        self.groups.insert(id, ports);
    }

    /// Allocates a fresh group id for a port set (always creates a new
    /// group; the compiler deduplicates port sets before calling this).
    pub fn allocate(&mut self, ports: Vec<PortId>) -> GroupId {
        let id = GroupId(self.next_id);
        self.install(id, ports);
        id
    }

    /// Resolves a group to its ports.
    pub fn ports(&self, id: GroupId) -> Option<&[PortId]> {
        self.groups.get(&id).map(|v| v.as_slice())
    }

    /// Number of installed groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no groups are installed.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_sorts_and_dedups() {
        let mut t = MulticastTable::new();
        t.install(GroupId(5), vec![PortId(3), PortId(1), PortId(3)]);
        assert_eq!(t.ports(GroupId(5)), Some(&[PortId(1), PortId(3)][..]));
        assert_eq!(t.ports(GroupId(0)), None);
    }

    #[test]
    fn allocate_yields_fresh_ids() {
        let mut t = MulticastTable::new();
        t.install(GroupId(10), vec![PortId(1)]);
        let g = t.allocate(vec![PortId(2)]);
        assert!(g.0 >= 11);
        assert_eq!(t.ports(g), Some(&[PortId(2)][..]));
        let g2 = t.allocate(vec![PortId(3)]);
        assert_ne!(g, g2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn reinstall_overwrites() {
        let mut t = MulticastTable::new();
        t.install(GroupId(1), vec![PortId(1)]);
        t.install(GroupId(1), vec![PortId(2)]);
        assert_eq!(t.ports(GroupId(1)), Some(&[PortId(2)][..]));
        assert_eq!(t.len(), 1);
    }
}
