//! The Packet Header Vector (PHV).
//!
//! In an RMT ASIC the parser deposits header fields into a bus of typed
//! containers that travels with the packet through the match-action
//! stages; stages match on PHV fields and actions rewrite them. Here
//! the PHV is a dense `u64` vector with validity bits, plus a few
//! well-known metadata slots the Camus compiler uses (the BDD `state`
//! register, the ingress port).

use std::collections::HashMap;

/// Index of a field in the PHV layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhvField(pub u32);

/// The layout (name → slot mapping) of a PHV. Built once per compiled
/// program; shared by the parser, the tables and the executor.
#[derive(Debug, Clone, Default)]
pub struct PhvLayout {
    names: Vec<String>,
    bits: Vec<u32>,
    index: HashMap<String, PhvField>,
}

impl PhvLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a field; returns its slot. Re-adding a name returns the
    /// existing slot (widths must then agree).
    pub fn add(&mut self, name: impl Into<String>, bits: u32) -> PhvField {
        let name = name.into();
        if let Some(&f) = self.index.get(&name) {
            assert_eq!(
                self.bits[f.0 as usize], bits,
                "field `{name}` re-added with new width"
            );
            return f;
        }
        let f = PhvField(self.names.len() as u32);
        self.names.push(name.clone());
        self.bits.push(bits);
        self.index.insert(name, f);
        f
    }

    /// Looks a field up by name.
    pub fn get(&self, name: &str) -> Option<PhvField> {
        self.index.get(name).copied()
    }

    /// Field name for a slot.
    pub fn name(&self, f: PhvField) -> &str {
        &self.names[f.0 as usize]
    }

    /// Field width in bits.
    pub fn width(&self, f: PhvField) -> u32 {
        self.bits[f.0 as usize]
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Creates a PHV with every field invalid.
    pub fn instantiate(&self) -> Phv {
        Phv {
            values: vec![0; self.len()],
            valid: vec![false; self.len()],
        }
    }
}

/// A packet header vector instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Phv {
    values: Vec<u64>,
    valid: Vec<bool>,
}

impl Phv {
    /// Number of field slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the PHV has no slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Invalidates every field without releasing storage, so one PHV
    /// can be reused across packets in the batch hot path.
    pub fn reset(&mut self) {
        self.valid.fill(false);
    }

    /// Becomes a copy of `other`, reusing this PHV's buffers (no
    /// allocation once capacities match).
    pub fn copy_from(&mut self, other: &Phv) {
        self.values.clear();
        self.values.extend_from_slice(&other.values);
        self.valid.clear();
        self.valid.extend_from_slice(&other.valid);
    }

    /// Sets a field (marks it valid).
    pub fn set(&mut self, f: PhvField, v: u64) {
        self.values[f.0 as usize] = v;
        self.valid[f.0 as usize] = true;
    }

    /// Reads a field if valid.
    pub fn get(&self, f: PhvField) -> Option<u64> {
        if self.valid[f.0 as usize] {
            Some(self.values[f.0 as usize])
        } else {
            None
        }
    }

    /// Reads a field, treating invalid as 0 — the hardware semantics of
    /// matching on an unparsed header field.
    pub fn get_or_zero(&self, f: PhvField) -> u64 {
        if self.valid[f.0 as usize] {
            self.values[f.0 as usize]
        } else {
            0
        }
    }

    /// Whether a field was parsed/written.
    pub fn is_valid(&self, f: PhvField) -> bool {
        self.valid[f.0 as usize]
    }

    /// Invalidates a field.
    pub fn invalidate(&mut self, f: PhvField) {
        self.valid[f.0 as usize] = false;
    }
}

/// A growable pool of message PHVs with cheap logical clearing.
///
/// The parser emits one PHV per application message; allocating a fresh
/// `Vec<Phv>` (and fresh `Phv`s) per packet is the single biggest
/// allocation cost on the hot path. A `PhvBuf` keeps its `Phv`s alive
/// across [`PhvBuf::clear`] calls, so steady-state parsing copies field
/// values into existing buffers instead of allocating.
#[derive(Debug, Clone, Default)]
pub struct PhvBuf {
    slots: Vec<Phv>,
    len: usize,
}

impl PhvBuf {
    /// Logically empties the buffer, keeping every `Phv`'s storage.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Number of live messages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no live messages.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a copy of `phv`, reusing a retired slot when available.
    pub fn push_copy(&mut self, phv: &Phv) {
        if self.len < self.slots.len() {
            self.slots[self.len].copy_from(phv);
        } else {
            self.slots.push(phv.clone());
        }
        self.len += 1;
    }

    /// Mutable access to a live message.
    pub fn get_mut(&mut self, i: usize) -> &mut Phv {
        assert!(
            i < self.len,
            "PhvBuf index {i} out of bounds ({})",
            self.len
        );
        &mut self.slots[i]
    }

    /// Iterates the live messages.
    pub fn iter(&self) -> impl Iterator<Item = &Phv> {
        self.slots[..self.len].iter()
    }

    /// Converts into an owned `Vec<Phv>` of the live messages.
    pub fn into_vec(mut self) -> Vec<Phv> {
        self.slots.truncate(self.len);
        self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get_fields() {
        let mut l = PhvLayout::new();
        let a = l.add("stock", 64);
        let b = l.add("price", 32);
        assert_ne!(a, b);
        assert_eq!(l.get("stock"), Some(a));
        assert_eq!(l.get("missing"), None);
        assert_eq!(l.name(b), "price");
        assert_eq!(l.width(a), 64);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn re_adding_returns_same_slot() {
        let mut l = PhvLayout::new();
        let a = l.add("x", 8);
        let b = l.add("x", 8);
        assert_eq!(a, b);
        assert_eq!(l.len(), 1);
    }

    #[test]
    #[should_panic(expected = "re-added")]
    fn re_adding_with_new_width_panics() {
        let mut l = PhvLayout::new();
        l.add("x", 8);
        l.add("x", 16);
    }

    #[test]
    fn phv_validity_semantics() {
        let mut l = PhvLayout::new();
        let f = l.add("x", 8);
        let mut phv = l.instantiate();
        assert_eq!(phv.get(f), None);
        assert_eq!(phv.get_or_zero(f), 0);
        assert!(!phv.is_valid(f));
        phv.set(f, 42);
        assert_eq!(phv.get(f), Some(42));
        assert!(phv.is_valid(f));
        phv.invalidate(f);
        assert_eq!(phv.get(f), None);
    }

    #[test]
    fn reset_and_copy_reuse_storage() {
        let mut l = PhvLayout::new();
        let a = l.add("a", 8);
        let b = l.add("b", 8);
        let mut src = l.instantiate();
        src.set(a, 1);
        let mut dst = Phv::default();
        dst.copy_from(&src);
        assert_eq!(dst.get(a), Some(1));
        assert_eq!(dst.get(b), None);
        assert_eq!(dst.len(), 2);
        dst.reset();
        assert_eq!(dst.get(a), None);
        assert_eq!(dst.len(), 2);
    }

    #[test]
    fn phv_buf_recycles_slots() {
        let mut l = PhvLayout::new();
        let f = l.add("f", 8);
        let mut phv = l.instantiate();
        let mut buf = PhvBuf::default();
        phv.set(f, 7);
        buf.push_copy(&phv);
        phv.set(f, 8);
        buf.push_copy(&phv);
        assert_eq!(buf.len(), 2);
        let vals: Vec<u64> = buf.iter().map(|p| p.get(f).unwrap()).collect();
        assert_eq!(vals, vec![7, 8]);

        buf.clear();
        assert!(buf.is_empty());
        phv.set(f, 9);
        buf.push_copy(&phv);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.get_mut(0).get(f), Some(9));
        assert_eq!(buf.into_vec().len(), 1);
    }
}
