//! Error types for pipeline configuration and execution.

use std::fmt;

/// Errors raised while configuring or running the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The parser ran past the end of the packet.
    ParseUnderflow {
        /// Parse state that needed more bytes.
        state: String,
        /// Bits needed beyond the packet end.
        missing_bits: u32,
    },
    /// The parser's select field matched no transition and the state has
    /// no default.
    ParseNoTransition {
        /// Parse state name.
        state: String,
        /// The selector value that matched nothing.
        value: u64,
    },
    /// The parser exceeded its loop bound (malformed packet or a parse
    /// graph cycle without `advance`).
    ParseLoopBound,
    /// A table references a PHV field that does not exist in the layout.
    UnknownPhvField(String),
    /// An entry's match values do not line up with the table's keys.
    EntryShapeMismatch {
        /// Table name.
        table: String,
        /// Expected number of match values (= number of keys).
        expected: usize,
        /// Provided number.
        got: usize,
    },
    /// An entry uses a match value incompatible with the key's kind
    /// (e.g. a range on an exact key).
    EntryKindMismatch {
        /// Table name.
        table: String,
        /// Key position.
        key: usize,
    },
    /// A delta asked to remove an entry the table does not hold —
    /// the control plane and data plane have diverged.
    EntryNotFound {
        /// Table name.
        table: String,
    },
    /// An action referenced a multicast group that was never configured.
    UnknownGroup(u32),
    /// An action referenced a register slot out of range.
    RegisterOutOfRange(usize),
    /// The program does not fit the ASIC resource model.
    PlacementFailure(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::ParseUnderflow {
                state,
                missing_bits,
            } => {
                write!(
                    f,
                    "parser underflow in state `{state}`: needs {missing_bits} more bits"
                )
            }
            PipelineError::ParseNoTransition { state, value } => {
                write!(
                    f,
                    "no parser transition from `{state}` on selector value {value:#x}"
                )
            }
            PipelineError::ParseLoopBound => write!(f, "parser loop bound exceeded"),
            PipelineError::UnknownPhvField(name) => write!(f, "unknown PHV field `{name}`"),
            PipelineError::EntryShapeMismatch {
                table,
                expected,
                got,
            } => {
                write!(
                    f,
                    "table `{table}`: entry has {got} match values, keys require {expected}"
                )
            }
            PipelineError::EntryKindMismatch { table, key } => {
                write!(
                    f,
                    "table `{table}`: match value incompatible with key {key}"
                )
            }
            PipelineError::EntryNotFound { table } => {
                write!(f, "table `{table}`: entry to remove is not installed")
            }
            PipelineError::UnknownGroup(g) => write!(f, "unknown multicast group {g}"),
            PipelineError::RegisterOutOfRange(i) => write!(f, "register slot {i} out of range"),
            PipelineError::PlacementFailure(msg) => write!(f, "placement failure: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = PipelineError::EntryShapeMismatch {
            table: "stock".into(),
            expected: 2,
            got: 1,
        };
        assert!(e.to_string().contains("stock"));
        assert!(PipelineError::ParseLoopBound.to_string().contains("loop"));
    }
}
