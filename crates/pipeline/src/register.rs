//! Stateful registers with tumbling-window aggregates.
//!
//! §3.1: "the compiler statically preallocates a block of registers
//! that are then assigned to specific variables dynamically" and emits
//! "generic code for various update functions … e.g., to implement the
//! tumbling window used on line 14 in Figure 2."
//!
//! Each slot keeps enough state (count, sum, min, max, last value) for
//! every aggregate the language offers, so the dynamic compiler can
//! link any of `count`/`sum`/`avg`/`min`/`max` to a slot without
//! re-imaging the switch — exactly the static/dynamic split the paper
//! describes. Windows are *tumbling*: when a window of `window_us`
//! elapses, the slot resets before the next observation.

/// Aggregate read out of a register slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Number of observations in the window.
    Count,
    /// Sum of observed values.
    Sum,
    /// Mean of observed values (integer division; 0 when empty).
    Avg,
    /// Minimum observed value (0 when empty).
    Min,
    /// Maximum observed value (0 when empty).
    Max,
    /// The raw stored value (for `set` updates / plain counters).
    Last,
}

/// One register slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Tumbling window length in microseconds; 0 = never reset.
    pub window_us: u64,
    window_start_us: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    last: u64,
}

impl Slot {
    fn new(window_us: u64) -> Self {
        Slot {
            window_us,
            window_start_us: 0,
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            last: 0,
        }
    }

    fn roll(&mut self, now_us: u64) {
        if self.window_us > 0 && now_us.saturating_sub(self.window_start_us) >= self.window_us {
            // Tumble: align the new window start to the window grid so
            // long idle gaps don't skew boundaries.
            let elapsed = now_us - self.window_start_us;
            self.window_start_us += (elapsed / self.window_us) * self.window_us;
            self.count = 0;
            self.sum = 0;
            self.min = 0;
            self.max = 0;
        }
    }

    fn observe(&mut self, v: u64, now_us: u64) {
        self.roll(now_us);
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.last = v;
    }

    fn read(&mut self, kind: AggKind, now_us: u64) -> u64 {
        self.roll(now_us);
        match kind {
            AggKind::Count => self.count,
            AggKind::Sum => self.sum,
            AggKind::Avg => self.sum.checked_div(self.count).unwrap_or(0),
            AggKind::Min => self.min,
            AggKind::Max => self.max,
            AggKind::Last => self.last,
        }
    }
}

/// A block of register slots, indexed by the compiler's allocation.
#[derive(Debug, Clone, Default)]
pub struct RegisterFile {
    slots: Vec<Slot>,
}

impl RegisterFile {
    /// Creates an empty register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a slot with the given tumbling window (0 = unwindowed)
    /// and returns its index.
    pub fn allocate(&mut self, window_us: u64) -> usize {
        self.slots.push(Slot::new(window_us));
        self.slots.len() - 1
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Tumbling-window length of one slot (0 = unwindowed); 0 for an
    /// out-of-range index. Loss accounting (a fabric recording what
    /// state died with a leaf) reads this without touching the slot.
    pub fn window_us(&self, slot: usize) -> u64 {
        self.slots.get(slot).map_or(0, |s| s.window_us)
    }

    /// Whether no slots are allocated.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Folds an observation into a slot's window aggregates.
    pub fn observe(&mut self, slot: usize, v: u64, now_us: u64) -> Result<(), usize> {
        self.slots
            .get_mut(slot)
            .map(|s| s.observe(v, now_us))
            .ok_or(slot)
    }

    /// Increments a slot (a `count()`-style observation of 1).
    pub fn increment(&mut self, slot: usize, now_us: u64) -> Result<(), usize> {
        self.observe(slot, 1, now_us)
    }

    /// Overwrites a slot: the value becomes the slot's sum/min/max/last
    /// with a count of one, so `set(x)` reads back as `x` under every
    /// aggregate — the semantics counters need for `v <- set(...)`.
    pub fn set(&mut self, slot: usize, v: u64, now_us: u64) -> Result<(), usize> {
        match self.slots.get_mut(slot) {
            Some(s) => {
                s.roll(now_us);
                s.sum = v;
                s.count = 1;
                s.min = v;
                s.max = v;
                s.last = v;
                Ok(())
            }
            None => Err(slot),
        }
    }

    /// Carries state over from an old register file across a pipeline
    /// generation swap: slot contents (window position, aggregates,
    /// last value) copy positionally for slots present in both files,
    /// while each slot keeps its *own* configured window length.
    /// `@query_counter` state therefore survives rule updates instead
    /// of resetting. Positional copy is exact whenever the static
    /// register allocation is unchanged — which is every delta update,
    /// since the statics only move on a full recompile with a widened
    /// alphabet.
    pub fn carry_from(&mut self, old: &RegisterFile) {
        for (dst, src) in self.slots.iter_mut().zip(&old.slots) {
            let window_us = dst.window_us;
            *dst = *src;
            dst.window_us = window_us;
        }
    }

    /// Reads an aggregate from a slot.
    pub fn read(&mut self, slot: usize, kind: AggKind, now_us: u64) -> Result<u64, usize> {
        self.slots
            .get_mut(slot)
            .map(|s| s.read(kind, now_us))
            .ok_or(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_within_a_window() {
        let mut rf = RegisterFile::new();
        let s = rf.allocate(100);
        rf.observe(s, 10, 0).unwrap();
        rf.observe(s, 30, 10).unwrap();
        rf.observe(s, 20, 20).unwrap();
        assert_eq!(rf.read(s, AggKind::Count, 30).unwrap(), 3);
        assert_eq!(rf.read(s, AggKind::Sum, 30).unwrap(), 60);
        assert_eq!(rf.read(s, AggKind::Avg, 30).unwrap(), 20);
        assert_eq!(rf.read(s, AggKind::Min, 30).unwrap(), 10);
        assert_eq!(rf.read(s, AggKind::Max, 30).unwrap(), 30);
        assert_eq!(rf.read(s, AggKind::Last, 30).unwrap(), 20);
    }

    #[test]
    fn window_tumbles() {
        let mut rf = RegisterFile::new();
        let s = rf.allocate(100);
        rf.observe(s, 50, 0).unwrap();
        assert_eq!(rf.read(s, AggKind::Avg, 99).unwrap(), 50);
        // At t=100 the window rolls: aggregates reset.
        assert_eq!(rf.read(s, AggKind::Avg, 100).unwrap(), 0);
        assert_eq!(rf.read(s, AggKind::Count, 100).unwrap(), 0);
        rf.observe(s, 70, 150).unwrap();
        assert_eq!(rf.read(s, AggKind::Avg, 180).unwrap(), 70);
    }

    #[test]
    fn window_start_aligns_to_grid_after_idle() {
        let mut rf = RegisterFile::new();
        let s = rf.allocate(100);
        rf.observe(s, 1, 0).unwrap();
        // Long idle: next observation at t=950 lands in window [900,1000).
        rf.observe(s, 7, 950).unwrap();
        assert_eq!(rf.read(s, AggKind::Count, 999).unwrap(), 1);
        // At t=1000 it resets again.
        assert_eq!(rf.read(s, AggKind::Count, 1000).unwrap(), 0);
    }

    #[test]
    fn unwindowed_slot_never_resets() {
        let mut rf = RegisterFile::new();
        let s = rf.allocate(0);
        rf.increment(s, 0).unwrap();
        rf.increment(s, 1_000_000_000).unwrap();
        assert_eq!(rf.read(s, AggKind::Count, u64::MAX).unwrap(), 2);
    }

    #[test]
    fn set_and_last() {
        let mut rf = RegisterFile::new();
        let s = rf.allocate(0);
        rf.set(s, 42, 0).unwrap();
        assert_eq!(rf.read(s, AggKind::Last, 0).unwrap(), 42);
        // `set` overwrites the aggregates so the value reads back
        // uniformly.
        assert_eq!(rf.read(s, AggKind::Sum, 0).unwrap(), 42);
        assert_eq!(rf.read(s, AggKind::Count, 0).unwrap(), 1);
        // A later incr() accumulates on top.
        rf.increment(s, 1).unwrap();
        assert_eq!(rf.read(s, AggKind::Sum, 2).unwrap(), 43);
    }

    #[test]
    fn carry_from_preserves_counts_across_swap() {
        let mut old = RegisterFile::new();
        let s = old.allocate(0);
        old.increment(s, 0).unwrap();
        old.increment(s, 1).unwrap();
        // A fresh generation of the same layout starts empty…
        let mut fresh = RegisterFile::new();
        fresh.allocate(0);
        assert_eq!(fresh.read(s, AggKind::Count, 2).unwrap(), 0);
        // …until the swap carries the old state over.
        fresh.carry_from(&old);
        assert_eq!(fresh.read(s, AggKind::Count, 2).unwrap(), 2);
        fresh.increment(s, 3).unwrap();
        assert_eq!(fresh.read(s, AggKind::Count, 4).unwrap(), 3);
    }

    #[test]
    fn carry_from_keeps_the_new_window_config() {
        let mut old = RegisterFile::new();
        let s = old.allocate(100);
        old.observe(s, 5, 10).unwrap();
        let mut fresh = RegisterFile::new();
        fresh.allocate(50); // reconfigured window
        fresh.carry_from(&old);
        assert_eq!(fresh.slots[s].window_us, 50);
        assert_eq!(fresh.read(s, AggKind::Sum, 20).unwrap(), 5);
        // Extra old slots beyond the new layout are ignored.
        let mut short = RegisterFile::new();
        short.carry_from(&old);
        assert!(short.is_empty());
    }

    #[test]
    fn out_of_range_slot_errors() {
        let mut rf = RegisterFile::new();
        assert_eq!(rf.observe(3, 1, 0), Err(3));
        assert_eq!(rf.read(0, AggKind::Count, 0), Err(0));
        assert_eq!(rf.set(1, 0, 0), Err(1));
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut rf = RegisterFile::new();
        let s = rf.allocate(0);
        rf.observe(s, u64::MAX, 0).unwrap();
        rf.observe(s, u64::MAX, 1).unwrap();
        assert_eq!(rf.read(s, AggKind::Sum, 2).unwrap(), u64::MAX);
    }
}
