//! Bit-granular field extraction from byte buffers.
//!
//! P4 headers are bit-packed: fields start at arbitrary bit offsets and
//! span up to 64 bits. The parser engine uses these helpers to pull
//! big-endian bit ranges out of (and write them back into) packet
//! buffers.

/// Extracts `bits` bits starting `bit_offset` bits into `buf`,
/// interpreted big-endian, right-aligned into a `u64`.
///
/// Returns `None` when the range runs past the end of the buffer or
/// `bits` is 0 or > 64.
pub fn extract_bits(buf: &[u8], bit_offset: u64, bits: u32) -> Option<u64> {
    if bits == 0 || bits > 64 {
        return None;
    }
    let end = bit_offset.checked_add(u64::from(bits))?;
    if end > (buf.len() as u64) * 8 {
        return None;
    }
    // SWAR fast path: byte-aligned, whole-byte extracts (the common
    // case — every header field the compiler emits is byte-aligned)
    // become one bounds-checked copy + byte-swap instead of the
    // bit-at-a-time walk. The bounds checks above already guarantee
    // the slice is in range.
    if bit_offset & 7 == 0 && bits & 7 == 0 {
        let off = (bit_offset / 8) as usize;
        let n = (bits / 8) as usize;
        let mut w = [0u8; 8];
        w[8 - n..].copy_from_slice(&buf[off..off + n]);
        return Some(u64::from_be_bytes(w));
    }
    let mut v: u64 = 0;
    let mut taken = 0u32;
    let mut pos = bit_offset;
    while taken < bits {
        let byte = buf[(pos / 8) as usize];
        let bit_in_byte = (pos % 8) as u32;
        let avail = 8 - bit_in_byte;
        let take = avail.min(bits - taken);
        // Bits of this byte, MSB first: select `take` bits starting at
        // `bit_in_byte`.
        let shifted = (byte as u64) >> (avail - take);
        let mask = if take == 64 {
            u64::MAX
        } else {
            (1u64 << take) - 1
        };
        v = (v << take) | (shifted & mask);
        taken += take;
        pos += u64::from(take);
    }
    Some(v)
}

/// Writes the low `bits` bits of `value` into `buf` at `bit_offset`
/// (big-endian). Returns `false` when the range does not fit.
pub fn insert_bits(buf: &mut [u8], bit_offset: u64, bits: u32, value: u64) -> bool {
    if bits == 0 || bits > 64 {
        return false;
    }
    let Some(end) = bit_offset.checked_add(u64::from(bits)) else {
        return false;
    };
    if end > (buf.len() as u64) * 8 {
        return false;
    }
    // Write MSB-first.
    for i in 0..bits {
        let bit = (value >> (bits - 1 - i)) & 1;
        let pos = bit_offset + u64::from(i);
        let byte = &mut buf[(pos / 8) as usize];
        let shift = 7 - (pos % 8) as u32;
        if bit == 1 {
            *byte |= 1 << shift;
        } else {
            *byte &= !(1 << shift);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_aligned_bytes() {
        let buf = [0x12, 0x34, 0x56, 0x78];
        assert_eq!(extract_bits(&buf, 0, 8), Some(0x12));
        assert_eq!(extract_bits(&buf, 8, 16), Some(0x3456));
        assert_eq!(extract_bits(&buf, 0, 32), Some(0x1234_5678));
    }

    #[test]
    fn extracts_unaligned_ranges() {
        // 0b0001_0010 0b0011_0100
        let buf = [0x12, 0x34];
        assert_eq!(extract_bits(&buf, 3, 5), Some(0b10010));
        assert_eq!(extract_bits(&buf, 4, 8), Some(0x23));
        assert_eq!(extract_bits(&buf, 1, 3), Some(0b001));
    }

    #[test]
    fn extracts_full_64_bits() {
        let buf = [0xff; 8];
        assert_eq!(extract_bits(&buf, 0, 64), Some(u64::MAX));
    }

    #[test]
    fn rejects_out_of_range() {
        let buf = [0u8; 4];
        assert_eq!(extract_bits(&buf, 0, 33), None);
        assert_eq!(extract_bits(&buf, 32, 1), None);
        assert_eq!(extract_bits(&buf, 0, 0), None);
        assert_eq!(extract_bits(&buf, 0, 65), None);
        assert_eq!(extract_bits(&buf, u64::MAX, 8), None);
    }

    /// Generic bit-walk reference, kept deliberately naive so the
    /// aligned fast path has an independent oracle.
    fn extract_bits_reference(buf: &[u8], bit_offset: u64, bits: u32) -> Option<u64> {
        if bits == 0 || bits > 64 {
            return None;
        }
        let end = bit_offset.checked_add(u64::from(bits))?;
        if end > (buf.len() as u64) * 8 {
            return None;
        }
        let mut v = 0u64;
        for i in 0..u64::from(bits) {
            let pos = bit_offset + i;
            let bit = (buf[(pos / 8) as usize] >> (7 - (pos % 8))) & 1;
            v = (v << 1) | u64::from(bit);
        }
        Some(v)
    }

    #[test]
    fn aligned_fast_path_agrees_with_bit_walk() {
        let mut buf = [0u8; 24];
        let mut x: u32 = 0x1234_5678;
        for b in &mut buf {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            *b = (x >> 24) as u8;
        }
        // Every byte-aligned (offset, width) pair in range, plus the
        // unaligned neighbours to make sure the fast path only fires
        // where it should.
        for byte_off in 0..buf.len() as u64 {
            for extra_bits in 0..3u64 {
                let off = byte_off * 8 + extra_bits;
                for bits in 1..=64u32 {
                    assert_eq!(
                        extract_bits(&buf, off, bits),
                        extract_bits_reference(&buf, off, bits),
                        "off={off} bits={bits}"
                    );
                }
            }
        }
    }

    #[test]
    fn insert_then_extract_roundtrips() {
        let mut buf = [0u8; 16];
        for (off, bits, v) in [
            (0u64, 8u32, 0xabu64),
            (13, 11, 0x5a5),
            (24, 64, 0x0123_4567_89ab_cdef),
            (100, 1, 1),
        ] {
            assert!(insert_bits(&mut buf, off, bits, v));
            assert_eq!(
                extract_bits(&buf, off, bits),
                Some(v),
                "off={off} bits={bits}"
            );
        }
    }

    #[test]
    fn insert_clears_old_bits() {
        let mut buf = [0xff; 2];
        assert!(insert_bits(&mut buf, 4, 8, 0));
        assert_eq!(extract_bits(&buf, 4, 8), Some(0));
        assert_eq!(buf, [0xf0, 0x0f]);
    }

    #[test]
    fn insert_rejects_out_of_range() {
        let mut buf = [0u8; 2];
        assert!(!insert_bits(&mut buf, 9, 8, 0));
        assert!(!insert_bits(&mut buf, 0, 0, 0));
    }
}
