//! Spine/leaf fabric topology: port placement and link-level delivery
//! timing for a program partitioned across several leaf switches.
//!
//! The fabric layer (`camus-fabric`) decides *which leaf pipeline*
//! evaluates a packet (by its sharding symbol); this module models the
//! *wires*: which leaf each subscriber port hangs off, and how long a
//! forwarded copy takes to reach it — one switch hop when the decision
//! leaf is also the port's leaf, or an extra leaf→spine→leaf traversal
//! when the multicast decision crosses the fabric. Per-egress
//! [`FifoServer`] backlogs reproduce the queueing behavior the paper's
//! §4 experiment measures, now per fabric hop.

use crate::model::{LinkModel, SwitchModel};
use crate::sim::FifoServer;

/// Subscriber-port identifier, matching `camus_pipeline::PortId`'s
/// wire representation (a `u16`).
pub type Port = u16;

/// A spine/leaf fabric: `leaves` leaf switches, each uplinked to one
/// spine switch. Subscriber ports are striped across the leaves.
#[derive(Debug, Clone)]
pub struct FabricTopology {
    /// Number of leaf switches (≥ 1).
    pub leaves: usize,
    /// Leaf switch model (pipeline latency, egress buffering).
    pub leaf: SwitchModel,
    /// Spine switch model.
    pub spine: SwitchModel,
    /// Leaf ↔ subscriber access links.
    pub access: LinkModel,
    /// Leaf ↔ spine fabric uplinks.
    pub uplink: LinkModel,
}

impl FabricTopology {
    /// A testbed-calibrated fabric: 25 Gb/s access links, 100 Gb/s
    /// uplinks, Tofino-like switch latencies everywhere.
    pub fn new(leaves: usize) -> Self {
        FabricTopology {
            leaves: leaves.max(1),
            leaf: SwitchModel::default(),
            spine: SwitchModel::default(),
            access: LinkModel::gbps25(),
            uplink: LinkModel::gbps100(),
        }
    }

    /// The leaf a subscriber port hangs off (ports striped round-robin
    /// across leaves — deterministic, dense, and independent of the
    /// subscription program).
    pub fn leaf_of_port(&self, port: Port) -> usize {
        port as usize % self.leaves
    }

    /// Whether delivering to `port` from a decision made on
    /// `decision_leaf` crosses the spine.
    pub fn crosses_spine(&self, decision_leaf: usize, port: Port) -> bool {
        self.leaf_of_port(port) != decision_leaf % self.leaves
    }

    /// Uncongested delivery latency for a `bytes`-long copy decided on
    /// `decision_leaf` and destined for `port`: same-leaf copies pay
    /// one leaf traversal plus the access link; cross-leaf copies
    /// additionally pay the uplink out, the spine traversal and the
    /// uplink back down into the destination leaf.
    pub fn delivery_ns(&self, decision_leaf: usize, port: Port, bytes: usize) -> u64 {
        let access = self.access.ser_ns(bytes) + self.access.prop_ns;
        let local = self.leaf.pipeline_latency_ns + access;
        if !self.crosses_spine(decision_leaf, port) {
            return local;
        }
        let uplink = self.uplink.ser_ns(bytes) + self.uplink.prop_ns;
        // leaf → uplink → spine → uplink → destination leaf → access.
        local + 2 * uplink + self.spine.pipeline_latency_ns + self.leaf.pipeline_latency_ns
    }
}

/// Per-egress-port queue state for a fabric: one [`FifoServer`] per
/// subscriber access link plus one per leaf uplink, so congestion on a
/// hot subscriber or a hot uplink delays (and eventually tail-drops)
/// exactly the copies that traverse it.
#[derive(Debug)]
pub struct FabricQueues {
    topo: FabricTopology,
    access: Vec<FifoServer>,
    uplinks: Vec<FifoServer>,
    /// Bitmask of leaves currently unreachable (killed, or partitioned
    /// from the spine): every copy that must enter or leave a down
    /// leaf black-holes. The chaos harness's `Kill`/`Partition` events
    /// script this.
    down: u64,
    /// Copies tail-dropped at a full egress queue.
    pub dropped: u64,
    /// Copies black-holed by a down leaf (kill/partition events) —
    /// kept separate from congestion drops so a soak can assert loss
    /// is confined to the scripted failure.
    pub partition_drops: u64,
}

impl FabricQueues {
    /// Creates idle queues for `ports` subscriber ports.
    pub fn new(topo: FabricTopology, ports: usize) -> Self {
        FabricQueues {
            access: vec![FifoServer::new(); ports],
            uplinks: vec![FifoServer::new(); topo.leaves],
            topo,
            down: 0,
            dropped: 0,
            partition_drops: 0,
        }
    }

    /// The wired topology.
    pub fn topology(&self) -> &FabricTopology {
        &self.topo
    }

    /// Takes leaf `leaf`'s links down (kill or spine partition) or
    /// back up. Queue backlogs are preserved — a healed partition
    /// resumes with whatever was already serialized on the wire.
    pub fn set_leaf_down(&mut self, leaf: usize, is_down: bool) {
        let bit = 1u64 << (leaf % self.topo.leaves).min(63);
        if is_down {
            self.down |= bit;
        } else {
            self.down &= !bit;
        }
    }

    /// Whether leaf `leaf`'s links are down.
    pub fn leaf_is_down(&self, leaf: usize) -> bool {
        self.down & (1u64 << (leaf % self.topo.leaves).min(63)) != 0
    }

    /// Enqueues one `bytes`-long copy decided on `decision_leaf` for
    /// `port` at time `now_ns`; returns its delivery completion time,
    /// or `None` if a queue on its path tail-dropped it. Queueing is
    /// modeled at the two contention points: the shared uplink of the
    /// destination leaf (cross-spine copies only) and the subscriber's
    /// access link.
    pub fn deliver(
        &mut self,
        now_ns: u64,
        decision_leaf: usize,
        port: Port,
        bytes: usize,
    ) -> Option<u64> {
        let dst_leaf = self.topo.leaf_of_port(port);
        if self.leaf_is_down(decision_leaf % self.topo.leaves) || self.leaf_is_down(dst_leaf) {
            self.partition_drops += 1;
            return None;
        }
        let mut at = now_ns + self.topo.leaf.pipeline_latency_ns;
        if self.topo.crosses_spine(decision_leaf, port) {
            let ser = self.topo.uplink.ser_ns(bytes);
            let hop = self.topo.uplink.prop_ns + self.topo.spine.pipeline_latency_ns;
            let Some(done) =
                self.uplinks[dst_leaf].admit(at + hop, ser, self.topo.spine.egress_backlog_cap_ns)
            else {
                self.dropped += 1;
                return None;
            };
            at = done + self.topo.uplink.prop_ns + self.topo.leaf.pipeline_latency_ns;
        }
        let idx = port as usize % self.access.len().max(1);
        let ser = self.topo.access.ser_ns(bytes);
        match self.access[idx].admit(at, ser, self.topo.leaf.egress_backlog_cap_ns) {
            Some(done) => Some(done + self.topo.access.prop_ns),
            None => {
                self.dropped += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_stripe_across_leaves() {
        let t = FabricTopology::new(4);
        assert_eq!(t.leaf_of_port(0), 0);
        assert_eq!(t.leaf_of_port(5), 1);
        assert_eq!(t.leaf_of_port(7), 3);
        // Single-leaf fabric: everything is local.
        let one = FabricTopology::new(1);
        assert!(!one.crosses_spine(0, 7));
    }

    #[test]
    fn cross_spine_costs_more_than_local() {
        let t = FabricTopology::new(2);
        let local = t.delivery_ns(0, 0, 200); // port 0 lives on leaf 0
        let remote = t.delivery_ns(0, 1, 200); // port 1 lives on leaf 1
        assert!(remote > local, "{remote} !> {local}");
        // The gap is exactly two uplink traversals + spine + extra leaf.
        let uplink = t.uplink.ser_ns(200) + t.uplink.prop_ns;
        assert_eq!(
            remote - local,
            2 * uplink + t.spine.pipeline_latency_ns + t.leaf.pipeline_latency_ns
        );
    }

    #[test]
    fn queues_serialize_and_tail_drop() {
        let mut q = FabricQueues::new(FabricTopology::new(2), 4);
        let first = q.deliver(0, 0, 0, 1500).unwrap();
        let second = q.deliver(0, 0, 0, 1500).unwrap();
        assert!(second > first, "FIFO on the shared access link");
        // Saturate port 2's access link past its backlog cap.
        let cap = q.topology().leaf.egress_backlog_cap_ns;
        let ser = q.topology().access.ser_ns(1500);
        let need = (cap / ser) as usize + 3;
        let mut dropped = false;
        for _ in 0..need {
            if q.deliver(0, 0, 2, 1500).is_none() {
                dropped = true;
                break;
            }
        }
        assert!(dropped, "backlog cap enforces tail drop");
        assert!(q.dropped > 0);
    }

    #[test]
    fn down_leaf_black_holes_exactly_its_own_traffic() {
        let mut q = FabricQueues::new(FabricTopology::new(4), 8);
        q.set_leaf_down(1, true);
        assert!(q.leaf_is_down(1));
        // Copies decided on, or destined to, leaf 1 vanish.
        assert!(q.deliver(0, 1, 0, 600).is_none(), "decided on a down leaf");
        assert!(q.deliver(0, 0, 5, 600).is_none(), "destined to a down leaf");
        assert_eq!(q.partition_drops, 2);
        assert_eq!(q.dropped, 0, "partition loss is not congestion loss");
        // Unrelated traffic still flows.
        assert!(q.deliver(0, 0, 2, 600).is_some());
        // Healing the partition restores delivery.
        q.set_leaf_down(1, false);
        assert!(!q.leaf_is_down(1));
        assert!(q.deliver(0, 1, 0, 600).is_some());
    }

    #[test]
    fn deterministic_replay() {
        let run = |n: usize| {
            let mut q = FabricQueues::new(FabricTopology::new(4), 8);
            (0..n as u64)
                .map(|i| q.deliver(i * 100, (i % 4) as usize, (i % 8) as Port, 600))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(64), run(64));
    }
}
