//! Network element models, calibrated to the paper's testbed (§4):
//! "a 32-port Barefoot Tofino switch", publisher/subscriber
//! "implemented with DPDK, running on a server with an 8-core Intel
//! Xeon E5-2620 v4 @ 2.10GHz … and 25Gb/s NICs".

/// A point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Line rate in Gb/s.
    pub rate_gbps: f64,
    /// Propagation + PHY latency, ns.
    pub prop_ns: u64,
}

impl LinkModel {
    /// A 100 Gb/s switch-fabric-facing link.
    pub fn gbps100() -> Self {
        LinkModel {
            rate_gbps: 100.0,
            prop_ns: 300,
        }
    }

    /// The testbed's 25 Gb/s server NIC links.
    pub fn gbps25() -> Self {
        LinkModel {
            rate_gbps: 25.0,
            prop_ns: 300,
        }
    }

    /// Serialization time for a frame of `bytes`.
    pub fn ser_ns(&self, bytes: usize) -> u64 {
        ((bytes as f64) * 8.0 / self.rate_gbps).ceil() as u64
    }
}

/// Switch forwarding model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchModel {
    /// Fixed pipeline (port-to-port, uncongested) latency, ns.
    pub pipeline_latency_ns: u64,
    /// Egress queue capacity expressed as maximum queuing delay, ns
    /// (≈ buffer bytes / port rate).
    pub egress_backlog_cap_ns: u64,
}

impl Default for SwitchModel {
    fn default() -> Self {
        // ~400ns cut-through latency; ~ 1 MB per-port buffer at 25 Gb/s
        // ≈ 320 µs of backlog.
        SwitchModel {
            pipeline_latency_ns: 400,
            egress_backlog_cap_ns: 320_000,
        }
    }
}

/// Subscriber host model (DPDK-style busy-poll receiver).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostModel {
    /// Per-packet receive overhead (DMA, mbuf, poll loop), ns.
    pub per_packet_ns: u64,
    /// Per-ITCH-message software filter cost (parse + symbol compare),
    /// ns.
    pub per_message_ns: u64,
    /// Receive-queue capacity as maximum queuing delay, ns. Beyond it
    /// the NIC tail-drops.
    pub rx_backlog_cap_ns: u64,
}

impl Default for HostModel {
    fn default() -> Self {
        // A 2.1 GHz core spends ~150 ns of fixed per-packet work and
        // ~350 ns parsing and filtering each ITCH message — ≈2 M msg/s
        // of filtering capacity, comfortably above the 500 k msg/s
        // average offered load but far below burst peaks.
        HostModel {
            per_packet_ns: 150,
            per_message_ns: 350,
            rx_backlog_cap_ns: 4_000_000,
        }
    }
}

impl HostModel {
    /// CPU service time for a packet carrying `messages` ITCH messages.
    pub fn service_ns(&self, messages: usize) -> u64 {
        self.per_packet_ns + self.per_message_ns * messages as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_times() {
        // 100 bytes at 100 Gb/s = 8 ns; at 25 Gb/s = 32 ns.
        assert_eq!(LinkModel::gbps100().ser_ns(100), 8);
        assert_eq!(LinkModel::gbps25().ser_ns(100), 32);
        // Rounds up.
        assert_eq!(LinkModel::gbps25().ser_ns(1), 1);
    }

    #[test]
    fn host_service_scales_with_messages() {
        let h = HostModel::default();
        assert_eq!(h.service_ns(0), 150);
        assert_eq!(h.service_ns(1), 500);
        assert_eq!(h.service_ns(10), 150 + 3500);
    }

    #[test]
    fn host_capacity_is_between_average_and_burst_rate() {
        // The calibration that makes Fig. 7's shape emerge: the host can
        // absorb the 500 k msg/s average but not a 12× burst.
        let h = HostModel::default();
        let per_msg_total = h.service_ns(1) as f64; // 1 msg/packet feed
        let capacity = 1e9 / per_msg_total;
        assert!(capacity > 500_000.0, "capacity {capacity}");
        assert!(capacity < 500_000.0 * 12.0, "capacity {capacity}");
    }
}
