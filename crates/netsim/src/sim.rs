//! Event core: a minimal, deterministic discrete-event scheduler.
//!
//! Events are ordered by time with a monotone sequence number breaking
//! ties, so simulations are exactly reproducible regardless of
//! insertion order at equal timestamps.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled event.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Scheduled<E> {
    time_ns: u64,
    seq: u64,
    event: E,
}

/// The event queue. `E` is the simulation-specific event payload.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
    now_ns: u64,
}

impl<E: Ord> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now_ns: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped
    /// event).
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Schedules an event at an absolute time. Scheduling in the past
    /// clamps to `now` (events never run backwards).
    pub fn schedule(&mut self, time_ns: u64, event: E) {
        let t = time_ns.max(self.now_ns);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled {
            time_ns: t,
            seq,
            event,
        }));
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.now_ns = s.time_ns;
        Some((s.time_ns, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: Ord> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A single-server FIFO resource (a link or a CPU): tracks when it next
/// becomes free and how much backlog (in time) it holds.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoServer {
    free_at_ns: u64,
}

impl FifoServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits a job arriving at `arrival_ns` needing `service_ns`,
    /// subject to a backlog cap (the queue's capacity expressed as
    /// waiting time). Returns the completion time, or `None` when the
    /// backlog would exceed `max_backlog_ns` (a tail drop).
    pub fn admit(&mut self, arrival_ns: u64, service_ns: u64, max_backlog_ns: u64) -> Option<u64> {
        let backlog = self.free_at_ns.saturating_sub(arrival_ns);
        if backlog > max_backlog_ns {
            return None;
        }
        let start = self.free_at_ns.max(arrival_ns);
        let done = start + service_ns;
        self.free_at_ns = done;
        Some(done)
    }

    /// Current backlog relative to a reference time.
    pub fn backlog_ns(&self, now_ns: u64) -> u64 {
        self.free_at_ns.saturating_sub(now_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(5, 10);
        q.schedule(5, 20);
        q.schedule(5, 5);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 20, 5]);
    }

    #[test]
    fn clock_advances_and_clamps() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(100, 1);
        q.pop();
        assert_eq!(q.now_ns(), 100);
        // Scheduling in the past clamps to now.
        q.schedule(50, 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 100);
    }

    #[test]
    fn fifo_serializes_jobs() {
        let mut s = FifoServer::new();
        assert_eq!(s.admit(0, 10, u64::MAX), Some(10));
        assert_eq!(s.admit(0, 10, u64::MAX), Some(20));
        assert_eq!(s.admit(100, 10, u64::MAX), Some(110));
        assert_eq!(s.backlog_ns(100), 10);
    }

    #[test]
    fn fifo_drops_over_backlog_cap() {
        let mut s = FifoServer::new();
        assert!(s.admit(0, 100, 50).is_some()); // empty: admitted
                                                // Backlog now 100ns at t=0; cap 50 → drop.
        assert_eq!(s.admit(0, 10, 50), None);
        // After the backlog drains, admission resumes.
        assert!(s.admit(90, 10, 50).is_some());
    }
}
