//! The Figure 7 experiment: end-to-end message latency, baseline
//! (software filtering at the subscriber) vs. Camus (filtering on the
//! switch).
//!
//! Topology, per the paper's setup ("Our experimental setup resembles
//! Figure 6, except … the publisher and subscriber are collocated for
//! accurate timestamping"):
//!
//! ```text
//! publisher --25G--> [ switch (pipeline) ] --25G--> subscriber host
//! ```
//!
//! In `Baseline` mode the switch forwards the whole feed to the
//! subscriber, which filters in software; in `Switch` mode a compiled
//! Camus pipeline decides forwarding, so only matching packets reach
//! the host. Latency is measured per *target message* from publication
//! to the completion of subscriber-side processing.

use std::collections::HashMap;

use camus_pipeline::pipeline::Pipeline;
use camus_workload::TimedPacket;

use crate::model::{HostModel, LinkModel, SwitchModel};
use crate::sim::{EventQueue, FifoServer};

/// How the feed is filtered.
pub enum FilterMode {
    /// Switch broadcasts the feed to the subscriber; the host filters.
    Baseline,
    /// A compiled Camus pipeline filters on the switch.
    Switch(Box<Pipeline>),
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The measured subscriber's switch port.
    pub subscriber_port: u16,
    /// Publisher-to-switch link.
    pub pub_link: LinkModel,
    /// Switch-to-subscriber link.
    pub sub_link: LinkModel,
    /// Switch model.
    pub switch: SwitchModel,
    /// Subscriber host model.
    pub host: HostModel,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            subscriber_port: 1,
            pub_link: LinkModel::gbps25(),
            sub_link: LinkModel::gbps25(),
            switch: SwitchModel::default(),
            host: HostModel::default(),
        }
    }
}

/// Latency distribution of delivered target messages.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    /// Sorted per-message latencies, ns.
    pub latencies_ns: Vec<u64>,
}

impl LatencyStats {
    /// Number of measured messages.
    pub fn len(&self) -> usize {
        self.latencies_ns.len()
    }

    /// Whether nothing was measured.
    pub fn is_empty(&self) -> bool {
        self.latencies_ns.is_empty()
    }

    /// The `q`-quantile latency in ns (`q` ∈ [0, 1]).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_ns.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.latencies_ns[idx]
    }

    /// Mean latency in ns.
    pub fn mean(&self) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        self.latencies_ns.iter().map(|&x| x as f64).sum::<f64>() / self.latencies_ns.len() as f64
    }

    /// Maximum latency in ns.
    pub fn max(&self) -> u64 {
        self.latencies_ns.last().copied().unwrap_or(0)
    }

    /// Fraction of messages at or below `latency_ns`.
    pub fn fraction_within(&self, latency_ns: u64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        self.latencies_ns.partition_point(|&x| x <= latency_ns) as f64
            / self.latencies_ns.len() as f64
    }

    /// CDF samples `(latency_us, fraction)` at `points` evenly spaced
    /// quantiles — the Figure 7 series.
    pub fn cdf(&self, points: usize) -> Vec<(f64, f64)> {
        (0..=points)
            .map(|i| {
                let q = i as f64 / points as f64;
                (self.percentile(q) as f64 / 1000.0, q)
            })
            .collect()
    }
}

/// Everything the experiment measured.
#[derive(Debug, Clone, Default)]
pub struct ExperimentResult {
    /// Latencies of target messages delivered to the subscriber.
    pub stats: LatencyStats,
    /// Feed packets published.
    pub packets_published: usize,
    /// Packets delivered to the measured subscriber's CPU.
    pub packets_to_subscriber: usize,
    /// Target messages in the feed (ground truth).
    pub target_messages: usize,
    /// Target messages lost to drops.
    pub target_messages_lost: usize,
    /// Packets dropped at the switch egress queue.
    pub drops_switch: usize,
    /// Packets dropped at the host receive queue.
    pub drops_host: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    SwitchIn(u32),
    HostIn(u32),
    HostDone(u32),
}

/// Reads the MoldUDP64 message count without a full parse (offset:
/// 14 eth + 20 ip + 8 udp + 18 session/sequence).
fn message_count(bytes: &[u8]) -> usize {
    if bytes.len() < 62 {
        return 1;
    }
    usize::from(u16::from_be_bytes([bytes[60], bytes[61]]))
}

/// Runs one configuration over a feed.
pub fn run_experiment(
    trace: &[TimedPacket],
    mut mode: FilterMode,
    cfg: &ExperimentConfig,
) -> ExperimentResult {
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut result = ExperimentResult {
        packets_published: trace.len(),
        target_messages: trace.iter().map(|p| p.target_messages).sum(),
        ..Default::default()
    };

    let mut pub_nic = FifoServer::new();
    let mut egress: HashMap<u16, FifoServer> = HashMap::new();
    let mut host_cpu = FifoServer::new();
    // Completion bookkeeping: packet idx → host CPU completion handled
    // at HostDone.
    let mut host_in_flight: HashMap<u32, u64> = HashMap::new();

    // Publisher: serialize every packet onto its NIC in publication
    // order (the publisher never drops; its queue is unbounded).
    for (i, p) in trace.iter().enumerate() {
        let done = pub_nic
            .admit(p.time_ns, cfg.pub_link.ser_ns(p.bytes.len()), u64::MAX)
            .expect("publisher queue is unbounded");
        q.schedule(done + cfg.pub_link.prop_ns, Ev::SwitchIn(i as u32));
    }

    while let Some((now, ev)) = q.pop() {
        match ev {
            Ev::SwitchIn(i) => {
                let pkt = &trace[i as usize];
                let ports: Vec<u16> = match &mut mode {
                    FilterMode::Baseline => vec![cfg.subscriber_port],
                    FilterMode::Switch(pipeline) => {
                        match pipeline.process(&pkt.bytes, now / 1000) {
                            Ok(d) => d.ports.iter().map(|p| p.0).collect(),
                            Err(_) => Vec::new(), // unparseable: dropped
                        }
                    }
                };
                for port in ports {
                    let srv = egress.entry(port).or_default();
                    let arrival = now + cfg.switch.pipeline_latency_ns;
                    match srv.admit(
                        arrival,
                        cfg.sub_link.ser_ns(pkt.bytes.len()),
                        cfg.switch.egress_backlog_cap_ns,
                    ) {
                        Some(done) => {
                            if port == cfg.subscriber_port {
                                q.schedule(done + cfg.sub_link.prop_ns, Ev::HostIn(i));
                            }
                        }
                        None => {
                            result.drops_switch += 1;
                            if port == cfg.subscriber_port {
                                result.target_messages_lost += pkt.target_messages;
                            }
                        }
                    }
                }
            }
            Ev::HostIn(i) => {
                let pkt = &trace[i as usize];
                let service = cfg.host.service_ns(message_count(&pkt.bytes));
                match host_cpu.admit(now, service, cfg.host.rx_backlog_cap_ns) {
                    Some(done) => {
                        host_in_flight.insert(i, done);
                        q.schedule(done, Ev::HostDone(i));
                    }
                    None => {
                        result.drops_host += 1;
                        result.target_messages_lost += pkt.target_messages;
                    }
                }
            }
            Ev::HostDone(i) => {
                let pkt = &trace[i as usize];
                result.packets_to_subscriber += 1;
                let done = host_in_flight.remove(&i).unwrap_or(now);
                for _ in 0..pkt.target_messages {
                    result.stats.latencies_ns.push(done - pkt.time_ns);
                }
            }
        }
    }
    result.stats.latencies_ns.sort_unstable();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_workload::TraceConfig;

    fn small_trace(messages: usize, kind: fn(usize) -> TraceConfig) -> Vec<TimedPacket> {
        camus_workload::synthesize_feed(&kind(messages))
    }

    #[test]
    fn baseline_delivers_every_packet_when_unloaded() {
        // A slow trickle: no queueing anywhere, every packet reaches the
        // subscriber, latency ≈ wire + pipeline + host service.
        let cfg = ExperimentConfig::default();
        let mut trace = small_trace(100, TraceConfig::synthetic);
        // Stretch the trace out to 1 packet per ms.
        for (i, p) in trace.iter_mut().enumerate() {
            p.time_ns = i as u64 * 1_000_000;
        }
        let r = run_experiment(&trace, FilterMode::Baseline, &cfg);
        assert_eq!(r.packets_to_subscriber, 100);
        assert_eq!(r.drops_switch + r.drops_host, 0);
        assert_eq!(r.stats.len(), r.target_messages);
        // Uncongested latency is small and tightly bounded.
        assert!(r.stats.max() < 5_000, "max {}", r.stats.max());
    }

    #[test]
    fn overload_builds_queues_and_latency() {
        // All packets at t=0: the host queue builds, latency grows
        // linearly with position.
        let cfg = ExperimentConfig::default();
        let mut trace = small_trace(2_000, TraceConfig::synthetic);
        for p in trace.iter_mut() {
            p.time_ns = 0;
        }
        let r = run_experiment(&trace, FilterMode::Baseline, &cfg);
        assert!(r.stats.max() > 100_000, "max {}", r.stats.max());
        assert!(r.stats.percentile(0.99) > r.stats.percentile(0.10));
    }

    #[test]
    fn host_queue_cap_drops_under_sustained_overload() {
        let cfg = ExperimentConfig {
            host: HostModel {
                rx_backlog_cap_ns: 50_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut trace = small_trace(10_000, TraceConfig::synthetic);
        for p in trace.iter_mut() {
            p.time_ns = 0;
        }
        let r = run_experiment(&trace, FilterMode::Baseline, &cfg);
        assert!(r.drops_host > 0);
        assert!(r.packets_to_subscriber < 10_000);
    }

    #[test]
    fn latency_stats_percentiles() {
        let s = LatencyStats {
            latencies_ns: (1..=100).collect(),
        };
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(s.percentile(1.0), 100);
        assert_eq!(s.percentile(0.5), 51); // idx = round(99 * 0.5) = 50
        assert_eq!(s.max(), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        assert!((s.fraction_within(50) - 0.5).abs() < 1e-9);
        let cdf = s.cdf(4);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf[4], (0.1, 1.0)); // 100ns = 0.1µs
    }

    #[test]
    fn message_count_reads_mold_header() {
        let trace = small_trace(9, |m| TraceConfig {
            messages_per_packet: 3,
            ..TraceConfig::synthetic(m)
        });
        for p in &trace {
            assert_eq!(message_count(&p.bytes), 3);
        }
        assert_eq!(message_count(&[0u8; 10]), 1);
    }
}
