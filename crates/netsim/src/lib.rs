//! # camus-netsim — discrete-event network simulation
//!
//! The substitution for the paper's hardware testbed (§4 "Throughput
//! and Latency"): a publisher and subscriber connected through a
//! switch, with the feed either **broadcast to the subscriber, which
//! filters in software** (the baseline: "the subscriber filters the
//! feed for add-order messages with stock symbol GOOGL") or **filtered
//! on the switch by a compiled Camus pipeline** ("the filtering is done
//! with Camus").
//!
//! The mechanism behind Figure 7's latency gap is queueing: §4 notes
//! that "broadcasting all packets to servers builds queues at switches
//! and servers, which increases delay and the chances of packet
//! drops". The simulator models exactly those queues:
//!
//! * [`sim`] — the event core: a time-ordered event heap with
//!   deterministic tie-breaking;
//! * [`model`] — link, switch and host models (serialization delay,
//!   pipeline latency, bounded FIFO queues, per-packet/per-message CPU
//!   costs calibrated to a DPDK-class receiver);
//! * [`experiment`] — the Figure 7 experiment harness: run a feed
//!   through either configuration and collect per-message latency
//!   CDFs, throughput and drop counts.

pub mod experiment;
pub mod model;
pub mod sim;
pub mod topology;

pub use experiment::{
    run_experiment, ExperimentConfig, ExperimentResult, FilterMode, LatencyStats,
};
pub use model::{HostModel, LinkModel, SwitchModel};
pub use topology::{FabricQueues, FabricTopology};
