//! Property tests for the network simulator: conservation laws,
//! latency bounds and monotonicity of the queueing model.

// Gated off by default: `proptest` is an external crate the offline
// build environment cannot fetch. Vendor proptest into the workspace
// and enable the `proptest` feature to run this suite.
#![cfg(feature = "proptest")]

use camus_netsim::experiment::{run_experiment, ExperimentConfig, FilterMode};
use camus_netsim::model::{HostModel, LinkModel, SwitchModel};
use camus_workload::{synthesize_feed, TimedPacket, TraceConfig};
use proptest::prelude::*;

fn trace(messages: usize, rate: f64, mult: f64, seed: u64) -> Vec<TimedPacket> {
    synthesize_feed(&TraceConfig {
        rate_msgs_per_sec: rate,
        burst_multiplier: mult,
        seed,
        ..TraceConfig::synthetic(messages)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation: every published packet is delivered to the
    /// subscriber or accounted as a drop (baseline mode forwards all).
    #[test]
    fn baseline_conserves_packets(
        rate in 50_000.0f64..2_000_000.0,
        mult in 1.0f64..12.0,
        seed in 0u64..1000,
    ) {
        let t = trace(3_000, rate, mult, seed);
        let r = run_experiment(&t, FilterMode::Baseline, &ExperimentConfig::default());
        prop_assert_eq!(
            r.packets_to_subscriber + r.drops_switch + r.drops_host,
            r.packets_published
        );
        // Every measured latency is at least the uncongested floor
        // (two serializations + propagation + pipeline + service).
        let cfg = ExperimentConfig::default();
        let floor = cfg.switch.pipeline_latency_ns
            + cfg.pub_link.prop_ns
            + cfg.sub_link.prop_ns
            + cfg.host.per_packet_ns;
        for &l in &r.stats.latencies_ns {
            prop_assert!(l >= floor, "latency {} below physical floor {}", l, floor);
        }
        // Delivered + lost target messages = all target messages.
        prop_assert_eq!(r.stats.len() + r.target_messages_lost, r.target_messages);
    }

    /// Monotonicity: a slower host CPU never improves the p99.
    #[test]
    fn slower_host_never_helps(seed in 0u64..200) {
        let t = trace(3_000, 800_000.0, 6.0, seed);
        let fast_cfg = ExperimentConfig::default();
        let slow_cfg = ExperimentConfig {
            host: HostModel {
                per_message_ns: fast_cfg.host.per_message_ns * 3,
                ..fast_cfg.host
            },
            ..fast_cfg.clone()
        };
        let fast = run_experiment(&t, FilterMode::Baseline, &fast_cfg);
        let slow = run_experiment(&t, FilterMode::Baseline, &slow_cfg);
        prop_assert!(
            slow.stats.percentile(0.99) >= fast.stats.percentile(0.99),
            "slow {} < fast {}",
            slow.stats.percentile(0.99),
            fast.stats.percentile(0.99)
        );
    }

    /// A faster subscriber link never increases any quantile.
    #[test]
    fn faster_link_never_hurts(seed in 0u64..200) {
        let t = trace(2_000, 600_000.0, 4.0, seed);
        let slow_cfg = ExperimentConfig {
            sub_link: LinkModel { rate_gbps: 10.0, prop_ns: 300 },
            ..ExperimentConfig::default()
        };
        let fast_cfg = ExperimentConfig {
            sub_link: LinkModel { rate_gbps: 100.0, prop_ns: 300 },
            ..ExperimentConfig::default()
        };
        let slow = run_experiment(&t, FilterMode::Baseline, &slow_cfg);
        let fast = run_experiment(&t, FilterMode::Baseline, &fast_cfg);
        for q in [0.5, 0.9, 0.99, 1.0] {
            prop_assert!(
                fast.stats.percentile(q) <= slow.stats.percentile(q),
                "q={}: fast {} > slow {}",
                q,
                fast.stats.percentile(q),
                slow.stats.percentile(q)
            );
        }
    }

    /// Infinite queues (no caps) never drop.
    #[test]
    fn uncapped_queues_never_drop(seed in 0u64..200, mult in 1.0f64..16.0) {
        let t = trace(2_000, 1_500_000.0, mult, seed);
        let cfg = ExperimentConfig {
            switch: SwitchModel { egress_backlog_cap_ns: u64::MAX, ..Default::default() },
            host: HostModel { rx_backlog_cap_ns: u64::MAX, ..Default::default() },
            ..ExperimentConfig::default()
        };
        let r = run_experiment(&t, FilterMode::Baseline, &cfg);
        prop_assert_eq!(r.drops_switch + r.drops_host, 0);
        prop_assert_eq!(r.stats.len(), r.target_messages);
    }
}
