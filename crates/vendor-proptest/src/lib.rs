//! Vendored, std-only subset of the `proptest` API.
//!
//! The build environment has no registry access, so — like
//! `vendor-rand` — the property-testing surface the workspace's
//! `tests/prop.rs` suites use is reimplemented here: the [`proptest!`]
//! macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`/`prop_filter_map`/`boxed`, [`prop_oneof!`],
//! `prop::collection::vec`, [`any`](arbitrary::any), and the
//! `prop_assert*` macros.
//!
//! Deliberate deviations from the real crate:
//!
//! * **No shrinking.** A failing case panics with the test name and
//!   the 64-bit seed that produced it; rerun with that seed under a
//!   debugger instead of minimizing.
//! * **Deterministic by default.** Case `i` of test `t` is seeded from
//!   `fnv1a(t)` and `i`, so failures reproduce across runs and
//!   machines. Set `PROPTEST_CASES` to override the case count.
//! * **Rejection** (`prop_filter_map`, `TestCaseError::Reject`) retries
//!   with fresh randomness and gives up loudly after a bounded number
//!   of attempts instead of tracking global rejection ratios.

use rand::rngs::StdRng;

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for random values. `pick` draws one; combinators mirror
    /// the real crate's. Only `pick` is required, and it is object-safe
    /// so strategies can be boxed.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn pick(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keeps only values `f` maps to `Some`, retrying (bounded) on
        /// rejection. `reason` is reported if the retries run dry.
        fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                inner: self,
                reason,
                f,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn pick(&self, rng: &mut StdRng) -> Self::Value {
            (**self).pick(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn pick(&self, rng: &mut StdRng) -> Self::Value {
            (**self).pick(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn pick(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn pick(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.pick(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn pick(&self, rng: &mut StdRng) -> U {
            for _ in 0..1000 {
                if let Some(v) = (self.f)(self.inner.pick(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map rejected 1000 draws in a row: {}",
                self.reason
            )
        }
    }

    /// Uniform choice between boxed alternatives — what [`prop_oneof!`]
    /// builds.
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn pick(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].pick(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn pick(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $i:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn pick(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.pick(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];
        fn pick(&self, rng: &mut StdRng) -> Self::Value {
            core::array::from_fn(|i| self[i].pick(rng))
        }
    }
}

pub mod arbitrary {
    //! [`any`] — strategies for whole primitive domains.

    use core::marker::PhantomData;
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws a uniform value from the whole domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> u64 {
            rng.gen::<u64>()
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )+};
    }
    int_arbitrary!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

    /// The strategy [`any`] returns.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// A strategy covering `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn pick(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use rand::rngs::StdRng;

    use crate::strategy::Strategy;

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements
    /// come from `element`. The size is a concrete `Range<usize>` (not
    /// a generic strategy) so bare literals like `0..24` infer.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = Strategy::pick(&self.size, rng);
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration and failure plumbing for [`proptest!`] bodies.
    //!
    //! [`proptest!`]: crate::proptest

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases each test must pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property is violated; the run aborts.
        Fail(String),
        /// The inputs were unsuitable; the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection carrying `msg`.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }
}

/// Runs the cases of one `proptest!` test. Hidden plumbing for the
/// macro; seeds are derived from the test name so every run (and every
/// machine) explores the same cases.
#[doc(hidden)]
pub fn __run_cases(
    cfg: test_runner::ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
) {
    use rand::SeedableRng;

    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cfg.cases);
    let mut base: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        base = (base ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while passed < cases {
        let seed = base ^ attempt.wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(test_runner::TestCaseError::Reject(reason)) => {
                rejected += 1;
                if rejected > cases.saturating_mul(16) + 256 {
                    panic!("proptest `{name}`: too many rejected cases ({reason})");
                }
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed (case {passed}, seed {seed:#018x}):\n{msg}");
            }
        }
        attempt += 1;
    }
}

/// Defines property tests: an optional `#![proptest_config(...)]`
/// inner attribute, then `#[test]` functions whose parameters are
/// either `pattern in strategy` bindings or `name: Type` (drawn via
/// [`Arbitrary`](arbitrary::Arbitrary)).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::__run_cases($cfg, stringify!($name), |rng| {
                $crate::__proptest_bind!(rng, $body, $($params)*)
            });
        }
    )*};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block, ) => {
        (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
            $body
            ::core::result::Result::Ok(())
        })()
    };
    ($rng:ident, $body:block, $i:ident : $t:ty $(, $($rest:tt)*)?) => {{
        let $i = <$t as $crate::arbitrary::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind!($rng, $body, $($($rest)*)?)
    }};
    ($rng:ident, $body:block, $p:pat in $e:expr $(, $($rest:tt)*)?) => {{
        let $p = $crate::strategy::Strategy::pick(&$e, $rng);
        $crate::__proptest_bind!($rng, $body, $($($rest)*)?)
    }};
}

/// Uniform choice among strategy arms (all arms are boxed to a common
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Like `assert!`, but fails the surrounding property case instead of
/// panicking directly (so the runner can report the seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?} == {:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// `prop::` paths (`prop::collection::vec`), as re-exported by the
/// prelude.
pub mod prop {
    pub use crate::collection;
}

/// The glob import test files use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::__run_cases;
    use crate::prelude::*;

    #[test]
    fn strategies_stay_in_bounds() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = prop::collection::vec((0u32..10, 5u64..=6), 3..8);
        for _ in 0..200 {
            let v = s.pick(&mut rng);
            assert!((3..8).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 10);
                assert!((5..=6).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = prop_oneof![Just(1u8), Just(2u8), (5u8..8).prop_map(|v| v)];
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[s.pick(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, false, false, true, true, true]);
    }

    #[test]
    fn filter_map_retries_until_accepted() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let s = (0u32..100).prop_filter_map("odd", |v| (v % 2 == 0).then_some(v));
        for _ in 0..100 {
            assert_eq!(s.pick(&mut rng) % 2, 0);
        }
    }

    // The macro front-end, exercised end to end (mixed binding styles,
    // config override, helper functions returning Result).
    fn helper(x: u64) -> Result<(), TestCaseError> {
        prop_assert!(x < u64::MAX, "never fires");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns_and_types(
            (a, b) in (0u32..50, 0u32..50),
            raw: u64,
            flag: bool,
            xs in prop::collection::vec(0u8..4, 0..6),
        ) {
            prop_assert!(a < 50 && b < 50);
            helper(raw)?;
            prop_assert!(xs.len() < 6);
            prop_assert_eq!(flag as u8 <= 1, true);
            for x in &xs {
                prop_assert!(*x < 4, "x={}", x);
            }
        }

        #[test]
        fn arrays_and_unions(v in [0u64..=3, 0u64..=3], pick in prop_oneof![Just(0u8), Just(1u8)]) {
            prop_assert!(v[0] <= 3 && v[1] <= 3);
            prop_assert!(pick <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "seed")]
    fn failures_report_the_seed() {
        __run_cases(ProptestConfig::with_cases(4), "demo", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = Vec::new();
        __run_cases(ProptestConfig::with_cases(5), "det", |rng| {
            a.push(Strategy::pick(&(0u64..1000), rng));
            Ok(())
        });
        let mut b = Vec::new();
        __run_cases(ProptestConfig::with_cases(5), "det", |rng| {
            b.push(Strategy::pick(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(a, b);
    }
}
