//! # camus-fabric — one subscription program across a spine/leaf fabric
//!
//! The paper compiles one packet-subscription program onto one Tofino.
//! This crate generalizes that deployment to a two-tier fabric in the
//! spirit of SNAP (placement across a topology) while keeping each
//! node a plain independently-programmed target, P4-style:
//!
//! * **Partitioning** — [`camus_core::PartitionPlan`] slices the
//!   compiled per-field tables so each leaf engine holds only the
//!   entries reachable from the sharding symbols it owns; the spine's
//!   only job is routing each packet to its symbol's owner
//!   ([`camus_core::partition::owner_of`] over the raw wire bytes).
//!   Because multicast decisions are computed *on the owning leaf*
//!   from its full action tables and group table (groups are
//!   replicated, entries are not), a cross-engine multicast is one
//!   decision on one leaf fanned out by the topology layer
//!   (`camus_netsim::topology`), never a partial union of per-leaf
//!   decisions.
//! * **Fabric epochs** — [`Fabric::apply_update`] generalizes the
//!   engine's RCU generation swap into a two-phase commit across all
//!   leaves: *prepare* (admission-check + stage on every leaf; any
//!   rejection aborts everywhere with zero observable state change),
//!   *quiesce* (drain every in-flight batch, so no packet spans
//!   epochs), *commit* (publish everywhere — infallible once every
//!   node has staged). A packet therefore always sees either the old
//!   fabric or the new fabric, never a mix.
//!
//! Equivalence to the big switch is proven differentially in
//! `tests/fabric_differential.rs` at the workspace root: fabric output
//! ≡ fresh full recompile ≡ naive AST oracle, across churn sequences,
//! leaf counts and worker counts.

use camus_core::partition::{owner_of, PartitionPlan};
use camus_core::{CompileError, UpdateReport};
use camus_engine::{Engine, EngineConfig, EngineFault, EngineReport, ShardFn};
use camus_pipeline::{place_chain, ForwardDecision, Pipeline, Table};
use camus_telemetry::{render_prometheus_fabric, TelemetrySnapshot};

/// Fabric-level control-plane faults. Every variant leaves the fabric
/// in its pre-call state (the epoch protocol aborts all staged
/// candidates before reporting), so all of them are retryable.
#[derive(Debug)]
pub enum FabricFault {
    /// Partition planning failed (unknown shard field, bad leaf count).
    Plan(CompileError),
    /// Applying an incremental update to the master program failed.
    Update(CompileError),
    /// Phase one failed on one leaf: its slice was rejected (admission)
    /// or could not be built. No leaf committed anything.
    Prepare {
        /// The leaf that rejected its slice.
        leaf: usize,
        /// The underlying engine fault.
        fault: EngineFault,
    },
    /// The quiesce barrier between prepare and commit failed on one
    /// leaf (watchdog timeout). All staged candidates were dropped;
    /// retry once the slow worker drains.
    Quiesce {
        /// The leaf that failed to drain.
        leaf: usize,
        /// The underlying engine fault.
        fault: EngineFault,
    },
}

impl std::fmt::Display for FabricFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricFault::Plan(e) => write!(f, "fabric partition plan failed: {e}"),
            FabricFault::Update(e) => write!(f, "fabric master update failed: {e}"),
            FabricFault::Prepare { leaf, fault } => {
                write!(
                    f,
                    "fabric epoch rejected in prepare on leaf {leaf}: {fault}"
                )
            }
            FabricFault::Quiesce { leaf, fault } => {
                write!(f, "fabric epoch barrier failed on leaf {leaf}: {fault}")
            }
        }
    }
}

impl std::error::Error for FabricFault {}

/// Fabric construction parameters.
#[derive(Clone)]
pub struct FabricConfig {
    /// PHV-layout name of the sharding field (e.g. `"ev.sym0"`,
    /// `"add_order.stock"`). Must be an exact-match query field.
    pub shard_field: String,
    /// Extracts the sharding field's value from raw wire bytes (see
    /// `camus_workload::raw_field_extractor`). The spine routes on
    /// `owner_of(extract(pkt), leaves)`; the same function shards
    /// packets across each leaf's workers.
    pub extract: ShardFn,
    /// One engine config per leaf (the vector's length is the leaf
    /// count). Per-leaf `admission` models let heterogeneous ASICs
    /// coexist in one fabric.
    pub leaf_engines: Vec<EngineConfig>,
}

impl FabricConfig {
    /// A homogeneous fabric: `leaves` copies of one engine config.
    pub fn uniform(
        leaves: usize,
        shard_field: &str,
        extract: ShardFn,
        engine: EngineConfig,
    ) -> Self {
        FabricConfig {
            shard_field: shard_field.to_string(),
            extract,
            leaf_engines: vec![engine; leaves.max(1)],
        }
    }
}

/// A running fabric: one engine per leaf plus the spine's routing
/// state and the master (big-switch) program the slices derive from.
///
/// The driver is single-threaded by design — `submit` and
/// `apply_update` interleave in program order, which is what makes
/// "every packet sees exactly one epoch" meaningful and testable.
pub struct Fabric {
    engines: Vec<Engine>,
    extract: ShardFn,
    shard_field: String,
    master: Pipeline,
    plan: PartitionPlan,
    epoch: u64,
    epochs_rejected: u64,
    submitted_per_leaf: Vec<u64>,
    /// Leaf index per submitted packet, in global submission order;
    /// populated only when every leaf records decisions (otherwise the
    /// memory would buy nothing).
    route_log: Vec<usize>,
    record_routes: bool,
}

impl Fabric {
    /// Plans the partition of `master`, admission-checks every slice
    /// against its leaf's configured ASIC model, and starts one engine
    /// per leaf. Nothing starts if any leaf cannot hold its slice.
    pub fn start(master: &Pipeline, cfg: &FabricConfig) -> Result<Fabric, FabricFault> {
        let leaves = cfg.leaf_engines.len().max(1);
        let plan =
            PartitionPlan::compute(master, &cfg.shard_field, leaves).map_err(FabricFault::Plan)?;
        let slices = plan.slices(master);
        // `Engine::start` trusts its seed pipeline (admission guards
        // *updates*), so the fabric applies the per-leaf budget check
        // up front, before any thread spawns.
        for (leaf, (slice, ecfg)) in slices.iter().zip(&cfg.leaf_engines).enumerate() {
            if let Some(model) = &ecfg.admission {
                let placement = place_chain(&slice.tables, model);
                if let Some(err) = placement.failure {
                    return Err(FabricFault::Prepare {
                        leaf,
                        fault: EngineFault::Admission(err),
                    });
                }
            }
        }
        let record_routes = cfg.leaf_engines.iter().all(|e| e.record_decisions);
        let engines = slices
            .iter()
            .zip(&cfg.leaf_engines)
            .map(|(slice, ecfg)| Engine::start(slice, ecfg, cfg.extract.clone()))
            .collect();
        Ok(Fabric {
            engines,
            extract: cfg.extract.clone(),
            shard_field: cfg.shard_field.clone(),
            master: master.clone(),
            plan,
            epoch: 0,
            epochs_rejected: 0,
            submitted_per_leaf: vec![0; leaves],
            route_log: Vec::new(),
            record_routes,
        })
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.engines.len()
    }

    /// Committed fabric epochs so far (0 = the seed program).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epochs rejected in phase one (all-or-nothing: no leaf changed).
    pub fn epochs_rejected(&self) -> u64 {
        self.epochs_rejected
    }

    /// The current partition plan.
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// The leaf that owns a raw packet (spine routing decision).
    pub fn route(&self, packet: &[u8]) -> usize {
        owner_of((self.extract)(packet), self.engines.len())
    }

    /// Installed (control-plane master) tables of one leaf — for
    /// asserting bit-identical pre-state after an aborted epoch.
    pub fn leaf_tables(&self, leaf: usize) -> &[Table] {
        self.engines[leaf].installed_tables()
    }

    /// Published RCU generation of one leaf.
    pub fn leaf_generation(&self, leaf: usize) -> u64 {
        self.engines[leaf].generation()
    }

    /// Total packets submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted_per_leaf.iter().sum()
    }

    /// Routes one packet to its owning leaf and submits it there.
    /// Returns the leaf it went to.
    pub fn submit(&mut self, packet: &[u8], now_us: u64) -> usize {
        let leaf = self.route(packet);
        self.engines[leaf].submit(packet, now_us);
        self.submitted_per_leaf[leaf] += 1;
        if self.record_routes {
            self.route_log.push(leaf);
        }
        leaf
    }

    /// Applies an incremental-compiler update as one fabric epoch: the
    /// report is applied to the *master* program, the master is
    /// re-sliced, and the slices commit atomically across all leaves
    /// (see [`Fabric::install_master`] for the phase structure).
    pub fn apply_update(&mut self, report: &UpdateReport) -> Result<(), FabricFault> {
        let mut master = self.master.clone();
        report.apply_to(&mut master).map_err(FabricFault::Update)?;
        self.install_master(master)
    }

    /// Installs a new master program as one two-phase fabric epoch.
    ///
    /// 1. **Prepare**: slice the master; every leaf admission-checks
    ///    and stages its slice. Any failure ⇒ abort everywhere; no
    ///    generation bump, no table change, on any leaf.
    /// 2. **Quiesce barrier**: drain every leaf's in-flight batches.
    ///    Packets submitted before this epoch thus complete entirely
    ///    under the old program — no packet ever observes a
    ///    mixed-epoch fabric. A watchdog timeout aborts (retryable);
    ///    dead workers found here are respawned, not fatal.
    /// 3. **Commit**: publish everywhere. Infallible by construction —
    ///    every admission already passed in phase one.
    pub fn install_master(&mut self, master: Pipeline) -> Result<(), FabricFault> {
        let plan = PartitionPlan::compute(&master, &self.shard_field, self.engines.len())
            .map_err(FabricFault::Plan)?;
        let slices = plan.slices(&master);

        // Phase 1: prepare (stage) on every leaf.
        for (leaf, slice) in slices.iter().enumerate() {
            if let Err(fault) = self.engines[leaf].prepare_pipeline(slice) {
                for e in &mut self.engines {
                    e.abort_staged();
                }
                self.epochs_rejected += 1;
                return Err(FabricFault::Prepare { leaf, fault });
            }
        }

        // Phase 2: the barrier. After this, nothing submitted before
        // the epoch is still in flight anywhere.
        for leaf in 0..self.engines.len() {
            if let Err(fault) = self.engines[leaf].quiesce() {
                for e in &mut self.engines {
                    e.abort_staged();
                }
                return Err(FabricFault::Quiesce { leaf, fault });
            }
        }

        // Phase 3: commit everywhere.
        for e in &mut self.engines {
            let committed = e.commit_staged();
            debug_assert!(committed, "every leaf staged in phase one");
        }
        self.master = master;
        self.plan = plan;
        self.epoch += 1;
        Ok(())
    }

    /// Drains every leaf (no epoch change). Respawns dead workers as a
    /// side effect, like the underlying [`Engine::quiesce`].
    pub fn quiesce(&mut self) -> Result<(), FabricFault> {
        for leaf in 0..self.engines.len() {
            if let Err(fault) = self.engines[leaf].quiesce() {
                return Err(FabricFault::Quiesce { leaf, fault });
            }
        }
        Ok(())
    }

    /// Joins every leaf engine and aggregates the fabric report.
    pub fn finish(self) -> FabricReport {
        let leaves: Vec<EngineReport> = self.engines.into_iter().map(Engine::finish).collect();
        FabricReport {
            epoch: self.epoch,
            epochs_rejected: self.epochs_rejected,
            submitted_per_leaf: self.submitted_per_leaf,
            route_log: self.route_log,
            leaves,
        }
    }
}

/// The aggregated end-of-run fabric report.
#[derive(Debug)]
pub struct FabricReport {
    /// Committed epochs.
    pub epoch: u64,
    /// Epochs rejected all-or-nothing in phase one.
    pub epochs_rejected: u64,
    /// Packets submitted to each leaf.
    pub submitted_per_leaf: Vec<u64>,
    /// Per-leaf engine reports, in leaf order.
    pub leaves: Vec<EngineReport>,
    route_log: Vec<usize>,
}

impl FabricReport {
    /// Total packets submitted across the fabric.
    pub fn submitted(&self) -> u64 {
        self.submitted_per_leaf.iter().sum()
    }

    /// Zero-loss reconciliation, per leaf and fabric-wide: every
    /// submitted packet is either counted in its leaf's `ExecStats` or
    /// listed as quarantined. Exact under supervision (see
    /// [`EngineReport::quarantined`]).
    pub fn reconciles(&self) -> bool {
        self.submitted_per_leaf
            .iter()
            .zip(&self.leaves)
            .all(|(&submitted, r)| submitted == r.stats.packets + r.quarantined.len() as u64)
    }

    /// Packets lost to quarantine across the fabric.
    pub fn total_quarantined(&self) -> usize {
        self.leaves.iter().map(|r| r.quarantined.len()).sum()
    }

    /// Reassembles per-packet decisions in *global* submission order
    /// from the per-leaf reports (requires `record_decisions` on every
    /// leaf). Quarantined packets yield `None`.
    pub fn decisions_in_submit_order(&self) -> Vec<Option<&ForwardDecision>> {
        // Per-leaf: map local seq -> Option<decision>. EngineReport
        // decisions are in local submission order with quarantined
        // seqs (sorted) skipped.
        let per_leaf: Vec<Vec<Option<&ForwardDecision>>> = self
            .leaves
            .iter()
            .zip(&self.submitted_per_leaf)
            .map(|(r, &submitted)| {
                let mut out = Vec::with_capacity(submitted as usize);
                let mut decisions = r.decisions.iter();
                let mut quarantined = r.quarantined.iter().peekable();
                for seq in 0..submitted {
                    if quarantined.peek() == Some(&&seq) {
                        quarantined.next();
                        out.push(None);
                    } else {
                        out.push(decisions.next());
                    }
                }
                out
            })
            .collect();
        let mut cursors = vec![0usize; self.leaves.len()];
        self.route_log
            .iter()
            .map(|&leaf| {
                let local = cursors[leaf];
                cursors[leaf] += 1;
                per_leaf[leaf].get(local).copied().flatten()
            })
            .collect()
    }

    /// Per-node telemetry snapshots, labeled `leaf0`, `leaf1`, …
    /// (present iff the leaves ran with `telemetry: true`).
    pub fn telemetry_nodes(&self) -> Vec<(String, &TelemetrySnapshot)> {
        self.leaves
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.telemetry.as_ref().map(|t| (format!("leaf{i}"), t)))
            .collect()
    }

    /// Renders the whole fabric's telemetry as one Prometheus
    /// exposition with `node` labels; `None` when telemetry was off.
    pub fn render_prometheus(&self) -> Option<String> {
        let nodes = self.telemetry_nodes();
        if nodes.is_empty() {
            return None;
        }
        let borrowed: Vec<(&str, &TelemetrySnapshot)> =
            nodes.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        Some(render_prometheus_fabric(&borrowed))
    }
}

/// Entry-for-entry table-set equality: names, keys, default actions
/// and every entry (priority, matches, ops) in order. This is the
/// "bit-identical pre-state" check the epoch-abort tests use —
/// deliberately ignoring prepared-index scratch state, which is
/// derived data.
pub fn tables_identical(a: &[Table], b: &[Table]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.name == y.name
                && x.keys == y.keys
                && x.default_ops == y.default_ops
                && x.len() == y.len()
                && x.entries().eq(y.entries())
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_core::{Compiler, CompilerOptions};
    use camus_lang::{parse_program, parse_spec};
    use camus_workload::raw_field_extractor;

    const SPEC: &str = "header_type ev_t { fields { sym: 64; val: 32; } }\n\
                        header ev_t ev;\n\
                        @query_field_exact(ev.sym)\n\
                        @query_field(ev.val)\n";

    fn compile(rules: &str) -> Pipeline {
        let spec = parse_spec(SPEC).unwrap();
        let c = Compiler::new(spec, CompilerOptions::raw()).unwrap();
        c.compile(&parse_program(rules).unwrap()).unwrap().pipeline
    }

    fn extractor() -> ShardFn {
        let spec = parse_spec(SPEC).unwrap();
        raw_field_extractor(&spec, "sym").unwrap()
    }

    fn event(sym: &str, val: u32) -> Vec<u8> {
        let mut b = camus_lang::symbol::encode_symbol(sym, 64)
            .to_be_bytes()
            .to_vec();
        b.extend_from_slice(&val.to_be_bytes());
        b
    }

    fn cfg(workers: usize) -> EngineConfig {
        EngineConfig {
            workers,
            batch_packets: 4,
            record_decisions: true,
            ..EngineConfig::default()
        }
    }

    const RULES: &str = "sym == AA : fwd(1)\n\
                         sym == BB and val > 10 : fwd(2)\n\
                         val > 50 : fwd(9)";

    #[test]
    fn fabric_forwards_like_the_big_switch() {
        let master = compile(RULES);
        for leaves in [1usize, 2, 4] {
            let fcfg = FabricConfig::uniform(leaves, "ev.sym", extractor(), cfg(2));
            let mut fabric = Fabric::start(&master, &fcfg).unwrap();
            let mut big = master.clone();
            let mut expected = Vec::new();
            for sym in ["AA", "BB", "CC"] {
                for val in [0u32, 20, 60] {
                    let ev = event(sym, val);
                    expected.push(big.process(&ev, 0).unwrap().ports);
                    fabric.submit(&ev, 0);
                }
            }
            let report = fabric.finish();
            assert!(report.reconciles());
            let got = report.decisions_in_submit_order();
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(&g.unwrap().ports, e, "leaves={leaves}");
            }
        }
    }

    #[test]
    fn epoch_commits_atomically_and_bumps_generations() {
        let master = compile(RULES);
        let fcfg = FabricConfig::uniform(2, "ev.sym", extractor(), cfg(1));
        let mut fabric = Fabric::start(&master, &fcfg).unwrap();
        let gens: Vec<u64> = (0..2).map(|l| fabric.leaf_generation(l)).collect();
        fabric
            .install_master(compile("sym == CC : fwd(7)"))
            .unwrap();
        assert_eq!(fabric.epoch(), 1);
        for (l, g) in gens.iter().enumerate() {
            assert_eq!(fabric.leaf_generation(l), g + 1);
        }
        fabric.submit(&event("CC", 1), 0);
        fabric.submit(&event("AA", 1), 0);
        let report = fabric.finish();
        let got = report.decisions_in_submit_order();
        assert_eq!(got[0].unwrap().ports, vec![camus_pipeline::PortId(7)]);
        assert!(got[1].unwrap().ports.is_empty(), "old rules are gone");
    }

    #[test]
    fn plan_failure_is_all_or_nothing() {
        let master = compile(RULES);
        let fcfg = FabricConfig::uniform(2, "ev.sym", extractor(), cfg(1));
        let mut fabric = Fabric::start(&master, &fcfg).unwrap();
        let before: Vec<Vec<Table>> = (0..2).map(|l| fabric.leaf_tables(l).to_vec()).collect();
        // A master whose layout lacks the shard field: planning fails.
        let alien = {
            let spec = parse_spec(
                "header_type x_t { fields { a: 32; } }\nheader x_t x;\n@query_field(x.a)\n",
            )
            .unwrap();
            let c = Compiler::new(spec, CompilerOptions::raw()).unwrap();
            c.compile(&parse_program("a > 1 : fwd(1)").unwrap())
                .unwrap()
                .pipeline
        };
        assert!(matches!(
            fabric.install_master(alien),
            Err(FabricFault::Plan(_))
        ));
        assert_eq!(fabric.epoch(), 0);
        for (l, b) in before.iter().enumerate() {
            assert!(
                tables_identical(fabric.leaf_tables(l), b),
                "leaf {l} changed"
            );
        }
    }

    #[test]
    fn mixed_worker_counts_per_leaf() {
        let master = compile(RULES);
        let fcfg = FabricConfig {
            shard_field: "ev.sym".into(),
            extract: extractor(),
            leaf_engines: vec![cfg(1), cfg(8)],
        };
        let mut fabric = Fabric::start(&master, &fcfg).unwrap();
        let mut big = master.clone();
        let evs: Vec<Vec<u8>> = ["AA", "BB", "CC", "DD"]
            .iter()
            .flat_map(|s| (0..8u32).map(move |v| event(s, v * 10)))
            .collect();
        let expected: Vec<_> = evs
            .iter()
            .map(|e| big.process(e, 0).unwrap().ports)
            .collect();
        for e in &evs {
            fabric.submit(e, 0);
        }
        let report = fabric.finish();
        assert!(report.reconciles());
        for (g, e) in report.decisions_in_submit_order().iter().zip(&expected) {
            assert_eq!(&g.unwrap().ports, e);
        }
    }

    #[test]
    fn route_is_stable_and_total() {
        let master = compile(RULES);
        let fcfg = FabricConfig::uniform(4, "ev.sym", extractor(), cfg(1));
        let fabric = Fabric::start(&master, &fcfg).unwrap();
        // Unknown symbols and garbage still route deterministically.
        let garbage: Vec<u8> = vec![0xFF; 3];
        assert_eq!(fabric.route(&garbage), fabric.route(&garbage));
        assert!(fabric.route(&event("QQ", 5)) < 4);
        fabric.finish();
    }
}
