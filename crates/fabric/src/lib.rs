//! # camus-fabric — one subscription program across a spine/leaf fabric
//!
//! The paper compiles one packet-subscription program onto one Tofino.
//! This crate generalizes that deployment to a two-tier fabric in the
//! spirit of SNAP (placement across a topology) while keeping each
//! node a plain independently-programmed target, P4-style:
//!
//! * **Partitioning** — [`camus_core::PartitionPlan`] slices the
//!   compiled per-field tables so each leaf engine holds only the
//!   entries reachable from the sharding symbols it owns; the spine's
//!   only job is routing each packet to its symbol's owner
//!   ([`camus_core::partition::owner_of`] over the raw wire bytes).
//!   Because multicast decisions are computed *on the owning leaf*
//!   from its full action tables and group table (groups are
//!   replicated, entries are not), a cross-engine multicast is one
//!   decision on one leaf fanned out by the topology layer
//!   (`camus_netsim::topology`), never a partial union of per-leaf
//!   decisions.
//! * **Fabric epochs** — [`Fabric::apply_update`] generalizes the
//!   engine's RCU generation swap into a two-phase commit across all
//!   leaves: *prepare* (admission-check + stage on every leaf; any
//!   rejection aborts everywhere with zero observable state change),
//!   *quiesce* (drain every in-flight batch, so no packet spans
//!   epochs), *commit* (publish everywhere — infallible once every
//!   node has staged). A packet therefore always sees either the old
//!   fabric or the new fabric, never a mix.
//! * **Survivability** — leaves fail (crash outright, or partition
//!   from the spine) and the fabric carries on. A failure detector
//!   (liveness probes every [`FabricConfig::probe_interval`]
//!   submissions, plus the quiesce barrier itself) declares dead
//!   leaves *fail-stop*; while a death is detected-but-not-repaired
//!   the spine runs **degraded**, drop-counting packets whose shard
//!   owner died ([`FabricReport::orphaned_per_leaf`]); repair is an
//!   automatic **failover epoch** — the master is re-sliced over the
//!   survivors ([`camus_core::PartitionPlan::compute_subset`], which
//!   moves *only* the dead leaves' symbols) and committed through the
//!   same two-phase protocol. Transient epoch failures (a quiesce
//!   watchdog timeout on a stalled survivor) retry with bounded
//!   exponential backoff ([`EpochOptions`]); state that lived only on
//!   the dead leaf is written off as typed [`StateLoss`] records
//!   rather than silently forgotten. The ledger stays exact
//!   throughout: `submitted == decided + quarantined + orphaned`.
//!
//! Equivalence to the big switch is proven differentially in
//! `tests/fabric_differential.rs` at the workspace root: fabric output
//! ≡ fresh full recompile ≡ naive AST oracle, across churn sequences,
//! leaf counts and worker counts. Survivability is proven by the
//! chaos soak (`tests/fabric_chaos.rs`): scripted kill / stall /
//! partition events ([`camus_workload::ChaosPlan`]) with post-failover
//! forwarding bit-identical to a fresh big-switch recompile over the
//! surviving shards.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::time::{Duration, Instant};

use camus_core::partition::{owner_in_subset, PartitionPlan};
use camus_core::{CompileError, UpdateReport};
use camus_engine::{Engine, EngineConfig, EngineFault, EngineReport, ShardFn};
use camus_pipeline::{place_chain, ForwardDecision, Pipeline, Table};
use camus_telemetry::{render_prometheus_fabric, RobustnessCounters, TelemetrySnapshot};
use camus_workload::{ChaosPlan, NodeEvent, NodeEventKind};

/// Fabric-level control-plane faults. Every variant leaves the fabric
/// in its pre-call state (the epoch protocol aborts all staged
/// candidates before reporting), so all of them are retryable —
/// though only [`FabricFault::is_transient`] ones are retried
/// *automatically* by the epoch machinery.
#[derive(Debug)]
pub enum FabricFault {
    /// Partition planning failed (unknown shard field, bad leaf count,
    /// or — fatally — no surviving leaf to plan over).
    Plan(CompileError),
    /// Applying an incremental update to the master program failed.
    Update(CompileError),
    /// Phase one failed on one leaf: its slice was rejected (admission)
    /// or could not be built. No leaf committed anything.
    Prepare {
        /// The leaf that rejected its slice.
        leaf: usize,
        /// The underlying engine fault.
        fault: EngineFault,
    },
    /// The quiesce barrier between prepare and commit failed on one
    /// leaf (watchdog timeout). All staged candidates were dropped;
    /// retry once the slow worker drains.
    Quiesce {
        /// The leaf that failed to drain.
        leaf: usize,
        /// The underlying engine fault.
        fault: EngineFault,
    },
}

impl FabricFault {
    /// Whether the epoch retry/backoff machinery should absorb this
    /// fault on its own: only a quiesce watchdog timeout qualifies —
    /// the barrier raced a slow worker and draining again can win.
    /// Admission rejections are deterministic (retrying re-rejects),
    /// plan/update failures are program bugs, and a dead node is
    /// handled by failover, not by retrying the dead node.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FabricFault::Quiesce {
                fault: EngineFault::QuiesceTimeout { .. },
                ..
            }
        )
    }
}

impl std::fmt::Display for FabricFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricFault::Plan(e) => write!(f, "fabric partition plan failed: {e}"),
            FabricFault::Update(e) => write!(f, "fabric master update failed: {e}"),
            FabricFault::Prepare { leaf, fault } => {
                write!(
                    f,
                    "fabric epoch rejected in prepare on leaf {leaf}: {fault}"
                )
            }
            FabricFault::Quiesce { leaf, fault } => {
                write!(f, "fabric epoch barrier failed on leaf {leaf}: {fault}")
            }
        }
    }
}

impl std::error::Error for FabricFault {}

/// Epoch retry policy: how many times, and with what backoff, a
/// transient epoch failure (quiesce watchdog timeout) is retried
/// before the fault surfaces to the caller. Every attempt runs the
/// full abort-all-or-nothing protocol — a retried epoch is
/// indistinguishable from a first attempt.
#[derive(Debug, Clone)]
pub struct EpochOptions {
    /// Additional attempts after the first (0 = single-shot, the
    /// pre-survivability behaviour).
    pub retry_attempts: u32,
    /// Backoff before retry `k` is `min(cap, base · 2^(k-1))` ms.
    pub retry_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub retry_cap_ms: u64,
}

impl Default for EpochOptions {
    fn default() -> Self {
        EpochOptions {
            retry_attempts: 0,
            retry_base_ms: 10,
            retry_cap_ms: 250,
        }
    }
}

impl EpochOptions {
    /// Backoff before the `attempt`-th retry (1-based), milliseconds.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let factor = 1u64 << attempt.saturating_sub(1).min(16);
        self.retry_base_ms
            .saturating_mul(factor)
            .min(self.retry_cap_ms)
    }
}

/// A leaf's place in the failure detector's state machine. Fail-stop:
/// the only transitions are `Healthy → Dead` (declared by a probe or
/// by the quiesce barrier) and `Dead → Evicted` (its shards failed
/// over in a committed emergency epoch). There is no resurrection —
/// the fabric replaces a node's shards, not the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafHealth {
    /// Serving its shards.
    Healthy,
    /// Declared dead; its shards are orphaned (drop-counted at the
    /// spine) until a failover epoch commits. The fabric is *degraded*
    /// while any leaf sits here.
    Dead,
    /// Dead and repaired: a committed failover epoch re-homed its
    /// shards onto the survivors.
    Evicted,
}

/// One register slot's worth of state that died with a leaf. Survivor
/// state is carried across epochs automatically (`ShardCtx::adopt` /
/// `RegisterFile::carry_from`); what lived *only* on the dead leaf is
/// unrecoverable, and the fabric records exactly what that was
/// instead of silently forgetting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateLoss {
    /// The dead leaf.
    pub leaf: usize,
    /// Register slot index in the master program's allocation.
    pub register: usize,
    /// The slot's tumbling window, microseconds (0 = unwindowed).
    pub window_us: u64,
}

/// One completed failover: a dead leaf whose shards were re-homed by
/// a committed emergency epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverRecord {
    /// The leaf that died.
    pub leaf: usize,
    /// The fabric epoch that repaired it.
    pub epoch: u64,
    /// Fault (scripted kill/partition) → declared dead, nanoseconds;
    /// 0 when the fault instant is unknown (organic death).
    pub detect_ns: u64,
    /// Mean-time-to-repair: fault → failover epoch committed,
    /// nanoseconds (detection latency included).
    pub mttr_ns: u64,
    /// Packets drop-counted for this leaf's shards during its
    /// degraded window (final — routing excludes the leaf afterwards).
    pub orphaned: u64,
}

/// Fabric construction parameters.
#[derive(Clone)]
pub struct FabricConfig {
    /// PHV-layout name of the sharding field (e.g. `"ev.sym0"`,
    /// `"add_order.stock"`). Must be an exact-match query field.
    pub shard_field: String,
    /// Extracts the sharding field's value from raw wire bytes (see
    /// `camus_workload::raw_field_extractor`). The spine routes on
    /// `owner_of(extract(pkt), leaves)`; the same function shards
    /// packets across each leaf's workers.
    pub extract: ShardFn,
    /// One engine config per leaf (the vector's length is the leaf
    /// count). Per-leaf `admission` models let heterogeneous ASICs
    /// coexist in one fabric.
    pub leaf_engines: Vec<EngineConfig>,
    /// Retry/backoff policy for transient epoch failures.
    pub epoch: EpochOptions,
    /// Liveness-probe cadence, in submissions: every `probe_interval`
    /// packets the spine sweeps all healthy leaves (`is_alive` +
    /// reachability) and, if anything died, attempts a failover epoch.
    /// 0 disables probing — detection then rides only the quiesce
    /// barrier.
    pub probe_interval: u64,
    /// Scripted node-level chaos events, applied at their global
    /// submission seqs (empty = none). See
    /// [`camus_workload::ChaosPlan::generate`].
    pub chaos: ChaosPlan,
}

impl FabricConfig {
    /// A fabric with explicit per-leaf engine configs and default
    /// survivability options (probes every 64 packets, single-shot
    /// epochs, no scripted chaos).
    pub fn new(shard_field: &str, extract: ShardFn, leaf_engines: Vec<EngineConfig>) -> Self {
        FabricConfig {
            shard_field: shard_field.to_string(),
            extract,
            leaf_engines,
            epoch: EpochOptions::default(),
            probe_interval: 64,
            chaos: ChaosPlan::default(),
        }
    }

    /// A homogeneous fabric: `leaves` copies of one engine config.
    pub fn uniform(
        leaves: usize,
        shard_field: &str,
        extract: ShardFn,
        engine: EngineConfig,
    ) -> Self {
        Self::new(shard_field, extract, vec![engine; leaves.max(1)])
    }
}

/// Where one submitted packet went, in global submission order.
#[derive(Debug, Clone, Copy)]
enum Route {
    /// Delivered to its owning leaf's engine.
    Delivered(usize),
    /// Dropped at the spine: the owner was dead (degraded mode) or
    /// behind an undetected partition. The index is the owner it
    /// *would* have gone to (kept for debugging; reassembly only
    /// needs to know the packet never reached an engine).
    Orphaned(#[allow(dead_code)] usize),
}

/// A running fabric: one engine per leaf plus the spine's routing
/// state and the master (big-switch) program the slices derive from.
///
/// The driver is single-threaded by design — `submit` and
/// `apply_update` interleave in program order, which is what makes
/// "every packet sees exactly one epoch" meaningful and testable.
/// Failover supports fabrics of up to 64 leaves (the live mask is one
/// machine word, like the partition plan's).
pub struct Fabric {
    engines: Vec<Engine>,
    extract: ShardFn,
    shard_field: String,
    master: Pipeline,
    plan: PartitionPlan,
    epoch: u64,
    epochs_rejected: u64,
    epoch_opts: EpochOptions,
    probe_interval: u64,
    /// Scripted chaos events, sorted by trigger seq; `next_chaos` is
    /// the cursor of the first not-yet-applied one.
    chaos: Vec<NodeEvent>,
    next_chaos: usize,
    /// Global submission counter — drives chaos triggers and probes.
    next_seq: u64,
    health: Vec<LeafHealth>,
    /// `false` once a scripted partition cut the spine's link to the
    /// leaf. The engine may still be running; the fabric can no longer
    /// tell (fail-stop model).
    reachable: Vec<bool>,
    /// When the scripted kill/partition fired (None = no fault, or an
    /// organic one the fabric never saw the start of).
    fault_at: Vec<Option<Instant>>,
    detected_at: Vec<Option<Instant>>,
    submitted_per_leaf: Vec<u64>,
    /// Degraded-mode drops: packets whose shard owner was declared
    /// dead, counted per dead owner.
    orphaned_per_leaf: Vec<u64>,
    /// Packets black-holed on a partitioned link *before* detection —
    /// lost on the wire, but not yet control-plane knowledge. They
    /// convert to `orphaned_per_leaf` the moment the leaf is declared
    /// dead (or at `finish`, so the ledger is always exact).
    void_per_leaf: Vec<u64>,
    state_losses: Vec<StateLoss>,
    failovers: Vec<FailoverRecord>,
    robustness: RobustnessCounters,
    /// Route per submitted packet, in global submission order;
    /// populated only when every leaf records decisions (otherwise the
    /// memory would buy nothing).
    route_log: Vec<Route>,
    record_routes: bool,
}

impl Fabric {
    /// Plans the partition of `master`, admission-checks every slice
    /// against its leaf's configured ASIC model, and starts one engine
    /// per leaf. Nothing starts if any leaf cannot hold its slice.
    pub fn start(master: &Pipeline, cfg: &FabricConfig) -> Result<Fabric, FabricFault> {
        let leaves = cfg.leaf_engines.len().max(1);
        let plan =
            PartitionPlan::compute(master, &cfg.shard_field, leaves).map_err(FabricFault::Plan)?;
        let slices = plan.slices(master);
        // `Engine::start` trusts its seed pipeline (admission guards
        // *updates*), so the fabric applies the per-leaf budget check
        // up front, before any thread spawns.
        for (leaf, (slice, ecfg)) in slices.iter().zip(&cfg.leaf_engines).enumerate() {
            if let Some(model) = &ecfg.admission {
                let placement = place_chain(&slice.tables, model);
                if let Some(err) = placement.failure {
                    return Err(FabricFault::Prepare {
                        leaf,
                        fault: EngineFault::Admission(err),
                    });
                }
            }
        }
        let record_routes = cfg.leaf_engines.iter().all(|e| e.record_decisions);
        let engines: Vec<Engine> = slices
            .iter()
            .zip(&cfg.leaf_engines)
            .map(|(slice, ecfg)| Engine::start(slice, ecfg, cfg.extract.clone()))
            .collect();
        let mut chaos = cfg.chaos.events.clone();
        chaos.sort_by_key(|e| (e.at_seq, e.leaf));
        Ok(Fabric {
            engines,
            extract: cfg.extract.clone(),
            shard_field: cfg.shard_field.clone(),
            master: master.clone(),
            plan,
            epoch: 0,
            epochs_rejected: 0,
            epoch_opts: cfg.epoch.clone(),
            probe_interval: cfg.probe_interval,
            chaos,
            next_chaos: 0,
            next_seq: 0,
            health: vec![LeafHealth::Healthy; leaves],
            reachable: vec![true; leaves],
            fault_at: vec![None; leaves],
            detected_at: vec![None; leaves],
            submitted_per_leaf: vec![0; leaves],
            orphaned_per_leaf: vec![0; leaves],
            void_per_leaf: vec![0; leaves],
            state_losses: Vec::new(),
            failovers: Vec::new(),
            robustness: RobustnessCounters::default(),
            route_log: Vec::new(),
            record_routes,
        })
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.engines.len()
    }

    /// Committed fabric epochs so far (0 = the seed program).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epochs rejected in phase one (all-or-nothing: no leaf changed).
    pub fn epochs_rejected(&self) -> u64 {
        self.epochs_rejected
    }

    /// The current partition plan.
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// One leaf's place in the failure detector's state machine.
    pub fn leaf_health(&self, leaf: usize) -> LeafHealth {
        self.health[leaf]
    }

    /// Whether any leaf is declared dead but not yet failed over —
    /// the window in which its shards' packets are drop-counted.
    pub fn degraded(&self) -> bool {
        self.health.contains(&LeafHealth::Dead)
    }

    /// Fabric-global robustness counters so far.
    pub fn robustness(&self) -> &RobustnessCounters {
        &self.robustness
    }

    /// Replaces the epoch retry/backoff policy at runtime (applies to
    /// the next epoch attempt; nothing in flight is disturbed).
    pub fn set_epoch_options(&mut self, opts: EpochOptions) {
        self.epoch_opts = opts;
    }

    /// Completed failovers so far.
    pub fn failovers(&self) -> &[FailoverRecord] {
        &self.failovers
    }

    /// The leaf that owns a raw packet under the *committed* plan
    /// (spine routing decision). During a degraded window this still
    /// names the dead owner — survivors do not hold the orphaned
    /// shards' entries until the failover epoch commits, so rerouting
    /// early would silently mis-forward, which is worse than an
    /// honestly counted drop.
    pub fn route(&self, packet: &[u8]) -> usize {
        owner_in_subset(
            (self.extract)(packet),
            self.engines.len(),
            self.plan.live_mask,
        )
    }

    /// Installed (control-plane master) tables of one leaf — for
    /// asserting bit-identical pre-state after an aborted epoch.
    pub fn leaf_tables(&self, leaf: usize) -> &[Table] {
        self.engines[leaf].installed_tables()
    }

    /// Published RCU generation of one leaf.
    pub fn leaf_generation(&self, leaf: usize) -> u64 {
        self.engines[leaf].generation()
    }

    /// Total packets submitted to the fabric (delivered, black-holed
    /// or drop-counted).
    pub fn submitted(&self) -> u64 {
        self.submitted_per_leaf.iter().sum::<u64>()
            + self.orphaned_per_leaf.iter().sum::<u64>()
            + self.void_per_leaf.iter().sum::<u64>()
    }

    /// Crashes a leaf (the chaos harness's kill event, also callable
    /// directly by a driver): its engine abandons everything in
    /// flight and the fabric's detector will declare it dead at the
    /// next probe tick or quiesce barrier.
    pub fn kill_leaf(&mut self, leaf: usize) {
        self.engines[leaf].simulate_crash();
        self.fault_at[leaf].get_or_insert_with(Instant::now);
    }

    /// Cuts the spine's link to a leaf (chaos partition event): the
    /// engine keeps running but nothing reaches it; packets routed
    /// there black-hole until the detector declares the leaf dead.
    pub fn partition_leaf(&mut self, leaf: usize) {
        self.reachable[leaf] = false;
        self.fault_at[leaf].get_or_insert_with(Instant::now);
    }

    /// Arms a transient whole-leaf stall (chaos stall event): the
    /// leaf's next batch sleeps `ms` ms, which an epoch's quiesce
    /// barrier will time out on — the retry/backoff path's food.
    pub fn stall_leaf(&mut self, leaf: usize, ms: u64) {
        self.engines[leaf].inject_stall(ms);
    }

    /// Routes one packet to its owning leaf and submits it there (or
    /// drop-counts it, if the owner died — see [`Fabric::route`]).
    /// Returns the owning leaf. Scripted chaos events and liveness
    /// probes ride this path, in deterministic submission order.
    pub fn submit(&mut self, packet: &[u8], now_us: u64) -> usize {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.apply_chaos(seq);
        if self.probe_interval > 0 && seq.is_multiple_of(self.probe_interval) {
            self.probe_and_repair();
        }
        let leaf = self.route(packet);
        match self.health[leaf] {
            LeafHealth::Healthy if self.reachable[leaf] => {
                self.engines[leaf].submit(packet, now_us);
                self.submitted_per_leaf[leaf] += 1;
                if self.record_routes {
                    self.route_log.push(Route::Delivered(leaf));
                }
            }
            LeafHealth::Healthy => {
                // Partitioned but not yet detected: the copy dies on a
                // cut wire. The spine doesn't know yet; the run's
                // bookkeeping does — it converts to an orphan the
                // moment the detector catches up.
                self.void_per_leaf[leaf] += 1;
                if self.record_routes {
                    self.route_log.push(Route::Orphaned(leaf));
                }
            }
            _ => {
                // Degraded mode: the owner is declared dead and the
                // failover epoch hasn't committed. An honest counted
                // drop — never a silent one, never a mis-route.
                self.orphaned_per_leaf[leaf] += 1;
                self.robustness.orphaned_packets += 1;
                if self.record_routes {
                    self.route_log.push(Route::Orphaned(leaf));
                }
            }
        }
        leaf
    }

    /// Fires every scripted chaos event due at `seq`.
    fn apply_chaos(&mut self, seq: u64) {
        while let Some(ev) = self.chaos.get(self.next_chaos) {
            if ev.at_seq > seq {
                break;
            }
            let (leaf, kind) = (ev.leaf % self.engines.len(), ev.kind);
            self.next_chaos += 1;
            match kind {
                NodeEventKind::Kill => self.kill_leaf(leaf),
                NodeEventKind::Stall { ms } => self.stall_leaf(leaf, ms),
                NodeEventKind::Partition => self.partition_leaf(leaf),
            }
        }
    }

    /// One failure-detector sweep: any healthy leaf that stopped
    /// answering its liveness probe (crashed) or sits behind a cut
    /// link (partitioned) is declared dead, fail-stop.
    fn detect_failures(&mut self) {
        for leaf in 0..self.engines.len() {
            if self.health[leaf] == LeafHealth::Healthy
                && (!self.reachable[leaf] || !self.engines[leaf].is_alive())
            {
                self.declare_dead(leaf);
            }
        }
    }

    /// Probe tick: sweep, then — if anything is dead — attempt the
    /// failover epoch. A transient failure (stalled survivor) leaves
    /// the fabric degraded; the next tick retries. A permanent one
    /// (a survivor that cannot admit its grown slice) leaves it
    /// degraded for good: every affected packet is still counted, so
    /// the operator sees exactly what graceful degradation cost.
    fn probe_and_repair(&mut self) {
        self.detect_failures();
        if self.degraded() {
            let _ = self.install_master(self.master.clone());
        }
    }

    /// Declares a leaf dead: converts its wire-lost packets to
    /// orphans, and writes off the register state that lived only
    /// there as typed [`StateLoss`] records.
    fn declare_dead(&mut self, leaf: usize) {
        if self.health[leaf] != LeafHealth::Healthy {
            return;
        }
        self.health[leaf] = LeafHealth::Dead;
        let now = Instant::now();
        self.detected_at[leaf] = Some(now);
        // Organic death (no scripted fault observed): measure repair
        // from detection — the earliest instant the fabric can know.
        self.fault_at[leaf].get_or_insert(now);
        self.robustness.leaf_deaths += 1;
        let voided = std::mem::take(&mut self.void_per_leaf[leaf]);
        self.orphaned_per_leaf[leaf] += voided;
        self.robustness.orphaned_packets += voided;
        // Survivor register state carries across epochs automatically
        // (`ShardCtx::adopt`); the dead leaf's does not exist anywhere
        // else — record exactly what died with it.
        for register in 0..self.master.registers.len() {
            self.state_losses.push(StateLoss {
                leaf,
                register,
                window_us: self.master.registers.window_us(register),
            });
            self.robustness.state_loss_entries += 1;
        }
    }

    /// Live-leaf bitmask (bit `l` set ⇔ leaf `l` is healthy).
    fn live_mask(&self) -> u64 {
        let mut mask = 0u64;
        for (leaf, health) in self.health.iter().enumerate().take(64) {
            if *health == LeafHealth::Healthy {
                mask |= 1 << leaf;
            }
        }
        mask
    }

    /// Applies an incremental-compiler update as one fabric epoch: the
    /// report is applied to the *master* program, the master is
    /// re-sliced, and the slices commit atomically across all leaves
    /// (see [`Fabric::install_master`] for the phase structure).
    pub fn apply_update(&mut self, report: &UpdateReport) -> Result<(), FabricFault> {
        let mut master = self.master.clone();
        report.apply_to(&mut master).map_err(FabricFault::Update)?;
        self.install_master(master)
    }

    /// Installs a new master program as one two-phase fabric epoch
    /// over the *surviving* leaves, with bounded-backoff retry for
    /// transient failures ([`EpochOptions`]).
    ///
    /// 1. **Prepare**: slice the master over the live mask; every live
    ///    leaf admission-checks and stages its slice. Any failure ⇒
    ///    abort everywhere; no generation bump, no table change, on
    ///    any leaf.
    /// 2. **Quiesce barrier**: drain every live leaf's in-flight
    ///    batches. Packets submitted before this epoch thus complete
    ///    entirely under the old program — no packet ever observes a
    ///    mixed-epoch fabric. A watchdog timeout aborts and retries
    ///    with backoff (up to `retry_attempts` times); a leaf found
    ///    *dead* here is declared so and the epoch replans over the
    ///    survivors — the barrier doubles as a failure detector.
    /// 3. **Commit**: publish everywhere. Infallible by construction —
    ///    every admission already passed in phase one. A commit that
    ///    re-homes a dead leaf's shards is a *failover epoch*; the
    ///    dead leaf is evicted and its repair is recorded.
    pub fn install_master(&mut self, master: Pipeline) -> Result<(), FabricFault> {
        self.detect_failures();
        let mut attempt: u32 = 0;
        loop {
            match self.try_epoch(&master) {
                Ok(plan) => {
                    self.commit_epoch(master, plan);
                    return Ok(());
                }
                Err(FabricFault::Quiesce {
                    leaf,
                    fault: EngineFault::Killed,
                }) => {
                    // The barrier found a corpse. Fail the leaf over
                    // within this same epoch: replan over survivors.
                    self.declare_dead(leaf);
                }
                Err(fault) if fault.is_transient() && attempt < self.epoch_opts.retry_attempts => {
                    attempt += 1;
                    self.robustness.epoch_retries += 1;
                    std::thread::sleep(Duration::from_millis(self.epoch_opts.backoff_ms(attempt)));
                }
                Err(fault) => return Err(fault),
            }
        }
    }

    /// One all-or-nothing epoch attempt over the current live mask.
    fn try_epoch(&mut self, master: &Pipeline) -> Result<PartitionPlan, FabricFault> {
        let live = self.live_mask();
        let plan =
            PartitionPlan::compute_subset(master, &self.shard_field, self.engines.len(), live)
                .map_err(FabricFault::Plan)?;
        let slices = plan.slices(master);

        // Phase 1: prepare (stage) on every live leaf.
        for (leaf, slice) in slices.iter().enumerate() {
            if live & (1 << leaf.min(63)) == 0 {
                continue;
            }
            if let Err(fault) = self.engines[leaf].prepare_pipeline(slice) {
                self.abort_all();
                self.epochs_rejected += 1;
                return Err(FabricFault::Prepare { leaf, fault });
            }
        }

        // Phase 2: the barrier. After this, nothing submitted before
        // the epoch is still in flight on any live leaf.
        for leaf in 0..self.engines.len() {
            if live & (1 << leaf.min(63)) == 0 {
                continue;
            }
            if let Err(fault) = self.engines[leaf].quiesce() {
                self.abort_all();
                return Err(FabricFault::Quiesce { leaf, fault });
            }
        }

        // Phase 3: commit on every live leaf.
        for (leaf, e) in self.engines.iter_mut().enumerate() {
            if live & (1 << leaf.min(63)) == 0 {
                continue;
            }
            let committed = e.commit_staged();
            debug_assert!(committed, "every live leaf staged in phase one");
        }
        Ok(plan)
    }

    /// Drops every staged candidate (epoch abort). Harmless on leaves
    /// that never staged (dead ones included).
    fn abort_all(&mut self) {
        for e in &mut self.engines {
            e.abort_staged();
        }
    }

    /// Post-commit bookkeeping: adopt the new master/plan, and evict
    /// any dead leaf whose shards this epoch just re-homed.
    fn commit_epoch(&mut self, master: Pipeline, plan: PartitionPlan) {
        self.master = master;
        self.plan = plan;
        self.epoch += 1;
        let mut failed_over = false;
        for leaf in 0..self.health.len() {
            if self.health[leaf] != LeafHealth::Dead {
                continue;
            }
            self.health[leaf] = LeafHealth::Evicted;
            failed_over = true;
            let detect_ns = match (self.fault_at[leaf], self.detected_at[leaf]) {
                (Some(fault), Some(detected)) => detected.duration_since(fault).as_nanos() as u64,
                _ => 0,
            };
            let mttr_ns = self.fault_at[leaf].map_or(0, |t| t.elapsed().as_nanos() as u64);
            self.failovers.push(FailoverRecord {
                leaf,
                epoch: self.epoch,
                detect_ns,
                mttr_ns,
                orphaned: self.orphaned_per_leaf[leaf],
            });
        }
        if failed_over {
            self.robustness.failover_epochs += 1;
        }
    }

    /// Drains every healthy leaf (no epoch change). Respawns dead
    /// workers as a side effect, like the underlying
    /// [`Engine::quiesce`]; a leaf found dead here is declared so
    /// (repair waits for the next probe tick or install).
    pub fn quiesce(&mut self) -> Result<(), FabricFault> {
        self.detect_failures();
        for leaf in 0..self.engines.len() {
            if self.health[leaf] != LeafHealth::Healthy {
                continue;
            }
            match self.engines[leaf].quiesce() {
                Ok(()) => {}
                Err(EngineFault::Killed) => self.declare_dead(leaf),
                Err(fault) => return Err(FabricFault::Quiesce { leaf, fault }),
            }
        }
        Ok(())
    }

    /// Joins every leaf engine and aggregates the fabric report.
    pub fn finish(mut self) -> FabricReport {
        // Partitions never detected by run's end: the packets are gone
        // on the wire either way — fold them into the orphan ledger so
        // reconciliation stays exact.
        for leaf in 0..self.engines.len() {
            let voided = std::mem::take(&mut self.void_per_leaf[leaf]);
            self.orphaned_per_leaf[leaf] += voided;
            self.robustness.orphaned_packets += voided;
        }
        let mut leaves: Vec<EngineReport> = self.engines.into_iter().map(Engine::finish).collect();
        // Stamp per-node robustness into each leaf's snapshot, and the
        // fabric-global counters into a synthetic spine node — the
        // spine is where deaths are detected and orphans are dropped,
        // so that's where a scrape should see them.
        for (leaf, report) in leaves.iter_mut().enumerate() {
            if let Some(t) = report.telemetry.as_mut() {
                t.robustness.leaf_deaths = u64::from(self.health[leaf] != LeafHealth::Healthy);
                t.robustness.orphaned_packets = self.orphaned_per_leaf[leaf];
                t.robustness.state_loss_entries =
                    self.state_losses.iter().filter(|s| s.leaf == leaf).count() as u64;
            }
        }
        let spine = leaves.iter().any(|r| r.telemetry.is_some()).then(|| {
            let mut snap = TelemetrySnapshot::new(0);
            snap.robustness = self.robustness;
            snap
        });
        FabricReport {
            epoch: self.epoch,
            epochs_rejected: self.epochs_rejected,
            submitted_per_leaf: self.submitted_per_leaf,
            orphaned_per_leaf: self.orphaned_per_leaf,
            health: self.health,
            failovers: self.failovers,
            state_losses: self.state_losses,
            robustness: self.robustness,
            route_log: self.route_log,
            spine,
            leaves,
        }
    }
}

/// The aggregated end-of-run fabric report.
#[derive(Debug)]
pub struct FabricReport {
    /// Committed epochs.
    pub epoch: u64,
    /// Epochs rejected all-or-nothing in phase one.
    pub epochs_rejected: u64,
    /// Packets delivered into each leaf's engine.
    pub submitted_per_leaf: Vec<u64>,
    /// Packets drop-counted per dead owner (degraded windows plus
    /// partition black-holes).
    pub orphaned_per_leaf: Vec<u64>,
    /// Final detector state per leaf.
    pub health: Vec<LeafHealth>,
    /// Completed failovers, in commit order.
    pub failovers: Vec<FailoverRecord>,
    /// Register state written off with dead leaves.
    pub state_losses: Vec<StateLoss>,
    /// Fabric-global robustness counters.
    pub robustness: RobustnessCounters,
    /// Synthetic spine-node snapshot carrying the fabric-global
    /// robustness counters (present iff any leaf ran telemetry).
    pub spine: Option<TelemetrySnapshot>,
    /// Per-leaf engine reports, in leaf order.
    pub leaves: Vec<EngineReport>,
    route_log: Vec<Route>,
}

impl FabricReport {
    /// Total packets submitted to the fabric (delivered + orphaned).
    pub fn submitted(&self) -> u64 {
        self.submitted_per_leaf.iter().sum::<u64>() + self.orphaned()
    }

    /// Packets drop-counted at the spine for dead owners.
    pub fn orphaned(&self) -> u64 {
        self.orphaned_per_leaf.iter().sum()
    }

    /// Exact loss reconciliation, per leaf and fabric-wide: every
    /// packet submitted to the fabric is decided, quarantined (died
    /// inside a leaf), or orphaned (dropped at the spine for a dead
    /// owner) — `submitted == decided + quarantined + orphaned`,
    /// with the per-leaf engine ledgers exact as well.
    pub fn reconciles(&self) -> bool {
        let per_leaf = self
            .submitted_per_leaf
            .iter()
            .zip(&self.leaves)
            .all(|(&submitted, r)| submitted == r.stats.packets + r.quarantined.len() as u64);
        let decided: u64 = self.leaves.iter().map(|r| r.stats.packets).sum();
        per_leaf && self.submitted() == decided + self.total_quarantined() as u64 + self.orphaned()
    }

    /// Packets lost to quarantine across the fabric.
    pub fn total_quarantined(&self) -> usize {
        self.leaves.iter().map(|r| r.quarantined.len()).sum()
    }

    /// Reassembles per-packet decisions in *global* submission order
    /// from the per-leaf reports (requires `record_decisions` on every
    /// leaf). Quarantined and orphaned packets yield `None`.
    pub fn decisions_in_submit_order(&self) -> Vec<Option<&ForwardDecision>> {
        // Per-leaf: map local seq -> Option<decision>. EngineReport
        // decisions are in local submission order with quarantined
        // seqs (sorted) skipped.
        let per_leaf: Vec<Vec<Option<&ForwardDecision>>> = self
            .leaves
            .iter()
            .zip(&self.submitted_per_leaf)
            .map(|(r, &submitted)| {
                let mut out = Vec::with_capacity(submitted as usize);
                let mut decisions = r.decisions.iter();
                let mut quarantined = r.quarantined.iter().peekable();
                for seq in 0..submitted {
                    if quarantined.peek() == Some(&&seq) {
                        quarantined.next();
                        out.push(None);
                    } else {
                        out.push(decisions.next());
                    }
                }
                out
            })
            .collect();
        let mut cursors = vec![0usize; self.leaves.len()];
        self.route_log
            .iter()
            .map(|route| match *route {
                Route::Delivered(leaf) => {
                    let local = cursors[leaf];
                    cursors[leaf] += 1;
                    per_leaf[leaf].get(local).copied().flatten()
                }
                Route::Orphaned(_) => None,
            })
            .collect()
    }

    /// Per-node telemetry snapshots, labeled `leaf0`, `leaf1`, …, plus
    /// the synthetic `spine` node carrying fabric-global robustness
    /// counters (present iff the leaves ran with `telemetry: true`).
    pub fn telemetry_nodes(&self) -> Vec<(String, &TelemetrySnapshot)> {
        let mut nodes: Vec<(String, &TelemetrySnapshot)> = self
            .leaves
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.telemetry.as_ref().map(|t| (format!("leaf{i}"), t)))
            .collect();
        if let Some(spine) = &self.spine {
            nodes.push(("spine".to_string(), spine));
        }
        nodes
    }

    /// Renders the whole fabric's telemetry as one Prometheus
    /// exposition with `node` labels; `None` when telemetry was off.
    pub fn render_prometheus(&self) -> Option<String> {
        let nodes = self.telemetry_nodes();
        if nodes.is_empty() {
            return None;
        }
        let borrowed: Vec<(&str, &TelemetrySnapshot)> =
            nodes.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        Some(render_prometheus_fabric(&borrowed))
    }
}

/// Entry-for-entry table-set equality: names, keys, default actions
/// and every entry (priority, matches, ops) in order. This is the
/// "bit-identical pre-state" check the epoch-abort tests use —
/// deliberately ignoring prepared-index scratch state, which is
/// derived data.
pub fn tables_identical(a: &[Table], b: &[Table]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.name == y.name
                && x.keys == y.keys
                && x.default_ops == y.default_ops
                && x.len() == y.len()
                && x.entries().eq(y.entries())
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_core::{Compiler, CompilerOptions};
    use camus_lang::{parse_program, parse_spec};
    use camus_workload::raw_field_extractor;

    const SPEC: &str = "header_type ev_t { fields { sym: 64; val: 32; } }\n\
                        header ev_t ev;\n\
                        @query_field_exact(ev.sym)\n\
                        @query_field(ev.val)\n";

    fn compile(rules: &str) -> Pipeline {
        let spec = parse_spec(SPEC).unwrap();
        let c = Compiler::new(spec, CompilerOptions::raw()).unwrap();
        c.compile(&parse_program(rules).unwrap()).unwrap().pipeline
    }

    fn extractor() -> ShardFn {
        let spec = parse_spec(SPEC).unwrap();
        raw_field_extractor(&spec, "sym").unwrap()
    }

    fn event(sym: &str, val: u32) -> Vec<u8> {
        let mut b = camus_lang::symbol::encode_symbol(sym, 64)
            .to_be_bytes()
            .to_vec();
        b.extend_from_slice(&val.to_be_bytes());
        b
    }

    fn cfg(workers: usize) -> EngineConfig {
        EngineConfig {
            workers,
            batch_packets: 4,
            record_decisions: true,
            ..EngineConfig::default()
        }
    }

    const RULES: &str = "sym == AA : fwd(1)\n\
                         sym == BB and val > 10 : fwd(2)\n\
                         val > 50 : fwd(9)";

    #[test]
    fn fabric_forwards_like_the_big_switch() {
        let master = compile(RULES);
        for leaves in [1usize, 2, 4] {
            let fcfg = FabricConfig::uniform(leaves, "ev.sym", extractor(), cfg(2));
            let mut fabric = Fabric::start(&master, &fcfg).unwrap();
            let mut big = master.clone();
            let mut expected = Vec::new();
            for sym in ["AA", "BB", "CC"] {
                for val in [0u32, 20, 60] {
                    let ev = event(sym, val);
                    expected.push(big.process(&ev, 0).unwrap().ports);
                    fabric.submit(&ev, 0);
                }
            }
            let report = fabric.finish();
            assert!(report.reconciles());
            let got = report.decisions_in_submit_order();
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(&g.unwrap().ports, e, "leaves={leaves}");
            }
        }
    }

    #[test]
    fn epoch_commits_atomically_and_bumps_generations() {
        let master = compile(RULES);
        let fcfg = FabricConfig::uniform(2, "ev.sym", extractor(), cfg(1));
        let mut fabric = Fabric::start(&master, &fcfg).unwrap();
        let gens: Vec<u64> = (0..2).map(|l| fabric.leaf_generation(l)).collect();
        fabric
            .install_master(compile("sym == CC : fwd(7)"))
            .unwrap();
        assert_eq!(fabric.epoch(), 1);
        for (l, g) in gens.iter().enumerate() {
            assert_eq!(fabric.leaf_generation(l), g + 1);
        }
        fabric.submit(&event("CC", 1), 0);
        fabric.submit(&event("AA", 1), 0);
        let report = fabric.finish();
        let got = report.decisions_in_submit_order();
        assert_eq!(got[0].unwrap().ports, vec![camus_pipeline::PortId(7)]);
        assert!(got[1].unwrap().ports.is_empty(), "old rules are gone");
    }

    #[test]
    fn plan_failure_is_all_or_nothing() {
        let master = compile(RULES);
        let fcfg = FabricConfig::uniform(2, "ev.sym", extractor(), cfg(1));
        let mut fabric = Fabric::start(&master, &fcfg).unwrap();
        let before: Vec<Vec<Table>> = (0..2).map(|l| fabric.leaf_tables(l).to_vec()).collect();
        // A master whose layout lacks the shard field: planning fails.
        let alien = {
            let spec = parse_spec(
                "header_type x_t { fields { a: 32; } }\nheader x_t x;\n@query_field(x.a)\n",
            )
            .unwrap();
            let c = Compiler::new(spec, CompilerOptions::raw()).unwrap();
            c.compile(&parse_program("a > 1 : fwd(1)").unwrap())
                .unwrap()
                .pipeline
        };
        assert!(matches!(
            fabric.install_master(alien),
            Err(FabricFault::Plan(_))
        ));
        assert_eq!(fabric.epoch(), 0);
        for (l, b) in before.iter().enumerate() {
            assert!(
                tables_identical(fabric.leaf_tables(l), b),
                "leaf {l} changed"
            );
        }
    }

    #[test]
    fn mixed_worker_counts_per_leaf() {
        let master = compile(RULES);
        let fcfg = FabricConfig::new("ev.sym", extractor(), vec![cfg(1), cfg(8)]);
        let mut fabric = Fabric::start(&master, &fcfg).unwrap();
        let mut big = master.clone();
        let evs: Vec<Vec<u8>> = ["AA", "BB", "CC", "DD"]
            .iter()
            .flat_map(|s| (0..8u32).map(move |v| event(s, v * 10)))
            .collect();
        let expected: Vec<_> = evs
            .iter()
            .map(|e| big.process(e, 0).unwrap().ports)
            .collect();
        for e in &evs {
            fabric.submit(e, 0);
        }
        let report = fabric.finish();
        assert!(report.reconciles());
        for (g, e) in report.decisions_in_submit_order().iter().zip(&expected) {
            assert_eq!(&g.unwrap().ports, e);
        }
    }

    #[test]
    fn route_is_stable_and_total() {
        let master = compile(RULES);
        let fcfg = FabricConfig::uniform(4, "ev.sym", extractor(), cfg(1));
        let fabric = Fabric::start(&master, &fcfg).unwrap();
        // Unknown symbols and garbage still route deterministically.
        let garbage: Vec<u8> = vec![0xFF; 3];
        assert_eq!(fabric.route(&garbage), fabric.route(&garbage));
        assert!(fabric.route(&event("QQ", 5)) < 4);
        fabric.finish();
    }

    #[test]
    fn scripted_kill_fails_over_with_an_exact_ledger() {
        let master = compile(RULES);
        let mut fcfg = FabricConfig::uniform(2, "ev.sym", extractor(), cfg(1));
        fcfg.probe_interval = 4;
        fcfg.chaos = ChaosPlan {
            events: vec![NodeEvent {
                at_seq: 9,
                leaf: 0,
                kind: NodeEventKind::Kill,
            }],
        };
        let mut fabric = Fabric::start(&master, &fcfg).unwrap();
        let mut big = master.clone();
        let evs: Vec<Vec<u8>> = ["AA", "BB", "CC", "DD", "EE", "FF"]
            .iter()
            .flat_map(|s| (0..8u32).map(move |v| event(s, v * 9)))
            .collect();
        let expected: Vec<_> = evs
            .iter()
            .map(|e| big.process(e, 0).unwrap().ports)
            .collect();
        for e in &evs {
            fabric.submit(e, 0);
        }
        assert!(!fabric.degraded(), "failover committed during the run");
        assert_eq!(fabric.leaf_health(0), LeafHealth::Evicted);
        assert_eq!(fabric.leaf_health(1), LeafHealth::Healthy);
        assert_eq!(fabric.failovers().len(), 1);
        assert!(fabric.failovers()[0].mttr_ns > 0);
        let report = fabric.finish();
        assert_eq!(report.robustness.leaf_deaths, 1);
        assert_eq!(report.robustness.failover_epochs, 1);
        assert!(
            report.reconciles(),
            "submitted == decided + quarantined + orphaned"
        );
        // Loss is confined to the dead leaf: the survivor's ledger is
        // exact with zero quarantine and zero orphans.
        assert_eq!(report.orphaned_per_leaf[1], 0);
        assert!(report.leaves[1].quarantined.is_empty());
        // Every decision that *was* made matches the big switch —
        // packets only go missing (None), never wrong.
        let got = report.decisions_in_submit_order();
        assert_eq!(got.len(), expected.len());
        let mut delivered = 0;
        for (g, e) in got.iter().zip(&expected) {
            if let Some(d) = g {
                assert_eq!(&d.ports, e);
                delivered += 1;
            }
        }
        assert!(delivered > 0);
        // Post-failover traffic (after the last recorded event) all
        // went somewhere live: the tail of the run has no Nones.
        assert!(got.last().unwrap().is_some(), "tail routed to a survivor");
    }

    #[test]
    fn partition_black_holes_convert_to_orphans() {
        let master = compile(RULES);
        let mut fcfg = FabricConfig::uniform(2, "ev.sym", extractor(), cfg(1));
        fcfg.probe_interval = 16;
        let mut fabric = Fabric::start(&master, &fcfg).unwrap();
        // Find a symbol owned by leaf 1, then cut leaf 1's link.
        let victim = (0..64u32)
            .map(|i| event(&format!("S{i}"), 60))
            .find(|e| fabric.route(e) == 1)
            .unwrap();
        // Healthy traffic first, then cut the link *between* probe
        // ticks: packets black-hole on the wire until the next sweep
        // declares the leaf dead and fails it over.
        for _ in 0..8 {
            fabric.submit(&victim, 0);
        }
        fabric.partition_leaf(1);
        for _ in 0..32 {
            fabric.submit(&victim, 0);
        }
        assert_eq!(fabric.leaf_health(1), LeafHealth::Evicted);
        let report = fabric.finish();
        assert!(report.reconciles());
        assert!(report.orphaned_per_leaf[1] > 0, "wire loss became orphans");
        assert_eq!(report.orphaned_per_leaf[0], 0);
        assert_eq!(report.robustness.leaf_deaths, 1);
        // The partitioned engine was still *alive* — fail-stop treats
        // it as dead anyway, and its pre-partition ledger is exact.
        assert_eq!(report.health[1], LeafHealth::Evicted);
        // Post-failover, the victim symbol's packets reach leaf 0.
        let tail = report.decisions_in_submit_order();
        assert!(tail.last().unwrap().is_some());
    }

    #[test]
    fn transient_stall_is_absorbed_by_epoch_retry_backoff() {
        let master = compile(RULES);
        let engine = EngineConfig {
            watchdog_ms: 20,
            ..cfg(1)
        };
        let mut fcfg = FabricConfig::uniform(2, "ev.sym", extractor(), engine);
        fcfg.epoch = EpochOptions {
            retry_attempts: 40,
            retry_base_ms: 5,
            retry_cap_ms: 40,
        };
        let mut fabric = Fabric::start(&master, &fcfg).unwrap();
        fabric.stall_leaf(0, 150);
        fabric.stall_leaf(1, 150);
        for i in 0..8u32 {
            fabric.submit(&event("AA", i), 0);
            fabric.submit(&event("AB", i), 0);
        }
        fabric
            .install_master(compile("sym == CC : fwd(7)"))
            .unwrap();
        assert_eq!(fabric.epoch(), 1);
        assert!(
            fabric.robustness().epoch_retries > 0,
            "the stall forced at least one backoff retry"
        );
        assert!(!fabric.degraded(), "a stall is transient, not a death");
        let report = fabric.finish();
        assert!(report.reconciles());
        assert_eq!(report.robustness.leaf_deaths, 0);
    }

    #[test]
    fn exhausted_retries_surface_the_transient_fault() {
        let master = compile(RULES);
        let engine = EngineConfig {
            watchdog_ms: 10,
            ..cfg(1)
        };
        let mut fcfg = FabricConfig::uniform(2, "ev.sym", extractor(), engine);
        fcfg.epoch = EpochOptions {
            retry_attempts: 1,
            retry_base_ms: 1,
            retry_cap_ms: 1,
        };
        let mut fabric = Fabric::start(&master, &fcfg).unwrap();
        fabric.stall_leaf(0, 400);
        fabric.submit(&event("AA", 1), 0);
        fabric.submit(&event("AB", 1), 0);
        let err = fabric.install_master(compile("sym == CC : fwd(7)"));
        assert!(
            matches!(
                err,
                Err(FabricFault::Quiesce {
                    fault: EngineFault::QuiesceTimeout { .. },
                    ..
                })
            ),
            "bounded retries exhausted: the transient fault surfaces"
        );
        assert_eq!(fabric.epoch(), 0, "all-or-nothing held on every attempt");
        assert_eq!(fabric.robustness().epoch_retries, 1);
        // The fabric recovers once the stall clears: a later attempt
        // with fresh retries succeeds.
        std::thread::sleep(Duration::from_millis(450));
        fabric
            .install_master(compile("sym == CC : fwd(7)"))
            .unwrap();
        assert_eq!(fabric.epoch(), 1);
        fabric.finish();
    }
}
