//! Update/recovery interleavings the fabric epoch protocol relies on:
//! worker death during epoch-prepare, quiesce watchdog timeout between
//! prepare and commit, and back-to-back epochs with no explicit drain.
//! Every scenario must keep the zero-loss ledger exact
//! (`submitted == decided + quarantined` per leaf) and leave the
//! fabric forwarding bit-identically to the big switch.

use std::collections::HashSet;
use std::sync::Arc;

use camus_core::{Compiler, CompilerOptions};
use camus_engine::{EngineConfig, EngineFault, FaultInjection, ShardFn};
use camus_fabric::{tables_identical, EpochOptions, Fabric, FabricConfig, FabricFault};
use camus_lang::{parse_program, parse_spec};
use camus_pipeline::{Pipeline, PortId};
use camus_workload::raw_field_extractor;

const SPEC: &str = "header_type ev_t { fields { sym: 64; val: 32; } }\n\
                    header ev_t ev;\n\
                    @query_field_exact(ev.sym)\n\
                    @query_field(ev.val)\n";

const OLD_RULES: &str = "sym == AA : fwd(1)\n\
                         sym == BB : fwd(2)\n\
                         val > 50 : fwd(9)";

const NEW_RULES: &str = "sym == AA : fwd(4)\n\
                         sym == CC and val > 5 : fwd(5)\n\
                         val > 50 : fwd(9)";

fn compile(rules: &str) -> Pipeline {
    let spec = parse_spec(SPEC).unwrap();
    let c = Compiler::new(spec, CompilerOptions::raw()).unwrap();
    c.compile(&parse_program(rules).unwrap()).unwrap().pipeline
}

fn extractor() -> ShardFn {
    raw_field_extractor(&parse_spec(SPEC).unwrap(), "sym").unwrap()
}

fn event(sym: &str, val: u32) -> Vec<u8> {
    let mut b = camus_lang::symbol::encode_symbol(sym, 64)
        .to_be_bytes()
        .to_vec();
    b.extend_from_slice(&val.to_be_bytes());
    b
}

/// Two-letter symbols that a `leaves`-wide fabric routes to `leaf`.
fn symbols_owned_by(leaf: usize, leaves: usize, want: usize) -> Vec<String> {
    let mut out = Vec::new();
    for a in b'A'..=b'Z' {
        for b in b'A'..=b'Z' {
            let s = format!("{}{}", a as char, b as char);
            let key = camus_lang::symbol::encode_symbol(&s, 64);
            if camus_core::owner_of(key, leaves) == leaf {
                out.push(s);
                if out.len() == want {
                    return out;
                }
            }
        }
    }
    out
}

fn ports(pipe: &mut Pipeline, ev: &[u8]) -> Vec<PortId> {
    pipe.process(ev, 0).unwrap().ports
}

#[test]
fn worker_death_during_epoch_prepare_reconciles_and_commits() {
    // Leaf 1's first dispatched batch dies with its worker; the epoch's
    // quiesce barrier detects the death, respawns the worker, and the
    // commit still lands fabric-wide. Accounting stays exact.
    let victims = symbols_owned_by(1, 2, 2);
    let mut cfg_leaf1 = EngineConfig {
        workers: 2,
        batch_packets: 2,
        record_decisions: true,
        ..EngineConfig::default()
    };
    cfg_leaf1.faults = FaultInjection {
        // Leaf-local seq 0: the first packet this leaf ever receives.
        die_seqs: Arc::new(HashSet::from([0u64])),
        ..FaultInjection::default()
    };
    let cfg_leaf0 = EngineConfig {
        workers: 2,
        batch_packets: 2,
        record_decisions: true,
        ..EngineConfig::default()
    };
    let fcfg = FabricConfig::new("ev.sym", extractor(), vec![cfg_leaf0, cfg_leaf1]);
    let mut fabric = Fabric::start(&compile(OLD_RULES), &fcfg).unwrap();

    // Fill leaf 1's first batch so it dispatches (and dies) while the
    // epoch is being prepared.
    for v in &victims {
        fabric.submit(&event(v, 60), 0);
        fabric.submit(&event(v, 70), 0);
    }
    fabric.install_master(compile(NEW_RULES)).unwrap();
    assert_eq!(fabric.epoch(), 1);

    // Post-epoch traffic forwards under the new rules everywhere.
    let mut new_big = compile(NEW_RULES);
    let post: Vec<Vec<u8>> = [("AA", 1u32), ("CC", 9), ("BB", 3)]
        .iter()
        .map(|&(s, v)| event(s, v))
        .collect();
    let expected: Vec<_> = post.iter().map(|e| ports(&mut new_big, e)).collect();
    let mark = fabric.submitted() as usize;
    for e in &post {
        fabric.submit(e, 0);
    }
    let report = fabric.finish();
    assert!(report.reconciles(), "zero-loss ledger must reconcile");
    assert!(
        report.total_quarantined() >= 1,
        "the dead batch is quarantined"
    );
    let faults = &report.leaves[1].faults;
    assert!(faults.worker_deaths >= 1);
    assert!(faults.respawns >= 1);
    let decisions = report.decisions_in_submit_order();
    for (i, e) in expected.iter().enumerate() {
        let d = decisions[mark + i].expect("post-epoch packets are never quarantined");
        assert_eq!(&d.ports, e);
    }
}

#[test]
fn quiesce_timeout_mid_commit_aborts_everywhere_then_retries_clean() {
    // A stalled worker makes the barrier (phase 2) time out after
    // phase 1 staged everywhere: the epoch must abort with zero
    // observable change on *every* leaf, and a retry after the stall
    // clears must commit.
    let stall_sym = symbols_owned_by(0, 2, 1).remove(0);
    let mut cfg_leaf0 = EngineConfig {
        workers: 1,
        batch_packets: 1,
        watchdog_ms: 40,
        record_decisions: true,
        ..EngineConfig::default()
    };
    cfg_leaf0.faults = FaultInjection {
        stall_seqs: Arc::new(HashSet::from([0u64])),
        stall_ms: 400,
        ..FaultInjection::default()
    };
    let cfg_leaf1 = EngineConfig {
        workers: 1,
        batch_packets: 1,
        watchdog_ms: 40,
        record_decisions: true,
        ..EngineConfig::default()
    };
    // Single-shot epochs (retry_attempts: 0, the default) so the first
    // install observes the raw timeout; the retry phase below switches
    // to a configured backoff policy instead of a hand-rolled loop.
    let fcfg = FabricConfig::new("ev.sym", extractor(), vec![cfg_leaf0, cfg_leaf1]);
    let mut fabric = Fabric::start(&compile(OLD_RULES), &fcfg).unwrap();
    let before: Vec<Vec<camus_pipeline::Table>> =
        (0..2).map(|l| fabric.leaf_tables(l).to_vec()).collect();
    let gens: Vec<u64> = (0..2).map(|l| fabric.leaf_generation(l)).collect();

    fabric.submit(&event(&stall_sym, 60), 0); // dispatches immediately, stalls 400 ms

    let err = fabric.install_master(compile(NEW_RULES));
    match err {
        Err(FabricFault::Quiesce {
            leaf: 0,
            fault: EngineFault::QuiesceTimeout { .. },
        }) => {}
        other => panic!("expected a leaf-0 quiesce timeout, got {other:?}"),
    }
    // Zero observable state change anywhere: same tables, same
    // generations, epoch counter untouched.
    assert_eq!(fabric.epoch(), 0);
    for l in 0..2 {
        assert!(
            tables_identical(fabric.leaf_tables(l), &before[l]),
            "leaf {l} mutated by an aborted epoch"
        );
        assert_eq!(
            fabric.leaf_generation(l),
            gens[l],
            "leaf {l} generation bumped"
        );
    }

    // Now let the epoch machinery itself absorb the remaining stall:
    // bounded exponential backoff retries the transient timeout until
    // the worker drains. The protocol is re-entrant — every attempt
    // runs the full abort-all-or-nothing cycle.
    fabric.set_epoch_options(EpochOptions {
        retry_attempts: 100,
        retry_base_ms: 10,
        retry_cap_ms: 40,
    });
    fabric
        .install_master(compile(NEW_RULES))
        .expect("epoch must commit once the stall drains");
    assert_eq!(fabric.epoch(), 1);
    assert!(
        fabric.robustness().epoch_retries > 0,
        "the 400 ms stall outlived at least one 40 ms watchdog window"
    );

    // The stalled packet was *processed* (stall ≠ death): nothing lost,
    // and it saw the old epoch (it was in flight before the commit).
    fabric.submit(&event("AA", 1), 0);
    let report = fabric.finish();
    assert!(report.reconciles());
    assert_eq!(report.total_quarantined(), 0);
    let decisions = report.decisions_in_submit_order();
    let mut old_big = compile(OLD_RULES);
    let mut new_big = compile(NEW_RULES);
    assert_eq!(
        decisions[0].unwrap().ports,
        ports(&mut old_big, &event(&stall_sym, 60)),
        "in-flight packet completes under its submission epoch"
    );
    assert_eq!(
        decisions[1].unwrap().ports,
        ports(&mut new_big, &event("AA", 1))
    );
}

#[test]
fn back_to_back_epochs_without_drain_keep_packets_in_their_epoch() {
    // Three rule generations, two epoch swaps, continuous traffic with
    // partial batches straddling both commits. Every packet must be
    // decided under exactly the rule set live at its submission, and
    // the ledger must reconcile with zero quarantine.
    let generations = [OLD_RULES, NEW_RULES, "sym == BB and val < 9 : fwd(8)"];
    let cfg = EngineConfig {
        workers: 2,
        batch_packets: 4,
        record_decisions: true,
        ..EngineConfig::default()
    };
    let fcfg = FabricConfig::uniform(2, "ev.sym", extractor(), cfg);
    let mut fabric = Fabric::start(&compile(generations[0]), &fcfg).unwrap();

    let evs: Vec<Vec<u8>> = ["AA", "BB", "CC", "DD", "EE"]
        .iter()
        .flat_map(|s| [3u32, 60].map(|v| event(s, v)))
        .collect();
    let mut expected: Vec<Vec<PortId>> = Vec::new();
    for (gen_idx, rules) in generations.iter().enumerate() {
        if gen_idx > 0 {
            // No quiesce, no drain: partial batches are in flight here.
            fabric.install_master(compile(rules)).unwrap();
        }
        let mut oracle = compile(rules);
        for e in &evs {
            expected.push(ports(&mut oracle, e));
            fabric.submit(e, 0);
        }
    }
    assert_eq!(fabric.epoch(), 2);
    let report = fabric.finish();
    assert!(report.reconciles());
    assert_eq!(report.total_quarantined(), 0);
    assert_eq!(report.submitted(), expected.len() as u64);
    let decisions = report.decisions_in_submit_order();
    for (i, e) in expected.iter().enumerate() {
        assert_eq!(&decisions[i].unwrap().ports, e, "packet {i}");
    }
}
