//! Variable-ordering heuristics.
//!
//! §3.2: "The choice of an order can significantly impact the size of a
//! BDD. Determining an optimal field order is NP-hard, but simple
//! heuristics often work well in practice."
//!
//! The order decided here is *field-level* (the within-field predicate
//! order is fixed by [`crate::pred::PredOp`]'s canonical ordering): the
//! compiler computes a permutation of the query fields and assigns
//! [`crate::pred::FieldId`]s accordingly, which fixes both the BDD
//! variable order and the stage order of the compiled pipeline.

use std::collections::HashSet;

use crate::pred::Pred;

/// Selectable field-ordering heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderHeuristic {
    /// Keep the order fields were annotated in the spec.
    SpecOrder,
    /// Fields referenced by the most rules first. Popular fields near
    /// the root maximize prefix sharing between rules, which is the
    /// dominant effect on workloads like ITCH where almost every rule
    /// constrains the same field (`stock`).
    #[default]
    FrequencyDescending,
    /// Fields with the fewest distinct predicate constants first: small
    /// fan-out near the root.
    DistinctValuesAscending,
    /// Exact-match fields before range fields; ties by frequency. Exact
    /// components produce pinned (SRAM) entries, so deciding them early
    /// shrinks the TCAM-hungry range components.
    ExactFirst,
}

impl OrderHeuristic {
    /// All heuristics, for sweeps/ablations.
    pub const ALL: [OrderHeuristic; 4] = [
        OrderHeuristic::SpecOrder,
        OrderHeuristic::FrequencyDescending,
        OrderHeuristic::DistinctValuesAscending,
        OrderHeuristic::ExactFirst,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            OrderHeuristic::SpecOrder => "spec-order",
            OrderHeuristic::FrequencyDescending => "freq-desc",
            OrderHeuristic::DistinctValuesAscending => "distinct-asc",
            OrderHeuristic::ExactFirst => "exact-first",
        }
    }
}

/// Per-field statistics a heuristic ranks on.
#[derive(Debug, Clone, Default)]
pub struct FieldUsage {
    /// Number of rule conjunctions referencing the field.
    pub rule_refs: usize,
    /// Distinct constants appearing in the field's predicates.
    pub distinct_values: usize,
    /// Whether the field is exact-match-only.
    pub exact: bool,
}

/// Computes per-field usage statistics from normalized conjunctions.
/// `conjs` iterates rule conjunctions; each yields the predicates of one
/// rule (field ids refer to spec order). `nfields` is the number of
/// query fields.
pub fn field_usage<'a>(
    conjs: impl IntoIterator<Item = &'a [(Pred, bool)]>,
    nfields: usize,
    exact: &[bool],
) -> Vec<FieldUsage> {
    let mut usage: Vec<FieldUsage> = (0..nfields)
        .map(|i| FieldUsage {
            exact: exact.get(i).copied().unwrap_or(false),
            ..Default::default()
        })
        .collect();
    let mut values: Vec<HashSet<u64>> = vec![HashSet::new(); nfields];
    for conj in conjs {
        let mut seen_fields = HashSet::new();
        for (p, _) in conj {
            let i = p.field.0 as usize;
            if i >= nfields {
                continue;
            }
            if seen_fields.insert(i) {
                usage[i].rule_refs += 1;
            }
            values[i].insert(p.value);
        }
    }
    for (u, v) in usage.iter_mut().zip(values) {
        u.distinct_values = v.len();
    }
    usage
}

/// Returns a permutation of `0..usage.len()`: position `k` holds the
/// spec-order index of the field placed `k`-th in the BDD order.
/// Deterministic: ties break by spec order.
pub fn order_fields(usage: &[FieldUsage], heuristic: OrderHeuristic) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..usage.len()).collect();
    match heuristic {
        OrderHeuristic::SpecOrder => {}
        OrderHeuristic::FrequencyDescending => {
            idx.sort_by_key(|&i| (std::cmp::Reverse(usage[i].rule_refs), i));
        }
        OrderHeuristic::DistinctValuesAscending => {
            idx.sort_by_key(|&i| (usage[i].distinct_values, i));
        }
        OrderHeuristic::ExactFirst => {
            idx.sort_by_key(|&i| (!usage[i].exact, std::cmp::Reverse(usage[i].rule_refs), i));
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::FieldId;

    fn usage3() -> Vec<FieldUsage> {
        vec![
            FieldUsage {
                rule_refs: 5,
                distinct_values: 100,
                exact: false,
            },
            FieldUsage {
                rule_refs: 20,
                distinct_values: 3,
                exact: true,
            },
            FieldUsage {
                rule_refs: 10,
                distinct_values: 10,
                exact: false,
            },
        ]
    }

    #[test]
    fn spec_order_is_identity() {
        assert_eq!(
            order_fields(&usage3(), OrderHeuristic::SpecOrder),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn frequency_descending() {
        assert_eq!(
            order_fields(&usage3(), OrderHeuristic::FrequencyDescending),
            vec![1, 2, 0]
        );
    }

    #[test]
    fn distinct_values_ascending() {
        assert_eq!(
            order_fields(&usage3(), OrderHeuristic::DistinctValuesAscending),
            vec![1, 2, 0]
        );
    }

    #[test]
    fn exact_first() {
        let mut u = usage3();
        u[0].exact = true;
        // Exact fields 0 and 1; 1 has more refs.
        assert_eq!(order_fields(&u, OrderHeuristic::ExactFirst), vec![1, 0, 2]);
    }

    #[test]
    fn ties_break_by_spec_order() {
        let u = vec![
            FieldUsage::default(),
            FieldUsage::default(),
            FieldUsage::default(),
        ];
        for h in OrderHeuristic::ALL {
            assert_eq!(order_fields(&u, h), vec![0, 1, 2], "{}", h.name());
        }
    }

    #[test]
    fn usage_counts_rules_once_per_field() {
        let f0 = FieldId(0);
        let f1 = FieldId(1);
        let c1 = vec![
            (Pred::eq(f0, 1), true),
            (Pred::eq(f0, 2), false),
            (Pred::lt(f1, 5), true),
        ];
        let c2 = vec![(Pred::eq(f0, 1), true)];
        let conjs: Vec<&[(Pred, bool)]> = vec![&c1, &c2];
        let u = field_usage(conjs, 2, &[true, false]);
        assert_eq!(u[0].rule_refs, 2); // f0 in both rules, counted once each
        assert_eq!(u[0].distinct_values, 2);
        assert_eq!(u[1].rule_refs, 1);
        assert_eq!(u[1].distinct_values, 1);
        assert!(u[0].exact);
        assert!(!u[1].exact);
    }

    #[test]
    fn usage_ignores_out_of_range_fields() {
        let c = vec![(Pred::eq(FieldId(7), 1), true)];
        let conjs: Vec<&[(Pred, bool)]> = vec![&c];
        let u = field_usage(conjs, 2, &[false, false]);
        assert_eq!(u[0].rule_refs, 0);
        assert_eq!(u[1].rule_refs, 0);
    }
}
