//! Merging independently built BDDs, and canonical renumbering.
//!
//! The sharded compiler partitions the rule list, builds one BDD per
//! shard (each with a private [`crate::store::Store`]), and folds the
//! shards together with [`Bdd::union_with`]. Union of the represented
//! functions is associative and commutative, so any merge order yields
//! the same *function* — but not the same *diagram*: under the
//! semantic-pruning reduction, different merge trees can leave
//! different (semantically equivalent) residue on unsatisfiable paths.
//! Pruned union is not confluent, so the driver must pin one merge
//! tree; reproducibility then comes from replaying a fixed DAG, not
//! from any normalization property of the union itself.
//!
//! Node indices and action-set ids additionally record allocation
//! history: intermediate `apply` steps leave garbage, and imports
//! interleave the operands' vertices. [`Bdd::canonical_copy`] erases
//! that: it re-interns the reachable diagram in a deterministic
//! depth-first order that depends only on the diagram's *structure*,
//! so two structurally equal BDDs — however built — copy to
//! element-for-element identical stores, and downstream emission
//! (Algorithm 1, which orders states by vertex numbers) sees a
//! schedule-independent numbering.

use fxhash::FxHashMap;

use crate::build::CTX_NONE;
use crate::store::{NodeRef, Store, EMPTY_ACTIONS};
use crate::Bdd;

impl Bdd {
    /// Unions another BDD (over the same field table and variable
    /// order) into this one: afterwards `self` represents the pointwise
    /// union of both action-set functions.
    ///
    /// The other diagram is first imported into this store (terminals
    /// re-interned, nodes re-consed bottom-up), then grafted with the
    /// same memoized `apply` that `add_rule` uses. The other BDD's
    /// cumulative memo statistics are absorbed so shard builds still
    /// report totals.
    ///
    /// # Panics
    ///
    /// Panics if the two BDDs were created with different variable
    /// orders (different predicate alphabets).
    pub fn union_with(&mut self, other: &Bdd) {
        assert_eq!(
            self.vars, other.vars,
            "union_with requires identical variable orders"
        );
        let imported = self.import(other, other.root);
        self.memo.clear();
        self.root = self.apply(self.root, imported, CTX_NONE);
        self.memo.clear();
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
    }

    /// Copies a subgraph of `other` into this store, returning the
    /// corresponding reference here. Shares a memo across the whole
    /// import so the copy is linear in the subgraph's node count.
    fn import(&mut self, other: &Bdd, root: NodeRef) -> NodeRef {
        let mut map: FxHashMap<u32, NodeRef> = FxHashMap::default();
        self.import_rec(other, root, &mut map)
    }

    fn import_rec(
        &mut self,
        other: &Bdd,
        r: NodeRef,
        map: &mut FxHashMap<u32, NodeRef>,
    ) -> NodeRef {
        if let Some(&mapped) = map.get(&r.pack()) {
            return mapped;
        }
        let mapped = match r {
            NodeRef::Term(set) => {
                if set == EMPTY_ACTIONS {
                    NodeRef::Term(EMPTY_ACTIONS)
                } else {
                    // Other-store sets are already sorted + deduplicated,
                    // so interning re-sorts a sorted slice — cheap.
                    NodeRef::Term(self.store.intern_actions(other.store.actions(set)))
                }
            }
            NodeRef::Node(_) => {
                let n = other.store.node(r);
                let lo = self.import_rec(other, n.lo, map);
                let hi = self.import_rec(other, n.hi, map);
                self.store.make_node(n.var, lo, hi)
            }
        };
        map.insert(r.pack(), mapped);
        mapped
    }

    /// Rebuilds this BDD with canonical vertex numbering: nodes and
    /// action sets are re-interned in a deterministic depth-first order
    /// (high branch first, children created before parents) that is a
    /// function of the diagram's structure alone. Unreachable garbage
    /// from intermediate `apply` steps is dropped in the process.
    ///
    /// Two structurally equal diagrams — however they were constructed —
    /// produce copies whose stores are element-for-element identical, so
    /// everything keyed on `NodeRef`/`ActionSetId` order downstream
    /// (slicing, state assignment, table emission) becomes independent
    /// of construction history.
    #[must_use]
    pub fn canonical_copy(&self) -> Bdd {
        let mut copy = Bdd::like(self);
        copy.memo_hits = self.memo_hits;
        copy.memo_misses = self.memo_misses;
        let mut map: FxHashMap<u32, NodeRef> = FxHashMap::default();
        copy.root = copy.canon_rec(self, self.root, &mut map);
        copy
    }

    /// An empty BDD sharing this one's field table, predicate alphabet
    /// and settings — the starting point for an independent shard build
    /// that will later be [`Bdd::union_with`]-merged.
    #[must_use]
    pub fn clone_empty(&self) -> Bdd {
        Bdd::like(self)
    }

    /// An empty BDD sharing `src`'s alphabet and settings (the analogue
    /// of `Bdd::new` without re-validating predicates).
    pub(crate) fn like(src: &Bdd) -> Bdd {
        use crate::ctx::FieldCtx;
        use crate::pred::FieldId;
        let sentinel = FieldCtx::full(FieldId(u32::MAX), 0);
        let mut ctx_index = FxHashMap::default();
        ctx_index.insert(sentinel.clone(), CTX_NONE);
        Bdd {
            fields: src.fields.clone(),
            vars: src.vars.clone(),
            var_index: src.var_index.clone(),
            store: Store::new(),
            root: NodeRef::Term(EMPTY_ACTIONS),
            memo: FxHashMap::default(),
            memo_hits: 0,
            memo_misses: 0,
            semantic_pruning: src.semantic_pruning,
            ctxs: vec![sentinel],
            ctx_index,
            prune_memo: FxHashMap::default(),
        }
    }

    fn canon_rec(&mut self, src: &Bdd, r: NodeRef, map: &mut FxHashMap<u32, NodeRef>) -> NodeRef {
        if let Some(&mapped) = map.get(&r.pack()) {
            return mapped;
        }
        let mapped = match r {
            NodeRef::Term(set) => {
                if set == EMPTY_ACTIONS {
                    NodeRef::Term(EMPTY_ACTIONS)
                } else {
                    NodeRef::Term(self.store.intern_actions(src.store.actions(set)))
                }
            }
            NodeRef::Node(_) => {
                let n = src.store.node(r);
                // hi first: ids then follow the true-edges-first
                // traversal that slicing/emission use.
                let hi = self.canon_rec(src, n.hi, map);
                let lo = self.canon_rec(src, n.lo, map);
                self.store.make_node(n.var, lo, hi)
            }
        };
        map.insert(r.pack(), mapped);
        mapped
    }
}

#[cfg(test)]
mod tests {
    use crate::pred::{ActionId, FieldId, FieldInfo, Pred};
    use crate::store::NodeRef;
    use crate::Bdd;

    fn alphabet() -> (Vec<FieldInfo>, Vec<Pred>) {
        let shares = FieldId(0);
        let stock = FieldId(1);
        let fields = vec![
            FieldInfo::range("shares", 32),
            FieldInfo::exact("stock", 64),
        ];
        let preds = vec![
            Pred::lt(shares, 60),
            Pred::gt(shares, 100),
            Pred::eq(stock, 1),
            Pred::eq(stock, 2),
            Pred::eq(stock, 3),
        ];
        (fields, preds)
    }

    type Rule = (Vec<(Pred, bool)>, Vec<ActionId>);

    fn rules() -> Vec<Rule> {
        let shares = FieldId(0);
        let stock = FieldId(1);
        vec![
            (
                vec![(Pred::lt(shares, 60), true), (Pred::eq(stock, 1), true)],
                vec![ActionId(1)],
            ),
            (vec![(Pred::eq(stock, 1), true)], vec![ActionId(2)]),
            (
                vec![(Pred::gt(shares, 100), true), (Pred::eq(stock, 2), true)],
                vec![ActionId(3)],
            ),
            (
                vec![(Pred::eq(stock, 3), true), (Pred::lt(shares, 60), false)],
                vec![ActionId(4), ActionId(1)],
            ),
            (vec![], vec![ActionId(9)]),
        ]
    }

    fn build(rules: &[Rule]) -> Bdd {
        let (fields, preds) = alphabet();
        let mut bdd = Bdd::new(fields, preds).unwrap();
        for (lits, acts) in rules {
            bdd.add_rule(lits, acts).unwrap();
        }
        bdd
    }

    fn assert_same_diagram(a: &Bdd, b: &Bdd) {
        assert_eq!(a.root(), b.root());
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.action_set_count(), b.action_set_count());
        for i in 0..a.node_count() {
            let r = NodeRef::Node(crate::store::NodeIdx(i as u32));
            assert_eq!(a.node(r), b.node(r), "node {i}");
        }
        for i in 0..a.action_set_count() {
            let id = crate::store::ActionSetId(i as u32);
            assert_eq!(a.actions(id), b.actions(id), "action set {i}");
        }
    }

    #[test]
    fn union_with_matches_sequential_semantics() {
        let all = rules();
        let seq = build(&all);
        let mut left = build(&all[..2]);
        let right = build(&all[2..]);
        left.union_with(&right);
        let shares = FieldId(0);
        for sh in [0u64, 59, 60, 100, 101, 500] {
            for st in [0u64, 1, 2, 3, 7] {
                assert_eq!(
                    seq.eval(|f| if f == shares { sh } else { st }),
                    left.eval(|f| if f == shares { sh } else { st }),
                    "shares={sh} stock={st}"
                );
            }
        }
    }

    #[test]
    fn canonical_copy_preserves_semantics_and_drops_garbage() {
        let bdd = build(&rules());
        let canon = bdd.canonical_copy();
        let shares = FieldId(0);
        for sh in [0u64, 59, 80, 101] {
            for st in [1u64, 2, 3, 9] {
                assert_eq!(
                    bdd.eval(|f| if f == shares { sh } else { st }),
                    canon.eval(|f| if f == shares { sh } else { st }),
                );
            }
        }
        // The copy holds only reachable vertices.
        let stats = canon.stats();
        assert_eq!(stats.allocated_nodes, stats.reachable_nodes);
        assert!(canon.node_count() <= bdd.node_count());
        canon.validate().unwrap();
    }

    #[test]
    fn canonical_copy_is_idempotent() {
        let canon = build(&rules()).canonical_copy();
        assert_same_diagram(&canon, &canon.canonical_copy());
    }

    /// Replaying the same shard partition and merge tree reproduces the
    /// diagram element-for-element — the invariant the compiler's fixed
    /// merge DAG rests on. (Different merge *orders* are only
    /// semantically equal: pruned union is not confluent.)
    #[test]
    fn identical_schedules_canonicalize_identically() {
        let all = rules();
        let run = || {
            let mut m = build(&all[..3]);
            m.union_with(&build(&all[3..]));
            m.canonical_copy()
        };
        assert_same_diagram(&run(), &run());
    }

    /// Any merge order yields the same represented function, even when
    /// the diagrams differ structurally.
    #[test]
    fn merge_orders_agree_semantically() {
        let all = rules();
        let seq = build(&all);
        let mut ab = build(&all[..3]);
        ab.union_with(&build(&all[3..]));
        let mut ba = build(&all[3..]);
        ba.union_with(&build(&all[..3]));
        let mut t = build(&all[..2]);
        t.union_with(&build(&all[2..4]));
        t.union_with(&build(&all[4..]));
        let shares = FieldId(0);
        for sh in [0u64, 59, 60, 100, 101, 500] {
            for st in [0u64, 1, 2, 3, 7] {
                let want = seq.eval(|f| if f == shares { sh } else { st }).to_vec();
                for m in [&ab, &ba, &t] {
                    assert_eq!(
                        m.eval(|f| if f == shares { sh } else { st }),
                        want.as_slice(),
                        "shares={sh} stock={st}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "identical variable orders")]
    fn union_with_rejects_different_alphabets() {
        let (fields, preds) = alphabet();
        let a = Bdd::new(fields.clone(), preds.clone()).unwrap();
        let mut b = Bdd::new(fields, preds[..2].to_vec()).unwrap();
        b.union_with(&a);
    }
}
