//! Per-field constraint contexts — the machinery behind the paper's
//! domain-specific reduction (iii):
//!
//! > "If any ancestor n′ of a new node n implies that n is always true
//! > or always false, then n is not added; instead, it reduces to a
//! > direct connection to its true or false branch."
//!
//! Because atomic predicates on *different* fields are logically
//! independent, implication can only come from same-field ancestors. The
//! context therefore tracks the constraint accumulated on a single field
//! — an inclusive interval plus a set of excluded points — and resets at
//! field-block boundaries. This keeps contexts small and lets the
//! `apply` memo key on a hash-consed context id.

use crate::pred::{FieldId, Pred, PredOp};

/// Maximum number of excluded points tracked exactly. Beyond this the
/// exclusion set saturates: implication answers stay sound (we only
/// lose some *false* answers for `==` predicates), and memory stays
/// bounded even for adversarial rule sets.
const MAX_EXCLUSIONS: usize = 64;

/// If the interval is at most this wide we check for exhaustion (every
/// remaining value excluded ⇒ remaining `==` forced).
const EXHAUSTION_WINDOW: u64 = 64;

/// Constraint on a single field accumulated along a BDD path.
///
/// Invariant: `lo <= hi` (the constraint is satisfiable as an interval;
/// excluded points may still exhaust it, which `implies` detects for
/// narrow intervals).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldCtx {
    /// Field being constrained.
    pub field: FieldId,
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
    /// Excluded points within `[lo, hi]`, sorted. Saturates at
    /// [`MAX_EXCLUSIONS`] (tracked by `saturated`).
    pub excluded: Vec<u64>,
    /// Set when exclusions overflowed; the set is then an
    /// under-approximation.
    pub saturated: bool,
}

impl FieldCtx {
    /// Unconstrained context for a field whose domain is `[0, max]`.
    pub fn full(field: FieldId, max: u64) -> Self {
        FieldCtx {
            field,
            lo: 0,
            hi: max,
            excluded: Vec::new(),
            saturated: false,
        }
    }

    /// Whether the context pins the field to a single value.
    pub fn pinned(&self) -> Option<u64> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            self.sole_survivor()
        }
    }

    /// For narrow intervals, the single non-excluded value, if exactly
    /// one remains.
    fn sole_survivor(&self) -> Option<u64> {
        if self.saturated {
            return None;
        }
        let width = self.hi - self.lo;
        if width > EXHAUSTION_WINDOW {
            return None;
        }
        let mut found = None;
        for v in self.lo..=self.hi {
            if !self.excluded.contains(&v) {
                if found.is_some() {
                    return None;
                }
                found = Some(v);
            }
        }
        found
    }

    /// Does the accumulated constraint force `pred` to a known outcome?
    ///
    /// Returns `Some(true)` / `Some(false)` when every value satisfying
    /// the context satisfies / violates `pred`; `None` when both
    /// outcomes remain possible. Must only be called for predicates on
    /// `self.field`.
    pub fn implies(&self, pred: &Pred) -> Option<bool> {
        debug_assert_eq!(pred.field, self.field);
        if let Some(v) = self.pinned() {
            return Some(pred.eval(v));
        }
        match pred.op {
            PredOp::Eq => {
                // lo < hi here, so the interval has >= 2 values and Eq can
                // never be forced true; forced false iff value is outside
                // the interval or excluded.
                if pred.value < self.lo
                    || pred.value > self.hi
                    || self.excluded.contains(&pred.value)
                {
                    Some(false)
                } else {
                    None
                }
            }
            PredOp::Lt => {
                if self.hi < pred.value {
                    Some(true)
                } else if self.lo >= pred.value {
                    Some(false)
                } else {
                    None
                }
            }
            PredOp::Gt => {
                if self.lo > pred.value {
                    Some(true)
                } else if self.hi <= pred.value {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }

    /// Refines the context with the outcome of `pred`.
    ///
    /// Precondition: `self.implies(pred)` returned `None` (so the refined
    /// interval is non-empty). Exclusion bookkeeping may saturate; see
    /// [`FieldCtx::saturated`].
    pub fn extend(&self, pred: &Pred, outcome: bool) -> FieldCtx {
        debug_assert_eq!(pred.field, self.field);
        debug_assert_eq!(
            self.implies(pred),
            None,
            "extend called on a forced predicate"
        );
        let mut next = self.clone();
        match (pred.op, outcome) {
            (PredOp::Eq, true) => {
                next.lo = pred.value;
                next.hi = pred.value;
                next.excluded.clear();
                next.saturated = false;
            }
            (PredOp::Eq, false) => {
                if next.excluded.len() >= MAX_EXCLUSIONS {
                    next.saturated = true;
                } else if let Err(i) = next.excluded.binary_search(&pred.value) {
                    next.excluded.insert(i, pred.value);
                }
            }
            (PredOp::Lt, true) => next.hi = next.hi.min(pred.value - 1),
            (PredOp::Lt, false) => next.lo = next.lo.max(pred.value),
            (PredOp::Gt, true) => next.lo = next.lo.max(pred.value + 1),
            (PredOp::Gt, false) => next.hi = next.hi.min(pred.value),
        }
        next.excluded.retain(|&v| v >= next.lo && v <= next.hi);
        // Tighten bounds past excluded edge points so that interval-based
        // implication stays as strong as possible (e.g. [0,63] minus {0}
        // forces `> 0`).
        if !next.saturated {
            while next.lo < next.hi && next.excluded.first() == Some(&next.lo) {
                next.excluded.remove(0);
                next.lo += 1;
            }
            while next.lo < next.hi && next.excluded.last() == Some(&next.hi) {
                next.excluded.pop();
                next.hi -= 1;
            }
        }
        debug_assert!(next.lo <= next.hi);
        next
    }

    /// Whether a concrete value satisfies the context.
    pub fn contains(&self, v: u64) -> bool {
        v >= self.lo && v <= self.hi && !self.excluded.contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FieldId = FieldId(0);

    fn full() -> FieldCtx {
        FieldCtx::full(F, 255)
    }

    #[test]
    fn fresh_context_forces_nothing_interior() {
        let c = full();
        assert_eq!(c.implies(&Pred::lt(F, 10)), None);
        assert_eq!(c.implies(&Pred::gt(F, 10)), None);
        assert_eq!(c.implies(&Pred::eq(F, 10)), None);
    }

    #[test]
    fn domain_bounds_force_edge_predicates() {
        let c = full();
        // Every value in [0,255] satisfies `< 256`-style predicates only if
        // canonicalization produced them; the context still answers for
        // in-domain constants at the edges.
        assert_eq!(c.implies(&Pred::gt(F, 255)), Some(false));
        assert_eq!(c.implies(&Pred::lt(F, 0)), Some(false)); // lo >= 0
    }

    #[test]
    fn figure3_shares_pruning() {
        // On the false branch of `shares < 60`, `shares > 100` is open;
        // on the true branch it is forced false — the exact reduction that
        // keeps Figure 3's left subtree free of the `> 100` test.
        let c = full().extend(&Pred::lt(F, 60), true);
        assert_eq!(c.implies(&Pred::gt(F, 100)), Some(false));
        let c = full().extend(&Pred::lt(F, 60), false);
        assert_eq!(c.implies(&Pred::gt(F, 100)), None);
        assert_eq!(c.implies(&Pred::lt(F, 30)), Some(false));
        assert_eq!(c.implies(&Pred::gt(F, 60)), None);
        assert_eq!(c.implies(&Pred::gt(F, 59)), Some(true));
    }

    #[test]
    fn eq_true_pins_field() {
        let c = full().extend(&Pred::eq(F, 42), true);
        assert_eq!(c.pinned(), Some(42));
        assert_eq!(c.implies(&Pred::eq(F, 42)), Some(true));
        assert_eq!(c.implies(&Pred::eq(F, 43)), Some(false));
        assert_eq!(c.implies(&Pred::lt(F, 100)), Some(true));
        assert_eq!(c.implies(&Pred::gt(F, 42)), Some(false));
    }

    #[test]
    fn eq_false_excludes_point() {
        let c = full().extend(&Pred::eq(F, 42), false);
        assert_eq!(c.implies(&Pred::eq(F, 42)), Some(false));
        assert_eq!(c.implies(&Pred::eq(F, 43)), None);
    }

    #[test]
    fn interval_exhaustion_forces_last_value() {
        // [5,6] with 5 excluded leaves only 6.
        let mut c = FieldCtx::full(F, 255);
        c = c.extend(&Pred::gt(F, 4), true); // [5,255]
        c = c.extend(&Pred::lt(F, 7), true); // [5,6]
        c = c.extend(&Pred::eq(F, 5), false); // {6}
        assert_eq!(c.pinned(), Some(6));
        assert_eq!(c.implies(&Pred::eq(F, 6)), Some(true));
    }

    #[test]
    fn exclusions_outside_interval_are_dropped() {
        let mut c = full();
        c = c.extend(&Pred::eq(F, 200), false);
        c = c.extend(&Pred::lt(F, 100), true); // interval [0,99]: 200 irrelevant
        assert!(c.excluded.is_empty());
    }

    #[test]
    fn saturation_keeps_soundness() {
        // Exclude non-contiguous (odd) points so bound tightening cannot
        // absorb them into the interval.
        let mut c = FieldCtx::full(F, u64::MAX);
        for i in 0..(MAX_EXCLUSIONS as u64 + 10) {
            let v = 2 * i + 1;
            if c.implies(&Pred::eq(F, v)).is_none() {
                c = c.extend(&Pred::eq(F, v), false);
            }
        }
        assert!(c.saturated);
        // Saturated contexts may answer None where Some(false) would be
        // exact, but must never answer Some(true) wrongly.
        assert_eq!(c.implies(&Pred::eq(F, MAX_EXCLUSIONS as u64 + 100)), None);
    }

    #[test]
    fn contains_matches_constraints() {
        let c = full()
            .extend(&Pred::lt(F, 10), true)
            .extend(&Pred::eq(F, 5), false);
        assert!(c.contains(4));
        assert!(!c.contains(5));
        assert!(!c.contains(10));
    }

    /// Differential check: `implies` agrees with brute-force evaluation
    /// over every value of a small domain, for random constraint chains.
    #[test]
    fn implies_agrees_with_brute_force() {
        let max = 31u64;
        let preds: Vec<Pred> = (0..=max)
            .flat_map(|v| [Pred::eq(F, v), Pred::lt(F, v.max(1)), Pred::gt(F, v)])
            .collect();
        // Deterministic pseudo-random walk.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..200 {
            let mut c = FieldCtx::full(F, max);
            for _ in 0..6 {
                let p = preds[(next() % preds.len() as u64) as usize];
                if c.implies(&p).is_none() {
                    c = c.extend(&p, next() % 2 == 0);
                }
                // Check every predicate against brute force.
                let values: Vec<u64> = (0..=max).filter(|&v| c.contains(v)).collect();
                assert!(!values.is_empty(), "context became empty: {c:?}");
                for q in &preds {
                    let all_true = values.iter().all(|&v| q.eval(v));
                    let all_false = values.iter().all(|&v| !q.eval(v));
                    match c.implies(q) {
                        Some(true) => assert!(all_true, "ctx={c:?} q={q}"),
                        Some(false) => assert!(all_false, "ctx={c:?} q={q}"),
                        None => {
                            // None is sound (a missed implication is
                            // allowed only when exclusions saturated or the
                            // window heuristic skipped the check).
                        }
                    }
                }
            }
        }
    }
}
