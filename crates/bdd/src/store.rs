//! Hash-consed node storage.
//!
//! The store implements the paper's structural reductions:
//!
//! * **(i) isomorphic-node sharing** — `make_node` consults a unique
//!   table, so two nodes with equal (variable, low, high) are the same
//!   node;
//! * **(ii) redundant-test elimination** — `make_node` returns the
//!   common child when both branches coincide.
//!
//! Terminals are *action sets* (this is a multi-terminal BDD); they are
//! hash-consed the same way so terminal equality is id equality.

use std::collections::HashMap;

use crate::pred::ActionId;

/// Index of a BDD variable in the global (field-major) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Identifier of a hash-consed action set (a BDD terminal value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionSetId(pub u32);

/// The empty action set: the terminal a packet reaches when it matches
/// no rule. Always id 0.
pub const EMPTY_ACTIONS: ActionSetId = ActionSetId(0);

/// A reference to a BDD vertex: an internal decision node or a terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeRef {
    /// Terminal carrying an action set.
    Term(ActionSetId),
    /// Internal node, by index into the store.
    Node(NodeIdx),
}

impl NodeRef {
    /// Whether this is a terminal.
    pub fn is_term(&self) -> bool {
        matches!(self, NodeRef::Term(_))
    }
}

/// Index of an internal node in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIdx(pub u32);

/// An internal decision node: test `var`; take `hi` when the predicate
/// holds, `lo` otherwise (solid/dashed arrows of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node {
    /// The tested variable.
    pub var: VarId,
    /// False branch.
    pub lo: NodeRef,
    /// True branch.
    pub hi: NodeRef,
}

/// The node + terminal store.
#[derive(Debug, Default)]
pub struct Store {
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeIdx>,
    /// Terminal action sets, sorted and deduplicated; index 0 is empty.
    action_sets: Vec<Vec<ActionId>>,
    set_index: HashMap<Vec<ActionId>, ActionSetId>,
}

impl Store {
    /// Creates an empty store (with the empty action set preinstalled).
    pub fn new() -> Self {
        let mut s = Store::default();
        s.action_sets.push(Vec::new());
        s.set_index.insert(Vec::new(), EMPTY_ACTIONS);
        s
    }

    /// Interns an action set (sorted + deduplicated first).
    pub fn intern_actions(&mut self, actions: &[ActionId]) -> ActionSetId {
        let mut v = actions.to_vec();
        v.sort_unstable();
        v.dedup();
        if let Some(&id) = self.set_index.get(&v) {
            return id;
        }
        let id = ActionSetId(self.action_sets.len() as u32);
        self.action_sets.push(v.clone());
        self.set_index.insert(v, id);
        id
    }

    /// Union of two interned action sets.
    pub fn union_actions(&mut self, a: ActionSetId, b: ActionSetId) -> ActionSetId {
        if a == b {
            return a;
        }
        if a == EMPTY_ACTIONS {
            return b;
        }
        if b == EMPTY_ACTIONS {
            return a;
        }
        let mut v: Vec<ActionId> = Vec::with_capacity(
            self.action_sets[a.0 as usize].len() + self.action_sets[b.0 as usize].len(),
        );
        v.extend_from_slice(&self.action_sets[a.0 as usize]);
        v.extend_from_slice(&self.action_sets[b.0 as usize]);
        self.intern_actions(&v)
    }

    /// The actions in an interned set (sorted).
    pub fn actions(&self, id: ActionSetId) -> &[ActionId] {
        &self.action_sets[id.0 as usize]
    }

    /// Number of distinct action sets created (including the empty set).
    pub fn action_set_count(&self) -> usize {
        self.action_sets.len()
    }

    /// Creates (or reuses) a node, applying reductions (i) and (ii).
    pub fn make_node(&mut self, var: VarId, lo: NodeRef, hi: NodeRef) -> NodeRef {
        if lo == hi {
            return lo; // reduction (ii): redundant test
        }
        let node = Node { var, lo, hi };
        if let Some(&idx) = self.unique.get(&node) {
            return NodeRef::Node(idx); // reduction (i): isomorphic node
        }
        let idx = NodeIdx(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, idx);
        NodeRef::Node(idx)
    }

    /// The node behind a reference. Panics on terminals.
    pub fn node(&self, r: NodeRef) -> Node {
        match r {
            NodeRef::Node(idx) => self.nodes[idx.0 as usize],
            NodeRef::Term(_) => panic!("node() called on a terminal"),
        }
    }

    /// Total number of internal nodes ever created (live + unreachable).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(n: u32) -> ActionId {
        ActionId(n)
    }

    #[test]
    fn empty_set_is_id_zero() {
        let s = Store::new();
        assert_eq!(s.actions(EMPTY_ACTIONS), &[]);
    }

    #[test]
    fn interning_sorts_and_dedups() {
        let mut s = Store::new();
        let a = s.intern_actions(&[aid(3), aid(1), aid(3)]);
        assert_eq!(s.actions(a), &[aid(1), aid(3)]);
        let b = s.intern_actions(&[aid(1), aid(3)]);
        assert_eq!(a, b);
    }

    #[test]
    fn union_is_set_union() {
        let mut s = Store::new();
        let a = s.intern_actions(&[aid(1), aid(2)]);
        let b = s.intern_actions(&[aid(2), aid(3)]);
        let u = s.union_actions(a, b);
        assert_eq!(s.actions(u), &[aid(1), aid(2), aid(3)]);
        assert_eq!(s.union_actions(a, EMPTY_ACTIONS), a);
        assert_eq!(s.union_actions(EMPTY_ACTIONS, b), b);
        assert_eq!(s.union_actions(u, u), u);
    }

    #[test]
    fn make_node_collapses_equal_children() {
        let mut s = Store::new();
        let t = NodeRef::Term(EMPTY_ACTIONS);
        assert_eq!(s.make_node(VarId(0), t, t), t);
        assert_eq!(s.node_count(), 0);
    }

    #[test]
    fn make_node_shares_isomorphic_nodes() {
        let mut s = Store::new();
        let a = s.intern_actions(&[aid(1)]);
        let t0 = NodeRef::Term(EMPTY_ACTIONS);
        let t1 = NodeRef::Term(a);
        let n1 = s.make_node(VarId(0), t0, t1);
        let n2 = s.make_node(VarId(0), t0, t1);
        assert_eq!(n1, n2);
        assert_eq!(s.node_count(), 1);
        let n3 = s.make_node(VarId(1), t0, t1);
        assert_ne!(n1, n3);
        assert_eq!(s.node_count(), 2);
    }

    #[test]
    #[should_panic(expected = "terminal")]
    fn node_on_terminal_panics() {
        let s = Store::new();
        s.node(NodeRef::Term(EMPTY_ACTIONS));
    }
}
