//! Hash-consed node storage.
//!
//! The store implements the paper's structural reductions:
//!
//! * **(i) isomorphic-node sharing** — `make_node` consults a unique
//!   table, so two nodes with equal (variable, low, high) are the same
//!   node;
//! * **(ii) redundant-test elimination** — `make_node` returns the
//!   common child when both branches coincide.
//!
//! Terminals are *action sets* (this is a multi-terminal BDD); they are
//! hash-consed the same way so terminal equality is id equality.
//!
//! The store is the compiler's hottest data structure, so it is built
//! to be allocation-lean:
//!
//! * all maps use the vendored Fx hasher (`fxhash`), which is several
//!   times cheaper than SipHash on these short fixed-width keys;
//! * action sets live in a single **arena** (`Vec<ActionId>` plus
//!   `(offset, len)` spans) instead of one `Vec` per set, and the
//!   interning index keys on the *hash* of a set's contents with a tiny
//!   collision bucket — so interning never clones a candidate set and
//!   misses probe the map exactly once;
//! * set union is memoized on the `(a, b)` id pair: churn workloads
//!   re-union the same terminal sets on every rule insertion;
//! * a reused scratch buffer makes `intern_actions`/`union_actions`
//!   allocation-free in the steady state.

use std::collections::hash_map::Entry as MapEntry;

use fxhash::FxHashMap;

use crate::pred::ActionId;

/// Index of a BDD variable in the global (field-major) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Identifier of a hash-consed action set (a BDD terminal value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionSetId(pub u32);

/// The empty action set: the terminal a packet reaches when it matches
/// no rule. Always id 0.
pub const EMPTY_ACTIONS: ActionSetId = ActionSetId(0);

/// A reference to a BDD vertex: an internal decision node or a terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeRef {
    /// Terminal carrying an action set.
    Term(ActionSetId),
    /// Internal node, by index into the store.
    Node(NodeIdx),
}

impl NodeRef {
    /// Whether this is a terminal.
    pub fn is_term(&self) -> bool {
        matches!(self, NodeRef::Term(_))
    }

    /// Packs the reference into 32 bits (tag in the low bit) for
    /// compact memo keys. Store indices stay below 2^31 (debug-asserted
    /// on creation), so the shift cannot lose bits.
    #[inline]
    pub fn pack(self) -> u32 {
        match self {
            NodeRef::Term(ActionSetId(i)) => i << 1,
            NodeRef::Node(NodeIdx(i)) => (i << 1) | 1,
        }
    }
}

/// Index of an internal node in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIdx(pub u32);

/// An internal decision node: test `var`; take `hi` when the predicate
/// holds, `lo` otherwise (solid/dashed arrows of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node {
    /// The tested variable.
    pub var: VarId,
    /// False branch.
    pub lo: NodeRef,
    /// True branch.
    pub hi: NodeRef,
}

/// The node + terminal store.
#[derive(Debug, Default)]
pub struct Store {
    nodes: Vec<Node>,
    unique: FxHashMap<Node, NodeIdx>,
    /// All interned action sets, back to back (sorted + deduplicated
    /// within each span).
    arena: Vec<ActionId>,
    /// `(offset, len)` of each set id's span in the arena; index 0 is
    /// the empty set.
    spans: Vec<(u32, u32)>,
    /// Fx hash of a set's contents → ids whose spans carry that hash
    /// (bucket length is ~1 in practice).
    set_index: FxHashMap<u64, Vec<ActionSetId>>,
    /// Union results memoized on the packed `(min, max)` id pair.
    union_memo: FxHashMap<u64, ActionSetId>,
    /// Reused sort/merge scratch, so interning allocates nothing in the
    /// steady state.
    scratch: Vec<ActionId>,
}

impl Store {
    /// Creates an empty store (with the empty action set preinstalled).
    pub fn new() -> Self {
        let mut s = Store::default();
        s.spans.push((0, 0));
        s.set_index
            .insert(fxhash::hash_one(&[] as &[ActionId]), vec![EMPTY_ACTIONS]);
        s
    }

    /// Interns an action set (sorted + deduplicated first).
    pub fn intern_actions(&mut self, actions: &[ActionId]) -> ActionSetId {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(actions);
        scratch.sort_unstable();
        scratch.dedup();
        let id = self.intern_sorted(&scratch);
        self.scratch = scratch;
        id
    }

    /// Interns an already sorted + deduplicated set: hash once, probe
    /// the index once, and on a miss append the span to the arena.
    fn intern_sorted(&mut self, set: &[ActionId]) -> ActionSetId {
        let h = fxhash::hash_one(set);
        let Store {
            arena,
            spans,
            set_index,
            ..
        } = self;
        let bucket = set_index.entry(h).or_default();
        for &id in bucket.iter() {
            let (off, len) = spans[id.0 as usize];
            if arena[off as usize..(off + len) as usize] == *set {
                return id;
            }
        }
        debug_assert!(spans.len() < (1 << 31), "action-set ids exceed pack range");
        let id = ActionSetId(spans.len() as u32);
        spans.push((arena.len() as u32, set.len() as u32));
        arena.extend_from_slice(set);
        bucket.push(id);
        id
    }

    /// Union of two interned action sets, memoized on the id pair.
    pub fn union_actions(&mut self, a: ActionSetId, b: ActionSetId) -> ActionSetId {
        if a == b {
            return a;
        }
        if a == EMPTY_ACTIONS {
            return b;
        }
        if b == EMPTY_ACTIONS {
            return a;
        }
        let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        let key = (u64::from(lo.0) << 32) | u64::from(hi.0);
        if let Some(&id) = self.union_memo.get(&key) {
            return id;
        }
        // Merge the two sorted spans into the scratch buffer.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        {
            let sa = self.actions(lo);
            let sb = self.actions(hi);
            let (mut i, mut j) = (0, 0);
            while i < sa.len() && j < sb.len() {
                match sa[i].cmp(&sb[j]) {
                    std::cmp::Ordering::Less => {
                        scratch.push(sa[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        scratch.push(sb[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        scratch.push(sa[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            scratch.extend_from_slice(&sa[i..]);
            scratch.extend_from_slice(&sb[j..]);
        }
        let id = self.intern_sorted(&scratch);
        self.scratch = scratch;
        self.union_memo.insert(key, id);
        id
    }

    /// The actions in an interned set (sorted).
    pub fn actions(&self, id: ActionSetId) -> &[ActionId] {
        let (off, len) = self.spans[id.0 as usize];
        &self.arena[off as usize..(off + len) as usize]
    }

    /// Number of distinct action sets created (including the empty set).
    pub fn action_set_count(&self) -> usize {
        self.spans.len()
    }

    /// Creates (or reuses) a node, applying reductions (i) and (ii).
    /// The miss path probes the unique table exactly once (`entry`
    /// API), moving the node in instead of re-hashing it.
    pub fn make_node(&mut self, var: VarId, lo: NodeRef, hi: NodeRef) -> NodeRef {
        if lo == hi {
            return lo; // reduction (ii): redundant test
        }
        let node = Node { var, lo, hi };
        let Store { nodes, unique, .. } = self;
        let idx = match unique.entry(node) {
            MapEntry::Occupied(o) => *o.get(), // reduction (i): isomorphic node
            MapEntry::Vacant(v) => {
                debug_assert!(nodes.len() < (1 << 31), "node ids exceed pack range");
                let idx = NodeIdx(nodes.len() as u32);
                nodes.push(node);
                *v.insert(idx)
            }
        };
        NodeRef::Node(idx)
    }

    /// The node behind a reference. Panics on terminals.
    pub fn node(&self, r: NodeRef) -> Node {
        match r {
            NodeRef::Node(idx) => self.nodes[idx.0 as usize],
            NodeRef::Term(_) => panic!("node() called on a terminal"),
        }
    }

    /// Total number of internal nodes ever created (live + unreachable).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(n: u32) -> ActionId {
        ActionId(n)
    }

    #[test]
    fn empty_set_is_id_zero() {
        let s = Store::new();
        assert_eq!(s.actions(EMPTY_ACTIONS), &[]);
    }

    #[test]
    fn interning_sorts_and_dedups() {
        let mut s = Store::new();
        let a = s.intern_actions(&[aid(3), aid(1), aid(3)]);
        assert_eq!(s.actions(a), &[aid(1), aid(3)]);
        let b = s.intern_actions(&[aid(1), aid(3)]);
        assert_eq!(a, b);
    }

    #[test]
    fn reinterning_the_empty_set_yields_id_zero() {
        let mut s = Store::new();
        assert_eq!(s.intern_actions(&[]), EMPTY_ACTIONS);
        assert_eq!(s.action_set_count(), 1);
    }

    #[test]
    fn union_is_set_union() {
        let mut s = Store::new();
        let a = s.intern_actions(&[aid(1), aid(2)]);
        let b = s.intern_actions(&[aid(2), aid(3)]);
        let u = s.union_actions(a, b);
        assert_eq!(s.actions(u), &[aid(1), aid(2), aid(3)]);
        assert_eq!(s.union_actions(a, EMPTY_ACTIONS), a);
        assert_eq!(s.union_actions(EMPTY_ACTIONS, b), b);
        assert_eq!(s.union_actions(u, u), u);
    }

    #[test]
    fn union_memo_is_symmetric_and_consistent() {
        let mut s = Store::new();
        let a = s.intern_actions(&[aid(1), aid(5)]);
        let b = s.intern_actions(&[aid(2)]);
        let u1 = s.union_actions(a, b);
        let u2 = s.union_actions(b, a); // memo hit via the (min, max) key
        assert_eq!(u1, u2);
        assert_eq!(s.actions(u1), &[aid(1), aid(2), aid(5)]);
        // The memoized result must equal what fresh interning gives.
        assert_eq!(s.intern_actions(&[aid(2), aid(1), aid(5)]), u1);
    }

    #[test]
    fn arena_spans_stay_valid_across_growth() {
        let mut s = Store::new();
        let ids: Vec<ActionSetId> = (0..200u32)
            .map(|i| s.intern_actions(&[aid(i), aid(i + 1), aid(i + 2)]))
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            let i = i as u32;
            assert_eq!(s.actions(id), &[aid(i), aid(i + 1), aid(i + 2)]);
        }
    }

    #[test]
    fn make_node_collapses_equal_children() {
        let mut s = Store::new();
        let t = NodeRef::Term(EMPTY_ACTIONS);
        assert_eq!(s.make_node(VarId(0), t, t), t);
        assert_eq!(s.node_count(), 0);
    }

    #[test]
    fn make_node_shares_isomorphic_nodes() {
        let mut s = Store::new();
        let a = s.intern_actions(&[aid(1)]);
        let t0 = NodeRef::Term(EMPTY_ACTIONS);
        let t1 = NodeRef::Term(a);
        let n1 = s.make_node(VarId(0), t0, t1);
        let n2 = s.make_node(VarId(0), t0, t1);
        assert_eq!(n1, n2);
        assert_eq!(s.node_count(), 1);
        let n3 = s.make_node(VarId(1), t0, t1);
        assert_ne!(n1, n3);
        assert_eq!(s.node_count(), 2);
    }

    #[test]
    fn packed_refs_are_injective() {
        let refs = [
            NodeRef::Term(ActionSetId(0)),
            NodeRef::Term(ActionSetId(1)),
            NodeRef::Node(NodeIdx(0)),
            NodeRef::Node(NodeIdx(1)),
        ];
        for (i, a) in refs.iter().enumerate() {
            for (j, b) in refs.iter().enumerate() {
                assert_eq!(a.pack() == b.pack(), i == j, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "terminal")]
    fn node_on_terminal_panics() {
        let s = Store::new();
        s.node(NodeRef::Term(EMPTY_ACTIONS));
    }
}
