//! The canonical predicate alphabet.
//!
//! The paper's atomic predicates are `field < n`, `field > n` and
//! `field == n` over unsigned packet fields. Negation during DNF
//! normalization also produces `<=`, `>=` and `!=`; those are
//! canonicalized here back onto the three-operator alphabet (with an
//! explicit polarity for `!=`), so the BDD variable table contains only
//! `<`, `>` and `==` tests — exactly the Figure 3 node shapes.

use std::fmt;

use camus_lang::ast::RelOp;

/// Index of a query field in the compiler's field order. State variables
/// are assigned pseudo-field ids after the packet fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u32);

/// An opaque action identifier. The compiler maps each distinct rule
/// action (forward set, state update) to an `ActionId`; BDD terminals
/// are sets of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId(pub u32);

/// Per-field metadata the BDD needs: the field's bit width (bounding its
/// value domain) and whether it is exact-match-only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldInfo {
    /// Field name, for diagnostics and DOT output.
    pub name: String,
    /// Width in bits (1..=64).
    pub bits: u32,
    /// `true` for `@query_field_exact` fields: only `==`/`!=` predicates
    /// are allowed, and the compiled table uses SRAM exact matching.
    pub exact: bool,
}

impl FieldInfo {
    /// A range-matchable field (`@query_field`).
    pub fn range(name: impl Into<String>, bits: u32) -> Self {
        FieldInfo {
            name: name.into(),
            bits,
            exact: false,
        }
    }

    /// An exact-match-only field (`@query_field_exact`).
    pub fn exact(name: impl Into<String>, bits: u32) -> Self {
        FieldInfo {
            name: name.into(),
            bits,
            exact: true,
        }
    }

    /// Largest value representable in the field.
    pub fn max_value(&self) -> u64 {
        if self.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }
}

/// Canonical predicate operators (paper Fig. 1: `<`, `>`, `==`).
///
/// The derived `Ord` (Eq < Lt < Gt, then by constant) fixes the
/// *within-field* variable order; fields themselves are ordered by
/// [`FieldId`], which the compiler assigns from the ordering heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PredOp {
    /// `field == n`
    Eq,
    /// `field < n`
    Lt,
    /// `field > n`
    Gt,
}

impl PredOp {
    /// Evaluates the operator.
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            PredOp::Eq => lhs == rhs,
            PredOp::Lt => lhs < rhs,
            PredOp::Gt => lhs > rhs,
        }
    }

    /// Concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            PredOp::Eq => "==",
            PredOp::Lt => "<",
            PredOp::Gt => ">",
        }
    }
}

impl fmt::Display for PredOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A canonical atomic predicate `field op value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred {
    /// The field tested.
    pub field: FieldId,
    /// The operator.
    pub op: PredOp,
    /// The constant compared against.
    pub value: u64,
}

impl Pred {
    /// `field == value`.
    pub fn eq(field: FieldId, value: u64) -> Self {
        Pred {
            field,
            op: PredOp::Eq,
            value,
        }
    }

    /// `field < value`.
    pub fn lt(field: FieldId, value: u64) -> Self {
        Pred {
            field,
            op: PredOp::Lt,
            value,
        }
    }

    /// `field > value`.
    pub fn gt(field: FieldId, value: u64) -> Self {
        Pred {
            field,
            op: PredOp::Gt,
            value,
        }
    }

    /// Evaluates the predicate on a field value.
    pub fn eval(&self, field_value: u64) -> bool {
        self.op.eval(field_value, self.value)
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{} {} {}", self.field.0, self.op, self.value)
    }
}

/// Result of canonicalizing a (possibly extended-operator) predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Canon {
    /// The predicate is a tautology over the field's domain
    /// (e.g. `x >= 0`, `x <= max`).
    Always(bool),
    /// A canonical literal: predicate plus polarity (`false` = negated).
    Lit(Pred, bool),
}

/// Canonicalizes `field op value` over a field of `bits` bits onto the
/// `{<, >, ==}` alphabet:
///
/// * `x <= n` ⇒ `x < n+1` (or *true* when `n` is the domain max);
/// * `x >= n` ⇒ `x > n-1` (or *true* when `n` is 0);
/// * `x != n` ⇒ `¬(x == n)`;
/// * out-of-domain constants fold to constants (`x < 0` is *false*,
///   `x == n` with `n` above the domain max is *false*, ...).
pub fn canonicalize(field: FieldId, op: RelOp, value: u64, bits: u32) -> Canon {
    let max = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    match op {
        RelOp::Eq | RelOp::Ne => {
            let pol = op == RelOp::Eq;
            if value > max {
                Canon::Always(!pol)
            } else {
                Canon::Lit(Pred::eq(field, value), pol)
            }
        }
        RelOp::Lt => {
            if value == 0 {
                Canon::Always(false)
            } else if value > max {
                Canon::Always(true)
            } else {
                Canon::Lit(Pred::lt(field, value), true)
            }
        }
        RelOp::Gt => {
            if value >= max {
                Canon::Always(false)
            } else {
                Canon::Lit(Pred::gt(field, value), true)
            }
        }
        RelOp::Le => {
            if value >= max {
                Canon::Always(true)
            } else {
                // x <= n  ⇔  x < n+1 (n < max, so n+1 cannot overflow).
                Canon::Lit(Pred::lt(field, value + 1), true)
            }
        }
        RelOp::Ge => {
            if value == 0 {
                Canon::Always(true)
            } else if value > max {
                Canon::Always(false)
            } else {
                // x >= n  ⇔  x > n-1 (n > 0).
                Canon::Lit(Pred::gt(field, value - 1), true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FieldId = FieldId(0);

    /// Exhaustively checks that canonicalization preserves semantics over
    /// a small field domain.
    #[test]
    fn canonicalization_preserves_semantics_exhaustively() {
        let bits = 4;
        let max = 15u64;
        for op in [
            RelOp::Lt,
            RelOp::Gt,
            RelOp::Eq,
            RelOp::Le,
            RelOp::Ge,
            RelOp::Ne,
        ] {
            for value in 0..=max + 2 {
                let canon = canonicalize(F, op, value, bits);
                for x in 0..=max {
                    let want = op.eval(x, value);
                    let got = match canon {
                        Canon::Always(b) => b,
                        Canon::Lit(p, pol) => p.eval(x) == pol,
                    };
                    assert_eq!(got, want, "{op} value={value} x={x} -> {canon:?}");
                }
            }
        }
    }

    #[test]
    fn le_max_is_tautology() {
        assert_eq!(canonicalize(F, RelOp::Le, 15, 4), Canon::Always(true));
        assert_eq!(
            canonicalize(F, RelOp::Le, u64::MAX, 64),
            Canon::Always(true)
        );
    }

    #[test]
    fn ge_zero_is_tautology() {
        assert_eq!(canonicalize(F, RelOp::Ge, 0, 32), Canon::Always(true));
    }

    #[test]
    fn lt_zero_is_contradiction() {
        assert_eq!(canonicalize(F, RelOp::Lt, 0, 32), Canon::Always(false));
    }

    #[test]
    fn gt_max_is_contradiction() {
        assert_eq!(canonicalize(F, RelOp::Gt, 15, 4), Canon::Always(false));
        assert_eq!(
            canonicalize(F, RelOp::Gt, u64::MAX, 64),
            Canon::Always(false)
        );
    }

    #[test]
    fn ne_is_negated_eq() {
        assert_eq!(
            canonicalize(F, RelOp::Ne, 7, 8),
            Canon::Lit(Pred::eq(F, 7), false)
        );
    }

    #[test]
    fn within_field_order_is_eq_lt_gt() {
        let mut v = vec![
            Pred::gt(F, 1),
            Pred::lt(F, 9),
            Pred::eq(F, 5),
            Pred::eq(F, 2),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Pred::eq(F, 2),
                Pred::eq(F, 5),
                Pred::lt(F, 9),
                Pred::gt(F, 1)
            ]
        );
    }

    #[test]
    fn field_info_max_value() {
        assert_eq!(FieldInfo::range("x", 8).max_value(), 255);
        assert_eq!(FieldInfo::range("x", 64).max_value(), u64::MAX);
        assert_eq!(FieldInfo::range("x", 1).max_value(), 1);
    }
}
