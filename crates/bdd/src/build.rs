//! BDD construction: Shannon-expansion insertion of normalized rules.
//!
//! §3.2: "The compiler then builds the BDD incrementally by evaluating
//! the condition at each node using the Shannon expansion and adding
//! nodes for the predicates in the condition as needed."
//!
//! Each normalized rule (a conjunction of literals plus an action set)
//! is turned into a linear *chain* BDD and unioned into the accumulated
//! diagram with a memoized `apply`. The apply carries a per-field
//! constraint context ([`crate::ctx::FieldCtx`]) that implements
//! reduction (iii): predicates forced by same-field ancestors are never
//! materialized, which removes unsatisfiable paths and keeps at most one
//! satisfiable path between any pair of component boundary nodes —
//! the property Algorithm 1's path enumeration relies on.

use std::fmt;

use fxhash::FxHashMap;

use crate::ctx::FieldCtx;
use crate::memo_key;
use crate::pred::{ActionId, FieldId, FieldInfo, Pred, PredOp};
use crate::store::{NodeRef, Store, VarId, EMPTY_ACTIONS};
use crate::Bdd;

/// Errors from BDD construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// A predicate references a field id outside the field table.
    UnknownField(FieldId),
    /// A range predicate (`<`, `>`) was used on an exact-match field.
    RangeOnExactField { field: FieldId, pred: Pred },
    /// The predicate's constant does not fit the field's domain, or the
    /// predicate is trivially constant (`< 0`, `> max`).
    TrivialPred(Pred),
    /// `add_rule` used a predicate that was not declared in `Bdd::new`.
    UndeclaredPred(Pred),
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::UnknownField(id) => write!(f, "unknown field id {}", id.0),
            BddError::RangeOnExactField { field, pred } => {
                write!(f, "range predicate {pred} on exact-match field {}", field.0)
            }
            BddError::TrivialPred(p) => write!(f, "trivially constant predicate {p}"),
            BddError::UndeclaredPred(p) => write!(f, "predicate {p} not in the declared alphabet"),
        }
    }
}

impl std::error::Error for BddError {}

/// Sentinel context id meaning "no same-field constraints yet".
pub(crate) const CTX_NONE: u32 = 0;

impl Bdd {
    /// Creates a BDD over the given field table and predicate alphabet.
    ///
    /// All predicates that rules will use must be declared up front —
    /// this fixes the (field-major) variable order. Predicates are
    /// validated: exact fields admit only `==`, constants must lie in
    /// the field's domain, and trivially constant predicates are
    /// rejected (canonicalize first; see [`crate::pred::canonicalize`]).
    pub fn new(
        fields: Vec<FieldInfo>,
        preds: impl IntoIterator<Item = Pred>,
    ) -> Result<Bdd, BddError> {
        let mut vars: Vec<Pred> = Vec::new();
        for p in preds {
            let info = fields
                .get(p.field.0 as usize)
                .ok_or(BddError::UnknownField(p.field))?;
            let max = info.max_value();
            match p.op {
                PredOp::Eq => {
                    if p.value > max {
                        return Err(BddError::TrivialPred(p));
                    }
                }
                PredOp::Lt => {
                    if info.exact {
                        return Err(BddError::RangeOnExactField {
                            field: p.field,
                            pred: p,
                        });
                    }
                    if p.value == 0 || p.value > max {
                        return Err(BddError::TrivialPred(p));
                    }
                }
                PredOp::Gt => {
                    if info.exact {
                        return Err(BddError::RangeOnExactField {
                            field: p.field,
                            pred: p,
                        });
                    }
                    if p.value >= max {
                        return Err(BddError::TrivialPred(p));
                    }
                }
            }
            vars.push(p);
        }
        vars.sort_unstable();
        vars.dedup();
        let var_index = vars
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, VarId(i as u32)))
            .collect();

        // Context id 0 is the "no constraints" sentinel; its field id is
        // out of range so it never compares equal to a real field.
        let sentinel = FieldCtx::full(FieldId(u32::MAX), 0);
        let mut ctx_index = FxHashMap::default();
        ctx_index.insert(sentinel.clone(), CTX_NONE);

        Ok(Bdd {
            fields,
            vars,
            var_index,
            store: Store::new(),
            root: NodeRef::Term(EMPTY_ACTIONS),
            memo: FxHashMap::default(),
            memo_hits: 0,
            memo_misses: 0,
            semantic_pruning: true,
            ctxs: vec![sentinel],
            ctx_index,
            prune_memo: FxHashMap::default(),
        })
    }

    /// Disables/enables reduction (iii) (same-field implication
    /// pruning). For ablation experiments; on by default.
    pub fn set_semantic_pruning(&mut self, on: bool) {
        self.semantic_pruning = on;
    }

    /// Cumulative `(hits, misses)` of the apply memo across all
    /// `add_rule` calls.
    pub fn memo_stats(&self) -> (u64, u64) {
        (self.memo_hits, self.memo_misses)
    }

    /// The root vertex.
    pub fn root(&self) -> NodeRef {
        self.root
    }

    /// The variable order (field-major).
    pub fn vars(&self) -> &[Pred] {
        &self.vars
    }

    /// Whether `p` is in the declared predicate alphabet. Incremental
    /// sessions use this to validate a whole rule batch *before*
    /// mutating the BDD, keeping installs atomic when one conjunction
    /// would need a full recompile.
    pub fn has_pred(&self, p: &Pred) -> bool {
        self.var_index.contains_key(p)
    }

    /// The predicate tested by a variable.
    pub fn var_pred(&self, v: VarId) -> Pred {
        self.vars[v.0 as usize]
    }

    /// The field table.
    pub fn fields(&self) -> &[FieldInfo] {
        &self.fields
    }

    /// Per-field metadata.
    pub fn field_info(&self, f: FieldId) -> &FieldInfo {
        &self.fields[f.0 as usize]
    }

    /// Resolves a node reference (panics on terminals).
    pub fn node(&self, r: NodeRef) -> crate::store::Node {
        self.store.node(r)
    }

    /// The action set of a terminal.
    pub fn actions(&self, id: crate::store::ActionSetId) -> &[ActionId] {
        self.store.actions(id)
    }

    /// Number of internal nodes allocated (shared across rules).
    pub fn node_count(&self) -> usize {
        self.store.node_count()
    }

    /// Number of distinct terminal action sets (including the empty
    /// set). The compiler turns each non-trivial set with >1 forward
    /// port into a multicast group.
    pub fn action_set_count(&self) -> usize {
        self.store.action_set_count()
    }

    /// Inserts a rule: a conjunction of `(predicate, polarity)` literals
    /// guarding a set of actions. Returns `Ok(false)` when the
    /// conjunction is unsatisfiable (the BDD is unchanged), `Ok(true)`
    /// otherwise.
    pub fn add_rule(
        &mut self,
        literals: &[(Pred, bool)],
        actions: &[ActionId],
    ) -> Result<bool, BddError> {
        // Map to variables and sort into the global order.
        let mut lits: Vec<(VarId, Pred, bool)> = Vec::with_capacity(literals.len());
        for &(p, pol) in literals {
            let v = *self.var_index.get(&p).ok_or(BddError::UndeclaredPred(p))?;
            lits.push((v, p, pol));
        }
        lits.sort_unstable_by_key(|&(v, _, _)| v);

        // Same variable twice: drop duplicates, detect contradictions.
        let mut deduped: Vec<(VarId, Pred, bool)> = Vec::with_capacity(lits.len());
        for l in lits {
            match deduped.last() {
                Some(&(pv, _, ppol)) if pv == l.0 => {
                    if ppol != l.2 {
                        return Ok(false); // p ∧ ¬p
                    }
                }
                _ => deduped.push(l),
            }
        }

        // Per-field semantic pass: drop literals forced by earlier
        // same-field literals; reject unsatisfiable conjunctions.
        let mut chainlits: Vec<(VarId, Pred, bool)> = Vec::with_capacity(deduped.len());
        let mut cur: Option<FieldCtx> = None;
        for (v, p, pol) in deduped {
            let ctx = match cur.take() {
                Some(c) if c.field == p.field => c,
                _ => FieldCtx::full(p.field, self.fields[p.field.0 as usize].max_value()),
            };
            match ctx.implies(&p) {
                Some(forced) => {
                    if forced != pol {
                        return Ok(false);
                    }
                    cur = Some(ctx); // redundant literal: drop it
                }
                None => {
                    cur = Some(ctx.extend(&p, pol));
                    chainlits.push((v, p, pol));
                }
            }
        }

        // Build the rule chain bottom-up.
        let term = self.store.intern_actions(actions);
        if term == EMPTY_ACTIONS {
            return Ok(true); // no actions: matching it changes nothing
        }
        let mut acc = NodeRef::Term(term);
        let empty = NodeRef::Term(EMPTY_ACTIONS);
        for &(v, _, pol) in chainlits.iter().rev() {
            acc = if pol {
                self.store.make_node(v, empty, acc)
            } else {
                self.store.make_node(v, acc, empty)
            };
        }

        // Union into the accumulated BDD.
        self.memo.clear();
        self.root = self.apply(self.root, acc, CTX_NONE);
        self.memo.clear();
        Ok(true)
    }

    fn intern_ctx(&mut self, c: FieldCtx) -> u32 {
        if let Some(&id) = self.ctx_index.get(&c) {
            return id;
        }
        let id = self.ctxs.len() as u32;
        self.ctxs.push(c.clone());
        self.ctx_index.insert(c, id);
        id
    }

    fn var_of(&self, r: NodeRef) -> Option<VarId> {
        match r {
            NodeRef::Term(_) => None,
            NodeRef::Node(_) => Some(self.store.node(r).var),
        }
    }

    fn restrict(&self, r: NodeRef, v: VarId, val: bool) -> NodeRef {
        match r {
            NodeRef::Node(_) => {
                let n = self.store.node(r);
                if n.var == v {
                    if val {
                        n.hi
                    } else {
                        n.lo
                    }
                } else {
                    r
                }
            }
            NodeRef::Term(_) => r,
        }
    }

    /// Memoized union of two diagrams under a same-field constraint
    /// context.
    pub(crate) fn apply(&mut self, a: NodeRef, b: NodeRef, ctx_id: u32) -> NodeRef {
        if a == b {
            // Idempotent union — but the shared subtree may still hold
            // predicates forced by the context (same argument as the
            // empty-terminal case below).
            return self.prune(a, ctx_id);
        }
        // Union with the empty terminal is the identity — except that
        // the surviving side may contain predicates forced by the
        // context (the other side's ancestors contributed same-field
        // constraints it was not built under), so it is pruned before
        // grafting. Pruning memoizes persistently on (node, context)
        // and exits as soon as the subtree leaves the constrained
        // field's block (field-major ordering guarantees no deeper node
        // tests it), so the amortized cost stays linear in the nodes
        // actually affected.
        if b == NodeRef::Term(EMPTY_ACTIONS) {
            return self.prune(a, ctx_id);
        }
        if a == NodeRef::Term(EMPTY_ACTIONS) {
            return self.prune(b, ctx_id);
        }
        if let (NodeRef::Term(sa), NodeRef::Term(sb)) = (a, b) {
            return NodeRef::Term(self.store.union_actions(sa, sb));
        }

        // Split on the smallest variable present.
        let v = match (self.var_of(a), self.var_of(b)) {
            (Some(va), Some(vb)) => va.min(vb),
            (Some(va), None) => va,
            (None, Some(vb)) => vb,
            (None, None) => unreachable!("terminal/terminal handled above"),
        };
        let pred = self.vars[v.0 as usize];

        // Effective context: reset at field-block boundaries.
        let cur: FieldCtx = {
            let c = &self.ctxs[ctx_id as usize];
            if c.field == pred.field {
                c.clone()
            } else {
                FieldCtx::full(pred.field, self.fields[pred.field.0 as usize].max_value())
            }
        };
        let cid = self.intern_ctx(cur.clone());

        let key = memo_key(a, b, cid);
        if let Some(&r) = self.memo.get(&key) {
            self.memo_hits += 1;
            return r;
        }
        self.memo_misses += 1;

        // Reduction (iii): skip variables forced by same-field ancestors.
        let result = if self.semantic_pruning {
            match cur.implies(&pred) {
                Some(val) => {
                    let ra = self.restrict(a, v, val);
                    let rb = self.restrict(b, v, val);
                    self.apply(ra, rb, cid)
                }
                None => self.split(a, b, v, &cur, cid),
            }
        } else {
            self.split(a, b, v, &cur, cid)
        };

        self.memo.insert(key, result);
        result
    }

    fn split(&mut self, a: NodeRef, b: NodeRef, v: VarId, cur: &FieldCtx, cid: u32) -> NodeRef {
        let pred = self.vars[v.0 as usize];
        let (hi_ctx, lo_ctx) = if self.semantic_pruning {
            (
                self.intern_ctx(cur.extend(&pred, true)),
                self.intern_ctx(cur.extend(&pred, false)),
            )
        } else {
            (cid, cid)
        };
        let ah = self.restrict(a, v, true);
        let bh = self.restrict(b, v, true);
        let hi = self.apply(ah, bh, hi_ctx);
        let al = self.restrict(a, v, false);
        let bl = self.restrict(b, v, false);
        let lo = self.apply(al, bl, lo_ctx);
        self.store.make_node(v, lo, hi)
    }

    /// Removes context-forced nodes from a grafted diagram.
    ///
    /// Because the variable order is field-major and the context only
    /// constrains a single field, the walk stops at the first node
    /// whose field differs from the context's — nothing below it can
    /// test the constrained field. Results memoize persistently on
    /// `(node, context)` (pruning is a pure function of the pair), so
    /// repeated grafts across rule insertions are amortized.
    fn prune(&mut self, r: NodeRef, ctx_id: u32) -> NodeRef {
        if !self.semantic_pruning {
            return r;
        }
        let NodeRef::Node(_) = r else { return r };
        let n = self.store.node(r);
        let pred = self.vars[n.var.0 as usize];
        if self.ctxs[ctx_id as usize].field != pred.field {
            // The subtree's fields are all ≥ this node's field, which is
            // > the context's field: the constraint is irrelevant below.
            return r;
        }
        let pkey = (u64::from(r.pack()) << 32) | u64::from(ctx_id);
        if let Some(&res) = self.prune_memo.get(&pkey) {
            return res;
        }
        let cur = self.ctxs[ctx_id as usize].clone();
        let res = match cur.implies(&pred) {
            // Following a forced branch adds no information to the
            // context (the predicate's outcome was already implied).
            Some(true) => self.prune(n.hi, ctx_id),
            Some(false) => self.prune(n.lo, ctx_id),
            None => {
                let hi_ctx = self.intern_ctx(cur.extend(&pred, true));
                let lo_ctx = self.intern_ctx(cur.extend(&pred, false));
                let hi = self.prune(n.hi, hi_ctx);
                let lo = self.prune(n.lo, lo_ctx);
                self.store.make_node(n.var, lo, hi)
            }
        };
        self.prune_memo.insert(pkey, res);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::FieldInfo;

    fn two_field_bdd() -> Bdd {
        let fields = vec![
            FieldInfo::range("shares", 32),
            FieldInfo::exact("stock", 64),
        ];
        let shares = FieldId(0);
        let stock = FieldId(1);
        let preds = vec![
            Pred::lt(shares, 60),
            Pred::gt(shares, 100),
            Pred::eq(stock, 1),
            Pred::eq(stock, 2),
        ];
        Bdd::new(fields, preds).unwrap()
    }

    #[test]
    fn new_rejects_bad_predicates() {
        let fields = vec![FieldInfo::range("a", 8), FieldInfo::exact("s", 16)];
        assert!(matches!(
            Bdd::new(fields.clone(), [Pred::eq(FieldId(9), 1)]),
            Err(BddError::UnknownField(_))
        ));
        assert!(matches!(
            Bdd::new(fields.clone(), [Pred::lt(FieldId(1), 5)]),
            Err(BddError::RangeOnExactField { .. })
        ));
        assert!(matches!(
            Bdd::new(fields.clone(), [Pred::eq(FieldId(0), 256)]),
            Err(BddError::TrivialPred(_))
        ));
        assert!(matches!(
            Bdd::new(fields.clone(), [Pred::lt(FieldId(0), 0)]),
            Err(BddError::TrivialPred(_))
        ));
        assert!(matches!(
            Bdd::new(fields, [Pred::gt(FieldId(0), 255)]),
            Err(BddError::TrivialPred(_))
        ));
    }

    #[test]
    fn add_rule_rejects_undeclared_pred() {
        let mut bdd = two_field_bdd();
        let err = bdd.add_rule(&[(Pred::eq(FieldId(1), 99), true)], &[ActionId(0)]);
        assert!(matches!(err, Err(BddError::UndeclaredPred(_))));
    }

    #[test]
    fn contradictory_rule_is_noop() {
        let mut bdd = two_field_bdd();
        let shares = FieldId(0);
        let inserted = bdd
            .add_rule(
                &[(Pred::lt(shares, 60), true), (Pred::gt(shares, 100), true)],
                &[ActionId(0)],
            )
            .unwrap();
        assert!(!inserted);
        assert_eq!(bdd.root(), NodeRef::Term(EMPTY_ACTIONS));
    }

    #[test]
    fn same_literal_twice_dedupes() {
        let mut bdd = two_field_bdd();
        let stock = FieldId(1);
        let p = Pred::eq(stock, 1);
        assert!(bdd
            .add_rule(&[(p, true), (p, true)], &[ActionId(0)])
            .unwrap());
        assert_eq!(bdd.eval(|_| 1), &[ActionId(0)]);
    }

    #[test]
    fn opposite_literals_are_unsat() {
        let mut bdd = two_field_bdd();
        let p = Pred::eq(FieldId(1), 1);
        assert!(!bdd
            .add_rule(&[(p, true), (p, false)], &[ActionId(0)])
            .unwrap());
    }

    #[test]
    fn redundant_literal_is_dropped() {
        // shares < 60 ∧ shares < 100 — the second is implied (note only
        // <60 is in the alphabet's... both must be declared).
        let fields = vec![FieldInfo::range("shares", 32)];
        let f = FieldId(0);
        let mut bdd = Bdd::new(fields, [Pred::lt(f, 60), Pred::lt(f, 100)]).unwrap();
        bdd.add_rule(
            &[(Pred::lt(f, 60), true), (Pred::lt(f, 100), true)],
            &[ActionId(0)],
        )
        .unwrap();
        // Only one node materialized: the <100 test was implied.
        assert_eq!(bdd.node_count(), 1);
        assert_eq!(bdd.eval(|_| 59), &[ActionId(0)]);
        assert_eq!(bdd.eval(|_| 60), &[] as &[ActionId]);
    }

    #[test]
    fn empty_action_rule_is_noop() {
        let mut bdd = two_field_bdd();
        assert!(bdd
            .add_rule(&[(Pred::eq(FieldId(1), 1), true)], &[])
            .unwrap());
        assert_eq!(bdd.root(), NodeRef::Term(EMPTY_ACTIONS));
    }

    #[test]
    fn true_rule_reaches_every_packet() {
        let mut bdd = two_field_bdd();
        bdd.add_rule(&[(Pred::eq(FieldId(1), 1), true)], &[ActionId(0)])
            .unwrap();
        bdd.add_rule(&[], &[ActionId(7)]).unwrap();
        assert_eq!(bdd.eval(|_| 1), &[ActionId(0), ActionId(7)]);
        assert_eq!(bdd.eval(|_| 9), &[ActionId(7)]);
    }

    #[test]
    fn figure3_structure() {
        // Rules of Figure 3:
        //   r1: shares < 60 ∧ stock == AAPL : fwd(1)
        //   r2: stock == AAPL : fwd(2)     (merged with r1 → fwd(1,2))
        //   r3: shares > 100 ∧ stock == MSFT : fwd(3)
        let mut bdd = two_field_bdd();
        let shares = FieldId(0);
        let stock = FieldId(1);
        const AAPL: u64 = 1;
        const MSFT: u64 = 2;
        bdd.add_rule(
            &[(Pred::lt(shares, 60), true), (Pred::eq(stock, AAPL), true)],
            &[ActionId(1)],
        )
        .unwrap();
        bdd.add_rule(&[(Pred::eq(stock, AAPL), true)], &[ActionId(2)])
            .unwrap();
        bdd.add_rule(
            &[(Pred::gt(shares, 100), true), (Pred::eq(stock, MSFT), true)],
            &[ActionId(3)],
        )
        .unwrap();

        let eval = |sh: u64, st: u64| {
            bdd.eval(move |f| if f == shares { sh } else { st })
                .to_vec()
        };
        // shares<60, AAPL → both rules 1 and 2.
        assert_eq!(eval(50, AAPL), vec![ActionId(1), ActionId(2)]);
        // shares in [60,100], AAPL → rule 2 only.
        assert_eq!(eval(80, AAPL), vec![ActionId(2)]);
        // shares>100, AAPL → rule 2 only.
        assert_eq!(eval(150, AAPL), vec![ActionId(2)]);
        // shares>100, MSFT → rule 3.
        assert_eq!(eval(150, MSFT), vec![ActionId(3)]);
        // shares<60, MSFT → nothing.
        assert_eq!(eval(50, MSFT), Vec::<ActionId>::new());
        // unknown stock → nothing.
        assert_eq!(eval(150, 9), Vec::<ActionId>::new());
    }

    #[test]
    fn pruning_reduces_nodes_vs_no_pruning() {
        let build = |pruning: bool| {
            let fields = vec![FieldInfo::range("x", 16)];
            let f = FieldId(0);
            let preds: Vec<Pred> = (1..20).map(|i| Pred::lt(f, i * 10)).collect();
            let mut bdd = Bdd::new(fields, preds.clone()).unwrap();
            bdd.set_semantic_pruning(pruning);
            // Overlapping interval rules: x < 10i ∧ x > ... via pairs of Lt.
            for (i, w) in preds.windows(2).enumerate() {
                bdd.add_rule(&[(w[0], false), (w[1], true)], &[ActionId(i as u32)])
                    .unwrap();
            }
            bdd
        };
        let with = build(true);
        let without = build(false);
        assert!(with.node_count() <= without.node_count());
        // Semantics agree regardless of pruning.
        for x in [0u64, 5, 10, 55, 95, 150, 200] {
            assert_eq!(with.eval(|_| x), without.eval(|_| x), "x={x}");
        }
    }

    #[test]
    fn memo_stats_accumulate() {
        let mut bdd = two_field_bdd();
        bdd.add_rule(&[(Pred::eq(FieldId(1), 1), true)], &[ActionId(0)])
            .unwrap();
        bdd.add_rule(&[(Pred::eq(FieldId(1), 2), true)], &[ActionId(1)])
            .unwrap();
        let (_h, m) = bdd.memo_stats();
        assert!(m > 0);
    }
}
