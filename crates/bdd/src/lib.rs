//! # camus-bdd — multi-terminal binary decision diagrams for packet filters
//!
//! The Camus compiler represents the whole set of subscription rules as a
//! single **multi-terminal, ordered BDD** (§3.2 of the paper): internal
//! nodes test atomic predicates `field op constant`, terminal nodes carry
//! *sets of actions* (the actions of all rules matched along the path).
//!
//! This crate provides:
//!
//! * the canonical predicate alphabet (`<`, `>`, `==` over unsigned
//!   fields) and canonicalization of the extended operator set produced
//!   by negation ([`pred`]);
//! * a hash-consed node store implementing the paper's reductions —
//!   (i) isomorphic-node sharing, (ii) redundant-test elimination
//!   ([`store`]);
//! * rule insertion via a context-aware `apply`-union that also performs
//!   reduction (iii): a predicate implied true or false by its
//!   same-field ancestors is never materialized, which removes
//!   unsatisfiable paths and is what bounds Algorithm 1's path count
//!   ([`build`], [`ctx`]);
//! * evaluation, structural validation and statistics ([`eval`]);
//! * field-component slicing — the decomposition Algorithm 1 consumes
//!   ([`slice`]);
//! * variable-ordering heuristics ([`order`]) and DOT export ([`dot`]).
//!
//! The variable order is *field-major*: all predicates on a field form a
//! contiguous block, so every root-to-leaf path visits fields in one
//! global order — the property that lets §3.2 evaluate the BDD as a
//! fixed-length pipeline of per-field match-action tables.
//!
//! ## Example
//!
//! Build the three-rule BDD of the paper's Figure 3 and evaluate it:
//!
//! ```
//! use camus_bdd::pred::{ActionId, FieldId, FieldInfo, Pred};
//! use camus_bdd::Bdd;
//!
//! let shares = FieldId(0);
//! let stock = FieldId(1);
//! let fields = vec![
//!     FieldInfo::range("shares", 32),
//!     FieldInfo::exact("stock", 64),
//! ];
//! const AAPL: u64 = 1;
//! const MSFT: u64 = 2;
//! let preds = vec![
//!     Pred::lt(shares, 60),
//!     Pred::gt(shares, 100),
//!     Pred::eq(stock, AAPL),
//!     Pred::eq(stock, MSFT),
//! ];
//! let mut bdd = Bdd::new(fields, preds).unwrap();
//! // rule 1: shares < 60 ∧ stock == AAPL : fwd(1)  — action id 0
//! bdd.add_rule(&[(Pred::lt(shares, 60), true), (Pred::eq(stock, AAPL), true)], &[ActionId(0)]).unwrap();
//! // rule 2: stock == AAPL : fwd(2) — action id 1
//! bdd.add_rule(&[(Pred::eq(stock, AAPL), true)], &[ActionId(1)]).unwrap();
//! // rule 3: shares > 100 ∧ stock == MSFT : fwd(3) — action id 2
//! bdd.add_rule(&[(Pred::gt(shares, 100), true), (Pred::eq(stock, MSFT), true)], &[ActionId(2)]).unwrap();
//!
//! // A packet with shares = 50, stock = AAPL matches rules 1 and 2.
//! let actions = bdd.eval(|f| if f == shares { 50 } else { AAPL });
//! assert_eq!(actions, &[ActionId(0), ActionId(1)]);
//! ```

pub mod build;
pub mod ctx;
pub mod dot;
pub mod eval;
pub mod merge;
pub mod order;
pub mod pred;
pub mod slice;
pub mod store;

pub use build::BddError;
pub use pred::{ActionId, FieldId, FieldInfo, Pred, PredOp};
pub use store::{ActionSetId, NodeRef, VarId};

use fxhash::FxHashMap;

/// A multi-terminal ordered BDD over packet-filter predicates.
///
/// Created with a fixed field table and predicate alphabet
/// ([`Bdd::new`]); rules are inserted with [`Bdd::add_rule`], which
/// unions the rule's actions into the terminals of every satisfying
/// path. See the crate docs for an example.
pub struct Bdd {
    pub(crate) fields: Vec<FieldInfo>,
    /// Variable table in evaluation order (field-major).
    pub(crate) vars: Vec<Pred>,
    pub(crate) var_index: FxHashMap<Pred, VarId>,
    pub(crate) store: store::Store,
    pub(crate) root: NodeRef,
    /// `apply` memo, cleared per `add_rule` call to bound memory. Keyed
    /// on the packed `(a, b)` pair (see [`NodeRef::pack`]) plus the
    /// context id — 12 bytes instead of three enum words.
    pub(crate) memo: FxHashMap<(u64, u32), NodeRef>,
    /// Cumulative memo statistics, for the incremental-compilation
    /// ablation (DESIGN.md §7).
    pub(crate) memo_hits: u64,
    pub(crate) memo_misses: u64,
    /// Whether reduction (iii) — same-field implication pruning — is
    /// enabled. On by default; the ablation benches switch it off.
    pub(crate) semantic_pruning: bool,
    /// Hash-consed constraint contexts; index 0 is the "no constraints"
    /// sentinel.
    pub(crate) ctxs: Vec<ctx::FieldCtx>,
    pub(crate) ctx_index: FxHashMap<ctx::FieldCtx, u32>,
    /// Persistent memo for `prune` — a pure function of (node, ctx),
    /// keyed on `packed(node) << 32 | ctx`.
    pub(crate) prune_memo: FxHashMap<u64, NodeRef>,
}

/// Packs an apply-memo key: the symmetric `(a, b)` pair in one `u64`
/// (smaller packed value in the high half) plus the context id.
#[inline]
pub(crate) fn memo_key(a: NodeRef, b: NodeRef, cid: u32) -> (u64, u32) {
    let (pa, pb) = (a.pack(), b.pack());
    let pair = if pa <= pb {
        (u64::from(pa) << 32) | u64::from(pb)
    } else {
        (u64::from(pb) << 32) | u64::from(pa)
    };
    (pair, cid)
}

impl std::fmt::Debug for Bdd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bdd")
            .field("fields", &self.fields.len())
            .field("vars", &self.vars.len())
            .field("nodes", &self.store.node_count())
            .field("root", &self.root)
            .finish_non_exhaustive()
    }
}
