//! Field-component slicing — the decomposition behind Algorithm 1.
//!
//! §3.2: "Since every path in the BDD traverses predicates that consider
//! fields in order, and that order is the same for every path, we use
//! that ordering to effectively slice the BDD into a fixed number of
//! field-specific components."
//!
//! A **component** `C_f` contains all reachable nodes predicating on
//! field `f`. Its **In set** holds the nodes of `C_f` entered from
//! outside (the paper's Algorithm 1, line 3); edges leaving `C_f` point
//! at **Out** vertices — nodes of later components or terminals (line
//! 4). [`component_paths`] enumerates every In→Out path together with
//! the value constraint accumulated along it (line 5-8) and a priority
//! rank; `camus-core` turns each path into one match-action table entry
//! (line 9).

use std::collections::{HashMap, HashSet};

use crate::ctx::FieldCtx;
use crate::pred::FieldId;
use crate::store::NodeRef;
use crate::Bdd;

/// A field-specific component of the BDD.
#[derive(Debug, Clone)]
pub struct Component {
    /// The field all nodes of this component predicate on.
    pub field: FieldId,
    /// All reachable nodes of the component.
    pub nodes: Vec<NodeRef>,
    /// Nodes of the component with an in-edge from outside it (or the
    /// root). These become the "entry states" of the field's table.
    pub in_nodes: Vec<NodeRef>,
}

/// One In→Out path through a component (Algorithm 1's loop body).
#[derive(Debug, Clone)]
pub struct CompPath {
    /// Entry node (∈ In set).
    pub entry: NodeRef,
    /// Exit vertex (a node of a later component, or a terminal).
    pub exit: NodeRef,
    /// The accumulated constraint on the component's field: the
    /// intersection of the predicates along the path (Algorithm 1 line
    /// 8). `ctx.lo ..= ctx.hi` is the match range; `ctx.excluded` lists
    /// points carved out by false `==` branches, which the table
    /// representation handles by entry *priority* (higher-priority
    /// pinned entries shadow them).
    pub ctx: FieldCtx,
    /// Priority rank within the component: lower rank = higher
    /// priority. Ranks follow a true-edges-first DFS, which guarantees a
    /// pinned (`== v`) entry always outranks any wider entry whose range
    /// contains `v` but whose path excluded it.
    pub rank: usize,
}

impl CompPath {
    /// Whether the path pins the field to a single value (pure exact
    /// match).
    pub fn pinned(&self) -> Option<u64> {
        self.ctx.pinned()
    }

    /// Whether the path constrains the field at all (an unconstrained
    /// path is a wildcard/pass-through entry).
    pub fn is_wildcard(&self, field_max: u64) -> bool {
        self.ctx.lo == 0 && self.ctx.hi == field_max && self.ctx.excluded.is_empty()
    }
}

/// Slices the reachable part of the BDD into per-field components, in
/// field order. Fields with no reachable nodes yield no component.
pub fn slice(bdd: &Bdd) -> Vec<Component> {
    let reachable = bdd.reachable();
    let node_field = |r: NodeRef| -> FieldId {
        let n = bdd.node(r);
        bdd.var_pred(n.var).field
    };
    let reachable_set: HashSet<NodeRef> = reachable.iter().copied().collect();

    // Group nodes by field.
    let mut by_field: HashMap<FieldId, Vec<NodeRef>> = HashMap::new();
    for &r in &reachable {
        by_field.entry(node_field(r)).or_default().push(r);
    }

    // In set: the root plus any node whose in-edge crosses a component
    // boundary.
    let mut in_set: HashSet<NodeRef> = HashSet::new();
    if !bdd.root().is_term() {
        in_set.insert(bdd.root());
    }
    for &r in &reachable {
        let n = bdd.node(r);
        let f = node_field(r);
        for child in [n.lo, n.hi] {
            if let NodeRef::Node(_) = child {
                debug_assert!(reachable_set.contains(&child));
                if node_field(child) != f {
                    in_set.insert(child);
                }
            }
        }
    }

    let mut fields: Vec<FieldId> = by_field.keys().copied().collect();
    fields.sort_unstable();
    fields
        .into_iter()
        .map(|field| {
            let mut nodes = by_field.remove(&field).unwrap_or_default();
            nodes.sort_unstable();
            let mut in_nodes: Vec<NodeRef> = nodes
                .iter()
                .copied()
                .filter(|r| in_set.contains(r))
                .collect();
            in_nodes.sort_unstable();
            Component {
                field,
                nodes,
                in_nodes,
            }
        })
        .collect()
}

/// Enumerates every In→Out path of a component with its accumulated
/// constraint (Algorithm 1 lines 5–9).
///
/// Paths are emitted in true-edges-first DFS order per entry node;
/// `rank` is the emission index. The number of paths is at most
/// quadratic in the component size thanks to reduction (iii) — see the
/// paper's discussion after Algorithm 1.
pub fn component_paths(bdd: &Bdd, comp: &Component) -> Vec<CompPath> {
    let field_max = bdd.field_info(comp.field).max_value();
    let mut out = Vec::new();
    for &entry in &comp.in_nodes {
        let mut rank = 0usize;
        walk(
            bdd,
            comp,
            entry,
            entry,
            FieldCtx::full(comp.field, field_max),
            &mut rank,
            &mut out,
        );
    }
    out
}

fn in_component(bdd: &Bdd, comp: &Component, r: NodeRef) -> bool {
    match r {
        NodeRef::Term(_) => false,
        NodeRef::Node(_) => {
            let n = bdd.node(r);
            bdd.var_pred(n.var).field == comp.field
        }
    }
}

fn walk(
    bdd: &Bdd,
    comp: &Component,
    entry: NodeRef,
    cur: NodeRef,
    ctx: FieldCtx,
    rank: &mut usize,
    out: &mut Vec<CompPath>,
) {
    if !in_component(bdd, comp, cur) {
        out.push(CompPath {
            entry,
            exit: cur,
            ctx,
            rank: *rank,
        });
        *rank += 1;
        return;
    }
    let n = bdd.node(cur);
    let pred = bdd.var_pred(n.var);
    // True edge first: gives pinned entries priority over the excluding
    // wildcard/range entries below them.
    match ctx.implies(&pred) {
        Some(true) => walk(bdd, comp, entry, n.hi, ctx, rank, out),
        Some(false) => walk(bdd, comp, entry, n.lo, ctx, rank, out),
        None => {
            walk(bdd, comp, entry, n.hi, ctx.extend(&pred, true), rank, out);
            walk(bdd, comp, entry, n.lo, ctx.extend(&pred, false), rank, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{ActionId, FieldInfo, Pred};

    /// The running example of the paper (Figures 3 and 4).
    fn figure3() -> (Bdd, FieldId, FieldId) {
        let shares = FieldId(0);
        let stock = FieldId(1);
        let fields = vec![
            FieldInfo::range("shares", 32),
            FieldInfo::exact("stock", 64),
        ];
        let preds = vec![
            Pred::lt(shares, 60),
            Pred::gt(shares, 100),
            Pred::eq(stock, 1),
            Pred::eq(stock, 2),
        ];
        let mut bdd = Bdd::new(fields, preds).unwrap();
        bdd.add_rule(
            &[(Pred::lt(shares, 60), true), (Pred::eq(stock, 1), true)],
            &[ActionId(1)],
        )
        .unwrap();
        bdd.add_rule(&[(Pred::eq(stock, 1), true)], &[ActionId(2)])
            .unwrap();
        bdd.add_rule(
            &[(Pred::gt(shares, 100), true), (Pred::eq(stock, 2), true)],
            &[ActionId(3)],
        )
        .unwrap();
        (bdd, shares, stock)
    }

    #[test]
    fn figure3_slices_into_two_components() {
        let (bdd, shares, stock) = figure3();
        let comps = slice(&bdd);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].field, shares);
        assert_eq!(comps[1].field, stock);
        // The shares component is entered only at the root.
        assert_eq!(comps[0].in_nodes, vec![bdd.root()]);
        assert!(!comps[1].in_nodes.is_empty());
    }

    #[test]
    fn figure3_shares_paths_match_figure4() {
        let (bdd, ..) = figure3();
        let comps = slice(&bdd);
        let paths = component_paths(&bdd, &comps[0]);
        // Figure 4's Shares table: <60, >100, and the implicit middle
        // range (the paper's `*` row) — three paths.
        assert_eq!(paths.len(), 3);
        let ranges: Vec<(u64, u64)> = paths.iter().map(|p| (p.ctx.lo, p.ctx.hi)).collect();
        assert!(ranges.contains(&(0, 59)), "{ranges:?}");
        assert!(ranges.contains(&(101, u32::MAX as u64)), "{ranges:?}");
        assert!(ranges.contains(&(60, 100)), "{ranges:?}");
    }

    #[test]
    fn figure3_stock_paths_cover_entry_states() {
        let (bdd, _, stock) = figure3();
        let comps = slice(&bdd);
        let stock_comp = &comps[1];
        let paths = component_paths(&bdd, stock_comp);
        // Every path pins the stock or is an exclusion path exiting to a
        // terminal.
        for p in &paths {
            assert_eq!(p.ctx.field, stock);
            assert!(
                p.exit.is_term(),
                "stock is the last field: exits are terminals"
            );
        }
        // Pinned entries outrank their excluding wildcard within each
        // entry group.
        for p in &paths {
            if p.pinned().is_none() {
                for q in &paths {
                    if q.entry == p.entry && q.pinned().is_some() {
                        assert!(q.rank < p.rank, "pinned path must outrank exclusion path");
                    }
                }
            }
        }
    }

    #[test]
    fn ranks_are_dense_per_entry() {
        let (bdd, ..) = figure3();
        for comp in slice(&bdd) {
            let paths = component_paths(&bdd, &comp);
            for &entry in &comp.in_nodes {
                let mut ranks: Vec<usize> = paths
                    .iter()
                    .filter(|p| p.entry == entry)
                    .map(|p| p.rank)
                    .collect();
                ranks.sort_unstable();
                assert_eq!(ranks, (0..ranks.len()).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn path_count_is_quadratic_bounded() {
        // With pruning on, paths through a component are at most
        // |In| * |Out| (one per pair) + exclusion tails; check the
        // figure-3 example stays tiny.
        let (bdd, ..) = figure3();
        for comp in slice(&bdd) {
            let paths = component_paths(&bdd, &comp);
            assert!(paths.len() <= comp.nodes.len() * comp.nodes.len() + comp.nodes.len() + 1);
        }
    }

    #[test]
    fn empty_bdd_has_no_components() {
        let bdd = Bdd::new(vec![FieldInfo::range("x", 8)], [Pred::lt(FieldId(0), 5)]).unwrap();
        assert!(slice(&bdd).is_empty());
    }

    /// Semantic check: simulating the component decomposition as a state
    /// machine reproduces direct BDD evaluation.
    #[test]
    fn component_walk_agrees_with_eval() {
        let (bdd, shares, _) = figure3();
        let comps = slice(&bdd);
        let all_paths: Vec<Vec<CompPath>> =
            comps.iter().map(|c| component_paths(&bdd, c)).collect();

        let simulate = |sh: u64, st: u64| -> Vec<ActionId> {
            let value = |f: FieldId| if f == shares { sh } else { st };
            let mut state = bdd.root();
            loop {
                match state {
                    NodeRef::Term(set) => return bdd.actions(set).to_vec(),
                    NodeRef::Node(_) => {
                        // Find the component owning this state.
                        let n = bdd.node(state);
                        let f = bdd.var_pred(n.var).field;
                        let ci = comps.iter().position(|c| c.field == f).unwrap();
                        let v = value(f);
                        // Best (lowest-rank) matching path from this entry.
                        let next = all_paths[ci]
                            .iter()
                            .filter(|p| p.entry == state && p.ctx.contains(v))
                            .min_by_key(|p| p.rank)
                            .expect("paths must be total per entry state");
                        state = next.exit;
                    }
                }
            }
        };

        for sh in [0u64, 30, 59, 60, 80, 100, 101, 500] {
            for st in [0u64, 1, 2, 3] {
                let direct = bdd.eval(|f| if f == shares { sh } else { st }).to_vec();
                assert_eq!(simulate(sh, st), direct, "sh={sh} st={st}");
            }
        }
    }
}
