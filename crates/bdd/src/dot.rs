//! Graphviz (DOT) export, for debugging and documentation figures.
//!
//! Solid arrows are true branches, dashed arrows false branches —
//! matching the paper's Figure 3 conventions.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::store::NodeRef;
use crate::Bdd;

impl Bdd {
    /// Renders the reachable part of the diagram as a DOT graph.
    pub fn to_dot(&self, title: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{title}\" {{");
        let _ = writeln!(s, "  rankdir=TB;");
        let mut names: HashMap<NodeRef, String> = HashMap::new();
        let mut next_term = 0usize;

        let mut term_name = |r: NodeRef, names: &mut HashMap<NodeRef, String>| -> String {
            if let Some(n) = names.get(&r) {
                return n.clone();
            }
            let n = format!("t{next_term}");
            next_term += 1;
            names.insert(r, n.clone());
            n
        };

        // Emit nodes.
        let reachable = self.reachable();
        for (i, &r) in reachable.iter().enumerate() {
            let n = self.node(r);
            let pred = self.var_pred(n.var);
            let field = &self.field_info(pred.field).name;
            names.insert(r, format!("n{i}"));
            let _ = writeln!(
                s,
                "  n{i} [shape=ellipse,label=\"{field} {} {}\"];",
                pred.op, pred.value
            );
        }
        // Emit terminals (reachable ones only).
        let mut terms: Vec<NodeRef> = Vec::new();
        let push_term = |r: NodeRef, terms: &mut Vec<NodeRef>| {
            if r.is_term() && !terms.contains(&r) {
                terms.push(r);
            }
        };
        push_term(self.root, &mut terms);
        for &r in &reachable {
            let n = self.node(r);
            push_term(n.lo, &mut terms);
            push_term(n.hi, &mut terms);
        }
        for &t in &terms {
            let NodeRef::Term(set) = t else {
                unreachable!()
            };
            let name = term_name(t, &mut names);
            let acts: Vec<String> = self
                .actions(set)
                .iter()
                .map(|a| format!("a{}", a.0))
                .collect();
            let label = if acts.is_empty() {
                "∅".to_string()
            } else {
                acts.join(",")
            };
            let _ = writeln!(s, "  {name} [shape=box,label=\"{{{label}}}\"];");
        }
        // Emit edges: solid = true, dashed = false.
        for &r in &reachable {
            let n = self.node(r);
            let from = names[&r].clone();
            let hi = names[&n.hi].clone();
            let lo = names[&n.lo].clone();
            let _ = writeln!(s, "  {from} -> {hi};");
            let _ = writeln!(s, "  {from} -> {lo} [style=dashed];");
        }
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::pred::{ActionId, FieldId, FieldInfo, Pred};
    use crate::Bdd;

    #[test]
    fn dot_output_is_well_formed() {
        let f = FieldId(0);
        let mut bdd = Bdd::new(vec![FieldInfo::range("shares", 16)], [Pred::lt(f, 60)]).unwrap();
        bdd.add_rule(&[(Pred::lt(f, 60), true)], &[ActionId(0)])
            .unwrap();
        let dot = bdd.to_dot("test");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("shares < 60"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("a0"));
        assert!(dot.contains("∅"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_bdd_renders_single_terminal() {
        let bdd = Bdd::new(vec![FieldInfo::range("x", 8)], [Pred::lt(FieldId(0), 5)]).unwrap();
        let dot = bdd.to_dot("empty");
        assert!(dot.contains("t0"));
        assert!(!dot.contains("n0 "));
    }
}
