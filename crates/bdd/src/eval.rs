//! Evaluation, structural validation and statistics.

use std::collections::{HashMap, HashSet};

use crate::ctx::FieldCtx;
use crate::pred::{ActionId, FieldId};
use crate::store::{NodeRef, VarId};
use crate::Bdd;

impl Bdd {
    /// Evaluates the diagram on a packet given as a field valuation.
    /// Returns the matched action set (sorted).
    ///
    /// This is the *semantic reference* for the whole compiler: the
    /// table pipeline produced by Algorithm 1 must forward exactly the
    /// action set this returns.
    pub fn eval(&self, assign: impl Fn(FieldId) -> u64) -> &[ActionId] {
        let mut cur = self.root;
        loop {
            match cur {
                NodeRef::Term(set) => return self.store.actions(set),
                NodeRef::Node(_) => {
                    let n = self.store.node(cur);
                    let pred = self.vars[n.var.0 as usize];
                    cur = if pred.eval(assign(pred.field)) {
                        n.hi
                    } else {
                        n.lo
                    };
                }
            }
        }
    }

    /// The set of internal nodes reachable from the root.
    pub fn reachable(&self) -> Vec<NodeRef> {
        let mut seen: HashSet<NodeRef> = HashSet::new();
        let mut stack = vec![self.root];
        let mut out = Vec::new();
        while let Some(r) = stack.pop() {
            if r.is_term() || !seen.insert(r) {
                continue;
            }
            out.push(r);
            let n = self.store.node(r);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        out
    }

    /// Structural statistics.
    pub fn stats(&self) -> BddStats {
        let reachable = self.reachable();
        let mut per_field: HashMap<FieldId, usize> = HashMap::new();
        let mut terminals: HashSet<crate::store::ActionSetId> = HashSet::new();
        for &r in &reachable {
            let n = self.store.node(r);
            let f = self.vars[n.var.0 as usize].field;
            *per_field.entry(f).or_insert(0) += 1;
            for child in [n.lo, n.hi] {
                if let NodeRef::Term(s) = child {
                    terminals.insert(s);
                }
            }
        }
        if let NodeRef::Term(s) = self.root {
            terminals.insert(s);
        }
        let mut field_nodes: Vec<(FieldId, usize)> = per_field.into_iter().collect();
        field_nodes.sort_unstable();
        BddStats {
            allocated_nodes: self.store.node_count(),
            reachable_nodes: reachable.len(),
            reachable_terminals: terminals.len(),
            field_nodes,
            paths: self.count_paths(),
        }
    }

    /// Number of root-to-terminal paths (saturating).
    fn count_paths(&self) -> u128 {
        fn go(bdd: &Bdd, r: NodeRef, memo: &mut HashMap<NodeRef, u128>) -> u128 {
            if r.is_term() {
                return 1;
            }
            if let Some(&c) = memo.get(&r) {
                return c;
            }
            let n = bdd.store.node(r);
            let c = go(bdd, n.lo, memo).saturating_add(go(bdd, n.hi, memo));
            memo.insert(r, c);
            c
        }
        go(self, self.root, &mut HashMap::new())
    }

    /// Validates the two ordered-BDD invariants the rest of the compiler
    /// depends on:
    ///
    /// 1. **Ordering** — along every edge the child's variable index is
    ///    strictly greater than the parent's (so fields appear in one
    ///    global order on every path);
    /// 2. **Irredundancy** (when semantic pruning is on) — no node's
    ///    predicate is forced by its same-field ancestors, i.e.
    ///    reduction (iii) left nothing behind. This is the property that
    ///    bounds Algorithm 1's path enumeration.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen: HashSet<(NodeRef, u64)> = HashSet::new();
        self.validate_rec(
            self.root,
            None,
            &FieldCtx::full(FieldId(u32::MAX), 0),
            &mut seen,
        )
    }

    fn validate_rec(
        &self,
        r: NodeRef,
        parent_var: Option<VarId>,
        ctx: &FieldCtx,
        seen: &mut HashSet<(NodeRef, u64)>,
    ) -> Result<(), String> {
        let NodeRef::Node(_) = r else { return Ok(()) };
        // Deduplicate on (node, ctx-fingerprint) to avoid exponential
        // revalidation of shared subgraphs.
        let fp = {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut h = DefaultHasher::new();
            ctx.hash(&mut h);
            h.finish()
        };
        if !seen.insert((r, fp)) {
            return Ok(());
        }
        let n = self.store.node(r);
        if let Some(pv) = parent_var {
            if n.var <= pv {
                return Err(format!(
                    "ordering violation: child var {} under parent var {}",
                    n.var.0, pv.0
                ));
            }
        }
        let pred = self.vars[n.var.0 as usize];
        let cur = if ctx.field == pred.field {
            ctx.clone()
        } else {
            FieldCtx::full(pred.field, self.fields[pred.field.0 as usize].max_value())
        };
        if self.semantic_pruning {
            if let Some(v) = cur.implies(&pred) {
                return Err(format!(
                    "irredundancy violation: node testing {pred} is forced {v} by ancestors"
                ));
            }
        }
        let hi_ctx = cur.extend(&pred, true);
        let lo_ctx = cur.extend(&pred, false);
        self.validate_rec(n.hi, Some(n.var), &hi_ctx, seen)?;
        self.validate_rec(n.lo, Some(n.var), &lo_ctx, seen)
    }
}

/// Structural statistics of a BDD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BddStats {
    /// Internal nodes ever allocated (including ones no longer
    /// reachable after later rule insertions).
    pub allocated_nodes: usize,
    /// Internal nodes reachable from the root.
    pub reachable_nodes: usize,
    /// Distinct terminal action sets reachable from the root.
    pub reachable_terminals: usize,
    /// Reachable node count per field, in field order.
    pub field_nodes: Vec<(FieldId, usize)>,
    /// Root-to-terminal path count (saturating at `u128::MAX`).
    pub paths: u128,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{FieldInfo, Pred};

    fn figure3() -> Bdd {
        let shares = FieldId(0);
        let stock = FieldId(1);
        let fields = vec![
            FieldInfo::range("shares", 32),
            FieldInfo::exact("stock", 64),
        ];
        let preds = vec![
            Pred::lt(shares, 60),
            Pred::gt(shares, 100),
            Pred::eq(stock, 1),
            Pred::eq(stock, 2),
        ];
        let mut bdd = Bdd::new(fields, preds).unwrap();
        bdd.add_rule(
            &[(Pred::lt(shares, 60), true), (Pred::eq(stock, 1), true)],
            &[ActionId(1)],
        )
        .unwrap();
        bdd.add_rule(&[(Pred::eq(stock, 1), true)], &[ActionId(2)])
            .unwrap();
        bdd.add_rule(
            &[(Pred::gt(shares, 100), true), (Pred::eq(stock, 2), true)],
            &[ActionId(3)],
        )
        .unwrap();
        bdd
    }

    #[test]
    fn figure3_validates() {
        figure3().validate().unwrap();
    }

    #[test]
    fn figure3_stats() {
        let bdd = figure3();
        let s = bdd.stats();
        assert!(s.reachable_nodes >= 4, "{s:?}");
        assert!(s.reachable_nodes <= s.allocated_nodes);
        // Terminals: {1,2}, {2}, {3}, {} — four distinct sets.
        assert_eq!(s.reachable_terminals, 4);
        // Both fields host nodes.
        assert_eq!(s.field_nodes.len(), 2);
        assert!(s.paths >= 4);
    }

    #[test]
    fn empty_bdd_validates() {
        let bdd = Bdd::new(vec![FieldInfo::range("x", 8)], [Pred::lt(FieldId(0), 5)]).unwrap();
        bdd.validate().unwrap();
        let s = bdd.stats();
        assert_eq!(s.reachable_nodes, 0);
        assert_eq!(s.paths, 1);
    }

    #[test]
    fn unpruned_bdd_still_validates_ordering() {
        let f = FieldId(0);
        let preds = vec![Pred::lt(f, 10), Pred::lt(f, 20)];
        let mut bdd = Bdd::new(vec![FieldInfo::range("x", 8)], preds).unwrap();
        bdd.set_semantic_pruning(false);
        bdd.add_rule(
            &[(Pred::lt(f, 10), true), (Pred::lt(f, 20), true)],
            &[ActionId(0)],
        )
        .unwrap();
        // With pruning off, redundant nodes may exist; ordering must hold
        // and validate() skips the irredundancy check.
        bdd.validate().unwrap();
    }

    #[test]
    fn eval_is_total() {
        let bdd = figure3();
        for sh in [0u64, 59, 60, 100, 101, u32::MAX as u64] {
            for st in [0u64, 1, 2, 3] {
                // Must terminate and return a sorted set.
                let acts = bdd.eval(|f| if f == FieldId(0) { sh } else { st });
                let mut sorted = acts.to_vec();
                sorted.sort();
                assert_eq!(acts, &sorted[..]);
            }
        }
    }
}
