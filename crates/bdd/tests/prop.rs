//! Property-based differential testing: the BDD must agree with a naive
//! per-rule interpreter on every packet, for arbitrary rule sets, with
//! and without the domain-specific reduction.

// Gated off by default: `proptest` is an external crate the offline
// build environment cannot fetch. Vendor proptest into the workspace
// and enable the `proptest` feature to run this suite.
#![cfg(feature = "proptest")]

use camus_bdd::pred::{ActionId, FieldId, FieldInfo, Pred};
use camus_bdd::Bdd;
use proptest::prelude::*;

const NFIELDS: usize = 3;
/// Small domains so random packets actually hit rule boundaries.
const BITS: u32 = 6;
const MAXV: u64 = (1 << BITS) - 1;

fn arb_pred() -> impl Strategy<Value = Pred> {
    (0..NFIELDS as u32, 0u64..=MAXV, 0..3u8).prop_filter_map("trivial pred", |(f, v, op)| {
        let field = FieldId(f);
        match op {
            0 => Some(Pred::eq(field, v)),
            1 if v >= 1 => Some(Pred::lt(field, v)),
            2 if v < MAXV => Some(Pred::gt(field, v)),
            _ => None,
        }
    })
}

fn arb_literal() -> impl Strategy<Value = (Pred, bool)> {
    (arb_pred(), any::<bool>())
}

type RuleSpec = (Vec<(Pred, bool)>, u32);

fn arb_rules() -> impl Strategy<Value = Vec<RuleSpec>> {
    prop::collection::vec((prop::collection::vec(arb_literal(), 0..5), 0..8u32), 1..12)
}

/// Naive reference: evaluate every rule conjunction independently.
fn naive_eval(rules: &[RuleSpec], packet: &[u64; NFIELDS]) -> Vec<ActionId> {
    let mut out: Vec<ActionId> = Vec::new();
    for (lits, act) in rules {
        let matched = lits
            .iter()
            .all(|(p, pol)| p.eval(packet[p.field.0 as usize]) == *pol);
        if matched {
            out.push(ActionId(*act));
        }
    }
    out.sort();
    out.dedup();
    out
}

fn build_bdd(rules: &[RuleSpec], pruning: bool) -> Bdd {
    let fields: Vec<FieldInfo> = (0..NFIELDS)
        .map(|i| FieldInfo::range(format!("f{i}"), BITS))
        .collect();
    let preds: Vec<Pred> = rules
        .iter()
        .flat_map(|(l, _)| l.iter().map(|(p, _)| *p))
        .collect();
    let mut bdd = Bdd::new(fields, preds).unwrap();
    bdd.set_semantic_pruning(pruning);
    for (lits, act) in rules {
        bdd.add_rule(lits, &[ActionId(*act)]).unwrap();
    }
    bdd
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For random rules and random packets, BDD evaluation equals the
    /// naive interpreter.
    #[test]
    fn bdd_matches_naive_interpreter(
        rules in arb_rules(),
        packets in prop::collection::vec([0u64..=MAXV, 0u64..=MAXV, 0u64..=MAXV], 1..20),
    ) {
        let bdd = build_bdd(&rules, true);
        bdd.validate().unwrap();
        for p in &packets {
            let got = bdd.eval(|f| p[f.0 as usize]).to_vec();
            let want = naive_eval(&rules, p);
            prop_assert_eq!(got, want, "packet {:?}", p);
        }
    }

    /// Pruning never changes semantics, only structure — and the pruned
    /// diagram satisfies the irredundancy invariant (no node forced by
    /// its same-field ancestors).
    #[test]
    fn pruning_is_semantics_preserving(
        rules in arb_rules(),
        packets in prop::collection::vec([0u64..=MAXV, 0u64..=MAXV, 0u64..=MAXV], 1..10),
    ) {
        let with = build_bdd(&rules, true);
        let without = build_bdd(&rules, false);
        prop_assert!(with.validate().is_ok());
        for p in &packets {
            prop_assert_eq!(
                with.eval(|f| p[f.0 as usize]),
                without.eval(|f| p[f.0 as usize])
            );
        }
    }

    /// Rule insertion is order-insensitive: any permutation of the same
    /// rules yields a semantically identical diagram.
    #[test]
    fn insertion_order_is_irrelevant(
        rules in arb_rules(),
        packets in prop::collection::vec([0u64..=MAXV, 0u64..=MAXV, 0u64..=MAXV], 1..10),
    ) {
        let fwd = build_bdd(&rules, true);
        let mut rev_rules = rules.clone();
        rev_rules.reverse();
        let rev = build_bdd(&rev_rules, true);
        for p in &packets {
            prop_assert_eq!(
                fwd.eval(|f| p[f.0 as usize]),
                rev.eval(|f| p[f.0 as usize])
            );
        }
    }

    /// Shard-and-merge under a *pinned* schedule is fully reproducible
    /// (two replays of the same split and merge produce stores that are
    /// element-for-element identical after canonical renumbering) and
    /// semantically exact (the merged diagram agrees with the naive
    /// interpreter). This is the invariant the parallel compiler rests
    /// on: pruned union is not confluent across merge *orders*, so
    /// determinism comes from replaying a fixed merge DAG, never from
    /// normalizing away the schedule.
    #[test]
    fn pinned_shard_schedule_is_reproducible_and_sound(
        rules in arb_rules(),
        split_frac in 0.0f64..1.0,
        packets in prop::collection::vec([0u64..=MAXV, 0u64..=MAXV, 0u64..=MAXV], 1..10),
    ) {
        use camus_bdd::store::{ActionSetId, NodeIdx};
        use camus_bdd::NodeRef;

        // Both shards share the full predicate alphabet (exactly what
        // the compiler's `clone_empty` shards do), so the variable
        // orders line up for `union_with`.
        let split = ((rules.len() as f64) * split_frac) as usize;
        let all_preds: Vec<Pred> = rules
            .iter()
            .flat_map(|(l, _)| l.iter().map(|(p, _)| *p))
            .collect();
        let fields: Vec<FieldInfo> = (0..NFIELDS)
            .map(|i| FieldInfo::range(format!("f{i}"), BITS))
            .collect();
        let run = || {
            let mut left = Bdd::new(fields.clone(), all_preds.clone()).unwrap();
            let mut right = left.clone_empty();
            for (lits, act) in &rules[..split] {
                left.add_rule(lits, &[ActionId(*act)]).unwrap();
            }
            for (lits, act) in &rules[split..] {
                right.add_rule(lits, &[ActionId(*act)]).unwrap();
            }
            left.union_with(&right);
            left.canonical_copy()
        };
        let merged = run();
        let replay = run();

        prop_assert_eq!(merged.root(), replay.root());
        prop_assert_eq!(merged.node_count(), replay.node_count());
        prop_assert_eq!(merged.action_set_count(), replay.action_set_count());
        for i in 0..merged.node_count() {
            let r = NodeRef::Node(NodeIdx(i as u32));
            prop_assert_eq!(merged.node(r), replay.node(r), "node {}", i);
        }
        for i in 0..merged.action_set_count() {
            let id = ActionSetId(i as u32);
            prop_assert_eq!(merged.actions(id), replay.actions(id), "action set {}", i);
        }
        for p in &packets {
            let want = naive_eval(&rules, p);
            prop_assert_eq!(
                merged.eval(|f| p[f.0 as usize]),
                want.as_slice(),
                "packet {:?}", p
            );
        }
    }

    /// The component decomposition evaluated as a state machine agrees
    /// with direct evaluation — the semantic core of Algorithm 1.
    #[test]
    fn sliced_state_machine_matches_eval(
        rules in arb_rules(),
        packets in prop::collection::vec([0u64..=MAXV, 0u64..=MAXV, 0u64..=MAXV], 1..10),
    ) {
        use camus_bdd::slice::{component_paths, slice};
        use camus_bdd::NodeRef;

        let bdd = build_bdd(&rules, true);
        let comps = slice(&bdd);
        let paths: Vec<_> = comps.iter().map(|c| component_paths(&bdd, c)).collect();

        for p in &packets {
            let mut state = bdd.root();
            let acts = loop {
                match state {
                    NodeRef::Term(set) => break bdd.actions(set).to_vec(),
                    NodeRef::Node(_) => {
                        let n = bdd.node(state);
                        let f = bdd.var_pred(n.var).field;
                        let ci = comps.iter().position(|c| c.field == f).unwrap();
                        let v = p[f.0 as usize];
                        let next = paths[ci]
                            .iter()
                            .filter(|cp| cp.entry == state && cp.ctx.contains(v))
                            .min_by_key(|cp| cp.rank);
                        match next {
                            Some(cp) => state = cp.exit,
                            None => prop_assert!(false, "no path for state {:?} value {}", state, v),
                        }
                    }
                }
            };
            prop_assert_eq!(acts, naive_eval(&rules, p), "packet {:?}", p);
        }
    }
}
