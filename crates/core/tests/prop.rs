//! End-to-end property tests: for arbitrary subscription rule sets over
//! the ITCH spec, the compiled pipeline forwards exactly the union of
//! the ports of all matching rules (§2's semantics), for every packet —
//! and every compiler configuration (ordering heuristic, domain
//! compression) agrees.

// Gated off by default: `proptest` is an external crate the offline
// build environment cannot fetch. Vendor proptest into the workspace
// and enable the `proptest` feature to run this suite.
#![cfg(feature = "proptest")]

use camus_bdd::order::OrderHeuristic;
use camus_core::{Compiler, CompilerOptions};
use camus_lang::ast::{Action, Atom, Cond, FieldRef, Operand, RelOp, Rule, Value};
use camus_lang::parse_spec;
use proptest::prelude::*;

const SYMBOLS: [&str; 5] = ["GOOGL", "MSFT", "AAPL", "ORCL", "AMZN"];

/// A generated atomic predicate over the ITCH query fields.
#[derive(Debug, Clone)]
enum GenAtom {
    Shares(RelOp, u32),
    Price(RelOp, u32),
    Stock(bool, usize), // (equals?, symbol index)
    Side(bool, bool),   // (equals?, buy?)
}

impl GenAtom {
    fn to_cond(&self) -> Cond {
        let atom = |field: &str, op: RelOp, value: Value| {
            Cond::Atom(Atom {
                operand: Operand::Field(FieldRef::short(field.to_string())),
                op,
                value,
            })
        };
        match self {
            GenAtom::Shares(op, v) => atom("shares", *op, Value::Int(u64::from(*v))),
            GenAtom::Price(op, v) => atom("price", *op, Value::Int(u64::from(*v))),
            GenAtom::Stock(eq, i) => atom(
                "stock",
                if *eq { RelOp::Eq } else { RelOp::Ne },
                Value::Symbol(SYMBOLS[*i].to_string()),
            ),
            GenAtom::Side(eq, buy) => atom(
                "buy_sell",
                if *eq { RelOp::Eq } else { RelOp::Ne },
                Value::Int(u64::from(if *buy { b'B' } else { b'S' })),
            ),
        }
    }

    fn eval(&self, shares: u32, price: u32, sym: usize, buy: bool) -> bool {
        match self {
            GenAtom::Shares(op, v) => op.eval(u64::from(shares), u64::from(*v)),
            GenAtom::Price(op, v) => op.eval(u64::from(price), u64::from(*v)),
            GenAtom::Stock(eq, i) => (sym == *i) == *eq,
            GenAtom::Side(eq, b) => (buy == *b) == *eq,
        }
    }
}

fn arb_relop() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        Just(RelOp::Lt),
        Just(RelOp::Gt),
        Just(RelOp::Eq),
        Just(RelOp::Le),
        Just(RelOp::Ge),
        Just(RelOp::Ne),
    ]
}

fn arb_atom() -> impl Strategy<Value = GenAtom> {
    prop_oneof![
        (arb_relop(), 0u32..200).prop_map(|(o, v)| GenAtom::Shares(o, v)),
        (arb_relop(), 0u32..200).prop_map(|(o, v)| GenAtom::Price(o, v)),
        (any::<bool>(), 0usize..SYMBOLS.len()).prop_map(|(e, i)| GenAtom::Stock(e, i)),
        (any::<bool>(), any::<bool>()).prop_map(|(e, b)| GenAtom::Side(e, b)),
    ]
}

type GenRule = (Vec<GenAtom>, u16);

fn arb_rules() -> impl Strategy<Value = Vec<GenRule>> {
    prop::collection::vec((prop::collection::vec(arb_atom(), 1..4), 1u16..8), 1..10)
}

fn to_rules(gen: &[GenRule]) -> Vec<Rule> {
    gen.iter()
        .map(|(atoms, port)| {
            let cond = atoms
                .iter()
                .map(GenAtom::to_cond)
                .reduce(|a, b| a.and(b))
                .expect("at least one atom");
            Rule::new(cond, vec![Action::Fwd(vec![*port])])
        })
        .collect()
}

fn naive_ports(gen: &[GenRule], shares: u32, price: u32, sym: usize, buy: bool) -> Vec<u16> {
    let mut out: Vec<u16> = gen
        .iter()
        .filter(|(atoms, _)| atoms.iter().all(|a| a.eval(shares, price, sym, buy)))
        .map(|(_, p)| *p)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn raw_itch_packet(symbol: &str, buy: bool, shares: u32, price: u32) -> Vec<u8> {
    let mut m = vec![b'A'];
    m.extend_from_slice(&[0; 10]);
    m.extend_from_slice(&[0; 8]);
    m.push(if buy { b'B' } else { b'S' });
    m.extend_from_slice(&shares.to_be_bytes());
    let mut stock = [b' '; 8];
    for (i, c) in symbol.bytes().take(8).enumerate() {
        stock[i] = c;
    }
    m.extend_from_slice(&stock);
    m.extend_from_slice(&price.to_be_bytes());
    m
}

type Packet = (u32, u32, usize, bool);

fn arb_packets() -> impl Strategy<Value = Vec<Packet>> {
    prop::collection::vec(
        (0u32..250, 0u32..250, 0usize..SYMBOLS.len(), any::<bool>()),
        1..16,
    )
}

fn run_config(
    rules: &[Rule],
    gen: &[GenRule],
    packets: &[Packet],
    options: CompilerOptions,
) -> Result<(), TestCaseError> {
    let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, options).unwrap();
    let prog = compiler.compile(rules).unwrap();
    let mut pipe = prog.pipeline;
    for &(shares, price, sym, buy) in packets {
        let pkt = raw_itch_packet(SYMBOLS[sym], buy, shares, price);
        let d = pipe.process(&pkt, 0).unwrap();
        let got: Vec<u16> = d.ports.iter().map(|p| p.0).collect();
        let want = naive_ports(gen, shares, price, sym, buy);
        prop_assert_eq!(
            got,
            want,
            "shares={} price={} sym={} buy={}",
            shares,
            price,
            sym,
            buy
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compiled pipeline == naive interpreter, default options.
    #[test]
    fn pipeline_matches_naive((gen, packets) in (arb_rules(), arb_packets())) {
        let rules = to_rules(&gen);
        run_config(&rules, &gen, &packets, CompilerOptions::raw())?;
    }

    /// Every ordering heuristic produces the same forwarding behaviour.
    #[test]
    fn heuristics_agree((gen, packets) in (arb_rules(), arb_packets())) {
        let rules = to_rules(&gen);
        for h in OrderHeuristic::ALL {
            let opts = CompilerOptions { heuristic: h, ..CompilerOptions::raw() };
            run_config(&rules, &gen, &packets, opts)?;
        }
    }

    /// Domain compression never changes behaviour.
    #[test]
    fn compression_agrees((gen, packets) in (arb_rules(), arb_packets())) {
        let rules = to_rules(&gen);
        let opts = CompilerOptions { compress_bits: Some(8), ..CompilerOptions::raw() };
        run_config(&rules, &gen, &packets, opts)?;
    }

    /// Entry counts are identical across recompilations (determinism).
    #[test]
    fn compilation_is_deterministic(gen in arb_rules()) {
        let rules = to_rules(&gen);
        let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
        let compiler = Compiler::new(spec, CompilerOptions::raw()).unwrap();
        let a = compiler.compile(&rules).unwrap();
        let b = compiler.compile(&rules).unwrap();
        prop_assert_eq!(a.stats.clone(), b.stats);
        prop_assert_eq!(a.control_plane, b.control_plane);
    }
}

// ------------------------------------------------------- live churn

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Live churn: random update sequences driven through
    /// `IncrementalCompiler::update` and replayed onto a running
    /// pipeline with `UpdateReport::apply_to` must forward identically
    /// to a fresh full compile of the cumulative rule set after every
    /// step (and both must match the naive interpreter). Covers the
    /// delta path, removal rebuilds and out-of-alphabet fallbacks.
    #[test]
    fn incremental_churn_matches_full_recompile(
        seed in 0u64..100_000,
        removes_per_step in 0usize..3,
        out_of_alphabet in 0usize..2,
    ) {
        use camus_core::IncrementalCompiler;
        use camus_workload::{naive_ports_for_event, siena_churn, ChurnConfig, SienaConfig};

        let siena = SienaConfig {
            int_attributes: 2,
            symbol_attributes: 1,
            symbol_alphabet: 8,
            int_range: 60,
            predicates_per_subscription: 2,
            seed,
            ..Default::default()
        };
        let churn = ChurnConfig {
            initial_rules: 5,
            steps: 3,
            adds_per_step: 2,
            removes_per_step,
            seed: seed ^ 0xFEED,
            ..Default::default()
        };
        let plan = siena_churn(&siena, &churn, out_of_alphabet);
        let spec = plan.base.spec.clone();
        let opts = CompilerOptions::raw();

        let mut session = IncrementalCompiler::new(spec.clone(), &opts, &plan.base.rules).unwrap();
        let mut mirror = session.install(&plan.schedule.initial).unwrap().pipeline;
        let full_compiler = Compiler::new(spec.clone(), opts).unwrap();
        let events = siena.generate_events(&plan.base, 10);

        for (k, step) in plan.schedule.steps.iter().enumerate() {
            let report = session.update(&step.add, &step.remove).unwrap();
            report.apply_to(&mut mirror).unwrap();

            let active = plan.schedule.rules_after(k + 1);
            prop_assert_eq!(session.active_rules(), active.as_slice());
            let mut full = full_compiler.compile(&active).unwrap().pipeline;
            for ev in &events {
                let inc: Vec<u16> =
                    mirror.process(ev, 0).unwrap().ports.iter().map(|p| p.0).collect();
                let fresh: Vec<u16> =
                    full.process(ev, 0).unwrap().ports.iter().map(|p| p.0).collect();
                let oracle = naive_ports_for_event(&spec, &active, ev);
                prop_assert_eq!(&inc, &fresh, "step {}, event {:x?}", k, ev);
                prop_assert_eq!(&inc, &oracle, "step {}, event {:x?}", k, ev);
            }
        }
    }
}

// ------------------------------------------------- fabric partition

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partition-plan invariants over random Siena programs: every
    /// compiled entry is assigned to at least one leaf (cover), no
    /// entry is assigned beyond the leaf count, and slicing each table
    /// by the plan's per-entry leaf masks reassembles the original
    /// table set entry-for-entry, in order.
    #[test]
    fn partition_plan_covers_and_reassembles(
        seed in 0u64..100_000,
        leaves in 1usize..=5,
    ) {
        use camus_core::PartitionPlan;
        use camus_workload::SienaConfig;

        let siena = SienaConfig {
            int_attributes: 2,
            symbol_attributes: 1,
            symbol_alphabet: 8,
            int_range: 60,
            predicates_per_subscription: 2,
            seed,
            ..Default::default()
        };
        let wl = siena.generate();
        let compiler = Compiler::new(wl.spec.clone(), CompilerOptions::raw()).unwrap();
        let master = compiler.compile(&wl.rules).unwrap().pipeline;
        let plan = PartitionPlan::compute(&master, "ev.sym0", leaves).unwrap();

        prop_assert_eq!(plan.assignment.len(), master.tables.len());
        for (t, ta) in master.tables.iter().zip(&plan.assignment) {
            prop_assert_eq!(&ta.table, &t.name);
            prop_assert_eq!(ta.masks.len(), t.len());
            for (i, &m) in ta.masks.iter().enumerate() {
                prop_assert!(m != 0, "table {} entry {} landed on no leaf", t.name, i);
                prop_assert_eq!(
                    m >> leaves, 0,
                    "table {} entry {} assigned beyond leaf {}", t.name, i, leaves
                );
            }
        }

        let slices = plan.slices(&master);
        prop_assert_eq!(slices.len(), leaves);
        for (l, slice) in slices.iter().enumerate() {
            prop_assert_eq!(slice.tables.len(), master.tables.len());
            for (ti, t) in master.tables.iter().enumerate() {
                let expect: Vec<_> = t
                    .entries()
                    .enumerate()
                    .filter(|(i, _)| plan.assignment[ti].masks[*i] & (1u64 << l) != 0)
                    .map(|(_, e)| e.clone())
                    .collect();
                let got: Vec<_> = slice.tables[ti].entries().cloned().collect();
                prop_assert_eq!(got, expect, "table {} leaf {}", t.name, l);
            }
        }
    }

    /// Failover-plan invariants over any non-empty survivor subset:
    /// the subset plan never assigns an entry to a dead leaf, never
    /// loses an entry (cover within the live mask), reassembles each
    /// table entry-for-entry from the live slices, keeps every
    /// surviving owner's symbols in place (only dead owners' symbols
    /// rehash — the "zero loss for shards that never left a healthy
    /// leaf" guarantee), and degenerates to the full plan when every
    /// leaf is alive.
    #[test]
    fn failover_subset_plan_covers_and_keeps_survivors_stable(
        seed in 0u64..100_000,
        leaves in 2usize..=5,
        mask_seed in 1u64..1024,
    ) {
        use camus_core::{full_mask, owner_in_subset, owner_of, PartitionPlan};
        use camus_workload::SienaConfig;

        let live_mask = {
            let m = mask_seed & full_mask(leaves);
            if m == 0 { 1 } else { m }
        };
        let siena = SienaConfig {
            int_attributes: 2,
            symbol_attributes: 1,
            symbol_alphabet: 8,
            int_range: 60,
            predicates_per_subscription: 2,
            seed,
            ..Default::default()
        };
        let wl = siena.generate();
        let compiler = Compiler::new(wl.spec.clone(), CompilerOptions::raw()).unwrap();
        let master = compiler.compile(&wl.rules).unwrap().pipeline;
        let plan = PartitionPlan::compute_subset(&master, "ev.sym0", leaves, live_mask).unwrap();

        prop_assert_eq!(plan.live_mask, live_mask);
        prop_assert_eq!(plan.assignment.len(), master.tables.len());
        for (t, ta) in master.tables.iter().zip(&plan.assignment) {
            prop_assert_eq!(ta.masks.len(), t.len());
            for (i, &m) in ta.masks.iter().enumerate() {
                prop_assert!(m != 0, "table {} entry {} lost in failover", t.name, i);
                prop_assert_eq!(
                    m & !live_mask, 0,
                    "table {} entry {} assigned to a dead leaf", t.name, i
                );
            }
        }

        // Live slices reassemble every table; dead leaves hold nothing.
        let slices = plan.slices(&master);
        for (l, slice) in slices.iter().enumerate() {
            if live_mask & (1 << l) == 0 {
                for st in &slice.tables {
                    prop_assert_eq!(st.len(), 0, "dead leaf {} holds entries", l);
                }
                continue;
            }
            for (ti, t) in master.tables.iter().enumerate() {
                let expect: Vec<_> = t
                    .entries()
                    .enumerate()
                    .filter(|(i, _)| plan.assignment[ti].masks[*i] & (1u64 << l) != 0)
                    .map(|(_, e)| e.clone())
                    .collect();
                let got: Vec<_> = slice.tables[ti].entries().cloned().collect();
                prop_assert_eq!(got, expect, "table {} live leaf {}", t.name, l);
            }
        }

        // Survivor stability: a value whose primary owner is alive is
        // routed to that same owner; a dead owner's value lands on a
        // live leaf, deterministically.
        for v in 0..512u64 {
            let primary = owner_of(v, leaves);
            let routed = owner_in_subset(v, leaves, live_mask);
            prop_assert!(live_mask & (1 << routed) != 0, "value {} routed to a dead leaf", v);
            if live_mask & (1 << primary) != 0 {
                prop_assert_eq!(routed, primary, "surviving owner of {} moved", v);
            }
            prop_assert_eq!(routed, owner_in_subset(v, leaves, live_mask));
        }

        // All-alive degenerates to the full plan.
        if live_mask == full_mask(leaves) {
            let full = PartitionPlan::compute(&master, "ev.sym0", leaves).unwrap();
            prop_assert_eq!(plan, full);
        }
    }

    /// Rule-level sharding: every rule is owned by exactly one leaf in
    /// range, ownership is deterministic, and a rule that pins the
    /// shard symbol is owned by that symbol's leaf (the same mapping
    /// the fabric's spine uses to route packets).
    #[test]
    fn every_rule_lands_on_exactly_one_in_range_leaf(
        seed in 0u64..100_000,
        leaves in 1usize..=5,
    ) {
        use camus_core::{owner_of, rule_owners};
        use camus_workload::siena::symbol_name;
        use camus_workload::SienaConfig;

        let siena = SienaConfig {
            int_attributes: 2,
            symbol_attributes: 1,
            symbol_alphabet: 8,
            int_range: 60,
            predicates_per_subscription: 2,
            seed,
            ..Default::default()
        };
        let wl = siena.generate();
        let owners = rule_owners(&wl.rules, "sym0", 64, leaves);
        prop_assert_eq!(owners.len(), wl.rules.len());
        for (i, &o) in owners.iter().enumerate() {
            prop_assert!(o < leaves, "rule {} owned by out-of-range leaf {}", i, o);
        }
        prop_assert_eq!(&owners, &rule_owners(&wl.rules, "sym0", 64, leaves));

        // A symbol-pinned rule follows its symbol's packet route.
        for i in 0..siena.symbol_alphabet {
            let sym = symbol_name(i);
            let rule = camus_lang::parse_program(&format!("sym0 == {sym} : fwd(1)")).unwrap();
            let key = camus_lang::symbol::encode_symbol(&sym, 64);
            prop_assert_eq!(
                rule_owners(&rule, "sym0", 64, leaves)[0],
                owner_of(key, leaves)
            );
        }
    }

    /// The plan is a pure function of the compiled program — and the
    /// compiled program is bit-identical at any `compile_shards` — so
    /// partitioning must be deterministic across compile thread counts.
    #[test]
    fn partition_plan_is_deterministic_across_thread_counts(
        seed in 0u64..100_000,
        leaves in 1usize..=5,
    ) {
        use camus_core::PartitionPlan;
        use camus_workload::SienaConfig;

        let siena = SienaConfig {
            int_attributes: 2,
            symbol_attributes: 1,
            symbol_alphabet: 8,
            int_range: 60,
            predicates_per_subscription: 2,
            seed,
            ..Default::default()
        };
        let wl = siena.generate();
        let plan_at = |shards: usize| {
            let opts = CompilerOptions { compile_shards: shards, ..CompilerOptions::raw() };
            let compiler = Compiler::new(wl.spec.clone(), opts).unwrap();
            let master = compiler.compile(&wl.rules).unwrap().pipeline;
            PartitionPlan::compute(&master, "ev.sym0", leaves).unwrap()
        };
        prop_assert_eq!(plan_at(1), plan_at(8));
    }
}
