//! End-to-end test of the `camusc` command-line compiler.

use std::fs;
use std::path::Path;
use std::process::Command;

const SPEC: &str = r#"
header_type order_t {
    fields {
        msg_type: 8;
        shares: 32;
        stock: 64;
        price: 32;
    }
}
header order_t order;
@query_field(order.price)
@query_field_exact(order.stock)
"#;

const RULES: &str = "stock == GOOGL : fwd(1)\nstock == MSFT and price > 10 : fwd(2,3)\n";

fn write_inputs(dir: &Path) {
    fs::write(dir.join("app.p4q"), SPEC).unwrap();
    fs::write(dir.join("subs.camus"), RULES).unwrap();
}

fn camusc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_camusc"))
}

#[test]
fn compiles_and_writes_artifacts() {
    let dir = std::env::temp_dir().join("camusc_test_artifacts");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    write_inputs(&dir);

    let out = dir.join("out");
    let status = camusc()
        .args(["--spec"])
        .arg(dir.join("app.p4q"))
        .args(["--rules"])
        .arg(dir.join("subs.camus"))
        .args(["--encap", "raw", "--out"])
        .arg(&out)
        .output()
        .expect("camusc runs");
    assert!(
        status.status.success(),
        "{}",
        String::from_utf8_lossy(&status.stderr)
    );
    let stdout = String::from_utf8_lossy(&status.stdout);
    assert!(stdout.contains("compiled 2 rules"), "{stdout}");
    assert!(stdout.contains("fits"), "{stdout}");

    let p4 = fs::read_to_string(out.join("pipeline.p4")).unwrap();
    assert!(p4.contains("table t_order_stock"));
    let cp = fs::read_to_string(out.join("control_plane.txt")).unwrap();
    assert!(cp.contains("table_add t_actions"));
    let dot = fs::read_to_string(out.join("bdd.dot")).unwrap();
    assert!(dot.starts_with("digraph"));
    assert!(fs::read_to_string(out.join("report.txt"))
        .unwrap()
        .contains("table entries"));
}

#[test]
fn check_mode_writes_nothing() {
    let dir = std::env::temp_dir().join("camusc_test_check");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    write_inputs(&dir);

    let out = dir.join("out");
    let status = camusc()
        .args(["--spec"])
        .arg(dir.join("app.p4q"))
        .args(["--rules"])
        .arg(dir.join("subs.camus"))
        .args(["--encap", "raw", "--check", "--out"])
        .arg(&out)
        .status()
        .expect("camusc runs");
    assert!(status.success());
    assert!(!out.exists());
}

#[test]
fn bad_rules_fail_with_diagnostic() {
    let dir = std::env::temp_dir().join("camusc_test_bad");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("app.p4q"), SPEC).unwrap();
    fs::write(dir.join("subs.camus"), "volume > 9 : fwd(1)\n").unwrap();

    let out = camusc()
        .args(["--spec"])
        .arg(dir.join("app.p4q"))
        .args(["--rules"])
        .arg(dir.join("subs.camus"))
        .args(["--encap", "raw", "--check"])
        .output()
        .expect("camusc runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("volume"), "{stderr}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = camusc()
        .args([
            "--spec",
            "/nonexistent.p4q",
            "--rules",
            "/nonexistent.camus",
            "--check",
        ])
        .output()
        .expect("camusc runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn unknown_flag_prints_usage() {
    let out = camusc()
        .args(["--frobnicate"])
        .output()
        .expect("camusc runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
