//! Compiler error type.

use std::fmt;

use camus_bdd::BddError;
use camus_lang::ast::FieldRef;
use camus_lang::dnf::DnfOverflow;
use camus_pipeline::{AdmissionError, PipelineError};

/// Errors from static or dynamic compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A rule references a field that is not annotated `@query_field`
    /// (or is ambiguous in shorthand form).
    UnresolvedField(FieldRef),
    /// A rule references an undeclared state variable.
    UnknownStateVar(String),
    /// A range predicate (`<`/`>`) on an `@query_field_exact` field.
    RangeOnExactField(FieldRef),
    /// A constant does not fit the field's width.
    ValueOutOfRange {
        /// The field.
        field: FieldRef,
        /// The offending constant.
        value: u64,
        /// Field width in bits.
        bits: u32,
    },
    /// Aggregate macro used without an argument field (only `count()`
    /// may be nullary).
    AggNeedsField(&'static str),
    /// A rule's condition exploded during DNF normalization.
    Dnf(DnfOverflow),
    /// BDD construction failed (internal inconsistency).
    Bdd(BddError),
    /// The generated program failed to configure the pipeline.
    Pipeline(PipelineError),
    /// The compiled program does not fit the ASIC resource model
    /// (enforced placement / live admission control).
    Admission(AdmissionError),
    /// The spec cannot be compiled with the chosen encapsulation.
    BadSpec(String),
    /// An incremental update needs resources the installed program
    /// lacks (new predicates or state slots): fall back to a full
    /// compile.
    NeedsFullRecompile(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnresolvedField(fr) => {
                write!(
                    f,
                    "field `{fr}` is not a declared @query_field (or is ambiguous)"
                )
            }
            CompileError::UnknownStateVar(v) => write!(f, "unknown state variable `{v}`"),
            CompileError::RangeOnExactField(fr) => {
                write!(f, "range predicate on exact-match field `{fr}`")
            }
            CompileError::ValueOutOfRange { field, value, bits } => {
                write!(
                    f,
                    "constant {value} does not fit {bits}-bit field `{field}`"
                )
            }
            CompileError::AggNeedsField(name) => {
                write!(f, "aggregate `{name}` requires a field argument")
            }
            CompileError::Dnf(e) => write!(f, "{e}"),
            CompileError::Bdd(e) => write!(f, "BDD construction: {e}"),
            CompileError::Pipeline(e) => write!(f, "pipeline configuration: {e}"),
            CompileError::Admission(e) => write!(f, "resource admission: {e}"),
            CompileError::BadSpec(msg) => write!(f, "bad spec: {msg}"),
            CompileError::NeedsFullRecompile(msg) => {
                write!(f, "incremental update not possible: {msg}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<DnfOverflow> for CompileError {
    fn from(e: DnfOverflow) -> Self {
        CompileError::Dnf(e)
    }
}

impl From<BddError> for CompileError {
    fn from(e: BddError) -> Self {
        CompileError::Bdd(e)
    }
}

impl From<PipelineError> for CompileError {
    fn from(e: PipelineError) -> Self {
        CompileError::Pipeline(e)
    }
}

impl From<AdmissionError> for CompileError {
    fn from(e: AdmissionError) -> Self {
        CompileError::Admission(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = CompileError::UnresolvedField(FieldRef::short("volume"));
        assert!(e.to_string().contains("volume"));
        let e = CompileError::ValueOutOfRange {
            field: FieldRef::short("price"),
            value: 300,
            bits: 8,
        };
        assert!(e.to_string().contains("300"));
    }
}
