//! Static compilation (§3.1): performed once per application.
//!
//! Generates everything that must exist before any subscription is
//! installed: the PHV layout, the parser program for the application's
//! encapsulation, the preallocated register block for state variables,
//! and the binding of stateful pseudo-fields to register aggregates.
//! The dynamic compiler later *links* subscription actions to this
//! generic update code by slot index — the paper's "pointers to v, f,
//! and args".

use std::collections::HashMap;

use camus_bdd::pred::FieldId;
use camus_lang::spec::Spec;
use camus_pipeline::parser::{Extract, ParseState, ParserSpec, StateId, Transition};
use camus_pipeline::phv::{PhvField, PhvLayout};
use camus_pipeline::pipeline::StateBinding;
use camus_pipeline::register::{AggKind, RegisterFile};

use crate::error::CompileError;
use crate::resolve::{FieldTable, SlotKind};

/// Packet encapsulation of the application's messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Encap {
    /// Messages start at byte 0 of the packet (tests, custom framing).
    Raw,
    /// The paper's market-data stack: Ethernet / IPv4 / UDP / MoldUDP64
    /// with length-prefixed message blocks, evaluated per message.
    EthIpUdpMold {
        /// Name of the header field that discriminates message types,
        /// with the value identifying the application's message — e.g.
        /// `("msg_type", 'A')` for ITCH add-orders. `None` treats every
        /// block as an application message.
        message_select: Option<(String, u64)>,
    },
}

/// The static half of a compiled program.
#[derive(Debug, Clone)]
pub struct StaticPipeline {
    /// PHV layout shared by parser and tables.
    pub layout: PhvLayout,
    /// Parser program.
    pub parser: ParserSpec,
    /// Preallocated register block.
    pub registers: RegisterFile,
    /// Aggregate materialization bindings.
    pub state_bindings: Vec<StateBinding>,
    /// PHV slot per BDD field (indexed by `FieldId`).
    pub field_phv: Vec<PhvField>,
    /// PHV slot of the BDD state metadata register.
    pub state_meta: PhvField,
    /// Register slot per stateful BDD field.
    pub reg_slot: HashMap<FieldId, usize>,
    /// Observation source per aggregate field (`None` = count-style).
    pub observe_src: HashMap<FieldId, Option<PhvField>>,
}

const ETH_BITS: u32 = 14 * 8;
const IP_BITS: u32 = 20 * 8;
const UDP_BITS: u32 = 8 * 8;
const MOLD_BITS: u32 = 20 * 8;

/// Builds the static pipeline for a spec and resolved field table.
pub fn build_static(
    spec: &Spec,
    fields: &FieldTable,
    encap: &Encap,
) -> Result<StaticPipeline, CompileError> {
    let mut layout = PhvLayout::new();
    let state_meta = layout.add("meta.state", 32);

    // PHV slots for every (≤64-bit) spec field of every instance, plus
    // instance base offsets.
    let mut inst_base: HashMap<String, u32> = HashMap::new();
    let mut offset = 0u32;
    for inst in &spec.instances {
        let ht = spec
            .header_type(&inst.type_name)
            .ok_or_else(|| CompileError::BadSpec(format!("missing type {}", inst.type_name)))?;
        inst_base.insert(inst.name.clone(), offset);
        for f in &ht.fields {
            if f.bits <= 64 {
                layout.add(format!("{}.{}", inst.name, f.name), f.bits);
            }
        }
        offset += ht.total_bits();
    }

    // PHV slots for the BDD fields (packet fields alias the spec slots;
    // stateful slots get fresh pseudo-fields).
    let mut field_phv = Vec::with_capacity(fields.len());
    let mut registers = RegisterFile::new();
    let mut state_bindings = Vec::new();
    let mut reg_slot = HashMap::new();
    let mut observe_src = HashMap::new();
    for (i, kind) in fields.kinds.iter().enumerate() {
        let fid = FieldId(i as u32);
        let info = &fields.infos[i];
        let phv = match kind {
            SlotKind::Packet(qf) => layout.get(&qf.field.to_string()).ok_or_else(|| {
                CompileError::BadSpec(format!("field {} not in layout", qf.field))
            })?,
            SlotKind::Agg {
                agg,
                src,
                window_us,
            } => {
                let dst = layout.add(format!("meta.{}", info.name), 64);
                let slot = registers.allocate(*window_us);
                reg_slot.insert(fid, slot);
                state_bindings.push(StateBinding {
                    dst,
                    slot,
                    agg: *agg,
                });
                let src_phv = match src {
                    Some(qf) => Some(layout.get(&qf.field.to_string()).ok_or_else(|| {
                        CompileError::BadSpec(format!("agg source {} not in layout", qf.field))
                    })?),
                    None => None,
                };
                observe_src.insert(fid, src_phv);
                dst
            }
            SlotKind::Counter { window_us, .. } => {
                let dst = layout.add(format!("meta.{}", info.name), 64);
                let slot = registers.allocate(*window_us);
                reg_slot.insert(fid, slot);
                // Counters read as the running sum: incr() folds 1,
                // add(f) folds f, set(x) resets the sum to x.
                state_bindings.push(StateBinding {
                    dst,
                    slot,
                    agg: AggKind::Sum,
                });
                dst
            }
        };
        field_phv.push(phv);
    }

    let parser = match encap {
        Encap::Raw => build_raw_parser(spec, &mut layout, &inst_base)?,
        Encap::EthIpUdpMold { message_select } => {
            build_mold_parser(spec, &mut layout, message_select.as_deref_pair())?
        }
    };

    Ok(StaticPipeline {
        layout,
        parser,
        registers,
        state_bindings,
        field_phv,
        state_meta,
        reg_slot,
        observe_src,
    })
}

/// Small helper: borrow the `(String, u64)` pair as `(&str, u64)`.
trait AsDerefPair {
    fn as_deref_pair(&self) -> Option<(&str, u64)>;
}

impl AsDerefPair for Option<(String, u64)> {
    fn as_deref_pair(&self) -> Option<(&str, u64)> {
        self.as_ref().map(|(s, v)| (s.as_str(), *v))
    }
}

fn extracts_for_instance(
    spec: &Spec,
    layout: &PhvLayout,
    inst: &camus_lang::spec::HeaderInstance,
    base_bits: u32,
) -> Vec<Extract> {
    let ht = spec.header_type(&inst.type_name).expect("validated");
    ht.fields
        .iter()
        .filter(|f| f.bits <= 64)
        .map(|f| Extract {
            dst: layout
                .get(&format!("{}.{}", inst.name, f.name))
                .expect("added above"),
            bit_offset: base_bits + f.bit_offset,
            bits: f.bits,
        })
        .collect()
}

fn build_raw_parser(
    spec: &Spec,
    layout: &mut PhvLayout,
    inst_base: &HashMap<String, u32>,
) -> Result<ParserSpec, CompileError> {
    if spec.instances.is_empty() {
        return Err(CompileError::BadSpec("no header instances declared".into()));
    }
    let mut extracts = Vec::new();
    let mut total = 0u32;
    for inst in &spec.instances {
        let base = inst_base[&inst.name];
        extracts.extend(extracts_for_instance(spec, layout, inst, base));
        total = total.max(base + spec.header_type(&inst.type_name).unwrap().total_bits());
    }
    Ok(ParserSpec::new(
        vec![ParseState {
            name: "app_headers".into(),
            extracts,
            advance_bits: total,
            advance_bytes_from: None,
            emit: false,
            next: Transition::Accept,
        }],
        StateId(0),
    ))
}

fn build_mold_parser(
    spec: &Spec,
    layout: &mut PhvLayout,
    message_select: Option<(&str, u64)>,
) -> Result<ParserSpec, CompileError> {
    if spec.instances.len() != 1 {
        return Err(CompileError::BadSpec(
            "EthIpUdpMold encapsulation requires exactly one header instance".into(),
        ));
    }
    let inst = &spec.instances[0];
    let ht = spec.header_type(&inst.type_name).expect("validated");

    let ethertype = layout.add("meta.ethertype", 16);
    let ip_proto = layout.add("meta.ip_proto", 8);
    let msg_len = layout.add("meta.msg_len", 16);

    // Message-type discriminator: reuse the field's own PHV slot.
    let select = match message_select {
        Some((fname, value)) => {
            let decl = ht.field(fname).ok_or_else(|| {
                CompileError::BadSpec(format!("message-select field `{fname}` not in header"))
            })?;
            if decl.bits > 64 {
                return Err(CompileError::BadSpec(
                    "message-select field wider than 64 bits".into(),
                ));
            }
            let slot = layout
                .get(&format!("{}.{}", inst.name, fname))
                .ok_or_else(|| {
                    CompileError::BadSpec("message-select field has no PHV slot".into())
                })?;
            Some((slot, decl.bit_offset, decl.bits, value))
        }
        None => None,
    };

    // Message payload starts 16 bits (the length prefix) into the block.
    let msg_extracts = extracts_for_instance(spec, layout, inst, 16);

    const S_ETH: StateId = StateId(0);
    const S_IP: StateId = StateId(1);
    const S_UDP: StateId = StateId(2);
    const S_MOLD: StateId = StateId(3);
    const S_BLOCK: StateId = StateId(4);
    const S_ACCEPT_MSG: StateId = StateId(5);
    const S_SKIP_MSG: StateId = StateId(6);

    let mut states = vec![
        ParseState {
            name: "ethernet".into(),
            extracts: vec![Extract {
                dst: ethertype,
                bit_offset: 96,
                bits: 16,
            }],
            advance_bits: ETH_BITS,
            advance_bytes_from: None,
            emit: false,
            next: Transition::Select {
                field: ethertype,
                cases: vec![(0x0800, S_IP)],
                default: None,
            },
        },
        ParseState {
            name: "ipv4".into(),
            extracts: vec![Extract {
                dst: ip_proto,
                bit_offset: 72,
                bits: 8,
            }],
            advance_bits: IP_BITS,
            advance_bytes_from: None,
            emit: false,
            next: Transition::Select {
                field: ip_proto,
                cases: vec![(17, S_UDP)],
                default: None,
            },
        },
        ParseState {
            name: "udp".into(),
            extracts: vec![],
            advance_bits: UDP_BITS,
            advance_bytes_from: None,
            emit: false,
            next: Transition::Always(S_MOLD),
        },
        ParseState {
            name: "moldudp64".into(),
            extracts: vec![],
            advance_bits: MOLD_BITS,
            advance_bytes_from: None,
            emit: false,
            next: Transition::SelectRemaining { more: S_BLOCK },
        },
    ];

    // Block dispatch: read the length prefix (and the discriminator when
    // configured), then parse or skip.
    let mut block_extracts = vec![Extract {
        dst: msg_len,
        bit_offset: 0,
        bits: 16,
    }];
    let next = match select {
        Some((slot, off, bits, value)) => {
            block_extracts.push(Extract {
                dst: slot,
                bit_offset: 16 + off,
                bits,
            });
            Transition::Select {
                field: slot,
                cases: vec![(value, S_ACCEPT_MSG)],
                default: Some(S_SKIP_MSG),
            }
        }
        None => Transition::Always(S_ACCEPT_MSG),
    };
    states.push(ParseState {
        name: "mold_block".into(),
        extracts: block_extracts,
        advance_bits: 0,
        advance_bytes_from: None,
        emit: false,
        next,
    });
    states.push(ParseState {
        name: "app_message".into(),
        extracts: msg_extracts,
        advance_bits: 16,
        advance_bytes_from: Some(msg_len),
        emit: true,
        next: Transition::SelectRemaining { more: S_BLOCK },
    });
    states.push(ParseState {
        name: "skip_message".into(),
        extracts: vec![],
        advance_bits: 16,
        advance_bytes_from: Some(msg_len),
        emit: false,
        next: Transition::SelectRemaining { more: S_BLOCK },
    });

    Ok(ParserSpec::new(states, S_ETH))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::{resolve, ResolveOptions};
    use camus_lang::{parse_program, parse_spec};

    fn itch_static(src: &str, encap: Encap) -> StaticPipeline {
        let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
        let rules = parse_program(src).unwrap();
        let resolved = resolve(&spec, &rules, &ResolveOptions::default()).unwrap();
        build_static(&spec, &resolved.fields, &encap).unwrap()
    }

    #[test]
    fn raw_parser_extracts_spec_fields() {
        let sp = itch_static("stock == GOOGL : fwd(1)", Encap::Raw);
        let msg = camus_itch_wire();
        let phvs = sp.parser.parse(&sp.layout, &msg).unwrap();
        assert_eq!(phvs.len(), 1);
        let stock = sp.layout.get("add_order.stock").unwrap();
        assert_eq!(phvs[0].get(stock), Some(u64::from_be_bytes(*b"GOOGL   ")));
        let shares = sp.layout.get("add_order.shares").unwrap();
        assert_eq!(phvs[0].get(shares), Some(500));
    }

    #[test]
    fn mold_parser_emits_only_selected_messages() {
        let sp = itch_static(
            "stock == GOOGL : fwd(1)",
            Encap::EthIpUdpMold {
                message_select: Some(("msg_type".into(), u64::from(b'A'))),
            },
        );
        // Feed with one add-order and one delete (type 'D', skipped).
        let add = camus_itch_wire();
        let del = {
            let mut d = vec![b'D'];
            d.extend_from_slice(&[0u8; 18]);
            d
        };
        let pkt = feed_packet(&[&add, &del]);
        let phvs = sp.parser.parse(&sp.layout, &pkt).unwrap();
        assert_eq!(phvs.len(), 1);
        let price = sp.layout.get("add_order.price").unwrap();
        assert_eq!(phvs[0].get(price), Some(1_000_000));
    }

    #[test]
    fn mold_parser_handles_multiple_matches() {
        let sp = itch_static(
            "stock == GOOGL : fwd(1)",
            Encap::EthIpUdpMold {
                message_select: Some(("msg_type".into(), u64::from(b'A'))),
            },
        );
        let add = camus_itch_wire();
        let pkt = feed_packet(&[&add, &add, &add]);
        let phvs = sp.parser.parse(&sp.layout, &pkt).unwrap();
        assert_eq!(phvs.len(), 3);
    }

    #[test]
    fn mold_parser_rejects_non_udp() {
        let sp = itch_static(
            "stock == GOOGL : fwd(1)",
            Encap::EthIpUdpMold {
                message_select: None,
            },
        );
        let mut pkt = feed_packet(&[]);
        pkt[23] = 6; // TCP
        assert!(sp.parser.parse(&sp.layout, &pkt).is_err());
    }

    #[test]
    fn registers_allocated_for_state_slots() {
        let sp = itch_static(
            "avg(price) > 50 and stock == GOOGL : fwd(1)\nmy_counter > 3 : fwd(2)",
            Encap::Raw,
        );
        // my_counter (declared) + avg(price) (used).
        assert_eq!(sp.registers.len(), 2);
        assert_eq!(sp.state_bindings.len(), 2);
        assert_eq!(sp.reg_slot.len(), 2);
    }

    #[test]
    fn bad_specs_are_rejected() {
        let spec = parse_spec(
            "header_type t { fields { x: 8; } }\nheader t a;\nheader t b;\n@query_field(a.x)",
        )
        .unwrap();
        let rules = parse_program("a.x > 1 : fwd(1)").unwrap();
        let resolved = resolve(&spec, &rules, &ResolveOptions::default()).unwrap();
        let err = build_static(
            &spec,
            &resolved.fields,
            &Encap::EthIpUdpMold {
                message_select: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::BadSpec(_)));

        let err = build_static(
            &spec,
            &resolved.fields,
            &Encap::EthIpUdpMold {
                message_select: Some(("nope".into(), 1)),
            },
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::BadSpec(_)));
    }

    /// A 36-byte ITCH add-order: GOOGL, 500 shares, price 1_000_000.
    fn camus_itch_wire() -> Vec<u8> {
        let mut m = vec![b'A'];
        m.extend_from_slice(&[0; 10]);
        m.extend_from_slice(&[0; 8]);
        m.push(b'B');
        m.extend_from_slice(&500u32.to_be_bytes());
        m.extend_from_slice(b"GOOGL   ");
        m.extend_from_slice(&1_000_000u32.to_be_bytes());
        m
    }

    /// Minimal Ethernet/IPv4/UDP/MoldUDP64 wrapper.
    fn feed_packet(msgs: &[&[u8]]) -> Vec<u8> {
        let mut mold = vec![0u8; 10];
        mold.extend_from_slice(&1u64.to_be_bytes());
        mold.extend_from_slice(&(msgs.len() as u16).to_be_bytes());
        for m in msgs {
            mold.extend_from_slice(&(m.len() as u16).to_be_bytes());
            mold.extend_from_slice(m);
        }
        let mut udp = vec![0u8; 8];
        udp[4..6].copy_from_slice(&((8 + mold.len()) as u16).to_be_bytes());
        udp.extend_from_slice(&mold);
        let mut ip = vec![0x45u8, 0, 0, 0, 0, 0, 0, 0, 16, 17, 0, 0];
        ip[2..4].copy_from_slice(&((20 + udp.len()) as u16).to_be_bytes());
        ip.extend_from_slice(&[0; 8]);
        ip.extend_from_slice(&udp);
        let mut eth = vec![0u8; 12];
        eth.extend_from_slice(&0x0800u16.to_be_bytes());
        eth.extend_from_slice(&ip);
        eth
    }
}
