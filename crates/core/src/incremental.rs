//! Incremental recompilation — the extension §3 sketches:
//!
//! > "Highly dynamic queries would require an incremental algorithm,
//! > both to reduce compilation time and to minimize the number of
//! > state updates in the network. Prior work has demonstrated that
//! > such incremental algorithms are feasible. BDDs — our primary
//! > internal data structure — can leverage memoization, and state
//! > updates can benefit from table entry re-use."
//!
//! An [`IncrementalCompiler`] keeps the BDD (whose node store and
//! prune memo are append-only), the pipeline-state numbering and the
//! multicast-group allocation alive across updates. Installing new
//! rules therefore:
//!
//! * inserts only the new conjunctions into the existing diagram
//!   (memoized `apply` — no rebuild from scratch);
//! * keeps the state ids of unchanged BDD nodes and the group ids of
//!   unchanged port sets, so the regenerated tables share most entries
//!   with the installed ones;
//! * reports a per-table **entry diff** (adds/removes/kept) — exactly
//!   what a control plane would push to the switch. The diff is
//!   directly executable: [`apply_delta`] splices it into a running
//!   [`Pipeline`] without reallocating the match engines, and
//!   [`UpdateReport::apply_to`] is the one-call version the engine's
//!   update plane uses.
//!
//! The predicate alphabet and the field table are fixed when the
//! session is created (they determine the static pipeline). A bare
//! [`IncrementalCompiler::install`] of rules that need new predicates
//! or new state slots fails *atomically* with
//! [`CompileError::NeedsFullRecompile`] — the session is left exactly
//! as it was. [`IncrementalCompiler::update`] goes one step further
//! and round-trips that fallback through the same channel: rule
//! removals and out-of-alphabet additions trigger an internal full
//! recompile over the cumulative rule set (with a widened alphabet),
//! and the resulting [`UpdateReport`] is flagged `full_rebuild` so
//! consumers swap the whole pipeline instead of splicing entries.

use std::collections::HashMap;

use camus_bdd::pred::{ActionId, Pred};
use camus_bdd::Bdd;
use camus_lang::ast::Rule;
use camus_lang::spec::Spec;
use camus_pipeline::pipeline::Pipeline;
use camus_pipeline::table::{ActionOp, Entry, Key, Table};

use crate::compile::CompilerOptions;
use crate::dynamic::{emit_tables, EmissionState};
use crate::error::CompileError;
use crate::resolve::{resolve, resolve_incremental, FieldTable, ResolveOptions};
use crate::statics::{build_static, StaticPipeline};

/// Per-table entry delta of one update.
///
/// Carries everything a data plane needs to apply the update in place:
/// the exact entries to pull and push (multiset semantics), plus the
/// table's key/default shape so a table that first appears mid-session
/// can be created on the fly. An update's deltas enumerate the *full*
/// table list of the new program in execution order; tables that
/// vanished entirely trail the list with `dropped` set.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDelta {
    /// Table name.
    pub table: String,
    /// The table's keys (to create it if the data plane lacks it).
    pub keys: Vec<Key>,
    /// The table's miss action (ditto).
    pub default_ops: Vec<ActionOp>,
    /// Entries present now but not before.
    pub adds: Vec<Entry>,
    /// Entries present before but not now.
    pub removes: Vec<Entry>,
    /// Entries unchanged (reused on the switch).
    pub kept: usize,
    /// The table no longer exists in the new program.
    pub dropped: bool,
}

impl TableDelta {
    /// Number of entries added.
    pub fn added(&self) -> usize {
        self.adds.len()
    }

    /// Number of entries removed.
    pub fn removed(&self) -> usize {
        self.removes.len()
    }
}

/// The result of one incremental installation.
#[derive(Debug)]
pub struct UpdateReport {
    /// Rules installed by this update.
    pub rules_added: usize,
    /// Rules removed by this update (always via full rebuild).
    pub rules_removed: usize,
    /// Conjunctions rejected as unsatisfiable.
    pub unsat_conjunctions: usize,
    /// Per-table entry deltas vs. the previously installed tables.
    pub deltas: Vec<TableDelta>,
    /// Total entries now installed.
    pub total_entries: usize,
    /// Entries the control plane would add.
    pub entries_added: usize,
    /// Entries the control plane would remove.
    pub entries_removed: usize,
    /// Entries reused in place.
    pub entries_kept: usize,
    /// Cumulative BDD apply-memo (hits, misses).
    pub memo: (u64, u64),
    /// The update required a full recompile (rule removal or a widened
    /// alphabet): the statics may have moved, so consumers must swap
    /// `pipeline` wholesale instead of splicing `deltas`.
    pub full_rebuild: bool,
    /// A fresh executable pipeline reflecting the updated program.
    pub pipeline: Pipeline,
}

impl UpdateReport {
    /// Applies this update to a running pipeline in place.
    ///
    /// Delta updates splice the per-table entry diffs (reusing the
    /// existing match-engine allocations) and refresh the multicast
    /// groups and initial-state assignment. Full rebuilds replace the
    /// whole pipeline, carrying register state over positionally so
    /// `@query_counter` windows survive the swap. Either way the
    /// pipeline comes back prepared.
    ///
    /// On a delta-application error (possible only if `pipeline` has
    /// diverged from the session's lineage) the pipeline may be left
    /// partially updated; callers should fall back to a full swap of
    /// [`UpdateReport::pipeline`].
    pub fn apply_to(&self, pipeline: &mut Pipeline) -> Result<(), CompileError> {
        if self.full_rebuild {
            let old_registers = std::mem::take(&mut pipeline.registers);
            *pipeline = self.pipeline.clone();
            pipeline.registers.carry_from(&old_registers);
        } else {
            apply_delta(pipeline, &self.deltas)?;
            pipeline.mcast = self.pipeline.mcast.clone();
            pipeline.init_fields = self.pipeline.init_fields.clone();
        }
        pipeline.prepare();
        Ok(())
    }
}

/// Applies per-table entry deltas to a pipeline in place — the
/// reusable core of the update plane.
///
/// The delta list is treated as the complete table enumeration of the
/// new program (which is what [`IncrementalCompiler`] emits): tables
/// are reordered to match it, tables appearing for the first time are
/// created from the delta's carried keys, and `dropped` tables are
/// removed. Entry removal uses multiset semantics; kept entries keep
/// their relative order so equal-priority tie-breaks are stable. Any
/// pre-existing table the deltas do not mention is kept untouched
/// after the enumerated ones (this cannot happen for deltas from the
/// owning session).
pub fn apply_delta(pipeline: &mut Pipeline, deltas: &[TableDelta]) -> Result<(), CompileError> {
    fn take(old: &mut [Option<Table>], name: &str) -> Option<Table> {
        old.iter_mut()
            .find(|t| t.as_ref().is_some_and(|t| t.name == name))
            .and_then(Option::take)
    }
    let mut old: Vec<Option<Table>> = std::mem::take(&mut pipeline.tables)
        .into_iter()
        .map(Some)
        .collect();
    let mut tables = Vec::with_capacity(deltas.len());
    for d in deltas {
        if d.dropped {
            take(&mut old, &d.table);
            continue;
        }
        let mut t = take(&mut old, &d.table)
            .unwrap_or_else(|| Table::new(d.table.clone(), d.keys.clone(), d.default_ops.clone()));
        t.splice_entries(&d.removes, &d.adds)?;
        tables.push(t);
    }
    tables.extend(old.into_iter().flatten());
    pipeline.tables = tables;
    Ok(())
}

/// A long-lived compilation session supporting rule updates.
#[derive(Debug)]
pub struct IncrementalCompiler {
    spec: Spec,
    options: CompilerOptions,
    fields: FieldTable,
    statics: StaticPipeline,
    bdd: Bdd,
    es: EmissionState,
    /// Entry multisets of the currently installed tables.
    installed: HashMap<String, HashMap<Entry, usize>>,
    /// The rules that fixed the predicate alphabet (grows on rebuild).
    alphabet: Vec<Rule>,
    /// The cumulative active rule set, in installation order.
    active: Vec<Rule>,
    rules_installed: usize,
}

impl IncrementalCompiler {
    /// Creates a session. `alphabet_rules` fix the predicate universe
    /// and the field table (they are *not* installed): every later
    /// `install` may only use predicates that appear here. Typically
    /// the initial subscription set, optionally padded with the
    /// predicates expected to arrive later.
    pub fn new(
        spec: Spec,
        options: &CompilerOptions,
        alphabet_rules: &[Rule],
    ) -> Result<Self, CompileError> {
        let ropts = ResolveOptions {
            heuristic: options.heuristic,
            default_window_us: options.default_window_us,
        };
        let resolved = resolve(&spec, alphabet_rules, &ropts)?;
        let statics = build_static(&spec, &resolved.fields, &options.encap)?;
        let alphabet: Vec<Pred> = resolved
            .rules
            .iter()
            .flat_map(|r| r.literals.iter().map(|(p, _)| *p))
            .collect();
        let mut bdd = Bdd::new(resolved.fields.infos.clone(), alphabet)?;
        bdd.set_semantic_pruning(options.semantic_pruning);
        Ok(IncrementalCompiler {
            spec,
            options: options.clone(),
            fields: resolved.fields,
            statics,
            bdd,
            es: EmissionState::new(),
            installed: HashMap::new(),
            alphabet: alphabet_rules.to_vec(),
            active: Vec::new(),
            rules_installed: 0,
        })
    }

    /// Number of rules installed so far.
    pub fn rules_installed(&self) -> usize {
        self.rules_installed
    }

    /// The session's field table (frozen between rebuilds).
    pub fn fields(&self) -> &FieldTable {
        &self.fields
    }

    /// The cumulative active rule set, in installation order.
    pub fn active_rules(&self) -> &[Rule] {
        &self.active
    }

    /// Installs additional rules and regenerates the tables, reporting
    /// the entry diff against the previously installed version.
    ///
    /// Atomic: if any rule needs a predicate outside the session's
    /// alphabet (or a new state slot), the whole batch is rejected with
    /// [`CompileError::NeedsFullRecompile`] and the session is left
    /// untouched. Use [`IncrementalCompiler::update`] to fall back to
    /// a rebuild automatically.
    pub fn install(&mut self, rules: &[Rule]) -> Result<UpdateReport, CompileError> {
        let conjs = resolve_incremental(&self.spec, &self.fields, rules)?;
        // Validate the whole batch against the alphabet before any
        // mutation so a rejected install cannot leave the BDD (or the
        // action intern table) half-updated.
        for conj in &conjs {
            for (p, _) in &conj.literals {
                if !self.bdd.has_pred(p) {
                    return Err(CompileError::NeedsFullRecompile(format!(
                        "predicate {p} is outside the session's alphabet"
                    )));
                }
            }
        }
        let mut unsat = 0usize;
        for conj in &conjs {
            let ids: Vec<ActionId> = conj
                .actions
                .iter()
                .map(|a| self.es.intern_action(a))
                .collect();
            let inserted = self
                .bdd
                .add_rule(&conj.literals, &ids)
                .map_err(|e| match e {
                    camus_bdd::BddError::UndeclaredPred(p) => CompileError::NeedsFullRecompile(
                        format!("predicate {p} is outside the session's alphabet"),
                    ),
                    other => CompileError::Bdd(other),
                })?;
            if !inserted {
                unsat += 1;
            }
        }
        self.rules_installed += rules.len();
        self.active.extend_from_slice(rules);

        // Deltas are small; single-threaded translation avoids spawning
        // workers on every update.
        let (tables, initial_state) = emit_tables(&self.bdd, &self.statics, &mut self.es, 1)?;
        let (deltas, added, removed, kept) = diff_tables(&tables, &mut self.installed);
        self.installed = tables
            .iter()
            .map(|t| {
                let mut multiset: HashMap<Entry, usize> = HashMap::new();
                for e in t.entries() {
                    *multiset.entry(e.clone()).or_insert(0) += 1;
                }
                (t.name.clone(), multiset)
            })
            .collect();

        let total_entries = tables.iter().map(Table::len).sum();
        let pipeline = Pipeline {
            layout: self.statics.layout.clone(),
            parser: self.statics.parser.clone(),
            tables,
            mcast: self.es.mcast.clone(),
            registers: self.statics.registers.clone(),
            state_bindings: self.statics.state_bindings.clone(),
            init_fields: vec![(self.statics.state_meta, initial_state)],
            exec: Default::default(),
        };
        Ok(UpdateReport {
            rules_added: rules.len(),
            rules_removed: 0,
            unsat_conjunctions: unsat,
            deltas,
            total_entries,
            entries_added: added,
            entries_removed: removed,
            entries_kept: kept,
            memo: self.bdd.memo_stats(),
            full_rebuild: false,
            pipeline,
        })
    }

    /// Applies a combined add/remove update, reporting through the
    /// same delta channel whichever path it takes.
    ///
    /// Pure additions within the alphabet go through the incremental
    /// [`IncrementalCompiler::install`] path. Removals — the BDD's
    /// node store is append-only — and additions needing new
    /// predicates or state slots fall back to an internal full
    /// recompile of the cumulative rule set (widening the alphabet
    /// with the new rules); the report then carries
    /// [`UpdateReport::full_rebuild`] so consumers swap the pipeline
    /// wholesale. Removing a rule that is not active is a no-op.
    pub fn update(&mut self, add: &[Rule], remove: &[Rule]) -> Result<UpdateReport, CompileError> {
        if remove.is_empty() {
            match self.install(add) {
                Err(CompileError::NeedsFullRecompile(_)) => {}
                r => return r,
            }
        }
        self.rebuild(add, remove)
    }

    /// Full-recompile fallback: rebuilds a fresh session over the
    /// cumulative rule set and adopts it, re-expressing the change as
    /// a diff against *this* session's installed tables.
    fn rebuild(&mut self, add: &[Rule], remove: &[Rule]) -> Result<UpdateReport, CompileError> {
        let mut target = self.active.clone();
        let mut rules_removed = 0usize;
        for r in remove {
            if let Some(i) = target.iter().position(|t| t == r) {
                target.remove(i);
                rules_removed += 1;
            }
        }
        target.extend_from_slice(add);
        let mut alphabet = self.alphabet.clone();
        alphabet.extend_from_slice(add);

        let mut fresh = IncrementalCompiler::new(self.spec.clone(), &self.options, &alphabet)?;
        let mut report = fresh.install(&target)?;

        // The fresh session diffed against nothing; recompute the
        // deltas against the tables this session had installed so the
        // rebuild flows through the same reporting channel. (With a
        // moved field layout entries may compare unequal even when
        // behaviourally identical — the `full_rebuild` flag tells
        // consumers to swap wholesale regardless.)
        let mut old = std::mem::take(&mut self.installed);
        let (deltas, added, removed, kept) = diff_tables(&report.pipeline.tables, &mut old);
        report.deltas = deltas;
        report.entries_added = added;
        report.entries_removed = removed;
        report.entries_kept = kept;
        report.rules_added = add.len();
        report.rules_removed = rules_removed;
        report.full_rebuild = true;
        *self = fresh;
        Ok(report)
    }
}

/// Diffs freshly emitted tables against the previously installed
/// multisets (consumed), returning the deltas — full table enumeration
/// in execution order, dropped tables trailing — plus the aggregate
/// (added, removed, kept) counts.
fn diff_tables(
    tables: &[Table],
    installed: &mut HashMap<String, HashMap<Entry, usize>>,
) -> (Vec<TableDelta>, usize, usize, usize) {
    let mut deltas = Vec::with_capacity(tables.len());
    let (mut added, mut removed, mut kept) = (0usize, 0usize, 0usize);
    for t in tables {
        let mut old = installed.remove(&t.name).unwrap_or_default();
        let mut adds = Vec::new();
        let mut kept_here = 0usize;
        for e in t.entries() {
            match old.get_mut(e) {
                Some(c) if *c > 0 => {
                    *c -= 1;
                    kept_here += 1;
                }
                _ => adds.push(e.clone()),
            }
        }
        let mut removes = Vec::new();
        for (e, c) in &old {
            for _ in 0..*c {
                removes.push(e.clone());
            }
        }
        added += adds.len();
        removed += removes.len();
        kept += kept_here;
        deltas.push(TableDelta {
            table: t.name.clone(),
            keys: t.keys.clone(),
            default_ops: t.default_ops.clone(),
            adds,
            removes,
            kept: kept_here,
            dropped: false,
        });
    }
    // Tables that disappeared entirely (a field's last predicate went
    // away): everything they held is removed.
    let mut dropped: Vec<(String, HashMap<Entry, usize>)> = installed.drain().collect();
    dropped.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, old) in dropped {
        let mut removes = Vec::new();
        for (e, c) in &old {
            for _ in 0..*c {
                removes.push(e.clone());
            }
        }
        removed += removes.len();
        deltas.push(TableDelta {
            table: name,
            keys: Vec::new(),
            default_ops: Vec::new(),
            adds: Vec::new(),
            removes,
            kept: 0,
            dropped: true,
        });
    }
    (deltas, added, removed, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_lang::{parse_program, parse_spec};
    use camus_pipeline::PortId;

    fn session(alphabet: &str) -> IncrementalCompiler {
        let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
        let options = CompilerOptions::raw();
        IncrementalCompiler::new(spec, &options, &parse_program(alphabet).unwrap()).unwrap()
    }

    fn packet(symbol: &str, shares: u32, price: u32) -> Vec<u8> {
        let mut m = vec![b'A'];
        m.extend_from_slice(&[0; 10]);
        m.extend_from_slice(&[0; 8]);
        m.push(b'B');
        m.extend_from_slice(&shares.to_be_bytes());
        let mut stock = [b' '; 8];
        for (i, c) in symbol.bytes().take(8).enumerate() {
            stock[i] = c;
        }
        m.extend_from_slice(&stock);
        m.extend_from_slice(&price.to_be_bytes());
        m
    }

    const ALPHABET: &str = "stock == GOOGL : fwd(1)\n\
                            stock == MSFT : fwd(2)\n\
                            price > 100 : fwd(3)";

    #[test]
    fn staged_installs_accumulate_behaviour() {
        let mut s = session(ALPHABET);
        let r1 = s
            .install(&parse_program("stock == GOOGL : fwd(1)").unwrap())
            .unwrap();
        let mut p1 = r1.pipeline;
        assert_eq!(
            p1.process(&packet("GOOGL", 1, 1), 0).unwrap().ports,
            vec![PortId(1)]
        );
        assert!(p1.process(&packet("MSFT", 1, 1), 0).unwrap().dropped());

        let r2 = s
            .install(&parse_program("stock == MSFT : fwd(2)").unwrap())
            .unwrap();
        let mut p2 = r2.pipeline;
        assert_eq!(
            p2.process(&packet("GOOGL", 1, 1), 0).unwrap().ports,
            vec![PortId(1)]
        );
        assert_eq!(
            p2.process(&packet("MSFT", 1, 1), 0).unwrap().ports,
            vec![PortId(2)]
        );
        assert_eq!(s.rules_installed(), 2);
    }

    #[test]
    fn update_reuses_most_entries() {
        let mut s = session(ALPHABET);
        let _ = s
            .install(&parse_program("stock == GOOGL : fwd(1)\nprice > 100 : fwd(3)").unwrap())
            .unwrap();
        let r = s
            .install(&parse_program("stock == MSFT : fwd(2)").unwrap())
            .unwrap();
        // The GOOGL and price entries survive the update.
        assert!(r.entries_kept > 0, "{r:?}");
        assert!(r.entries_added > 0);
        assert!(
            r.entries_kept >= r.entries_removed,
            "reuse should dominate churn: {:?}",
            r.deltas
        );
    }

    #[test]
    fn incremental_matches_full_compile_semantics() {
        // Install in two steps; compare against one full compile.
        let all = "stock == GOOGL : fwd(1)\nstock == MSFT : fwd(2)\nprice > 100 : fwd(3)";
        let mut s = session(ALPHABET);
        s.install(&parse_program("stock == GOOGL : fwd(1)\nstock == MSFT : fwd(2)").unwrap())
            .unwrap();
        let inc = s
            .install(&parse_program("price > 100 : fwd(3)").unwrap())
            .unwrap();
        let mut inc_pipe = inc.pipeline;

        let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
        let full = crate::Compiler::new(spec, CompilerOptions::raw())
            .unwrap()
            .compile(&parse_program(all).unwrap())
            .unwrap();
        let mut full_pipe = full.pipeline;

        for sym in ["GOOGL", "MSFT", "ORCL"] {
            for price in [0u32, 100, 101, 5000] {
                let pkt = packet(sym, 10, price);
                assert_eq!(
                    inc_pipe.process(&pkt, 0).unwrap().ports,
                    full_pipe.process(&pkt, 0).unwrap().ports,
                    "{sym} @ {price}"
                );
            }
        }
    }

    #[test]
    fn out_of_alphabet_predicates_need_full_recompile() {
        let mut s = session(ALPHABET);
        let err = s
            .install(&parse_program("price > 999 : fwd(4)").unwrap())
            .unwrap_err();
        assert!(matches!(err, CompileError::NeedsFullRecompile(_)), "{err}");
        // New aggregates are also a static change.
        let err = s
            .install(&parse_program("avg(price) > 10 : fwd(4)").unwrap())
            .unwrap_err();
        assert!(matches!(err, CompileError::NeedsFullRecompile(_)), "{err}");
    }

    #[test]
    fn rejected_install_leaves_the_session_untouched() {
        let mut s = session(ALPHABET);
        s.install(&parse_program("stock == GOOGL : fwd(1)").unwrap())
            .unwrap();
        // A batch mixing an in-alphabet rule with an out-of-alphabet
        // one must be rejected atomically: neither rule lands.
        let err = s
            .install(&parse_program("stock == MSFT : fwd(2)\nprice > 999 : fwd(4)").unwrap())
            .unwrap_err();
        assert!(matches!(err, CompileError::NeedsFullRecompile(_)), "{err}");
        assert_eq!(s.rules_installed(), 1);
        assert_eq!(s.active_rules().len(), 1);
        // An empty install after the rejection reports a clean no-op —
        // the BDD and tables were not half-mutated.
        let r = s.install(&[]).unwrap();
        assert_eq!(r.entries_added, 0);
        assert_eq!(r.entries_removed, 0);
        let mut p = r.pipeline;
        assert!(p.process(&packet("MSFT", 1, 1), 0).unwrap().dropped());
    }

    #[test]
    fn same_action_alphabet_ports_are_fine() {
        // Actions are not part of the alphabet: any fwd() target works.
        let mut s = session(ALPHABET);
        let r = s
            .install(&parse_program("stock == GOOGL : fwd(77)").unwrap())
            .unwrap();
        let mut p = r.pipeline;
        assert_eq!(
            p.process(&packet("GOOGL", 1, 1), 0).unwrap().ports,
            vec![PortId(77)]
        );
    }

    #[test]
    fn memo_accumulates_across_installs() {
        let mut s = session(ALPHABET);
        s.install(&parse_program("stock == GOOGL : fwd(1)").unwrap())
            .unwrap();
        let r = s
            .install(&parse_program("stock == MSFT : fwd(2)").unwrap())
            .unwrap();
        assert!(r.memo.1 > 0, "misses counted");
    }

    #[test]
    fn empty_install_is_a_noop_diff() {
        let mut s = session(ALPHABET);
        s.install(&parse_program("stock == GOOGL : fwd(1)").unwrap())
            .unwrap();
        let r = s.install(&[]).unwrap();
        assert_eq!(r.entries_added, 0);
        assert_eq!(r.entries_removed, 0);
        assert!(r.entries_kept > 0);
    }

    #[test]
    fn deltas_replay_onto_a_running_pipeline() {
        // Maintain a mirror pipeline purely by applying deltas and
        // check it tracks the session's fresh pipelines exactly.
        let mut s = session(ALPHABET);
        let r0 = s.install(&[]).unwrap();
        let mut mirror = r0.pipeline.clone();
        let steps = [
            "stock == GOOGL : fwd(1)",
            "price > 100 : fwd(3)",
            "stock == MSFT : fwd(2)",
        ];
        for step in steps {
            let r = s.install(&parse_program(step).unwrap()).unwrap();
            assert!(!r.full_rebuild);
            r.apply_to(&mut mirror).unwrap();
            let mut fresh = r.pipeline;
            for sym in ["GOOGL", "MSFT", "ORCL"] {
                for price in [0u32, 101] {
                    let pkt = packet(sym, 10, price);
                    assert_eq!(
                        mirror.process(&pkt, 0).unwrap().ports,
                        fresh.process(&pkt, 0).unwrap().ports,
                        "{sym} @ {price} after `{step}`"
                    );
                }
            }
        }
    }

    #[test]
    fn update_removal_round_trips_as_full_rebuild() {
        let mut s = session(ALPHABET);
        let rules = parse_program("stock == GOOGL : fwd(1)\nstock == MSFT : fwd(2)").unwrap();
        let r0 = s.update(&rules, &[]).unwrap();
        assert!(!r0.full_rebuild);
        let mut mirror = r0.pipeline.clone();

        // Remove the GOOGL rule: append-only BDD forces a rebuild.
        let remove = parse_program("stock == GOOGL : fwd(1)").unwrap();
        let r = s.update(&[], &remove).unwrap();
        assert!(r.full_rebuild);
        assert_eq!(r.rules_removed, 1);
        assert_eq!(s.active_rules().len(), 1);
        r.apply_to(&mut mirror).unwrap();
        assert!(mirror.process(&packet("GOOGL", 1, 1), 0).unwrap().dropped());
        assert_eq!(
            mirror.process(&packet("MSFT", 1, 1), 0).unwrap().ports,
            vec![PortId(2)]
        );
        // Removing an inactive rule is a no-op.
        let r = s.update(&[], &remove).unwrap();
        assert_eq!(r.rules_removed, 0);
        assert_eq!(s.active_rules().len(), 1);
    }

    #[test]
    fn update_widens_the_alphabet_on_demand() {
        let mut s = session(ALPHABET);
        s.update(&parse_program("stock == GOOGL : fwd(1)").unwrap(), &[])
            .unwrap();
        // `price > 999` is outside the alphabet: update() rebuilds
        // where install() refuses.
        let novel = parse_program("price > 999 : fwd(4)").unwrap();
        let r = s.update(&novel, &[]).unwrap();
        assert!(r.full_rebuild);
        let mut p = r.pipeline;
        assert_eq!(
            p.process(&packet("ORCL", 1, 5000), 0).unwrap().ports,
            vec![PortId(4)]
        );
        // The widened alphabet persists: the same predicate now
        // installs incrementally.
        let r = s
            .update(&parse_program("price > 999 : fwd(5)").unwrap(), &[])
            .unwrap();
        assert!(!r.full_rebuild);
    }

    #[test]
    fn rebuild_report_diffs_against_the_old_tables() {
        let mut s = session(ALPHABET);
        s.install(&parse_program("stock == GOOGL : fwd(1)\nstock == MSFT : fwd(2)").unwrap())
            .unwrap();
        let total_before: usize = s
            .installed
            .values()
            .map(|m| m.values().sum::<usize>())
            .sum();
        assert!(total_before > 0);
        let r = s
            .update(&[], &parse_program("stock == MSFT : fwd(2)").unwrap())
            .unwrap();
        // The delta channel reports the transition, not a from-scratch
        // install: some entries survive the rebuild unchanged.
        assert!(r.entries_kept > 0, "{r:?}");
        assert!(r.entries_removed > 0, "{r:?}");
    }
}
