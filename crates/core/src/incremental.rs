//! Incremental recompilation — the extension §3 sketches:
//!
//! > "Highly dynamic queries would require an incremental algorithm,
//! > both to reduce compilation time and to minimize the number of
//! > state updates in the network. Prior work has demonstrated that
//! > such incremental algorithms are feasible. BDDs — our primary
//! > internal data structure — can leverage memoization, and state
//! > updates can benefit from table entry re-use."
//!
//! An [`IncrementalCompiler`] keeps the BDD (whose node store and
//! prune memo are append-only), the pipeline-state numbering and the
//! multicast-group allocation alive across updates. Installing new
//! rules therefore:
//!
//! * inserts only the new conjunctions into the existing diagram
//!   (memoized `apply` — no rebuild from scratch);
//! * keeps the state ids of unchanged BDD nodes and the group ids of
//!   unchanged port sets, so the regenerated tables share most entries
//!   with the installed ones;
//! * reports a per-table **entry diff** (adds/removes/kept) — exactly
//!   what a控 control plane would push to the switch.
//!
//! The predicate alphabet and the field table are fixed when the
//! session is created (they determine the static pipeline). Updates
//! that need new predicates or new state slots fail with
//! [`CompileError::NeedsFullRecompile`]; callers then do a full
//! [`crate::Compiler::compile`] — the paper's "mostly stable queries"
//! assumption.

use std::collections::HashMap;

use camus_bdd::pred::{ActionId, Pred};
use camus_bdd::Bdd;
use camus_lang::ast::Rule;
use camus_lang::spec::Spec;
use camus_pipeline::pipeline::Pipeline;
use camus_pipeline::table::{Entry, Table};

use crate::compile::CompilerOptions;
use crate::dynamic::{emit_tables, EmissionState};
use crate::error::CompileError;
use crate::resolve::{resolve, resolve_incremental, FieldTable, ResolveOptions};
use crate::statics::{build_static, StaticPipeline};

/// Per-table entry delta of one update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDelta {
    /// Table name.
    pub table: String,
    /// Entries present now but not before.
    pub added: usize,
    /// Entries present before but not now.
    pub removed: usize,
    /// Entries unchanged (reused on the switch).
    pub kept: usize,
}

/// The result of one incremental installation.
#[derive(Debug)]
pub struct UpdateReport {
    /// Rules installed by this update.
    pub rules_added: usize,
    /// Conjunctions rejected as unsatisfiable.
    pub unsat_conjunctions: usize,
    /// Per-table entry deltas vs. the previously installed tables.
    pub deltas: Vec<TableDelta>,
    /// Total entries now installed.
    pub total_entries: usize,
    /// Entries the control plane would add.
    pub entries_added: usize,
    /// Entries the control plane would remove.
    pub entries_removed: usize,
    /// Entries reused in place.
    pub entries_kept: usize,
    /// Cumulative BDD apply-memo (hits, misses).
    pub memo: (u64, u64),
    /// A fresh executable pipeline reflecting the updated program.
    pub pipeline: Pipeline,
}

/// A long-lived compilation session supporting additive rule updates.
#[derive(Debug)]
pub struct IncrementalCompiler {
    spec: Spec,
    fields: FieldTable,
    statics: StaticPipeline,
    bdd: Bdd,
    es: EmissionState,
    /// Entry multisets of the currently installed tables.
    installed: HashMap<String, HashMap<Entry, usize>>,
    rules_installed: usize,
}

impl IncrementalCompiler {
    /// Creates a session. `alphabet_rules` fix the predicate universe
    /// and the field table (they are *not* installed): every later
    /// `install` may only use predicates that appear here. Typically
    /// the initial subscription set, optionally padded with the
    /// predicates expected to arrive later.
    pub fn new(
        spec: Spec,
        options: &CompilerOptions,
        alphabet_rules: &[Rule],
    ) -> Result<Self, CompileError> {
        let ropts = ResolveOptions {
            heuristic: options.heuristic,
            default_window_us: options.default_window_us,
        };
        let resolved = resolve(&spec, alphabet_rules, &ropts)?;
        let statics = build_static(&spec, &resolved.fields, &options.encap)?;
        let alphabet: Vec<Pred> = resolved
            .rules
            .iter()
            .flat_map(|r| r.literals.iter().map(|(p, _)| *p))
            .collect();
        let mut bdd = Bdd::new(resolved.fields.infos.clone(), alphabet)?;
        bdd.set_semantic_pruning(options.semantic_pruning);
        Ok(IncrementalCompiler {
            spec,
            fields: resolved.fields,
            statics,
            bdd,
            es: EmissionState::new(),
            installed: HashMap::new(),
            rules_installed: 0,
        })
    }

    /// Number of rules installed so far.
    pub fn rules_installed(&self) -> usize {
        self.rules_installed
    }

    /// The session's field table (frozen).
    pub fn fields(&self) -> &FieldTable {
        &self.fields
    }

    /// Installs additional rules and regenerates the tables, reporting
    /// the entry diff against the previously installed version.
    pub fn install(&mut self, rules: &[Rule]) -> Result<UpdateReport, CompileError> {
        let conjs = resolve_incremental(&self.spec, &self.fields, rules)?;
        let mut unsat = 0usize;
        for conj in &conjs {
            let ids: Vec<ActionId> = conj
                .actions
                .iter()
                .map(|a| self.es.intern_action(a))
                .collect();
            let inserted = self
                .bdd
                .add_rule(&conj.literals, &ids)
                .map_err(|e| match e {
                    camus_bdd::BddError::UndeclaredPred(p) => CompileError::NeedsFullRecompile(
                        format!("predicate {p} is outside the session's alphabet"),
                    ),
                    other => CompileError::Bdd(other),
                })?;
            if !inserted {
                unsat += 1;
            }
        }
        self.rules_installed += rules.len();

        let (tables, initial_state) = emit_tables(&self.bdd, &self.statics, &mut self.es)?;

        // Diff vs. installed entries.
        let mut deltas = Vec::with_capacity(tables.len());
        let (mut added, mut removed, mut kept) = (0usize, 0usize, 0usize);
        let mut new_installed: HashMap<String, HashMap<Entry, usize>> = HashMap::new();
        for t in &tables {
            let mut multiset: HashMap<Entry, usize> = HashMap::new();
            for e in t.entries() {
                *multiset.entry(e.clone()).or_insert(0) += 1;
            }
            let old = self.installed.remove(&t.name).unwrap_or_default();
            let d = diff_multisets(&t.name, &old, &multiset);
            added += d.added;
            removed += d.removed;
            kept += d.kept;
            deltas.push(d);
            new_installed.insert(t.name.clone(), multiset);
        }
        // Tables that disappeared entirely (possible when a field's last
        // predicate goes away — cannot happen with additive installs,
        // but keep the diff total).
        for (name, old) in self.installed.drain() {
            let d = diff_multisets(&name, &old, &HashMap::new());
            removed += d.removed;
            deltas.push(d);
        }
        self.installed = new_installed;

        let total_entries = tables.iter().map(Table::len).sum();
        let pipeline = Pipeline {
            layout: self.statics.layout.clone(),
            parser: self.statics.parser.clone(),
            tables,
            mcast: self.es.mcast.clone(),
            registers: self.statics.registers.clone(),
            state_bindings: self.statics.state_bindings.clone(),
            init_fields: vec![(self.statics.state_meta, initial_state)],
            exec: Default::default(),
        };
        Ok(UpdateReport {
            rules_added: rules.len(),
            unsat_conjunctions: unsat,
            deltas,
            total_entries,
            entries_added: added,
            entries_removed: removed,
            entries_kept: kept,
            memo: self.bdd.memo_stats(),
            pipeline,
        })
    }
}

fn diff_multisets(
    name: &str,
    old: &HashMap<Entry, usize>,
    new: &HashMap<Entry, usize>,
) -> TableDelta {
    let mut added = 0usize;
    let mut removed = 0usize;
    let mut kept = 0usize;
    for (e, &n) in new {
        let o = old.get(e).copied().unwrap_or(0);
        added += n.saturating_sub(o);
        kept += n.min(o);
    }
    for (e, &o) in old {
        let n = new.get(e).copied().unwrap_or(0);
        removed += o.saturating_sub(n);
    }
    TableDelta {
        table: name.to_string(),
        added,
        removed,
        kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_lang::{parse_program, parse_spec};
    use camus_pipeline::PortId;

    fn session(alphabet: &str) -> IncrementalCompiler {
        let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
        let options = CompilerOptions::raw();
        IncrementalCompiler::new(spec, &options, &parse_program(alphabet).unwrap()).unwrap()
    }

    fn packet(symbol: &str, shares: u32, price: u32) -> Vec<u8> {
        let mut m = vec![b'A'];
        m.extend_from_slice(&[0; 10]);
        m.extend_from_slice(&[0; 8]);
        m.push(b'B');
        m.extend_from_slice(&shares.to_be_bytes());
        let mut stock = [b' '; 8];
        for (i, c) in symbol.bytes().take(8).enumerate() {
            stock[i] = c;
        }
        m.extend_from_slice(&stock);
        m.extend_from_slice(&price.to_be_bytes());
        m
    }

    const ALPHABET: &str = "stock == GOOGL : fwd(1)\n\
                            stock == MSFT : fwd(2)\n\
                            price > 100 : fwd(3)";

    #[test]
    fn staged_installs_accumulate_behaviour() {
        let mut s = session(ALPHABET);
        let r1 = s
            .install(&parse_program("stock == GOOGL : fwd(1)").unwrap())
            .unwrap();
        let mut p1 = r1.pipeline;
        assert_eq!(
            p1.process(&packet("GOOGL", 1, 1), 0).unwrap().ports,
            vec![PortId(1)]
        );
        assert!(p1.process(&packet("MSFT", 1, 1), 0).unwrap().dropped());

        let r2 = s
            .install(&parse_program("stock == MSFT : fwd(2)").unwrap())
            .unwrap();
        let mut p2 = r2.pipeline;
        assert_eq!(
            p2.process(&packet("GOOGL", 1, 1), 0).unwrap().ports,
            vec![PortId(1)]
        );
        assert_eq!(
            p2.process(&packet("MSFT", 1, 1), 0).unwrap().ports,
            vec![PortId(2)]
        );
        assert_eq!(s.rules_installed(), 2);
    }

    #[test]
    fn update_reuses_most_entries() {
        let mut s = session(ALPHABET);
        let _ = s
            .install(&parse_program("stock == GOOGL : fwd(1)\nprice > 100 : fwd(3)").unwrap())
            .unwrap();
        let r = s
            .install(&parse_program("stock == MSFT : fwd(2)").unwrap())
            .unwrap();
        // The GOOGL and price entries survive the update.
        assert!(r.entries_kept > 0, "{r:?}");
        assert!(r.entries_added > 0);
        assert!(
            r.entries_kept >= r.entries_removed,
            "reuse should dominate churn: {:?}",
            r.deltas
        );
    }

    #[test]
    fn incremental_matches_full_compile_semantics() {
        // Install in two steps; compare against one full compile.
        let all = "stock == GOOGL : fwd(1)\nstock == MSFT : fwd(2)\nprice > 100 : fwd(3)";
        let mut s = session(ALPHABET);
        s.install(&parse_program("stock == GOOGL : fwd(1)\nstock == MSFT : fwd(2)").unwrap())
            .unwrap();
        let inc = s
            .install(&parse_program("price > 100 : fwd(3)").unwrap())
            .unwrap();
        let mut inc_pipe = inc.pipeline;

        let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
        let full = crate::Compiler::new(spec, CompilerOptions::raw())
            .unwrap()
            .compile(&parse_program(all).unwrap())
            .unwrap();
        let mut full_pipe = full.pipeline;

        for sym in ["GOOGL", "MSFT", "ORCL"] {
            for price in [0u32, 100, 101, 5000] {
                let pkt = packet(sym, 10, price);
                assert_eq!(
                    inc_pipe.process(&pkt, 0).unwrap().ports,
                    full_pipe.process(&pkt, 0).unwrap().ports,
                    "{sym} @ {price}"
                );
            }
        }
    }

    #[test]
    fn out_of_alphabet_predicates_need_full_recompile() {
        let mut s = session(ALPHABET);
        let err = s
            .install(&parse_program("price > 999 : fwd(4)").unwrap())
            .unwrap_err();
        assert!(matches!(err, CompileError::NeedsFullRecompile(_)), "{err}");
        // New aggregates are also a static change.
        let err = s
            .install(&parse_program("avg(price) > 10 : fwd(4)").unwrap())
            .unwrap_err();
        assert!(matches!(err, CompileError::NeedsFullRecompile(_)), "{err}");
    }

    #[test]
    fn same_action_alphabet_ports_are_fine() {
        // Actions are not part of the alphabet: any fwd() target works.
        let mut s = session(ALPHABET);
        let r = s
            .install(&parse_program("stock == GOOGL : fwd(77)").unwrap())
            .unwrap();
        let mut p = r.pipeline;
        assert_eq!(
            p.process(&packet("GOOGL", 1, 1), 0).unwrap().ports,
            vec![PortId(77)]
        );
    }

    #[test]
    fn memo_accumulates_across_installs() {
        let mut s = session(ALPHABET);
        s.install(&parse_program("stock == GOOGL : fwd(1)").unwrap())
            .unwrap();
        let r = s
            .install(&parse_program("stock == MSFT : fwd(2)").unwrap())
            .unwrap();
        assert!(r.memo.1 > 0, "misses counted");
    }

    #[test]
    fn empty_install_is_a_noop_diff() {
        let mut s = session(ALPHABET);
        s.install(&parse_program("stock == GOOGL : fwd(1)").unwrap())
            .unwrap();
        let r = s.install(&[]).unwrap();
        assert_eq!(r.entries_added, 0);
        assert_eq!(r.entries_removed, 0);
        assert!(r.entries_kept > 0);
    }
}
