//! Operand resolution and rule normalization.
//!
//! Bridges the surface language (`camus-lang`) and the BDD layer
//! (`camus-bdd`): every rule condition is normalized to disjunctive
//! form, every atom is resolved against the message-format spec to a
//! *field slot* — a packet query field, an aggregate pseudo-field
//! (`avg(price)`), or a declared counter — and canonicalized onto the
//! `{<, >, ==}` predicate alphabet.
//!
//! Stateful semantics (§2): "The macro avg stores the current average,
//! which is updated when the rest of the rule matches." For every
//! conjunction that reads an aggregate, resolution synthesizes an
//! auxiliary rule whose condition is the conjunction *minus* the
//! predicates on that aggregate and whose action is the register
//! observation — the dynamic compiler then links it to the
//! statically-allocated update code, exactly the static/dynamic split
//! of §3.1.

use std::collections::HashMap;

use camus_bdd::order::{field_usage, order_fields, OrderHeuristic};
use camus_bdd::pred::{canonicalize, Canon, FieldId, FieldInfo, Pred};
use camus_lang::ast::{Action, AggFn, Atom, Operand, Rule, UpdateFn, Value};
use camus_lang::dnf::to_dnf;
use camus_lang::spec::{MatchHint, QueryField, Spec};
use camus_pipeline::register::AggKind;

use crate::error::CompileError;

/// What a BDD field slot stands for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotKind {
    /// A packet query field from the spec.
    Packet(QueryField),
    /// An aggregate pseudo-field, e.g. `avg(add_order.price)`.
    Agg {
        /// The aggregate read when matching.
        agg: AggKind,
        /// The observed packet field (`None` for `count()`).
        src: Option<QueryField>,
        /// Tumbling window, µs.
        window_us: u64,
    },
    /// A declared `@query_counter` variable.
    Counter {
        /// Counter name.
        name: String,
        /// Tumbling window, µs.
        window_us: u64,
    },
}

impl SlotKind {
    /// Whether the slot is stateful (register-backed).
    pub fn is_state(&self) -> bool {
        !matches!(self, SlotKind::Packet(_))
    }
}

/// The compiler's field table: one slot per distinct operand, in BDD
/// variable order.
#[derive(Debug, Clone, Default)]
pub struct FieldTable {
    /// BDD field metadata, index = `FieldId`.
    pub infos: Vec<FieldInfo>,
    /// What each slot is.
    pub kinds: Vec<SlotKind>,
}

impl FieldTable {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Slots that are stateful.
    pub fn state_slots(&self) -> impl Iterator<Item = (FieldId, &SlotKind)> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| k.is_state())
            .map(|(i, k)| (FieldId(i as u32), k))
    }
}

/// Compiler-internal action alphabet (what BDD terminals carry).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleAction {
    /// Forward out the given ports.
    Fwd(Vec<u16>),
    /// Explicit drop.
    Drop,
    /// Fold the aggregate's source field (or 1) into its register.
    ObserveAgg {
        /// The aggregate pseudo-field slot.
        agg_field: FieldId,
    },
    /// Explicit counter update from a rule action.
    CounterUpdate {
        /// The counter slot.
        counter_field: FieldId,
        /// The update function.
        func: CounterFunc,
    },
}

/// Counter update functions (mirrors [`UpdateFn`] with fields resolved).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CounterFunc {
    /// `v <- incr()`.
    Increment,
    /// `v <- add(field)`.
    AddField(FieldId),
    /// `v <- set(const)`.
    SetConst(u64),
    /// `v <- set(field)`.
    SetField(FieldId),
}

/// One normalized, resolved conjunction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedConj {
    /// Canonical literals (predicate, polarity).
    pub literals: Vec<(Pred, bool)>,
    /// Actions fired when the conjunction matches.
    pub actions: Vec<RuleAction>,
    /// Index of the source rule (aux observe rules share their parent's
    /// index).
    pub source_rule: usize,
}

/// The full resolution result.
#[derive(Debug, Clone, Default)]
pub struct Resolved {
    /// Field table in BDD order.
    pub fields: FieldTable,
    /// Normalized rules (including synthesized aggregate-observe
    /// rules).
    pub rules: Vec<ResolvedConj>,
}

/// Resolver configuration.
#[derive(Debug, Clone)]
pub struct ResolveOptions {
    /// Field-ordering heuristic.
    pub heuristic: OrderHeuristic,
    /// Window for aggregate macros that have no matching
    /// `@query_counter` declaration, µs.
    pub default_window_us: u64,
}

impl Default for ResolveOptions {
    fn default() -> Self {
        ResolveOptions {
            heuristic: OrderHeuristic::default(),
            default_window_us: 100,
        }
    }
}

/// Resolves rules against a *frozen* field table (incremental mode):
/// no reordering, no new aggregate slots. Rules that would need a new
/// slot fail with [`CompileError::NeedsFullRecompile`].
pub fn resolve_incremental(
    spec: &Spec,
    fields: &FieldTable,
    rules: &[Rule],
) -> Result<Vec<ResolvedConj>, CompileError> {
    let opts = ResolveOptions::default();
    let mut builder = Builder::from_table(spec, &opts, fields);
    for rule in rules {
        builder.scan_rule(rule)?;
    }
    let mut out = Vec::new();
    for (ri, rule) in rules.iter().enumerate() {
        builder.lower_rule(ri, rule, &mut out)?;
    }
    Ok(out)
}

/// Resolves and normalizes a rule set against a spec.
pub fn resolve(
    spec: &Spec,
    rules: &[Rule],
    opts: &ResolveOptions,
) -> Result<Resolved, CompileError> {
    let mut builder = Builder::new(spec, opts);
    // Pass 1: allocate slots in a deterministic (spec, first-use) order.
    for rule in rules {
        builder.scan_rule(rule)?;
    }
    // Pass 2: normalize and canonicalize.
    let mut out: Vec<ResolvedConj> = Vec::new();
    for (ri, rule) in rules.iter().enumerate() {
        builder.lower_rule(ri, rule, &mut out)?;
    }
    let mut resolved = Resolved {
        fields: builder.finish(),
        rules: out,
    };
    reorder(&mut resolved, opts.heuristic);
    Ok(resolved)
}

/// Applies an ordering heuristic: permutes `FieldId`s so the heuristic's
/// choice becomes the BDD (and pipeline stage) order.
fn reorder(resolved: &mut Resolved, heuristic: OrderHeuristic) {
    let n = resolved.fields.len();
    if n <= 1 {
        return;
    }
    let exact: Vec<bool> = resolved.fields.infos.iter().map(|i| i.exact).collect();
    let conjs: Vec<&[(Pred, bool)]> = resolved
        .rules
        .iter()
        .map(|r| r.literals.as_slice())
        .collect();
    let usage = field_usage(conjs, n, &exact);
    let perm = order_fields(&usage, heuristic); // perm[new] = old
    let mut old_to_new = vec![0u32; n];
    for (new, &old) in perm.iter().enumerate() {
        old_to_new[old] = new as u32;
    }
    let remap = |f: &mut FieldId| f.0 = old_to_new[f.0 as usize];

    let mut infos = Vec::with_capacity(n);
    let mut kinds = Vec::with_capacity(n);
    for &old in &perm {
        infos.push(resolved.fields.infos[old].clone());
        kinds.push(resolved.fields.kinds[old].clone());
    }
    resolved.fields.infos = infos;
    resolved.fields.kinds = kinds;
    for r in &mut resolved.rules {
        for (p, _) in &mut r.literals {
            remap(&mut p.field);
        }
        for a in &mut r.actions {
            match a {
                RuleAction::ObserveAgg { agg_field } => remap(agg_field),
                RuleAction::CounterUpdate {
                    counter_field,
                    func,
                } => {
                    remap(counter_field);
                    match func {
                        CounterFunc::AddField(f) | CounterFunc::SetField(f) => remap(f),
                        _ => {}
                    }
                }
                _ => {}
            }
        }
    }
}

struct Builder<'a> {
    spec: &'a Spec,
    opts: &'a ResolveOptions,
    infos: Vec<FieldInfo>,
    kinds: Vec<SlotKind>,
    /// Slot lookup by canonical operand key.
    index: HashMap<String, FieldId>,
    /// Frozen (incremental) mode: creating new slots is an error.
    frozen: bool,
}

impl<'a> Builder<'a> {
    fn new(spec: &'a Spec, opts: &'a ResolveOptions) -> Self {
        let mut b = Builder {
            spec,
            opts,
            infos: Vec::new(),
            kinds: Vec::new(),
            index: HashMap::new(),
            frozen: false,
        };
        // Packet query fields first, in annotation order: stable slot ids
        // regardless of rule text.
        for qf in &spec.query_fields {
            let key = format!("pkt:{}", qf.field);
            let info = match qf.hint {
                MatchHint::Exact => FieldInfo::exact(qf.field.to_string(), qf.bits),
                MatchHint::Range => FieldInfo::range(qf.field.to_string(), qf.bits),
            };
            b.push_slot(key, info, SlotKind::Packet(qf.clone()));
        }
        // Declared counters next.
        for c in &spec.counters {
            let key = format!("ctr:{}", c.name);
            b.push_slot(
                key,
                FieldInfo::range(format!("ctr_{}", c.name), 64),
                SlotKind::Counter {
                    name: c.name.clone(),
                    window_us: c.window_us,
                },
            );
        }
        b
    }

    /// Rebuilds a builder over an existing (post-reorder) field table,
    /// in frozen mode.
    fn from_table(spec: &'a Spec, opts: &'a ResolveOptions, fields: &FieldTable) -> Self {
        let mut index = HashMap::new();
        for (i, kind) in fields.kinds.iter().enumerate() {
            index.insert(slot_key(kind), FieldId(i as u32));
        }
        Builder {
            spec,
            opts,
            infos: fields.infos.clone(),
            kinds: fields.kinds.clone(),
            index,
            frozen: true,
        }
    }

    fn push_slot(&mut self, key: String, info: FieldInfo, kind: SlotKind) -> FieldId {
        let id = FieldId(self.infos.len() as u32);
        self.infos.push(info);
        self.kinds.push(kind);
        self.index.insert(key, id);
        id
    }

    fn finish(self) -> FieldTable {
        FieldTable {
            infos: self.infos,
            kinds: self.kinds,
        }
    }

    fn packet_slot(&self, fr: &camus_lang::ast::FieldRef) -> Option<(FieldId, &QueryField)> {
        let qf = self.spec.resolve(fr)?;
        let id = *self.index.get(&format!("pkt:{}", qf.field))?;
        match &self.kinds[id.0 as usize] {
            SlotKind::Packet(q) => Some((id, q)),
            _ => None,
        }
    }

    fn counter_slot(&self, name: &str) -> Option<FieldId> {
        self.index.get(&format!("ctr:{name}")).copied()
    }

    fn agg_slot(
        &mut self,
        func: AggFn,
        fr: Option<&camus_lang::ast::FieldRef>,
    ) -> Result<FieldId, CompileError> {
        let src = match fr {
            Some(fr) => Some(
                self.packet_slot(fr)
                    .map(|(_, q)| q.clone())
                    .ok_or_else(|| CompileError::UnresolvedField(fr.clone()))?,
            ),
            None => {
                if func != AggFn::Count {
                    return Err(CompileError::AggNeedsField(func.name()));
                }
                None
            }
        };
        let key = match &src {
            Some(q) => format!("agg:{}:{}", func.name(), q.field),
            None => format!("agg:{}", func.name()),
        };
        if let Some(&id) = self.index.get(&key) {
            return Ok(id);
        }
        if self.frozen {
            return Err(CompileError::NeedsFullRecompile(format!(
                "aggregate `{key}` was not part of the installed program's field table"
            )));
        }
        let agg = match func {
            AggFn::Avg => AggKind::Avg,
            AggFn::Sum => AggKind::Sum,
            AggFn::Count => AggKind::Count,
            AggFn::Min => AggKind::Min,
            AggFn::Max => AggKind::Max,
        };
        let name = key.replace([':', '.'], "_");
        Ok(self.push_slot(
            key,
            FieldInfo::range(name, 64),
            SlotKind::Agg {
                agg,
                src,
                window_us: self.opts.default_window_us,
            },
        ))
    }

    /// Pass 1: walk operands to allocate aggregate slots deterministically
    /// (first use order), and surface resolution errors early.
    fn scan_rule(&mut self, rule: &Rule) -> Result<(), CompileError> {
        let mut stack = vec![&rule.condition];
        while let Some(c) = stack.pop() {
            use camus_lang::ast::Cond;
            match c {
                Cond::And(a, b) | Cond::Or(a, b) => {
                    stack.push(b);
                    stack.push(a);
                }
                Cond::Not(a) => stack.push(a),
                Cond::Atom(atom) => {
                    self.resolve_operand(&atom.operand)?;
                }
                Cond::True => {}
            }
        }
        for a in &rule.actions {
            if let Action::StateUpdate { var, .. } = a {
                if self.counter_slot(var).is_none() {
                    return Err(CompileError::UnknownStateVar(var.clone()));
                }
            }
        }
        Ok(())
    }

    fn resolve_operand(&mut self, op: &Operand) -> Result<FieldId, CompileError> {
        match op {
            Operand::Field(fr) => {
                if let Some((id, _)) = self.packet_slot(fr) {
                    return Ok(id);
                }
                // Bare identifiers may name a counter.
                if fr.header.is_none() {
                    if let Some(id) = self.counter_slot(&fr.field) {
                        return Ok(id);
                    }
                }
                Err(CompileError::UnresolvedField(fr.clone()))
            }
            Operand::StateVar(name) => self
                .counter_slot(name)
                .ok_or_else(|| CompileError::UnknownStateVar(name.clone())),
            Operand::Agg { func, field } => self.agg_slot(*func, field.as_ref()),
        }
    }

    fn lower_atom(&mut self, atom: &Atom) -> Result<LoweredAtom, CompileError> {
        let field = self.resolve_operand(&atom.operand)?;
        let info = &self.infos[field.0 as usize];
        let bits = info.bits;
        let value = match &atom.value {
            Value::Int(n) => {
                if bits < 64 && *n > info.max_value() {
                    return Err(CompileError::ValueOutOfRange {
                        field: operand_field_ref(&atom.operand),
                        value: *n,
                        bits,
                    });
                }
                *n
            }
            Value::Symbol(_) => atom.value.as_u64(bits),
        };
        // Range ops on exact fields are rejected up front with a source-
        // level error (the BDD would reject them too, less readably).
        if info.exact
            && atom.op != camus_lang::ast::RelOp::Eq
            && atom.op != camus_lang::ast::RelOp::Ne
        {
            return Err(CompileError::RangeOnExactField(operand_field_ref(
                &atom.operand,
            )));
        }
        Ok(LoweredAtom {
            canon: canonicalize(field, atom.op, value, bits),
            field,
        })
    }

    fn lower_rule(
        &mut self,
        rule_index: usize,
        rule: &Rule,
        out: &mut Vec<ResolvedConj>,
    ) -> Result<(), CompileError> {
        let dnf = to_dnf(&rule.condition)?;
        let actions = self.lower_actions(&rule.actions)?;
        for conj in dnf {
            let mut literals: Vec<(Pred, bool)> = Vec::new();
            let mut unsat = false;
            for lit in &conj {
                debug_assert!(lit.positive);
                match self.lower_atom(&lit.atom)? {
                    LoweredAtom {
                        canon: Canon::Always(true),
                        ..
                    } => {}
                    LoweredAtom {
                        canon: Canon::Always(false),
                        ..
                    } => {
                        unsat = true;
                        break;
                    }
                    LoweredAtom {
                        canon: Canon::Lit(p, pol),
                        ..
                    } => literals.push((p, pol)),
                }
            }
            if unsat {
                continue;
            }
            // Aux observe rules: one per aggregate slot read in this
            // conjunction, guarded by the non-aggregate literals.
            let mut agg_slots: Vec<FieldId> = literals
                .iter()
                .map(|(p, _)| p.field)
                .filter(|f| matches!(self.kinds[f.0 as usize], SlotKind::Agg { .. }))
                .collect();
            agg_slots.sort_unstable();
            agg_slots.dedup();
            for agg in agg_slots {
                let guard: Vec<(Pred, bool)> = literals
                    .iter()
                    .filter(|(p, _)| p.field != agg)
                    .copied()
                    .collect();
                out.push(ResolvedConj {
                    literals: guard,
                    actions: vec![RuleAction::ObserveAgg { agg_field: agg }],
                    source_rule: rule_index,
                });
            }
            out.push(ResolvedConj {
                literals,
                actions: actions.clone(),
                source_rule: rule_index,
            });
        }
        Ok(())
    }

    fn lower_actions(&mut self, actions: &[Action]) -> Result<Vec<RuleAction>, CompileError> {
        let mut out = Vec::with_capacity(actions.len());
        for a in actions {
            match a {
                Action::Fwd(ports) => {
                    let mut p = ports.clone();
                    p.sort_unstable();
                    p.dedup();
                    out.push(RuleAction::Fwd(p));
                }
                Action::Drop => out.push(RuleAction::Drop),
                Action::StateUpdate { var, func } => {
                    let counter_field = self
                        .counter_slot(var)
                        .ok_or_else(|| CompileError::UnknownStateVar(var.clone()))?;
                    let func = match func {
                        UpdateFn::Increment => CounterFunc::Increment,
                        UpdateFn::AddField(fr) => CounterFunc::AddField(
                            self.packet_slot(fr)
                                .map(|(id, _)| id)
                                .ok_or_else(|| CompileError::UnresolvedField(fr.clone()))?,
                        ),
                        UpdateFn::SetConst(n) => CounterFunc::SetConst(*n),
                        UpdateFn::SetField(fr) => CounterFunc::SetField(
                            self.packet_slot(fr)
                                .map(|(id, _)| id)
                                .ok_or_else(|| CompileError::UnresolvedField(fr.clone()))?,
                        ),
                    };
                    out.push(RuleAction::CounterUpdate {
                        counter_field,
                        func,
                    });
                }
            }
        }
        Ok(out)
    }
}

/// Canonical operand key for a slot (inverse of the builder's key
/// construction, used to rebuild the index in frozen mode).
fn slot_key(kind: &SlotKind) -> String {
    match kind {
        SlotKind::Packet(qf) => format!("pkt:{}", qf.field),
        SlotKind::Agg { agg, src, .. } => {
            let name = match agg {
                AggKind::Avg => "avg",
                AggKind::Sum => "sum",
                AggKind::Count => "count",
                AggKind::Min => "min",
                AggKind::Max => "max",
                AggKind::Last => "last",
            };
            match src {
                Some(q) => format!("agg:{}:{}", name, q.field),
                None => format!("agg:{name}"),
            }
        }
        SlotKind::Counter { name, .. } => format!("ctr:{name}"),
    }
}

struct LoweredAtom {
    canon: Canon,
    #[allow(dead_code)]
    field: FieldId,
}

fn operand_field_ref(op: &Operand) -> camus_lang::ast::FieldRef {
    match op {
        Operand::Field(fr) => fr.clone(),
        Operand::StateVar(v) => camus_lang::ast::FieldRef::short(v.clone()),
        Operand::Agg { func, field } => camus_lang::ast::FieldRef::short(match field {
            Some(fr) => format!("{}({})", func.name(), fr),
            None => format!("{}()", func.name()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_lang::{parse_program, parse_rule, parse_spec};

    fn itch() -> Spec {
        parse_spec(camus_lang::spec::ITCH_SPEC).unwrap()
    }

    fn resolve_src(src: &str) -> Result<Resolved, CompileError> {
        let rules = parse_program(src).unwrap();
        resolve(&itch(), &rules, &ResolveOptions::default())
    }

    #[test]
    fn resolves_simple_rule() {
        let r = resolve_src("stock == GOOGL : fwd(1)").unwrap();
        assert_eq!(r.rules.len(), 1);
        assert_eq!(r.rules[0].literals.len(), 1);
        let (p, pol) = r.rules[0].literals[0];
        assert!(pol);
        assert_eq!(p.value, camus_lang::symbol::encode_symbol("GOOGL", 64));
        assert_eq!(r.rules[0].actions, vec![RuleAction::Fwd(vec![1])]);
    }

    #[test]
    fn field_table_includes_spec_slots() {
        let r = resolve_src("stock == GOOGL : fwd(1)").unwrap();
        // 4 query fields + 1 declared counter.
        assert_eq!(r.fields.len(), 5);
        let names: Vec<&str> = r.fields.infos.iter().map(|i| i.name.as_str()).collect();
        assert!(names.contains(&"add_order.stock"));
        assert!(names.contains(&"ctr_my_counter"));
    }

    #[test]
    fn disjunction_splits_into_rules() {
        let r = resolve_src("stock == GOOGL or stock == MSFT : fwd(2)").unwrap();
        assert_eq!(r.rules.len(), 2);
        assert_eq!(r.rules[0].source_rule, 0);
        assert_eq!(r.rules[1].source_rule, 0);
    }

    #[test]
    fn aggregate_creates_pseudo_field_and_observe_rule() {
        let r = resolve_src("stock == GOOGL and avg(price) > 50 : fwd(1)").unwrap();
        // Aux observe rule + the main rule.
        assert_eq!(r.rules.len(), 2);
        let obs = &r.rules[0];
        assert_eq!(obs.literals.len(), 1, "guard is the stock literal only");
        assert!(matches!(obs.actions[0], RuleAction::ObserveAgg { .. }));
        let main = &r.rules[1];
        assert_eq!(main.literals.len(), 2);
        // The agg pseudo-field exists and is stateful.
        let agg_slots: Vec<_> = r.fields.state_slots().collect();
        assert!(agg_slots.iter().any(|(_, k)| matches!(
            k,
            SlotKind::Agg {
                agg: AggKind::Avg,
                ..
            }
        )));
    }

    #[test]
    fn counter_predicates_and_updates_resolve() {
        let r =
            resolve_src("my_counter > 10 : fwd(2)\nstock == AAPL : my_counter <- incr()").unwrap();
        assert_eq!(r.rules.len(), 2);
        assert!(matches!(
            r.rules[1].actions[0],
            RuleAction::CounterUpdate {
                func: CounterFunc::Increment,
                ..
            }
        ));
    }

    #[test]
    fn unknown_field_errors() {
        assert!(matches!(
            resolve_src("volume > 10 : fwd(1)"),
            Err(CompileError::UnresolvedField(_))
        ));
    }

    #[test]
    fn unknown_counter_update_errors() {
        assert!(matches!(
            resolve_src("stock == A : nope <- incr()"),
            Err(CompileError::UnknownStateVar(_))
        ));
    }

    #[test]
    fn range_on_exact_field_errors() {
        assert!(matches!(
            resolve_src("stock > GOOGL : fwd(1)"),
            Err(CompileError::RangeOnExactField(_))
        ));
    }

    #[test]
    fn value_out_of_range_errors() {
        assert!(matches!(
            resolve_src("buy_sell == 300 : fwd(1)"),
            Err(CompileError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn nullary_agg_other_than_count_errors() {
        let rules = vec![parse_rule("avg() > 3 : fwd(1)").unwrap()];
        assert!(matches!(
            resolve(&itch(), &rules, &ResolveOptions::default()),
            Err(CompileError::AggNeedsField("avg"))
        ));
    }

    #[test]
    fn tautological_literal_is_dropped() {
        let r = resolve_src("price >= 0 and stock == GOOGL : fwd(1)").unwrap();
        assert_eq!(r.rules[0].literals.len(), 1);
    }

    #[test]
    fn contradictory_conjunct_is_removed() {
        let r = resolve_src("price < 0 : fwd(1)").unwrap();
        assert!(r.rules.is_empty());
    }

    #[test]
    fn negation_becomes_negative_literal() {
        let r = resolve_src("!(stock == GOOGL) : fwd(1)").unwrap();
        assert_eq!(r.rules[0].literals.len(), 1);
        assert!(!r.rules[0].literals[0].1);
    }

    #[test]
    fn heuristic_reorders_fields() {
        let src = "stock == GOOGL : fwd(1)\nstock == MSFT : fwd(2)\nshares > 10 : fwd(3)";
        let rules = parse_program(src).unwrap();
        let opts = ResolveOptions {
            heuristic: OrderHeuristic::FrequencyDescending,
            ..Default::default()
        };
        let r = resolve(&itch(), &rules, &opts).unwrap();
        // `stock` (2 refs) must come before `shares` (1 ref).
        let stock_pos = r
            .fields
            .infos
            .iter()
            .position(|i| i.name == "add_order.stock")
            .unwrap();
        let shares_pos = r
            .fields
            .infos
            .iter()
            .position(|i| i.name == "add_order.shares")
            .unwrap();
        assert!(stock_pos < shares_pos);
        // Literals were remapped consistently.
        for rule in &r.rules {
            for (p, _) in &rule.literals {
                assert!((p.field.0 as usize) < r.fields.len());
                let info = &r.fields.infos[p.field.0 as usize];
                if info.name == "add_order.stock" {
                    assert!(info.exact);
                }
            }
        }
    }

    #[test]
    fn spec_order_heuristic_preserves_annotation_order() {
        let rules = parse_program("stock == GOOGL : fwd(1)").unwrap();
        let opts = ResolveOptions {
            heuristic: OrderHeuristic::SpecOrder,
            ..Default::default()
        };
        let r = resolve(&itch(), &rules, &opts).unwrap();
        let names: Vec<&str> = r.fields.infos.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "add_order.shares",
                "add_order.price",
                "add_order.stock",
                "add_order.buy_sell",
                "ctr_my_counter"
            ]
        );
    }
}
